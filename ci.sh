#!/usr/bin/env sh
# Offline CI gate: everything runs from the vendored toolchain and the
# in-repo code — no network, no crates.io. Run before every push.
set -eu

cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release --offline

echo "==> cargo test -q"
cargo test -q --offline

echo "==> E1b group-commit experiment (BENCH_e1_groupcommit.json)"
cargo run --release --offline -p cblog-bench --bin experiments -- \
    --json --only e1b > BENCH_e1_groupcommit.json

echo "==> E1c adaptive group-commit experiment (BENCH_e1c_adaptive.json)"
cargo run --release --offline -p cblog-bench --bin experiments -- \
    --json --only e1c > BENCH_e1c_adaptive.json

echo "==> E7 fault-injection experiment (BENCH_e7_faults.json)"
cargo run --release --offline -p cblog-bench --bin experiments -- \
    --json --only e7b > BENCH_e7_faults.json

echo "==> E8b trace-overhead experiment (BENCH_e8_trace_overhead.json)"
cargo run --release --offline -p cblog-bench --bin experiments -- \
    --json --only e8b > BENCH_e8_trace_overhead.json

echo "==> E9b parallel-recovery experiment (BENCH_e9_parallel_recovery.json)"
cargo run --release --offline -p cblog-bench --bin experiments -- \
    --json --only e9b > BENCH_e9_parallel_recovery.json

echo "==> perf-regression gate (BASELINES.json)"
cargo run --release --offline -p cblog-bench --bin experiments -- \
    --check-baselines BASELINES.json

echo "==> perf-regression gate rejects an injected regression"
# Self-test of the gate itself: perturb one pinned value and assert
# the check exits nonzero. Without this, a gate that silently passes
# everything would look green forever.
sed 's/"expect": 0.125/"expect": 0.225/' BASELINES.json > /tmp/ci_perturbed_baselines.json
if cargo run --release --offline -p cblog-bench --bin experiments -- \
    --check-baselines /tmp/ci_perturbed_baselines.json > /dev/null 2>&1; then
    echo "ERROR: gate accepted a perturbed baseline" >&2
    exit 1
fi
rm -f /tmp/ci_perturbed_baselines.json

echo "==> tracedump smoke: watchdog-verified E5 lineage + Chrome JSON"
# Write to a file first, then grep the file: in a `cmd | grep` pipeline
# the pipeline's exit status is grep's, which would mask a nonzero exit
# from the dump itself (e.g. a watchdog violation).
cargo run --release --offline -p cblog-bench --bin tracedump -- \
    --scenario e5 > /tmp/ci_tracedump.txt
grep "replay-hop" /tmp/ci_tracedump.txt > /dev/null
cargo run --release --offline -p cblog-bench --bin tracedump -- \
    --scenario e5 --json > /tmp/ci_tracedump.json
grep '"traceEvents"' /tmp/ci_tracedump.json > /dev/null
rm -f /tmp/ci_tracedump.txt /tmp/ci_tracedump.json

echo "==> obsreport smoke: self-contained HTML + folded stacks (OBS_e1.html)"
cargo run --release --offline -p cblog-bench --bin obsreport -- \
    --scenario e1 --out OBS_e1.html
grep '<svg' OBS_e1.html > /dev/null
cargo run --release --offline -p cblog-bench --bin obsreport -- \
    --scenario e1 --folded > /tmp/ci_obs_folded.txt
grep 'n0;disk ' /tmp/ci_obs_folded.txt > /dev/null
rm -f /tmp/ci_obs_folded.txt

echo "==> rtbench smoke: threaded runtime wall-clock sweep (BENCH_rt_threads.json)"
# Real OS threads + real fsync, so the numbers are machine-dependent:
# the cells are recorded for the report but deliberately EXCLUDED from
# the BASELINES.json perf gate above, which only pins deterministic
# simulator counters. The smoke checks structure, not speed.
cargo run --release --offline -p cblog-bench --bin rtbench -- \
    --quick --txns 4 --wal-dir /tmp/ci_rtbench_wal --out BENCH_rt_threads.json
grep '"cells"' BENCH_rt_threads.json > /dev/null
grep '"commit_msgs":0' BENCH_rt_threads.json > /dev/null
cargo run --release --offline -p cblog-bench --bin obsreport -- \
    --input BENCH_rt_threads.json --out /tmp/ci_rt_report.html
grep 'Benchmark cells' /tmp/ci_rt_report.html > /dev/null
rm -rf /tmp/ci_rtbench_wal /tmp/ci_rt_report.html

echo "==> rtbench trace-overhead smoke: tracing off vs on (BENCH_rt_trace_overhead.json)"
# The run itself asserts bit-identical tallies and page images between
# the untraced and traced passes; overhead_pct is wall-clock and
# machine-dependent, so (like every rt cell) it is EXCLUDED from the
# BASELINES.json gate — the smoke checks structure, not the number.
cargo run --release --offline -p cblog-bench --bin rtbench -- \
    --trace-overhead --quick --txns 4 --wal-dir /tmp/ci_rtovh_wal \
    --out BENCH_rt_trace_overhead.json
grep '"overhead_pct"' BENCH_rt_trace_overhead.json > /dev/null
grep '"spans"' BENCH_rt_trace_overhead.json > /dev/null
cargo run --release --offline -p cblog-bench --bin obsreport -- \
    --input BENCH_rt_trace_overhead.json --out /tmp/ci_rtovh_report.html
grep 'overhead %' /tmp/ci_rtovh_report.html > /dev/null
rm -rf /tmp/ci_rtovh_wal /tmp/ci_rtovh_report.html

echo "==> obsreport compare smoke: sim vs rt, one seeded workload"
cargo run --release --offline -p cblog-bench --bin obsreport -- \
    --compare --out /tmp/ci_obs_compare.html
grep 'Bucket shares' /tmp/ci_obs_compare.html > /dev/null
rm -f /tmp/ci_obs_compare.html

echo "==> rtbench recovery smoke: parallel replay sweep (BENCH_rt_recovery.json)"
# Same caveat as above: wall-clock cells are machine-dependent (and
# this container may expose a single CPU, where parallel replay cannot
# beat serial in wall time) — the smoke checks structure only.
cargo run --release --offline -p cblog-bench --bin rtbench -- \
    --recovery --quick --wal-dir /tmp/ci_rtrec_wal --out BENCH_rt_recovery.json
grep '"rt_recovery"' BENCH_rt_recovery.json > /dev/null
grep '"workers":4' BENCH_rt_recovery.json > /dev/null
rm -rf /tmp/ci_rtrec_wal

echo "==> crash-point model checker: bounded CI budget"
# Exhaustively enumerates the CI space (crash points x victim sets x
# torn-tail landings x recovery interruptions x one-step message
# schedules), pruning converged branches by durable-state fingerprint.
# Deterministic, a few thousand branches, seconds of wall clock; any
# violation prints a replayable branch spec and exits nonzero.
cargo run --release --offline -p cblog-bench --bin checker -- \
    --ci > /tmp/ci_checker.txt
grep "violations=0" /tmp/ci_checker.txt > /dev/null
grep "truncated=false" /tmp/ci_checker.txt > /dev/null
cat /tmp/ci_checker.txt
rm -f /tmp/ci_checker.txt

echo "==> crash-point model checker: must-fail self-test"
# Proves the checker can fail: recovery with the undo phase planted
# out must produce violations that shrink to a minimal counterexample.
# A checker that never fails would look green forever.
cargo run --release --offline -p cblog-bench --bin checker -- \
    --self-test > /tmp/ci_checker_selftest.txt 2>&1
grep "planted undo-skip caught" /tmp/ci_checker_selftest.txt > /dev/null
rm -f /tmp/ci_checker_selftest.txt

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy -- -D warnings"
cargo clippy --all-targets --offline -- -D warnings

echo "CI OK"
