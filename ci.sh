#!/usr/bin/env sh
# Offline CI gate: everything runs from the vendored toolchain and the
# in-repo code — no network, no crates.io. Run before every push.
set -eu

cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release --offline

echo "==> cargo test -q"
cargo test -q --offline

echo "==> E1b group-commit experiment (BENCH_e1_groupcommit.json)"
cargo run --release --offline -p cblog-bench --bin experiments -- \
    --json --only "E1b" > BENCH_e1_groupcommit.json

echo "==> E1c adaptive group-commit experiment (BENCH_e1c_adaptive.json)"
cargo run --release --offline -p cblog-bench --bin experiments -- \
    --json --only "E1c" > BENCH_e1c_adaptive.json

echo "==> E7 fault-injection experiment (BENCH_e7_faults.json)"
cargo run --release --offline -p cblog-bench --bin experiments -- \
    --json --only "E7 faults" > BENCH_e7_faults.json

echo "==> E8b trace-overhead experiment (BENCH_e8_trace_overhead.json)"
cargo run --release --offline -p cblog-bench --bin experiments -- \
    --json --only "E8b" > BENCH_e8_trace_overhead.json

echo "==> tracedump smoke: watchdog-verified E5 lineage + Chrome JSON"
# (plain grep, not -q: -q exits at first match and the early SIGPIPE
# would mask the dump's own exit status)
cargo run --release --offline -p cblog-bench --bin tracedump -- \
    --scenario e5 | grep "replay-hop" > /dev/null
cargo run --release --offline -p cblog-bench --bin tracedump -- \
    --scenario e5 --json | grep '"traceEvents"' > /dev/null

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy -- -D warnings"
cargo clippy --all-targets --offline -- -D warnings

echo "CI OK"
