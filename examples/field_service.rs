//! Field service: the paper's §1.2 mobile-technician scenario.
//!
//! "Customer data is in a database attached to some other node. This
//! data is copied into the hand-held notebook computer and cached
//! there. Now, as the technician notes the status of the repair work
//! … she may wish to achieve transactional durability guarantees for
//! orders recorded in the notebook computer without repeatedly having
//! to call the server in the central office."
//!
//! The notebook checks out customer record pages once, then performs a
//! day of work-order transactions — each durably committed against the
//! notebook's *local* log with zero calls to the office — survives a
//! notebook crash in the field, and the office later recovers the
//! notebook's committed work from the notebook's log alone.
//!
//! Run with: `cargo run -p cblog-bench --example field_service`

use cblog_common::{NodeId, PageId};
use cblog_core::{recovery, Cluster, ClusterConfig, RecoveryOptions};

fn main() {
    let office = NodeId(0);
    let notebook = NodeId(1);
    let mut cluster =
        Cluster::new(ClusterConfig::builder().owned_pages(vec![4, 0]).build()).expect("cluster");

    // Customer work-order pages are slotted record pages.
    let orders = PageId::new(office, 0);
    cluster.format_slotted(orders).unwrap();

    // --- Morning: check out the customer data (one round of calls). --
    let t = cluster.begin(notebook).unwrap();
    let rid_boiler = cluster
        .insert_record(t, orders, b"boiler: scheduled")
        .unwrap();
    cluster.commit(t).unwrap();
    let checkout_msgs = cluster.network().stats().total_messages();
    println!("checked out customer pages ({checkout_msgs} messages)");

    // --- In the field: a day of durable work orders, zero calls. ---
    let day_start = cluster.network().stats().total_messages();
    let t = cluster.begin(notebook).unwrap();
    cluster
        .update_record(t, rid_boiler, b"boiler: inspected, valve worn")
        .unwrap();
    cluster.commit(t).unwrap();

    let t = cluster.begin(notebook).unwrap();
    let rid_parts = cluster
        .insert_record(t, orders, b"parts: valve x1 ordered")
        .unwrap();
    cluster.commit(t).unwrap();

    // A mistaken entry, rolled back locally.
    let t = cluster.begin(notebook).unwrap();
    let rid_oops = cluster
        .insert_record(t, orders, b"oops wrong customer")
        .unwrap();
    cluster.abort(t).unwrap();

    let t = cluster.begin(notebook).unwrap();
    cluster
        .update_record(t, rid_boiler, b"boiler: repaired, tested OK")
        .unwrap();
    cluster.commit(t).unwrap();
    let day_msgs = cluster.network().stats().total_messages() - day_start;
    println!("field day done: 3 durable commits + 1 rollback, {day_msgs} calls to the office");
    assert_eq!(day_msgs, 0, "durability without calling the server");

    // --- The notebook is dropped in a puddle (crash). Its log (on its
    // local disk) survives; the cached pages do not. ---
    cluster.crash(notebook);
    println!("notebook crashed in the field");
    let report =
        recovery::recover(&mut cluster, &RecoveryOptions::single(notebook)).expect("recovery");
    println!(
        "notebook recovered: {} page(s) rebuilt from its own log, {} records replayed",
        report.pages_recovered, report.records_replayed
    );

    // --- Back at the office: the committed day is all there. ---
    let t = cluster.begin(office).unwrap();
    let boiler = cluster.read_record(t, rid_boiler).unwrap();
    let parts = cluster.read_record(t, rid_parts).unwrap();
    let oops_gone = cluster.read_record(t, rid_oops).is_err();
    cluster.commit(t).unwrap();
    println!(
        "office sees: {:?} / {:?}; mistaken entry gone: {}",
        String::from_utf8_lossy(&boiler),
        String::from_utf8_lossy(&parts),
        oops_gone
    );
    assert_eq!(boiler, b"boiler: repaired, tested OK");
    assert_eq!(parts, b"parts: valve x1 ordered");
    assert!(oops_gone);
    println!("field-service scenario verified");
}
