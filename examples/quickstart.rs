//! Quickstart: one owner node, one client node with its own log.
//!
//! Shows the core life cycle — transactions, savepoints, an abort, a
//! message-free commit, a crash, and recovery — with the network
//! counters printed so the paper's claims are visible in the output.
//!
//! Run with: `cargo run -p cblog-bench --example quickstart`

use cblog_common::{NodeId, PageId};
use cblog_core::{recovery, Cluster, ClusterConfig, RecoveryOptions};

fn main() {
    // Node 0 owns 8 pages; node 1 is a client workstation with a local
    // disk used for logging (the paper's paradigm).
    let mut cluster =
        Cluster::new(ClusterConfig::builder().owned_pages(vec![8, 0]).build()).expect("cluster");

    let owner = NodeId(0);
    let client = NodeId(1);
    let account_a = PageId::new(owner, 0);
    let account_b = PageId::new(owner, 1);

    // --- A transfer transaction executed entirely at the client. ---
    let t = cluster.begin(client).unwrap();
    cluster.write_u64(t, account_a, 0, 900).unwrap(); // debit
    cluster.write_u64(t, account_b, 0, 100).unwrap(); // credit
    let msgs_before_commit = cluster.network().stats().total_messages();
    cluster.commit(t).unwrap();
    let msgs_after_commit = cluster.network().stats().total_messages();
    println!(
        "transfer committed; messages during commit: {}",
        msgs_after_commit - msgs_before_commit
    );

    // --- Savepoints and partial rollback. ---
    let t = cluster.begin(client).unwrap();
    cluster.write_u64(t, account_a, 1, 1).unwrap();
    let sp = cluster.savepoint(t).unwrap();
    cluster.write_u64(t, account_a, 2, 2).unwrap();
    cluster.rollback_to(t, sp).unwrap(); // undo slot 2 only
    cluster.commit(t).unwrap();

    // --- A change of heart: total rollback. ---
    let t = cluster.begin(client).unwrap();
    cluster.write_u64(t, account_b, 1, 999).unwrap();
    cluster.abort(t).unwrap();

    // --- Crash the owner; its disk is stale but the client's local
    // log + dirty page table recover everything. ---
    cluster.evict_page(client, account_a).unwrap();
    cluster.evict_page(client, account_b).unwrap();
    cluster.crash(owner);
    println!("owner crashed; recovering from the nodes' local logs...");
    let report =
        recovery::recover(&mut cluster, &RecoveryOptions::single(owner)).expect("recovery");
    println!(
        "recovery done: {} pages replayed, {} records, {} messages, no logs merged",
        report.pages_recovered, report.records_replayed, report.messages
    );

    // --- Verify. ---
    let t = cluster.begin(client).unwrap();
    let a0 = cluster.read_u64(t, account_a, 0).unwrap();
    let a1 = cluster.read_u64(t, account_a, 1).unwrap();
    let a2 = cluster.read_u64(t, account_a, 2).unwrap();
    let b0 = cluster.read_u64(t, account_b, 0).unwrap();
    let b1 = cluster.read_u64(t, account_b, 1).unwrap();
    cluster.commit(t).unwrap();
    assert_eq!((a0, a1, a2, b0, b1), (900, 1, 0, 100, 0));
    println!("verified: committed state intact, rolled-back updates gone");
    println!(
        "totals: {} messages, client log {} bytes, owner log {} bytes",
        cluster.network().stats().total_messages(),
        cluster.node(client).log().bytes_written(),
        cluster.node(owner).log().bytes_written(),
    );
}
