//! Figure 1 walk-through: the paper's distributed system architecture
//! under concurrent load, an owner crash, and the §2.3 recovery
//! protocol — with a message breakdown per protocol step.
//!
//! Topology (paper Figure 1): nodes 0 and 2 are *owner* nodes with
//! databases and logs; nodes 1 and 3 are processing nodes with local
//! logs but no databases.
//!
//! Run with: `cargo run -p cblog-bench --example cluster_recovery`
//!
//! Causal tracing is enabled (`ClusterConfig::tracing`): every span is
//! checked online by the invariant watchdog, and the run ends by
//! printing the cross-node PSN lineage of one recovered page.

use cblog_common::{NodeId, PageId};
use cblog_core::{recovery, Cluster, ClusterConfig, RecoveryOptions};
use cblog_net::MsgKind;
use cblog_sim::{run_workload, workload, Oracle, WorkloadConfig};

fn main() {
    // Owners: nodes 0 and 2.
    let mut cluster = Cluster::new(
        ClusterConfig::builder()
            .owned_pages(vec![8, 0, 8, 0])
            .tracing(true)
            .build(),
    )
    .expect("cluster");

    // Every node (owners included) runs transactions against pages of
    // both owners.
    let mut pages: Vec<PageId> = (0..8).map(|i| PageId::new(NodeId(0), i)).collect();
    pages.extend((0..8).map(|i| PageId::new(NodeId(2), i)));
    let clients: Vec<NodeId> = (0..4).map(NodeId).collect();
    let cfg = WorkloadConfig {
        txns_per_client: 25,
        ops_per_txn: 6,
        write_ratio: 0.6,
        hot_access: 0.3,
        hot_fraction: 0.2,
        seed: 2026,
        ..WorkloadConfig::default()
    };
    let specs = workload::generate(&cfg, &clients, &pages, None);
    let stats = run_workload(&mut cluster, specs).expect("workload");
    println!(
        "workload: {} committed, {} deadlock retries, {} messages, sim {} ms",
        stats.committed,
        stats.deadlock_aborts,
        stats.net.total_messages(),
        stats.sim_time / 1000
    );
    let oracle: Oracle = stats.oracle;

    // Independent fuzzy checkpoints — zero messages (contribution 4).
    let before = cluster.network().stats().total_messages();
    for n in &clients {
        cluster.checkpoint(*n).unwrap();
    }
    assert_eq!(cluster.network().stats().total_messages(), before);
    println!("4 independent fuzzy checkpoints taken (0 messages)");

    // Push the current images of node 0's pages out of every client
    // cache, so some survive only in node 0's buffer and must be
    // replayed from the clients' logs (the NodePSNList path).
    for n in 1..4u32 {
        for i in 0..8u32 {
            let _ = cluster.evict_page(NodeId(n), PageId::new(NodeId(0), i));
        }
    }

    // Crash owner node 0 mid-flight.
    let snap = cluster.network().stats();
    cluster.crash(NodeId(0));
    println!("\nnode 0 (owner) crashed — lock/data requests for its pages stall;");
    println!("other nodes keep working on node 2's pages meanwhile");
    let t = cluster.begin(NodeId(3)).unwrap();
    cluster
        .write_u64(t, PageId::new(NodeId(2), 0), 0, 4242)
        .unwrap();
    cluster.commit(t).unwrap();

    let report =
        recovery::recover(&mut cluster, &RecoveryOptions::single(NodeId(0))).expect("recovery");
    println!("\nrecovery report:");
    println!(
        "  pages replayed (NodePSNList):  {}",
        report.pages_recovered
    );
    println!(
        "  pages current in other caches: {}",
        report.pages_skipped_cached
    );
    println!(
        "  pages pulled to owner:         {}",
        report.pages_pulled_to_owner
    );
    println!(
        "  records replayed:              {}",
        report.records_replayed
    );
    println!("  loser transactions undone:     {}", report.losers_undone);
    println!(
        "  log bytes scanned:             {}",
        report.log_bytes_scanned
    );
    println!("  page shuttle hops:             {}", report.page_hops);

    let d = cluster.network().stats().since(&snap);
    println!("\nrecovery message breakdown:");
    for kind in MsgKind::ALL {
        let n = d.count(kind);
        if n > 0 {
            println!("  {:>16}: {}", kind.label(), n);
        }
    }

    // The oracle read back through a different node must match.
    let verified = oracle.verify(&mut cluster, NodeId(1)).expect("verify");
    println!(
        "\nverified {verified} committed slots after crash + recovery — no log was ever merged"
    );

    // The causal trace saw the whole run. The watchdog re-checks the
    // paper's invariants span by span (PSN total order, WAL rule, no
    // log records on the wire, replay in global PSN order)...
    cluster.trace_check().expect("watchdog clean");
    let tracer = cluster.tracer();
    println!(
        "\ntrace: {} spans, watchdog clean — lineage of the busiest page:",
        tracer.len()
    );
    // ...and can reconstruct any page's cross-node update history.
    let pid = tracer.busiest_page().expect("traced pages");
    print!("{}", tracer.render_lineage(pid));
}
