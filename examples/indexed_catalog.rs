//! Distributed indexed catalog: a B+-tree access method running on the
//! client-based-logging substrate, shared by two workstations, with a
//! crash in the middle of a bulk load.
//!
//! Shows the compounding property of the paper's design: the access
//! method needed **no recovery code of its own** — tree nodes are
//! logically-logged records, so an aborted split rolls back through
//! CLRs and a crashed owner's tree pages replay through the
//! NodePSNList protocol like any other page.
//!
//! Run with: `cargo run -p cblog-bench --example indexed_catalog`

use cblog_access::BTree;
use cblog_common::{NodeId, PageId};
use cblog_core::{recovery, Cluster, ClusterConfig, RecoveryOptions};

fn main() {
    let mut cluster = Cluster::new(
        ClusterConfig::builder()
            .owned_pages(vec![24, 0, 0])
            .page_size(2048)
            .buffer_frames(48)
            .build(),
    )
    .expect("cluster");
    let pages: Vec<PageId> = (0..24).map(|i| PageId::new(NodeId(0), i)).collect();
    for p in &pages {
        cluster.format_slotted(*p).unwrap();
    }

    // Workstation 1 creates the catalog index.
    let t = cluster.begin(NodeId(1)).unwrap();
    let index = BTree::create(&mut cluster, t, pages.clone(), 12).unwrap();
    cluster.commit(t).unwrap();

    // Workstation 1 bulk-loads part numbers; workstation 2 loads its
    // own range concurrently (interleaved transactions).
    for batch in 0..10u64 {
        for station in [1u32, 2] {
            let t = cluster.begin(NodeId(station)).unwrap();
            for i in 0..10u64 {
                let part = station as u64 * 100_000 + batch * 10 + i;
                index.insert(&mut cluster, t, part, part * 7).unwrap();
            }
            cluster.commit(t).unwrap();
        }
    }
    let t = cluster.begin(NodeId(1)).unwrap();
    let count = index.check(&mut cluster, t).unwrap();
    let depth = index.depth(&mut cluster, t).unwrap();
    cluster.commit(t).unwrap();
    println!("catalog loaded: {count} parts, tree depth {depth}");

    // Workstation 2 starts a load batch and crashes mid-way with its
    // records durable — the classic torn bulk-load.
    let t = cluster.begin(NodeId(2)).unwrap();
    for i in 0..30u64 {
        index.insert(&mut cluster, t, 900_000 + i, i).unwrap();
    }
    cluster.node_mut(NodeId(2)).force_log().unwrap();
    cluster.crash(NodeId(2));
    println!("workstation 2 crashed mid-bulk-load (30 uncommitted inserts)");
    let rep =
        recovery::recover(&mut cluster, &RecoveryOptions::single(NodeId(2))).expect("recovery");
    println!(
        "recovered: {} loser transaction undone, {} records replayed",
        rep.losers_undone, rep.records_replayed
    );

    // Now the owner crashes too, with the current tree images only in
    // its buffer.
    for p in &pages {
        let _ = cluster.evict_page(NodeId(1), *p);
        let _ = cluster.evict_page(NodeId(2), *p);
    }
    cluster.crash(NodeId(0));
    let rep =
        recovery::recover(&mut cluster, &RecoveryOptions::single(NodeId(0))).expect("recovery");
    println!(
        "owner recovered: {} tree pages replayed from the workstations' logs",
        rep.pages_recovered
    );

    // Full verification through workstation 2.
    let t = cluster.begin(NodeId(2)).unwrap();
    assert_eq!(
        index.check(&mut cluster, t).unwrap(),
        count,
        "torn load gone, catalog intact"
    );
    for batch in 0..10u64 {
        for station in [1u64, 2] {
            for i in 0..10u64 {
                let part = station * 100_000 + batch * 10 + i;
                assert_eq!(index.get(&mut cluster, t, part).unwrap(), Some(part * 7));
            }
        }
    }
    assert_eq!(index.get(&mut cluster, t, 900_005).unwrap(), None);
    let range = index.range(&mut cluster, t, 100_000, 100_019).unwrap();
    cluster.commit(t).unwrap();
    println!(
        "verified {count} parts + range scan ({} hits); no log was merged, no index recovery code exists",
        range.len()
    );
}
