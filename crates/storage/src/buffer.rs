//! Buffer pool (node cache) with steal / no-force semantics.
//!
//! Paper §2.1: "Each node has a buffer pool (node cache) where
//! frequently accessed pages are cached to minimize disk I/O and
//! communication with owner nodes. The buffer manager of each node
//! follows the steal and no-force strategies."
//!
//! The pool is policy-only: it never performs I/O. When insertion of a
//! new page requires evicting a victim, the victim is handed back to
//! the caller ([`EvictedPage`]), and the node decides the destination —
//! written in place for locally owned pages, shipped to the owner node
//! for remote pages (§2.1) — after satisfying the WAL rule. This keeps
//! the paper's protocol decisions out of the replacement mechanism and
//! makes both independently testable.
//!
//! Replacement is the clock (second-chance) algorithm; pinned frames
//! are never victims.

use crate::page::Page;
use cblog_common::{Counter, Error, PageId, Result};
use std::collections::HashMap;

#[derive(Debug)]
struct Frame {
    page: Page,
    dirty: bool,
    pins: u32,
    refbit: bool,
}

/// A page pushed out of the pool, to be routed by the caller.
#[derive(Debug)]
pub struct EvictedPage {
    /// The evicted page image.
    pub page: Page,
    /// Whether the image differs from the last image the node wrote /
    /// shipped (i.e. whether the destination must absorb it).
    pub dirty: bool,
}

/// Fixed-capacity page cache.
#[derive(Debug)]
pub struct BufferPool {
    capacity: usize,
    frames: Vec<Option<Frame>>,
    map: HashMap<PageId, usize>,
    clock_hand: usize,
    hits: Counter,
    misses: Counter,
    evictions: Counter,
}

impl BufferPool {
    /// Pool holding at most `capacity` pages.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "buffer pool needs at least one frame");
        BufferPool {
            capacity,
            frames: (0..capacity).map(|_| None).collect(),
            map: HashMap::with_capacity(capacity),
            clock_hand: 0,
            hits: Counter::new(),
            misses: Counter::new(),
            evictions: Counter::new(),
        }
    }

    /// Number of cached pages.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if no pages are cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Pool capacity in pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Cache-hit counter.
    pub fn hits(&self) -> &Counter {
        &self.hits
    }

    /// Cache-miss counter (bumped by lookups that return `None`).
    pub fn misses(&self) -> &Counter {
        &self.misses
    }

    /// Eviction counter.
    pub fn evictions(&self) -> &Counter {
        &self.evictions
    }

    /// True if `pid` is cached.
    pub fn contains(&self, pid: PageId) -> bool {
        self.map.contains_key(&pid)
    }

    /// Looks up a page, marking it recently used.
    pub fn get(&mut self, pid: PageId) -> Option<&Page> {
        match self.map.get(&pid) {
            Some(&i) => {
                self.hits.bump();
                let f = self.frames[i].as_mut().expect("mapped frame occupied");
                f.refbit = true;
                Some(&f.page)
            }
            None => {
                self.misses.bump();
                None
            }
        }
    }

    /// Mutable lookup. Does **not** set the dirty flag — pure reads
    /// through mutable access stay clean; update paths call
    /// [`BufferPool::mark_dirty`] explicitly alongside logging.
    pub fn get_mut(&mut self, pid: PageId) -> Option<&mut Page> {
        match self.map.get(&pid) {
            Some(&i) => {
                self.hits.bump();
                let f = self.frames[i].as_mut().expect("mapped frame occupied");
                f.refbit = true;
                Some(&mut f.page)
            }
            None => {
                self.misses.bump();
                None
            }
        }
    }

    /// Peeks without touching hit/miss counters or the ref bit.
    pub fn peek(&self, pid: PageId) -> Option<&Page> {
        self.map
            .get(&pid)
            .map(|&i| &self.frames[i].as_ref().expect("mapped frame occupied").page)
    }

    /// Marks a cached page dirty.
    pub fn mark_dirty(&mut self, pid: PageId) {
        if let Some(&i) = self.map.get(&pid) {
            self.frames[i]
                .as_mut()
                .expect("mapped frame occupied")
                .dirty = true;
        }
    }

    /// Clears the dirty flag (after the image has been written/shipped).
    pub fn mark_clean(&mut self, pid: PageId) {
        if let Some(&i) = self.map.get(&pid) {
            self.frames[i]
                .as_mut()
                .expect("mapped frame occupied")
                .dirty = false;
        }
    }

    /// Whether a cached page is dirty (None if not cached).
    pub fn is_dirty(&self, pid: PageId) -> Option<bool> {
        self.map.get(&pid).map(|&i| {
            self.frames[i]
                .as_ref()
                .expect("mapped frame occupied")
                .dirty
        })
    }

    /// Pins a page (excluded from eviction until unpinned).
    pub fn pin(&mut self, pid: PageId) -> Result<()> {
        let &i = self.map.get(&pid).ok_or(Error::NoSuchPage(pid))?;
        self.frames[i].as_mut().expect("mapped frame occupied").pins += 1;
        Ok(())
    }

    /// Unpins a page.
    pub fn unpin(&mut self, pid: PageId) -> Result<()> {
        let &i = self.map.get(&pid).ok_or(Error::NoSuchPage(pid))?;
        let f = self.frames[i].as_mut().expect("mapped frame occupied");
        if f.pins == 0 {
            return Err(Error::Protocol(format!("unpin of unpinned page {pid}")));
        }
        f.pins -= 1;
        Ok(())
    }

    /// Inserts (or replaces) a page image. Returns the victim evicted
    /// to make room, if any. Replacing an existing entry keeps the
    /// frame and ORs the dirty flag.
    pub fn insert(&mut self, page: Page, dirty: bool) -> Result<Option<EvictedPage>> {
        let pid = page.id();
        if let Some(&i) = self.map.get(&pid) {
            let f = self.frames[i].as_mut().expect("mapped frame occupied");
            f.page = page;
            f.dirty |= dirty;
            f.refbit = true;
            return Ok(None);
        }
        let (slot, victim) = self.find_slot()?;
        self.frames[slot] = Some(Frame {
            page,
            dirty,
            pins: 0,
            refbit: true,
        });
        self.map.insert(pid, slot);
        Ok(victim)
    }

    fn find_slot(&mut self) -> Result<(usize, Option<EvictedPage>)> {
        if self.map.len() < self.capacity {
            let slot = self
                .frames
                .iter()
                .position(|f| f.is_none())
                .expect("len < capacity implies a free frame");
            return Ok((slot, None));
        }
        // Clock sweep: up to two full passes (first clears ref bits).
        for _ in 0..2 * self.capacity {
            let i = self.clock_hand;
            self.clock_hand = (self.clock_hand + 1) % self.capacity;
            let f = self.frames[i].as_mut().expect("full pool");
            if f.pins > 0 {
                continue;
            }
            if f.refbit {
                f.refbit = false;
                continue;
            }
            let frame = self.frames[i].take().expect("occupied");
            self.map.remove(&frame.page.id());
            self.evictions.bump();
            return Ok((
                i,
                Some(EvictedPage {
                    page: frame.page,
                    dirty: frame.dirty,
                }),
            ));
        }
        Err(Error::Protocol("all buffer frames pinned".into()))
    }

    /// Removes a specific page (e.g. callback purge, targeted
    /// replacement by the log-space protocol §2.5), returning it.
    pub fn remove(&mut self, pid: PageId) -> Option<EvictedPage> {
        let i = self.map.remove(&pid)?;
        let f = self.frames[i].take().expect("mapped frame occupied");
        Some(EvictedPage {
            page: f.page,
            dirty: f.dirty,
        })
    }

    /// Drops everything (node crash: cache contents are lost, §2.3).
    pub fn clear(&mut self) {
        self.map.clear();
        for f in &mut self.frames {
            *f = None;
        }
        self.clock_hand = 0;
    }

    /// Ids of all cached pages.
    pub fn cached_ids(&self) -> Vec<PageId> {
        let mut v: Vec<PageId> = self.map.keys().copied().collect();
        v.sort();
        v
    }

    /// Ids of all dirty cached pages.
    pub fn dirty_ids(&self) -> Vec<PageId> {
        let mut v: Vec<PageId> = self
            .map
            .iter()
            .filter(|(_, &i)| self.frames[i].as_ref().expect("occupied").dirty)
            .map(|(pid, _)| *pid)
            .collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PageKind;
    use cblog_common::{NodeId, Psn};

    fn page(i: u32) -> Page {
        Page::new(PageId::new(NodeId(1), i), PageKind::Raw, Psn(1), 128)
    }

    fn pid(i: u32) -> PageId {
        PageId::new(NodeId(1), i)
    }

    #[test]
    fn insert_and_get_counts_hits_and_misses() {
        let mut bp = BufferPool::new(4);
        bp.insert(page(0), false).unwrap();
        assert!(bp.get(pid(0)).is_some());
        assert!(bp.get(pid(1)).is_none());
        assert_eq!(bp.hits().get(), 1);
        assert_eq!(bp.misses().get(), 1);
    }

    #[test]
    fn eviction_returns_victim_when_full() {
        let mut bp = BufferPool::new(2);
        assert!(bp.insert(page(0), false).unwrap().is_none());
        assert!(bp.insert(page(1), true).unwrap().is_none());
        let victim = bp.insert(page(2), false).unwrap().expect("must evict");
        assert_eq!(bp.len(), 2);
        assert_eq!(bp.evictions().get(), 1);
        assert!(victim.page.id() == pid(0) || victim.page.id() == pid(1));
    }

    #[test]
    fn clock_gives_referenced_frames_a_second_chance() {
        let mut bp = BufferPool::new(3);
        bp.insert(page(0), false).unwrap();
        bp.insert(page(1), false).unwrap();
        bp.insert(page(2), false).unwrap();
        // All ref bits set: the first sweep clears them in frame order
        // and evicts frame 0 on the second visit.
        let v1 = bp.insert(page(3), false).unwrap().unwrap();
        assert_eq!(v1.page.id(), pid(0));
        // Re-reference page 2; page 1's ref bit stays clear, so it is
        // the next victim even though page 2 sits behind the hand.
        bp.get(pid(2));
        let v2 = bp.insert(page(4), false).unwrap().unwrap();
        assert_eq!(v2.page.id(), pid(1));
        assert!(bp.contains(pid(2)));
    }

    #[test]
    fn pinned_pages_are_never_evicted() {
        let mut bp = BufferPool::new(2);
        bp.insert(page(0), false).unwrap();
        bp.insert(page(1), false).unwrap();
        bp.pin(pid(0)).unwrap();
        let v = bp.insert(page(2), false).unwrap().unwrap();
        assert_eq!(v.page.id(), pid(1));
        bp.pin(pid(2)).unwrap();
        // Both remaining pages pinned: insertion must fail.
        assert!(bp.insert(page(3), false).is_err());
        bp.unpin(pid(0)).unwrap();
        assert!(bp.insert(page(3), false).unwrap().is_some());
    }

    #[test]
    fn unpin_underflow_is_protocol_error() {
        let mut bp = BufferPool::new(2);
        bp.insert(page(0), false).unwrap();
        assert!(matches!(bp.unpin(pid(0)), Err(Error::Protocol(_))));
        assert!(matches!(bp.pin(pid(9)), Err(Error::NoSuchPage(_))));
    }

    #[test]
    fn dirty_tracking_and_replacement_or_semantics() {
        let mut bp = BufferPool::new(2);
        bp.insert(page(0), true).unwrap();
        assert_eq!(bp.is_dirty(pid(0)), Some(true));
        // Replacing with a clean image keeps dirty (OR semantics).
        bp.insert(page(0), false).unwrap();
        assert_eq!(bp.is_dirty(pid(0)), Some(true));
        bp.mark_clean(pid(0));
        assert_eq!(bp.is_dirty(pid(0)), Some(false));
        bp.mark_dirty(pid(0));
        assert_eq!(bp.dirty_ids(), vec![pid(0)]);
    }

    #[test]
    fn remove_and_clear() {
        let mut bp = BufferPool::new(4);
        bp.insert(page(0), true).unwrap();
        bp.insert(page(1), false).unwrap();
        let ev = bp.remove(pid(0)).unwrap();
        assert!(ev.dirty);
        assert!(bp.remove(pid(0)).is_none());
        bp.clear();
        assert!(bp.is_empty());
        assert!(!bp.contains(pid(1)));
    }

    #[test]
    fn cached_ids_sorted() {
        let mut bp = BufferPool::new(4);
        bp.insert(page(3), false).unwrap();
        bp.insert(page(1), false).unwrap();
        bp.insert(page(2), true).unwrap();
        assert_eq!(bp.cached_ids(), vec![pid(1), pid(2), pid(3)]);
    }

    #[test]
    fn peek_does_not_perturb_stats() {
        let mut bp = BufferPool::new(2);
        bp.insert(page(0), false).unwrap();
        assert!(bp.peek(pid(0)).is_some());
        assert!(bp.peek(pid(1)).is_none());
        assert_eq!(bp.hits().get(), 0);
        assert_eq!(bp.misses().get(), 0);
    }
}
