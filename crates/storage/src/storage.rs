//! Block storage backends.
//!
//! The database and the experiments mostly run on [`MemStorage`] (fast,
//! deterministic, I/O-counted); [`FileStorage`] provides a real
//! file-backed implementation with identical semantics so examples can
//! persist across process restarts.

use cblog_common::{Counter, Error, Result};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

/// Fixed-size block device abstraction.
///
/// Blocks are `block_size` bytes; the device grows on demand when a
/// block past the current end is written.
///
/// `Send` is a supertrait so a `Box<dyn Storage>` (and the `Database`
/// / `Node` built on it) can move into a worker thread of the threaded
/// runtime.
pub trait Storage: Send {
    /// Block size in bytes.
    fn block_size(&self) -> usize;

    /// Number of blocks currently allocated.
    fn num_blocks(&self) -> u64;

    /// Reads block `idx` into `buf` (must be exactly `block_size`).
    fn read_block(&mut self, idx: u64, buf: &mut [u8]) -> Result<()>;

    /// Writes block `idx` from `buf` (must be exactly `block_size`),
    /// growing the device if needed.
    fn write_block(&mut self, idx: u64, buf: &[u8]) -> Result<()>;

    /// Durably flushes all written blocks.
    fn sync(&mut self) -> Result<()>;

    /// Counter of read I/Os issued.
    fn reads(&self) -> &Counter;

    /// Counter of write I/Os issued.
    fn writes(&self) -> &Counter;

    /// Counter of sync operations issued.
    fn syncs(&self) -> &Counter;
}

/// In-memory block storage with I/O accounting.
#[derive(Debug)]
pub struct MemStorage {
    block_size: usize,
    blocks: Vec<Vec<u8>>,
    reads: Counter,
    writes: Counter,
    syncs: Counter,
}

impl MemStorage {
    /// New empty device with `block_size`-byte blocks.
    pub fn new(block_size: usize) -> Self {
        MemStorage {
            block_size,
            blocks: Vec::new(),
            reads: Counter::new(),
            writes: Counter::new(),
            syncs: Counter::new(),
        }
    }
}

impl Storage for MemStorage {
    fn block_size(&self) -> usize {
        self.block_size
    }

    fn num_blocks(&self) -> u64 {
        self.blocks.len() as u64
    }

    fn read_block(&mut self, idx: u64, buf: &mut [u8]) -> Result<()> {
        if buf.len() != self.block_size {
            return Err(Error::Invalid("bad read buffer size".into()));
        }
        let b = self
            .blocks
            .get(idx as usize)
            .ok_or_else(|| Error::Invalid(format!("read past end: block {idx}")))?;
        buf.copy_from_slice(b);
        self.reads.bump();
        Ok(())
    }

    fn write_block(&mut self, idx: u64, buf: &[u8]) -> Result<()> {
        if buf.len() != self.block_size {
            return Err(Error::Invalid("bad write buffer size".into()));
        }
        let idx = idx as usize;
        while self.blocks.len() <= idx {
            self.blocks.push(vec![0; self.block_size]);
        }
        self.blocks[idx].copy_from_slice(buf);
        self.writes.bump();
        Ok(())
    }

    fn sync(&mut self) -> Result<()> {
        self.syncs.bump();
        Ok(())
    }

    fn reads(&self) -> &Counter {
        &self.reads
    }

    fn writes(&self) -> &Counter {
        &self.writes
    }

    fn syncs(&self) -> &Counter {
        &self.syncs
    }
}

/// File-backed block storage.
#[derive(Debug)]
pub struct FileStorage {
    block_size: usize,
    file: File,
    num_blocks: u64,
    reads: Counter,
    writes: Counter,
    syncs: Counter,
}

impl FileStorage {
    /// Opens (or creates) the file at `path`.
    pub fn open(path: &Path, block_size: usize) -> Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let len = file.metadata()?.len();
        if len % block_size as u64 != 0 {
            return Err(Error::Corrupt(format!(
                "file length {len} not a multiple of block size {block_size}"
            )));
        }
        Ok(FileStorage {
            block_size,
            file,
            num_blocks: len / block_size as u64,
            reads: Counter::new(),
            writes: Counter::new(),
            syncs: Counter::new(),
        })
    }
}

impl Storage for FileStorage {
    fn block_size(&self) -> usize {
        self.block_size
    }

    fn num_blocks(&self) -> u64 {
        self.num_blocks
    }

    fn read_block(&mut self, idx: u64, buf: &mut [u8]) -> Result<()> {
        if buf.len() != self.block_size {
            return Err(Error::Invalid("bad read buffer size".into()));
        }
        if idx >= self.num_blocks {
            return Err(Error::Invalid(format!("read past end: block {idx}")));
        }
        self.file
            .seek(SeekFrom::Start(idx * self.block_size as u64))?;
        self.file.read_exact(buf)?;
        self.reads.bump();
        Ok(())
    }

    fn write_block(&mut self, idx: u64, buf: &[u8]) -> Result<()> {
        if buf.len() != self.block_size {
            return Err(Error::Invalid("bad write buffer size".into()));
        }
        // Grow with zero blocks up to idx if needed.
        if idx > self.num_blocks {
            let zeros = vec![0u8; self.block_size];
            for i in self.num_blocks..idx {
                self.file
                    .seek(SeekFrom::Start(i * self.block_size as u64))?;
                self.file.write_all(&zeros)?;
            }
        }
        self.file
            .seek(SeekFrom::Start(idx * self.block_size as u64))?;
        self.file.write_all(buf)?;
        self.num_blocks = self.num_blocks.max(idx + 1);
        self.writes.bump();
        Ok(())
    }

    fn sync(&mut self) -> Result<()> {
        self.file.sync_data()?;
        self.syncs.bump();
        Ok(())
    }

    fn reads(&self) -> &Counter {
        &self.reads
    }

    fn writes(&self) -> &Counter {
        &self.writes
    }

    fn syncs(&self) -> &Counter {
        &self.syncs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(s: &mut dyn Storage) {
        let bs = s.block_size();
        let mut block = vec![0u8; bs];
        block[0] = 0xAB;
        block[bs - 1] = 0xCD;
        s.write_block(0, &block).unwrap();
        s.write_block(3, &block).unwrap(); // grows with zero fill
        assert_eq!(s.num_blocks(), 4);
        let mut out = vec![0u8; bs];
        s.read_block(0, &mut out).unwrap();
        assert_eq!(out, block);
        s.read_block(2, &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 0));
        s.read_block(3, &mut out).unwrap();
        assert_eq!(out, block);
        assert!(s.read_block(9, &mut out).is_err());
        s.sync().unwrap();
        assert_eq!(s.reads().get(), 3);
        assert_eq!(s.writes().get(), 2);
        assert_eq!(s.syncs().get(), 1);
    }

    #[test]
    fn mem_storage_basic() {
        let mut s = MemStorage::new(128);
        exercise(&mut s);
    }

    #[test]
    fn mem_storage_rejects_bad_buffer() {
        let mut s = MemStorage::new(128);
        assert!(s.write_block(0, &[0; 64]).is_err());
        let mut small = [0u8; 64];
        assert!(s.read_block(0, &mut small).is_err());
    }

    #[test]
    fn file_storage_basic_and_persistent() {
        let path = std::env::temp_dir().join(format!(
            "cblog-storage-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&path);
        {
            let mut s = FileStorage::open(&path, 128).unwrap();
            exercise(&mut s);
        }
        {
            // Re-open: data persists.
            let mut s = FileStorage::open(&path, 128).unwrap();
            assert_eq!(s.num_blocks(), 4);
            let mut out = vec![0u8; 128];
            s.read_block(0, &mut out).unwrap();
            assert_eq!(out[0], 0xAB);
            assert_eq!(out[127], 0xCD);
        }
        // Wrong block size detected.
        assert!(FileStorage::open(&path, 100).is_err());
        let _ = std::fs::remove_file(&path);
    }
}
