//! Space allocation map with PSN-at-allocation tracking.
//!
//! Paper §2.1: "The owner node initializes the PSN value of a page when
//! this page is allocated by following the approach presented in \[15\]
//! (i.e., the PSN stored on the space allocation map containing
//! information about the page in question is assigned to the PSN field
//! of the page)."
//!
//! The point of the trick (from ARIES/CSA): when a page is deallocated
//! and later reallocated, its new PSN must be *larger* than any PSN the
//! page ever had, so stale log records from its previous incarnation
//! can never satisfy the `page.psn == record.psn_before` redo test. We
//! achieve that by recording, on deallocation, the page's final PSN in
//! the map; reallocation hands the page `final_psn + 1` as its initial
//! PSN.
//!
//! The map itself lives in reserved blocks at the front of the database
//! device and is rewritten atomically (it is tiny), so allocation state
//! survives crashes. Allocation/deallocation of pages is itself logged
//! at a higher level by the node; the map here is the durable source of
//! PSN floors.

use cblog_common::{Decoder, Encoder, Error, Psn, Result};

/// Per-page allocation entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpaceEntry {
    /// Is the page currently allocated?
    pub allocated: bool,
    /// Lower bound for the page's next initial PSN: one past the
    /// largest PSN the page has ever reached while deallocated, or the
    /// PSN assigned at the most recent allocation.
    pub psn_floor: Psn,
    /// Page kind tag recorded at allocation (storage::PageKind as u8).
    pub kind: u8,
}

/// The space allocation map for one node's database.
#[derive(Clone, Debug, Default)]
pub struct SpaceMap {
    entries: Vec<SpaceEntry>,
}

const MAGIC: u32 = 0x534D_4150; // "SMAP"

impl SpaceMap {
    /// Empty map for a fresh database of `capacity` pages.
    pub fn new(capacity: u32) -> Self {
        SpaceMap {
            entries: vec![
                SpaceEntry {
                    allocated: false,
                    psn_floor: Psn(1),
                    kind: 0,
                };
                capacity as usize
            ],
        }
    }

    /// Number of page slots the map covers.
    pub fn capacity(&self) -> u32 {
        self.entries.len() as u32
    }

    /// Number of allocated pages.
    pub fn allocated_count(&self) -> u32 {
        self.entries.iter().filter(|e| e.allocated).count() as u32
    }

    /// Entry for page `index`.
    pub fn entry(&self, index: u32) -> Result<SpaceEntry> {
        self.entries
            .get(index as usize)
            .copied()
            .ok_or_else(|| Error::Invalid(format!("page index {index} out of map")))
    }

    /// Allocates the lowest free page index, returning `(index,
    /// initial_psn)`. The page must be formatted with exactly this PSN.
    pub fn allocate(&mut self, kind: u8) -> Result<(u32, Psn)> {
        let idx = self
            .entries
            .iter()
            .position(|e| !e.allocated)
            .ok_or_else(|| Error::Invalid("database full".into()))?;
        let e = &mut self.entries[idx];
        e.allocated = true;
        e.kind = kind;
        Ok((idx as u32, e.psn_floor))
    }

    /// Allocates a specific page index (used by recovery replay of
    /// allocation operations).
    pub fn allocate_at(&mut self, index: u32, kind: u8) -> Result<Psn> {
        let e = self
            .entries
            .get_mut(index as usize)
            .ok_or_else(|| Error::Invalid(format!("page index {index} out of map")))?;
        if e.allocated {
            return Err(Error::Invalid(format!("page {index} already allocated")));
        }
        e.allocated = true;
        e.kind = kind;
        Ok(e.psn_floor)
    }

    /// Deallocates page `index`; `final_psn` is the page's PSN at
    /// deallocation time and raises the floor for the next incarnation.
    pub fn deallocate(&mut self, index: u32, final_psn: Psn) -> Result<()> {
        let e = self
            .entries
            .get_mut(index as usize)
            .ok_or_else(|| Error::Invalid(format!("page index {index} out of map")))?;
        if !e.allocated {
            return Err(Error::Invalid(format!("page {index} not allocated")));
        }
        e.allocated = false;
        e.kind = 0;
        e.psn_floor = Psn(e.psn_floor.0.max(final_psn.0 + 1));
        Ok(())
    }

    /// Serializes the map (with CRC via the page-level codec caller).
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::with_capacity(8 + self.entries.len() * 10);
        e.put_u32(MAGIC);
        e.put_u32(self.entries.len() as u32);
        for ent in &self.entries {
            e.put_u8(ent.allocated as u8);
            e.put_u8(ent.kind);
            e.put_psn(ent.psn_floor);
        }
        e.into_vec()
    }

    /// Inverse of [`SpaceMap::encode`].
    pub fn decode(buf: &[u8]) -> Result<Self> {
        let mut d = Decoder::new(buf);
        if d.get_u32()? != MAGIC {
            return Err(Error::Corrupt("bad spacemap magic".into()));
        }
        let n = d.get_u32()? as usize;
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            let allocated = d.get_u8()? != 0;
            let kind = d.get_u8()?;
            let psn_floor = d.get_psn()?;
            entries.push(SpaceEntry {
                allocated,
                psn_floor,
                kind,
            });
        }
        Ok(SpaceMap { entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_hands_out_lowest_free_index() {
        let mut m = SpaceMap::new(4);
        let (i0, p0) = m.allocate(1).unwrap();
        let (i1, _) = m.allocate(1).unwrap();
        assert_eq!((i0, i1), (0, 1));
        assert_eq!(p0, Psn(1));
        assert_eq!(m.allocated_count(), 2);
    }

    #[test]
    fn reallocation_raises_psn_floor_past_final_psn() {
        let mut m = SpaceMap::new(2);
        let (idx, p0) = m.allocate(1).unwrap();
        assert_eq!(p0, Psn(1));
        // Page lived to PSN 57 before being freed.
        m.deallocate(idx, Psn(57)).unwrap();
        let (idx2, p1) = m.allocate(2).unwrap();
        assert_eq!(idx2, idx, "lowest free index reused");
        assert_eq!(p1, Psn(58), "new incarnation starts past old PSNs");
    }

    #[test]
    fn deallocate_never_lowers_floor() {
        let mut m = SpaceMap::new(1);
        let (idx, _) = m.allocate(1).unwrap();
        m.deallocate(idx, Psn(100)).unwrap();
        m.allocate_at(idx, 1).unwrap();
        // Deallocate again with a *smaller* final psn (cannot actually
        // happen, but the map must be monotone anyway).
        m.deallocate(idx, Psn(5)).unwrap();
        assert_eq!(m.entry(idx).unwrap().psn_floor, Psn(101));
    }

    #[test]
    fn double_alloc_and_double_free_rejected() {
        let mut m = SpaceMap::new(1);
        let (idx, _) = m.allocate(1).unwrap();
        assert!(m.allocate(1).is_err(), "database full");
        assert!(m.allocate_at(idx, 1).is_err());
        m.deallocate(idx, Psn(1)).unwrap();
        assert!(m.deallocate(idx, Psn(1)).is_err());
    }

    #[test]
    fn encode_decode_round_trips() {
        let mut m = SpaceMap::new(3);
        m.allocate(1).unwrap();
        let (i, _) = m.allocate(2).unwrap();
        m.deallocate(i, Psn(9)).unwrap();
        let bytes = m.encode();
        let m2 = SpaceMap::decode(&bytes).unwrap();
        assert_eq!(m2.capacity(), 3);
        assert_eq!(m2.entry(0).unwrap(), m.entry(0).unwrap());
        assert_eq!(m2.entry(1).unwrap(), m.entry(1).unwrap());
        assert_eq!(m2.entry(2).unwrap(), m.entry(2).unwrap());
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(SpaceMap::decode(&[1, 2, 3]).is_err());
        assert!(SpaceMap::decode(&[0; 16]).is_err());
    }

    #[test]
    fn out_of_range_index_errors() {
        let mut m = SpaceMap::new(1);
        assert!(m.entry(5).is_err());
        assert!(m.deallocate(5, Psn(1)).is_err());
        assert!(m.allocate_at(5, 1).is_err());
    }
}
