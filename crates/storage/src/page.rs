//! Database page format.
//!
//! Layout (all little-endian):
//!
//! ```text
//! offset  size  field
//! 0       4     magic (0x50_43_42_4C, "LBCP")
//! 4       8     page id (packed)
//! 12      8     PSN
//! 20      1     kind (0 = free, 1 = raw counter slots, 2 = slotted)
//! 21      3     reserved
//! 24      4     crc32 over the page with this field zeroed
//! 28      4     reserved
//! 32      ...   body
//! ```
//!
//! The PSN is the heart of the paper's recovery protocol: it is bumped
//! by one on **every** update (including compensation updates during
//! rollback), every log record stores the PSN the page had just before
//! the update, and recovery replays a record iff the page's current PSN
//! equals the record's stored PSN. Updates to a page are serialized by
//! page-level X locks, so PSNs order updates across all nodes without
//! synchronized clocks.

use cblog_common::{crc32, Error, PageId, Psn, Result};

/// Bytes reserved for the page header.
pub const PAGE_HEADER_LEN: usize = 32;

const MAGIC: u32 = 0x5043_424C;
const OFF_MAGIC: usize = 0;
const OFF_PID: usize = 4;
const OFF_PSN: usize = 12;
const OFF_KIND: usize = 20;
const OFF_CRC: usize = 24;

/// What the page body contains.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PageKind {
    /// Unallocated page.
    Free,
    /// Array of u64 counter slots (physical byte-range logging).
    Raw,
    /// Slotted record page (logical record-operation logging).
    Slotted,
}

impl PageKind {
    fn to_u8(self) -> u8 {
        match self {
            PageKind::Free => 0,
            PageKind::Raw => 1,
            PageKind::Slotted => 2,
        }
    }

    fn from_u8(v: u8) -> Result<Self> {
        match v {
            0 => Ok(PageKind::Free),
            1 => Ok(PageKind::Raw),
            2 => Ok(PageKind::Slotted),
            k => Err(Error::Corrupt(format!("bad page kind {k}"))),
        }
    }
}

/// An in-memory copy of a database page.
///
/// Pages are plain byte buffers; all mutation goes through methods that
/// keep the header consistent. The PSN is *not* bumped implicitly —
/// callers (the transaction manager) bump it once per logged update via
/// [`Page::bump_psn`], keeping the page/log coupling explicit.
#[derive(Clone, PartialEq, Eq)]
pub struct Page {
    buf: Vec<u8>,
}

impl std::fmt::Debug for Page {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Page({:?} psn={:?} kind={:?} len={})",
            self.id(),
            self.psn(),
            self.kind(),
            self.buf.len()
        )
    }
}

impl Page {
    /// Creates a fresh page of `size` bytes with the given identity.
    pub fn new(id: PageId, kind: PageKind, psn: Psn, size: usize) -> Self {
        assert!(size >= PAGE_HEADER_LEN + 8, "page too small");
        let mut p = Page { buf: vec![0; size] };
        p.buf[OFF_MAGIC..OFF_MAGIC + 4].copy_from_slice(&MAGIC.to_le_bytes());
        p.buf[OFF_PID..OFF_PID + 8].copy_from_slice(&id.to_u64().to_le_bytes());
        p.set_psn(psn);
        p.buf[OFF_KIND] = kind.to_u8();
        p
    }

    /// Wraps raw bytes read from disk, validating magic and CRC.
    pub fn from_bytes(buf: Vec<u8>) -> Result<Self> {
        if buf.len() < PAGE_HEADER_LEN {
            return Err(Error::Corrupt("short page".into()));
        }
        let magic = u32::from_le_bytes(buf[OFF_MAGIC..OFF_MAGIC + 4].try_into().unwrap());
        if magic != MAGIC {
            return Err(Error::Corrupt(format!("bad page magic {magic:#x}")));
        }
        let stored = u32::from_le_bytes(buf[OFF_CRC..OFF_CRC + 4].try_into().unwrap());
        let mut copy = buf.clone();
        copy[OFF_CRC..OFF_CRC + 4].fill(0);
        let actual = crc32(&copy);
        if stored != 0 && stored != actual {
            return Err(Error::Corrupt(format!(
                "page crc mismatch: stored {stored:#x}, computed {actual:#x}"
            )));
        }
        PageKind::from_u8(buf[OFF_KIND])?;
        Ok(Page { buf })
    }

    /// Serializes the page for disk, stamping the CRC.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = self.buf.clone();
        out[OFF_CRC..OFF_CRC + 4].fill(0);
        let c = crc32(&out);
        out[OFF_CRC..OFF_CRC + 4].copy_from_slice(&c.to_le_bytes());
        out
    }

    /// Total page size in bytes.
    pub fn size(&self) -> usize {
        self.buf.len()
    }

    /// The page's identifier.
    pub fn id(&self) -> PageId {
        PageId::from_u64(u64::from_le_bytes(
            self.buf[OFF_PID..OFF_PID + 8].try_into().unwrap(),
        ))
    }

    /// Current page sequence number.
    pub fn psn(&self) -> Psn {
        Psn(u64::from_le_bytes(
            self.buf[OFF_PSN..OFF_PSN + 8].try_into().unwrap(),
        ))
    }

    /// Overwrites the PSN (used by allocation and recovery replay).
    pub fn set_psn(&mut self, psn: Psn) {
        self.buf[OFF_PSN..OFF_PSN + 8].copy_from_slice(&psn.0.to_le_bytes());
    }

    /// Increments the PSN by one; returns the PSN *before* the bump —
    /// the value that belongs in the log record for the update.
    pub fn bump_psn(&mut self) -> Psn {
        let before = self.psn();
        self.set_psn(before.next());
        before
    }

    /// The page kind.
    pub fn kind(&self) -> PageKind {
        PageKind::from_u8(self.buf[OFF_KIND]).expect("kind validated on construction")
    }

    /// Changes the kind (page reallocation / format).
    pub fn set_kind(&mut self, kind: PageKind) {
        self.buf[OFF_KIND] = kind.to_u8();
    }

    /// Read-only body (bytes after the header).
    pub fn body(&self) -> &[u8] {
        &self.buf[PAGE_HEADER_LEN..]
    }

    /// Mutable body. Callers must log the change and bump the PSN.
    pub fn body_mut(&mut self) -> &mut [u8] {
        &mut self.buf[PAGE_HEADER_LEN..]
    }

    /// Number of u64 counter slots a [`PageKind::Raw`] body holds.
    pub fn slot_count(&self) -> usize {
        self.body().len() / 8
    }

    /// Reads counter slot `i` of a raw page.
    pub fn read_slot(&self, i: usize) -> Result<u64> {
        let body = self.body();
        let off = i * 8;
        if off + 8 > body.len() {
            return Err(Error::Invalid(format!("slot {i} out of range")));
        }
        Ok(u64::from_le_bytes(body[off..off + 8].try_into().unwrap()))
    }

    /// Writes counter slot `i` of a raw page. Does **not** touch the
    /// PSN; the caller logs the update and bumps it.
    pub fn write_slot(&mut self, i: usize, v: u64) -> Result<()> {
        let body = self.body_mut();
        let off = i * 8;
        if off + 8 > body.len() {
            return Err(Error::Invalid(format!("slot {i} out of range")));
        }
        body[off..off + 8].copy_from_slice(&v.to_le_bytes());
        Ok(())
    }

    /// Reads `len` body bytes at `off` (physical logging before-image).
    pub fn read_range(&self, off: usize, len: usize) -> Result<&[u8]> {
        let body = self.body();
        if off + len > body.len() {
            return Err(Error::Invalid(format!("range {off}+{len} out of page")));
        }
        Ok(&body[off..off + len])
    }

    /// Overwrites body bytes at `off` (physical logging redo/undo
    /// application). Does not touch the PSN.
    pub fn write_range(&mut self, off: usize, data: &[u8]) -> Result<()> {
        let body = self.body_mut();
        if off + data.len() > body.len() {
            return Err(Error::Invalid(format!(
                "range {off}+{} out of page",
                data.len()
            )));
        }
        body[off..off + data.len()].copy_from_slice(data);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cblog_common::NodeId;

    fn pid() -> PageId {
        PageId::new(NodeId(1), 7)
    }

    #[test]
    fn new_page_has_identity() {
        let p = Page::new(pid(), PageKind::Raw, Psn(100), 4096);
        assert_eq!(p.id(), pid());
        assert_eq!(p.psn(), Psn(100));
        assert_eq!(p.kind(), PageKind::Raw);
        assert_eq!(p.size(), 4096);
        assert_eq!(p.slot_count(), (4096 - PAGE_HEADER_LEN) / 8);
    }

    #[test]
    fn bump_psn_returns_before_value() {
        let mut p = Page::new(pid(), PageKind::Raw, Psn(5), 256);
        assert_eq!(p.bump_psn(), Psn(5));
        assert_eq!(p.psn(), Psn(6));
        assert_eq!(p.bump_psn(), Psn(6));
        assert_eq!(p.psn(), Psn(7));
    }

    #[test]
    fn slots_round_trip() {
        let mut p = Page::new(pid(), PageKind::Raw, Psn(0), 256);
        p.write_slot(0, 42).unwrap();
        p.write_slot(3, u64::MAX).unwrap();
        assert_eq!(p.read_slot(0).unwrap(), 42);
        assert_eq!(p.read_slot(1).unwrap(), 0);
        assert_eq!(p.read_slot(3).unwrap(), u64::MAX);
        assert!(p.read_slot(1000).is_err());
        assert!(p.write_slot(1000, 1).is_err());
    }

    #[test]
    fn ranges_round_trip_and_bounds_checked() {
        let mut p = Page::new(pid(), PageKind::Raw, Psn(0), 256);
        p.write_range(10, b"abcdef").unwrap();
        assert_eq!(p.read_range(10, 6).unwrap(), b"abcdef");
        assert!(p.write_range(250, b"abcdef").is_err());
        assert!(p.read_range(250, 6).is_err());
    }

    #[test]
    fn serialization_round_trips_with_crc() {
        let mut p = Page::new(pid(), PageKind::Slotted, Psn(9), 512);
        p.write_range(0, b"payload").unwrap();
        let bytes = p.to_bytes();
        let q = Page::from_bytes(bytes).unwrap();
        assert_eq!(q.id(), pid());
        assert_eq!(q.psn(), Psn(9));
        assert_eq!(q.kind(), PageKind::Slotted);
        assert_eq!(q.read_range(0, 7).unwrap(), b"payload");
    }

    #[test]
    fn torn_write_detected() {
        let p = Page::new(pid(), PageKind::Raw, Psn(1), 256);
        let mut bytes = p.to_bytes();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        assert!(matches!(Page::from_bytes(bytes), Err(Error::Corrupt(_))));
    }

    #[test]
    fn bad_magic_detected() {
        let p = Page::new(pid(), PageKind::Raw, Psn(1), 256);
        let mut bytes = p.to_bytes();
        bytes[0] ^= 0xFF;
        assert!(matches!(Page::from_bytes(bytes), Err(Error::Corrupt(_))));
    }

    #[test]
    fn short_buffer_rejected() {
        assert!(Page::from_bytes(vec![0; 8]).is_err());
    }
}
