//! Page store substrate: page format, slotted records, space map,
//! storage backends, database files and the buffer pool.
//!
//! This crate implements the storage-manager assumptions of paper §2.1:
//!
//! * every database page carries a header with a **PSN** (page sequence
//!   number) that is incremented on every update;
//! * the PSN of a freshly allocated page is initialized from the space
//!   allocation map, following ARIES/CSA (reference \[15\] in the paper),
//!   so a reallocated page never reuses PSN values — log records written
//!   for the page's previous life can never be mistaken for records of
//!   its current life;
//! * the buffer manager follows **steal** (dirty pages of uncommitted
//!   transactions may be evicted) and **no-force** (commit does not
//!   write pages) policies. The pool itself performs no I/O: eviction
//!   hands the victim back to the node, which either writes it in place
//!   (locally owned pages) or ships it to the owner node — exactly the
//!   two destinations §2.1 describes.

pub mod buffer;
pub mod db;
pub mod page;
pub mod slotted;
pub mod spacemap;
pub mod storage;

pub use buffer::{BufferPool, EvictedPage};
pub use db::Database;
pub use page::{Page, PageKind, PAGE_HEADER_LEN};
pub use slotted::SlottedPage;
pub use spacemap::SpaceMap;
pub use storage::{FileStorage, MemStorage, Storage};
