//! Slotted record pages for logical (record-operation) logging.
//!
//! The paper (§3.2, comparing against PCA) points out that its
//! algorithms support "both physical and logical logging". Physical
//! logging works on raw byte ranges; logical logging needs a record
//! abstraction whose operations (insert / delete / update by slot) have
//! well-defined inverses. This module provides that abstraction.
//!
//! Body layout (offsets relative to the page body):
//!
//! ```text
//! 0      2   slot directory length (number of slots, including dead)
//! 2      2   heap floor: lowest byte offset used by record data
//! 4      4*n slot directory: per slot { offset u16, len u16 },
//!            offset == 0xFFFF marks a dead (deleted) slot
//! ...    ... free space
//! heap.. end record payloads, allocated from the end backwards
//! ```
//!
//! Deletions leave a dead slot so slot numbers (rids) remain stable;
//! re-inserting *at a specific slot* is required to undo a delete.
//! Compaction slides live payloads to the end to defragment free space
//! without renumbering slots.

use crate::page::Page;
use cblog_common::{Error, Result};

const DIR_HEADER: usize = 4;
const SLOT_ENTRY: usize = 4;
const DEAD: u16 = 0xFFFF;

/// A view over a [`Page`] interpreting its body as a slotted page.
///
/// All mutating operations leave PSN management to the caller, matching
/// the raw-page discipline: one logged operation = one PSN bump.
pub struct SlottedPage<'a> {
    page: &'a mut Page,
}

impl<'a> SlottedPage<'a> {
    /// Wraps `page`; formats the directory if the body is all zero and
    /// unformatted (fresh page).
    pub fn new(page: &'a mut Page) -> Self {
        let mut sp = SlottedPage { page };
        if sp.heap_floor() == 0 {
            let end = sp.body_len() as u16;
            sp.set_heap_floor(end);
        }
        sp
    }

    fn body_len(&self) -> usize {
        self.page.body().len()
    }

    fn read_u16(&self, off: usize) -> u16 {
        let b = self.page.body();
        u16::from_le_bytes([b[off], b[off + 1]])
    }

    fn write_u16(&mut self, off: usize, v: u16) {
        let b = self.page.body_mut();
        b[off..off + 2].copy_from_slice(&v.to_le_bytes());
    }

    /// Number of directory entries (live + dead).
    pub fn dir_len(&self) -> u16 {
        self.read_u16(0)
    }

    fn set_dir_len(&mut self, v: u16) {
        self.write_u16(0, v);
    }

    fn heap_floor(&self) -> u16 {
        self.read_u16(2)
    }

    fn set_heap_floor(&mut self, v: u16) {
        self.write_u16(2, v);
    }

    fn slot_entry(&self, slot: u16) -> (u16, u16) {
        let off = DIR_HEADER + slot as usize * SLOT_ENTRY;
        (self.read_u16(off), self.read_u16(off + 2))
    }

    fn set_slot_entry(&mut self, slot: u16, offset: u16, len: u16) {
        let off = DIR_HEADER + slot as usize * SLOT_ENTRY;
        self.write_u16(off, offset);
        self.write_u16(off + 2, len);
    }

    /// Number of live records.
    pub fn live_count(&self) -> u16 {
        (0..self.dir_len())
            .filter(|&s| self.slot_entry(s).0 != DEAD)
            .count() as u16
    }

    /// Contiguous free space between directory and heap.
    pub fn free_space(&self) -> usize {
        let dir_end = DIR_HEADER + self.dir_len() as usize * SLOT_ENTRY;
        (self.heap_floor() as usize).saturating_sub(dir_end)
    }

    /// Total reclaimable space (free + dead record bytes).
    pub fn usable_space(&self) -> usize {
        let dead_bytes: usize = (0..self.dir_len())
            .filter(|&s| self.slot_entry(s).0 == DEAD)
            .map(|_| 0usize)
            .sum();
        // Dead slots keep their directory entry but their payload has
        // already been freed by compaction accounting below; usable
        // space is simply free space after a hypothetical compaction.
        let live: usize = (0..self.dir_len())
            .map(|s| {
                let (o, l) = self.slot_entry(s);
                if o == DEAD {
                    0
                } else {
                    l as usize
                }
            })
            .sum();
        let dir_end = DIR_HEADER + self.dir_len() as usize * SLOT_ENTRY;
        self.body_len() - dir_end - live + dead_bytes
    }

    /// Returns the record in `slot`, or an error for dead/out-of-range
    /// slots.
    pub fn get(&self, slot: u16) -> Result<&[u8]> {
        if slot >= self.dir_len() {
            return Err(Error::Invalid(format!("slot {slot} out of range")));
        }
        let (off, len) = self.slot_entry(slot);
        if off == DEAD {
            return Err(Error::Invalid(format!("slot {slot} is dead")));
        }
        Ok(&self.page.body()[off as usize..off as usize + len as usize])
    }

    /// True if `slot` exists and holds a live record.
    pub fn is_live(&self, slot: u16) -> bool {
        slot < self.dir_len() && self.slot_entry(slot).0 != DEAD
    }

    fn ensure_room(&mut self, need: usize, new_slot: bool) -> Result<()> {
        let extra_dir = if new_slot { SLOT_ENTRY } else { 0 };
        if self.free_space() >= need + extra_dir {
            return Ok(());
        }
        self.compact();
        if self.free_space() >= need + extra_dir {
            Ok(())
        } else {
            Err(Error::Invalid(format!(
                "slotted page full: need {need}, free {}",
                self.free_space()
            )))
        }
    }

    fn alloc_heap(&mut self, len: usize) -> u16 {
        let floor = self.heap_floor() as usize - len;
        self.set_heap_floor(floor as u16);
        floor as u16
    }

    /// Inserts a record into the first dead slot (or a new slot) and
    /// returns its slot number.
    pub fn insert(&mut self, data: &[u8]) -> Result<u16> {
        let slot = (0..self.dir_len())
            .find(|&s| self.slot_entry(s).0 == DEAD)
            .unwrap_or(self.dir_len());
        self.insert_at(slot, data)?;
        Ok(slot)
    }

    /// Inserts a record at a specific slot number (the inverse of
    /// [`SlottedPage::delete`], used by logical undo and redo replay).
    pub fn insert_at(&mut self, slot: u16, data: &[u8]) -> Result<()> {
        if slot < self.dir_len() && self.slot_entry(slot).0 != DEAD {
            return Err(Error::Invalid(format!("slot {slot} already live")));
        }
        let new_slot = slot >= self.dir_len();
        if new_slot && slot != self.dir_len() {
            return Err(Error::Invalid(format!(
                "slot {slot} skips past directory end {}",
                self.dir_len()
            )));
        }
        self.ensure_room(data.len(), new_slot)?;
        if new_slot {
            self.set_dir_len(slot + 1);
        }
        let off = self.alloc_heap(data.len());
        let body = self.page.body_mut();
        body[off as usize..off as usize + data.len()].copy_from_slice(data);
        self.set_slot_entry(slot, off, data.len() as u16);
        Ok(())
    }

    /// Deletes the record in `slot`, returning its former contents (the
    /// before-image needed for the undo log record).
    pub fn delete(&mut self, slot: u16) -> Result<Vec<u8>> {
        let old = self.get(slot)?.to_vec();
        self.set_slot_entry(slot, DEAD, 0);
        Ok(old)
    }

    /// Replaces the record in `slot`, returning the old contents.
    pub fn update(&mut self, slot: u16, data: &[u8]) -> Result<Vec<u8>> {
        let old = self.get(slot)?.to_vec();
        let (off, len) = self.slot_entry(slot);
        if data.len() <= len as usize {
            // In-place shrink/replace.
            let body = self.page.body_mut();
            body[off as usize..off as usize + data.len()].copy_from_slice(data);
            self.set_slot_entry(slot, off, data.len() as u16);
        } else {
            self.set_slot_entry(slot, DEAD, 0);
            self.ensure_room(data.len(), false)?;
            let noff = self.alloc_heap(data.len());
            let body = self.page.body_mut();
            body[noff as usize..noff as usize + data.len()].copy_from_slice(data);
            self.set_slot_entry(slot, noff, data.len() as u16);
        }
        Ok(old)
    }

    /// Slides live payloads to the end of the body, reclaiming dead
    /// space. Slot numbers are unchanged.
    pub fn compact(&mut self) {
        let dir_len = self.dir_len();
        let mut live: Vec<(u16, Vec<u8>)> = Vec::new();
        for s in 0..dir_len {
            let (off, len) = self.slot_entry(s);
            if off != DEAD {
                let data = self.page.body()[off as usize..off as usize + len as usize].to_vec();
                live.push((s, data));
            }
        }
        let mut floor = self.body_len();
        for (s, data) in live {
            floor -= data.len();
            let body = self.page.body_mut();
            body[floor..floor + data.len()].copy_from_slice(&data);
            self.set_slot_entry(s, floor as u16, data.len() as u16);
        }
        self.set_heap_floor(floor as u16);
    }

    /// Iterates `(slot, record)` over live records.
    pub fn iter(&self) -> impl Iterator<Item = (u16, &[u8])> + '_ {
        (0..self.dir_len()).filter_map(move |s| {
            let (off, len) = self.slot_entry(s);
            if off == DEAD {
                None
            } else {
                Some((
                    s,
                    &self.page.body()[off as usize..off as usize + len as usize],
                ))
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PageKind;
    use cblog_common::{NodeId, PageId, Psn};

    fn page() -> Page {
        Page::new(PageId::new(NodeId(1), 1), PageKind::Slotted, Psn(0), 512)
    }

    #[test]
    fn insert_get_round_trip() {
        let mut p = page();
        let mut sp = SlottedPage::new(&mut p);
        let a = sp.insert(b"alpha").unwrap();
        let b = sp.insert(b"bravo").unwrap();
        assert_ne!(a, b);
        assert_eq!(sp.get(a).unwrap(), b"alpha");
        assert_eq!(sp.get(b).unwrap(), b"bravo");
        assert_eq!(sp.live_count(), 2);
    }

    #[test]
    fn delete_then_reinsert_at_same_slot() {
        let mut p = page();
        let mut sp = SlottedPage::new(&mut p);
        let a = sp.insert(b"alpha").unwrap();
        let old = sp.delete(a).unwrap();
        assert_eq!(old, b"alpha");
        assert!(!sp.is_live(a));
        assert!(sp.get(a).is_err());
        sp.insert_at(a, b"alpha").unwrap();
        assert_eq!(sp.get(a).unwrap(), b"alpha");
    }

    #[test]
    fn insert_reuses_dead_slots() {
        let mut p = page();
        let mut sp = SlottedPage::new(&mut p);
        let a = sp.insert(b"one").unwrap();
        let _b = sp.insert(b"two").unwrap();
        sp.delete(a).unwrap();
        let c = sp.insert(b"three").unwrap();
        assert_eq!(c, a, "dead slot should be reused");
    }

    #[test]
    fn update_in_place_and_grow() {
        let mut p = page();
        let mut sp = SlottedPage::new(&mut p);
        let a = sp.insert(b"abcdef").unwrap();
        let old = sp.update(a, b"xy").unwrap();
        assert_eq!(old, b"abcdef");
        assert_eq!(sp.get(a).unwrap(), b"xy");
        let old2 = sp.update(a, b"a-much-longer-record").unwrap();
        assert_eq!(old2, b"xy");
        assert_eq!(sp.get(a).unwrap(), b"a-much-longer-record");
    }

    #[test]
    fn compaction_reclaims_dead_space() {
        let mut p = page();
        let mut sp = SlottedPage::new(&mut p);
        let mut slots = Vec::new();
        for i in 0..10 {
            slots.push(sp.insert(format!("record-{i}-padding").as_bytes()).unwrap());
        }
        let before = sp.free_space();
        for &s in slots.iter().step_by(2) {
            sp.delete(s).unwrap();
        }
        sp.compact();
        assert!(sp.free_space() > before);
        // Survivors intact after compaction.
        for &s in slots.iter().skip(1).step_by(2) {
            assert!(sp.get(s).unwrap().starts_with(b"record-"));
        }
    }

    #[test]
    fn fills_up_then_errors() {
        let mut p = page();
        let mut sp = SlottedPage::new(&mut p);
        let rec = vec![7u8; 64];
        let mut n = 0;
        while sp.insert(&rec).is_ok() {
            n += 1;
            assert!(n < 100, "should run out of space");
        }
        assert!(n >= 5, "512-byte page should fit several 64-byte records");
    }

    #[test]
    fn iter_lists_live_records_in_slot_order() {
        let mut p = page();
        let mut sp = SlottedPage::new(&mut p);
        let a = sp.insert(b"a").unwrap();
        let b = sp.insert(b"b").unwrap();
        let c = sp.insert(b"c").unwrap();
        sp.delete(b).unwrap();
        let got: Vec<(u16, Vec<u8>)> = sp.iter().map(|(s, r)| (s, r.to_vec())).collect();
        assert_eq!(got, vec![(a, b"a".to_vec()), (c, b"c".to_vec())]);
    }

    #[test]
    fn insert_at_rejects_live_and_gapped_slots() {
        let mut p = page();
        let mut sp = SlottedPage::new(&mut p);
        let a = sp.insert(b"a").unwrap();
        assert!(sp.insert_at(a, b"clobber").is_err());
        assert!(sp.insert_at(5, b"gap").is_err());
    }
}
