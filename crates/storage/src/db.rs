//! A node's database: a block device holding a superblock, the space
//! allocation map, and data pages.
//!
//! Device layout:
//!
//! ```text
//! block 0                superblock { magic, page_size, capacity, map_blocks }
//! blocks 1..=map_blocks  serialized SpaceMap (rewritten on alloc/free)
//! blocks map_blocks+1..  data pages, page index i at block map_blocks+1+i
//! ```
//!
//! The database performs real (counted) I/O through its [`Storage`];
//! the buffer pool above it decides *when* pages move. `write_page` is
//! the force operation the recovery and log-space protocols reason
//! about.

use crate::page::{Page, PageKind};
use crate::spacemap::SpaceMap;
use crate::storage::Storage;
use cblog_common::{Counter, Decoder, Encoder, Error, NodeId, PageId, Psn, Result};

const SUPER_MAGIC: u32 = 0x4342_4442; // "CBDB"

/// A single node's database file.
pub struct Database {
    storage: Box<dyn Storage>,
    node: NodeId,
    page_size: usize,
    capacity: u32,
    map_blocks: u64,
    map: SpaceMap,
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Database(node={} pages={}/{} page_size={})",
            self.node,
            self.map.allocated_count(),
            self.capacity,
            self.page_size
        )
    }
}

fn map_blocks_for(capacity: u32, page_size: usize) -> u64 {
    let map_bytes = 8 + capacity as usize * 10;
    map_bytes.div_ceil(page_size) as u64
}

impl Database {
    /// Formats a fresh database of `capacity` pages on `storage`.
    pub fn create(mut storage: Box<dyn Storage>, node: NodeId, capacity: u32) -> Result<Self> {
        let page_size = storage.block_size();
        let map = SpaceMap::new(capacity);
        let map_blocks = map_blocks_for(capacity, page_size);

        let mut sb = Encoder::with_capacity(page_size);
        sb.put_u32(SUPER_MAGIC);
        sb.put_u32(node.0);
        sb.put_u32(page_size as u32);
        sb.put_u32(capacity);
        sb.put_u64(map_blocks);
        let mut block = sb.into_vec();
        block.resize(page_size, 0);
        storage.write_block(0, &block)?;

        let mut db = Database {
            storage,
            node,
            page_size,
            capacity,
            map_blocks,
            map,
        };
        db.persist_map()?;
        db.storage.sync()?;
        Ok(db)
    }

    /// Opens an existing database, reading superblock and space map.
    pub fn open(mut storage: Box<dyn Storage>) -> Result<Self> {
        let page_size = storage.block_size();
        let mut block = vec![0u8; page_size];
        storage.read_block(0, &mut block)?;
        let mut d = Decoder::new(&block);
        if d.get_u32()? != SUPER_MAGIC {
            return Err(Error::Corrupt("bad database superblock".into()));
        }
        let node = NodeId(d.get_u32()?);
        let stored_ps = d.get_u32()? as usize;
        if stored_ps != page_size {
            return Err(Error::Corrupt(format!(
                "page size mismatch: file {stored_ps}, device {page_size}"
            )));
        }
        let capacity = d.get_u32()?;
        let map_blocks = d.get_u64()?;

        let mut map_bytes = vec![0u8; (map_blocks as usize) * page_size];
        for b in 0..map_blocks {
            storage.read_block(
                1 + b,
                &mut map_bytes[(b as usize) * page_size..][..page_size],
            )?;
        }
        let map = SpaceMap::decode(&map_bytes)?;
        if map.capacity() != capacity {
            return Err(Error::Corrupt("spacemap capacity mismatch".into()));
        }
        Ok(Database {
            storage,
            node,
            page_size,
            capacity,
            map_blocks,
            map,
        })
    }

    fn persist_map(&mut self) -> Result<()> {
        let mut bytes = self.map.encode();
        bytes.resize((self.map_blocks as usize) * self.page_size, 0);
        for b in 0..self.map_blocks {
            self.storage.write_block(
                1 + b,
                &bytes[(b as usize) * self.page_size..][..self.page_size],
            )?;
        }
        Ok(())
    }

    fn data_block(&self, index: u32) -> u64 {
        1 + self.map_blocks + index as u64
    }

    /// Owning node of this database.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Page size in bytes.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Maximum number of pages.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Read-only view of the space map.
    pub fn space_map(&self) -> &SpaceMap {
        &self.map
    }

    /// Allocates a page, formats it on disk with the PSN the space map
    /// dictates (paper §2.1 / ARIES-CSA trick), and returns the
    /// in-memory copy.
    pub fn allocate_page(&mut self, kind: PageKind) -> Result<Page> {
        let kind_u8 = match kind {
            PageKind::Free => return Err(Error::Invalid("cannot allocate Free".into())),
            PageKind::Raw => 1,
            PageKind::Slotted => 2,
        };
        let (index, psn) = self.map.allocate(kind_u8)?;
        let pid = PageId::new(self.node, index);
        let page = Page::new(pid, kind, psn, self.page_size);
        self.storage
            .write_block(self.data_block(index), &page.to_bytes())?;
        self.persist_map()?;
        Ok(page)
    }

    /// Frees page `index`; `final_psn` raises the PSN floor for the
    /// next incarnation.
    pub fn free_page(&mut self, index: u32, final_psn: Psn) -> Result<()> {
        self.map.deallocate(index, final_psn)?;
        self.persist_map()
    }

    /// Reads a page from disk (validating CRC and identity).
    pub fn read_page(&mut self, index: u32) -> Result<Page> {
        let e = self.map.entry(index)?;
        if !e.allocated {
            return Err(Error::NoSuchPage(PageId::new(self.node, index)));
        }
        let mut buf = vec![0u8; self.page_size];
        self.storage.read_block(self.data_block(index), &mut buf)?;
        let page = Page::from_bytes(buf)?;
        let expect = PageId::new(self.node, index);
        if page.id() != expect {
            return Err(Error::Corrupt(format!(
                "page identity mismatch: read {:?}, expected {:?}",
                page.id(),
                expect
            )));
        }
        Ok(page)
    }

    /// PSN of the on-disk version of page `index` — the comparison
    /// point of the recovery protocol (§2.3.2).
    pub fn disk_psn(&mut self, index: u32) -> Result<Psn> {
        Ok(self.read_page(index)?.psn())
    }

    /// Forces a page image to disk (in place). This is the only way
    /// page updates become durable in the database file.
    pub fn write_page(&mut self, page: &Page) -> Result<()> {
        let pid = page.id();
        if pid.owner != self.node {
            return Err(Error::Invalid(format!(
                "page {pid} does not belong to {}'s database",
                self.node
            )));
        }
        let e = self.map.entry(pid.index)?;
        if !e.allocated {
            return Err(Error::NoSuchPage(pid));
        }
        self.storage
            .write_block(self.data_block(pid.index), &page.to_bytes())?;
        Ok(())
    }

    /// Durably syncs the device.
    pub fn sync(&mut self) -> Result<()> {
        self.storage.sync()
    }

    /// Disk read counter (shared with the device).
    pub fn reads(&self) -> u64 {
        self.storage.reads().get()
    }

    /// Disk write counter (shared with the device).
    pub fn writes(&self) -> u64 {
        self.storage.writes().get()
    }

    /// Shared handle to the device's read counter, for registration in
    /// a metrics registry.
    pub fn reads_counter(&self) -> &Counter {
        self.storage.reads()
    }

    /// Shared handle to the device's write counter.
    pub fn writes_counter(&self) -> &Counter {
        self.storage.writes()
    }

    /// Shared handle to the device's sync counter.
    pub fn syncs_counter(&self) -> &Counter {
        self.storage.syncs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemStorage;

    fn db() -> Database {
        Database::create(Box::new(MemStorage::new(512)), NodeId(1), 16).unwrap()
    }

    #[test]
    fn allocate_read_write_cycle() {
        let mut db = db();
        let mut p = db.allocate_page(PageKind::Raw).unwrap();
        assert_eq!(p.id(), PageId::new(NodeId(1), 0));
        assert_eq!(p.psn(), Psn(1));
        p.write_slot(0, 99).unwrap();
        p.bump_psn();
        db.write_page(&p).unwrap();
        let q = db.read_page(0).unwrap();
        assert_eq!(q.read_slot(0).unwrap(), 99);
        assert_eq!(q.psn(), Psn(2));
        assert_eq!(db.disk_psn(0).unwrap(), Psn(2));
    }

    #[test]
    fn free_then_reallocate_gets_higher_psn() {
        let mut db = db();
        let mut p = db.allocate_page(PageKind::Raw).unwrap();
        for _ in 0..10 {
            p.bump_psn();
        }
        db.write_page(&p).unwrap();
        db.free_page(0, p.psn()).unwrap();
        let p2 = db.allocate_page(PageKind::Raw).unwrap();
        assert_eq!(p2.id().index, 0);
        assert!(
            p2.psn() > Psn(10),
            "PSN floor must exceed prior life: {:?}",
            p2.psn()
        );
    }

    #[test]
    fn reading_unallocated_page_fails() {
        let mut db = db();
        assert!(matches!(db.read_page(3), Err(Error::NoSuchPage(_))));
    }

    #[test]
    fn writing_foreign_page_rejected() {
        let mut db = db();
        db.allocate_page(PageKind::Raw).unwrap();
        let foreign = Page::new(PageId::new(NodeId(9), 0), PageKind::Raw, Psn(1), 512);
        assert!(db.write_page(&foreign).is_err());
    }

    #[test]
    fn reopen_preserves_map_and_pages() {
        let mut storage = Box::new(MemStorage::new(512));
        // Build, mutate, then steal the storage back via open-over-same
        // backing: emulate by create/open on a FileStorage instead.
        let path = std::env::temp_dir().join(format!(
            "cblog-db-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&path);
        {
            let fs = crate::storage::FileStorage::open(&path, 512).unwrap();
            let mut db = Database::create(Box::new(fs), NodeId(2), 8).unwrap();
            let mut p = db.allocate_page(PageKind::Slotted).unwrap();
            p.write_range(0, b"persisted").unwrap();
            p.bump_psn();
            db.write_page(&p).unwrap();
            db.sync().unwrap();
        }
        {
            let fs = crate::storage::FileStorage::open(&path, 512).unwrap();
            let mut db = Database::open(Box::new(fs)).unwrap();
            assert_eq!(db.node(), NodeId(2));
            assert_eq!(db.capacity(), 8);
            assert_eq!(db.space_map().allocated_count(), 1);
            let p = db.read_page(0).unwrap();
            assert_eq!(p.read_range(0, 9).unwrap(), b"persisted");
        }
        let _ = std::fs::remove_file(&path);
        // Keep clippy quiet about the unused mem storage above.
        storage.write_block(0, &vec![0u8; 512]).unwrap();
    }

    #[test]
    fn capacity_exhaustion() {
        let mut db = Database::create(Box::new(MemStorage::new(512)), NodeId(1), 2).unwrap();
        db.allocate_page(PageKind::Raw).unwrap();
        db.allocate_page(PageKind::Raw).unwrap();
        assert!(db.allocate_page(PageKind::Raw).is_err());
    }
}
