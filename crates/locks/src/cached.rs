//! Node-level cached locks (inter-transaction caching).
//!
//! Paper §2.1: "Each node maintains both the cached pages and the
//! cached locks across transaction boundaries … both shared and
//! exclusive locks are retained by the node after a transaction
//! terminates. Cached locks that are called back in exclusive mode are
//! released and exclusive locks that are called back in shared mode are
//! demoted to shared."
//!
//! A transaction needs no message to the owner when the node's cached
//! lock already covers the requested mode — this is where the paradigm
//! saves its locking messages during normal processing.

use crate::LockMode;
use cblog_common::{PageId, Psn};
use std::collections::HashMap;

/// The locks this node currently holds from owner nodes (including
/// itself, for uniformity).
#[derive(Debug, Default, Clone)]
pub struct CachedLockTable {
    locks: HashMap<PageId, LockMode>,
}

impl CachedLockTable {
    /// Empty table.
    pub fn new() -> Self {
        CachedLockTable::default()
    }

    /// Mode cached for `pid`, if any.
    pub fn mode(&self, pid: PageId) -> Option<LockMode> {
        self.locks.get(&pid).copied()
    }

    /// True if the cached mode covers `want` (no owner round-trip
    /// needed).
    pub fn covers(&self, pid: PageId, want: LockMode) -> bool {
        self.mode(pid).is_some_and(|m| m.covers(want))
    }

    /// Records a grant from the owner.
    pub fn grant(&mut self, pid: PageId, mode: LockMode) {
        let e = self.locks.entry(pid).or_insert(mode);
        // Never silently downgrade: X absorbs S grants.
        if mode == LockMode::Exclusive {
            *e = LockMode::Exclusive;
        }
    }

    /// Callback in exclusive mode: release the cached lock entirely.
    pub fn release(&mut self, pid: PageId) -> Option<LockMode> {
        self.locks.remove(&pid)
    }

    /// Callback in shared mode: demote an exclusive lock to shared
    /// (no-op for shared). Returns the previous mode, if any.
    pub fn demote(&mut self, pid: PageId) -> Option<LockMode> {
        match self.locks.get_mut(&pid) {
            Some(m) => {
                let prev = *m;
                *m = LockMode::Shared;
                Some(prev)
            }
            None => None,
        }
    }

    /// All cached locks, sorted by page.
    pub fn all(&self) -> Vec<(PageId, LockMode)> {
        let mut v: Vec<(PageId, LockMode)> = self.locks.iter().map(|(p, m)| (*p, *m)).collect();
        v.sort_by_key(|(p, _)| *p);
        v
    }

    /// Pages cached in exclusive mode (the recovery candidates of
    /// §2.3.1 for remotely owned pages).
    pub fn exclusive_pages(&self) -> Vec<PageId> {
        let mut v: Vec<PageId> = self
            .locks
            .iter()
            .filter(|(_, m)| **m == LockMode::Exclusive)
            .map(|(p, _)| *p)
            .collect();
        v.sort();
        v
    }

    /// Drops everything (node crash loses the lock table, §2.3).
    pub fn clear(&mut self) {
        self.locks.clear();
    }

    /// Number of cached locks.
    pub fn len(&self) -> usize {
        self.locks.len()
    }

    /// True if no locks are cached.
    pub fn is_empty(&self) -> bool {
        self.locks.is_empty()
    }
}

/// A lock the crashed node must re-acquire during lock-table
/// reconstruction (§2.3.3), with the page PSN hint carried alongside in
/// recovery messages.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReconstructedLock {
    /// The page.
    pub pid: PageId,
    /// Mode to re-establish.
    pub mode: LockMode,
    /// Current PSN of the holder's copy, if it has one cached.
    pub psn: Option<Psn>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use cblog_common::NodeId;

    fn p(i: u32) -> PageId {
        PageId::new(NodeId(2), i)
    }

    #[test]
    fn grant_and_coverage() {
        let mut c = CachedLockTable::new();
        assert!(!c.covers(p(0), LockMode::Shared));
        c.grant(p(0), LockMode::Shared);
        assert!(c.covers(p(0), LockMode::Shared));
        assert!(!c.covers(p(0), LockMode::Exclusive));
        c.grant(p(0), LockMode::Exclusive);
        assert!(c.covers(p(0), LockMode::Exclusive));
    }

    #[test]
    fn exclusive_never_silently_downgraded_by_grant() {
        let mut c = CachedLockTable::new();
        c.grant(p(0), LockMode::Exclusive);
        c.grant(p(0), LockMode::Shared);
        assert_eq!(c.mode(p(0)), Some(LockMode::Exclusive));
    }

    #[test]
    fn callback_release_and_demote() {
        let mut c = CachedLockTable::new();
        c.grant(p(0), LockMode::Exclusive);
        assert_eq!(c.demote(p(0)), Some(LockMode::Exclusive));
        assert_eq!(c.mode(p(0)), Some(LockMode::Shared));
        assert_eq!(c.release(p(0)), Some(LockMode::Shared));
        assert_eq!(c.mode(p(0)), None);
        assert_eq!(c.demote(p(9)), None);
        assert_eq!(c.release(p(9)), None);
    }

    #[test]
    fn exclusive_pages_sorted() {
        let mut c = CachedLockTable::new();
        c.grant(p(3), LockMode::Exclusive);
        c.grant(p(1), LockMode::Shared);
        c.grant(p(2), LockMode::Exclusive);
        assert_eq!(c.exclusive_pages(), vec![p(2), p(3)]);
        assert_eq!(c.all().len(), 3);
        c.clear();
        assert!(c.is_empty());
    }
}
