//! Page-sharded lock table for the threaded runtime.
//!
//! The simulator's lock tables ([`LocalLockTable`](crate::local),
//! [`GlobalLockTable`](crate::global)) are single-threaded structures
//! driven by the deterministic scheduler. The threaded runtime needs
//! real parallelism: worker threads on different nodes acquire page
//! locks concurrently, and a single global mutex would serialize
//! exactly the work the runtime exists to overlap.
//!
//! [`ShardedLockTable`] hashes each page to one of N shards, each an
//! independently locked `HashMap<PageId, LockEntry>`. Two transactions
//! touching pages in different shards never contend on the same mutex;
//! the per-shard critical sections are a few map operations long.
//!
//! Lock holders are opaque `u64` tokens rather than [`TxnId`]s so the
//! table stays agnostic of who is locking: the runtime packs
//! `(node << 48) | txn_seq` into the token. Acquisition is
//! non-blocking (`try_acquire` returns `false` on conflict) — the
//! runtime retries with backoff and falls back to aborting the
//! transaction, mirroring how the simulator surfaces `WouldBlock`.

use crate::LockMode;
use cblog_common::PageId;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Mutex;

/// Holders of one page's lock: either any number of sharers or one
/// exclusive owner.
#[derive(Debug)]
struct LockEntry {
    mode: LockMode,
    holders: Vec<u64>,
}

/// Concurrent page-lock table sharded by page hash.
#[derive(Debug)]
pub struct ShardedLockTable {
    shards: Box<[Mutex<HashMap<PageId, LockEntry>>]>,
}

impl ShardedLockTable {
    /// Creates a table with `shards` independent partitions (rounded
    /// up to at least 1).
    pub fn new(shards: usize) -> Self {
        let n = shards.max(1);
        ShardedLockTable {
            shards: (0..n).map(|_| Mutex::new(HashMap::new())).collect(),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_of(&self, pid: PageId) -> &Mutex<HashMap<PageId, LockEntry>> {
        let mut h = DefaultHasher::new();
        pid.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    /// Attempts to take `pid` in `mode` for `holder`. Returns `true`
    /// if the lock is held in (at least) `mode` on return.
    ///
    /// Re-entrant: a holder that already has the page succeeds
    /// immediately if its mode covers the request, and upgrades
    /// S → X in place when it is the sole holder.
    pub fn try_acquire(&self, pid: PageId, holder: u64, mode: LockMode) -> bool {
        let mut shard = self
            .shard_of(pid)
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        match shard.get_mut(&pid) {
            None => {
                shard.insert(
                    pid,
                    LockEntry {
                        mode,
                        holders: vec![holder],
                    },
                );
                true
            }
            Some(entry) => {
                if entry.holders.contains(&holder) {
                    if entry.mode.covers(mode) {
                        return true;
                    }
                    // S → X upgrade: only when nobody else shares.
                    if entry.holders.len() == 1 {
                        entry.mode = LockMode::Exclusive;
                        return true;
                    }
                    return false;
                }
                if entry.mode.compatible(mode) {
                    entry.holders.push(holder);
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Spins on [`try_acquire`](Self::try_acquire) up to `spins`
    /// attempts, yielding the OS thread every 64 tries. Returns `true`
    /// once the lock is held.
    ///
    /// Replay workers use this to latch a page for the duration of its
    /// redo: units of one recovery wave touch disjoint pages, so the
    /// latch is expected free — the spin only matters if a concurrent
    /// reader briefly shares the page.
    pub fn acquire_spin(&self, pid: PageId, holder: u64, mode: LockMode, spins: usize) -> bool {
        self.acquire_spin_timed(pid, holder, mode, spins).is_some()
    }

    /// As [`acquire_spin`](Self::acquire_spin), but returns the
    /// wall-clock µs spent waiting on success (`None` when the spin
    /// budget is exhausted), so callers can attribute contended-latch
    /// time to a lock-wait profiler bucket. An uncontended first-try
    /// acquisition reports 0 without reading the clock.
    pub fn acquire_spin_timed(
        &self,
        pid: PageId,
        holder: u64,
        mode: LockMode,
        spins: usize,
    ) -> Option<u64> {
        if self.try_acquire(pid, holder, mode) {
            return Some(0);
        }
        let started = std::time::Instant::now();
        for i in 0..spins.max(1) {
            if self.try_acquire(pid, holder, mode) {
                return Some(started.elapsed().as_micros() as u64);
            }
            if i % 64 == 63 {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
        None
    }

    /// Releases `holder`'s lock on `pid` (no-op if not held).
    pub fn release(&self, pid: PageId, holder: u64) {
        let mut shard = self
            .shard_of(pid)
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(entry) = shard.get_mut(&pid) {
            entry.holders.retain(|&h| h != holder);
            if entry.holders.is_empty() {
                shard.remove(&pid);
            }
        }
    }

    /// Releases every lock `holder` has anywhere in the table (end of
    /// transaction under strict 2PL).
    pub fn release_all(&self, holder: u64) {
        for shard in self.shards.iter() {
            let mut shard = shard
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            shard.retain(|_, entry| {
                entry.holders.retain(|&h| h != holder);
                !entry.holders.is_empty()
            });
        }
    }

    /// Number of pages currently locked (any mode).
    pub fn locked_pages(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .len()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cblog_common::NodeId;
    use std::sync::Arc;
    use std::thread;

    fn pid(n: u32, idx: u32) -> PageId {
        PageId {
            owner: NodeId(n),
            index: idx,
        }
    }

    #[test]
    fn share_conflict_upgrade_release() {
        let t = ShardedLockTable::new(8);
        let p = pid(0, 1);
        assert!(t.try_acquire(p, 1, LockMode::Shared));
        assert!(t.try_acquire(p, 2, LockMode::Shared), "S-S compatible");
        assert!(
            !t.try_acquire(p, 3, LockMode::Exclusive),
            "X blocked by sharers"
        );
        assert!(
            !t.try_acquire(p, 1, LockMode::Exclusive),
            "no upgrade while shared"
        );
        t.release(p, 2);
        assert!(
            t.try_acquire(p, 1, LockMode::Exclusive),
            "sole holder upgrades"
        );
        assert!(
            t.try_acquire(p, 1, LockMode::Shared),
            "X covers S re-request"
        );
        assert!(!t.try_acquire(p, 2, LockMode::Shared), "X excludes others");
        t.release_all(1);
        assert_eq!(t.locked_pages(), 0);
        assert!(t.try_acquire(p, 2, LockMode::Exclusive));
    }

    #[test]
    fn exclusive_is_mutual_under_contention() {
        // Many threads fight for X on a few pages; at any moment each
        // page must have at most one holder, checked by guarding a
        // plain (non-atomic would be UB, so atomic) per-page counter
        // that only the lock makes safe to bump.
        use std::sync::atomic::{AtomicU64, Ordering};
        let table = Arc::new(ShardedLockTable::new(4));
        const PAGES: usize = 3;
        let in_cs: Arc<Vec<AtomicU64>> = Arc::new((0..PAGES).map(|_| AtomicU64::new(0)).collect());
        thread::scope(|s| {
            for who in 0..8u64 {
                let table = Arc::clone(&table);
                let in_cs = Arc::clone(&in_cs);
                s.spawn(move || {
                    for i in 0..2000u64 {
                        let p = pid(0, ((who + i) % PAGES as u64) as u32);
                        while !table.try_acquire(p, who, LockMode::Exclusive) {
                            std::hint::spin_loop();
                        }
                        let idx = (p.index) as usize;
                        assert_eq!(
                            in_cs[idx].fetch_add(1, Ordering::SeqCst),
                            0,
                            "two X holders"
                        );
                        in_cs[idx].fetch_sub(1, Ordering::SeqCst);
                        table.release(p, who);
                    }
                });
            }
        });
        assert_eq!(table.locked_pages(), 0);
    }

    #[test]
    fn shards_partition_pages() {
        let t = ShardedLockTable::new(16);
        assert_eq!(t.shard_count(), 16);
        for i in 0..100 {
            assert!(t.try_acquire(pid(1, i), 7, LockMode::Exclusive));
        }
        assert_eq!(t.locked_pages(), 100);
        t.release_all(7);
        assert_eq!(t.locked_pages(), 0);
        // Degenerate request still works.
        let t1 = ShardedLockTable::new(0);
        assert_eq!(t1.shard_count(), 1);
        assert!(t1.try_acquire(pid(0, 0), 1, LockMode::Shared));
    }

    #[test]
    fn acquire_spin_bounds_the_wait() {
        let t = ShardedLockTable::new(4);
        let p = pid(0, 3);
        // Uncontended: first try wins even with a single spin.
        assert!(t.acquire_spin(p, 1, LockMode::Exclusive, 1));
        // Held exclusively: a bounded spin gives up instead of hanging.
        assert!(!t.acquire_spin(p, 2, LockMode::Exclusive, 128));
        t.release(p, 1);
        // Freed: the same request now succeeds within the budget.
        assert!(t.acquire_spin(p, 2, LockMode::Exclusive, 128));
        t.release(p, 2);
        // A zero budget is clamped to one attempt, not zero.
        assert!(t.acquire_spin(p, 3, LockMode::Shared, 0));
        t.release(p, 3);
    }

    #[test]
    fn timed_spin_reports_the_wait() {
        let t = ShardedLockTable::new(4);
        let p = pid(0, 5);
        // Uncontended first try: held, and no wait is reported.
        assert_eq!(t.acquire_spin_timed(p, 1, LockMode::Exclusive, 64), Some(0));
        // Contended and exhausted: no wait figure, not held.
        assert_eq!(t.acquire_spin_timed(p, 2, LockMode::Exclusive, 64), None);
        t.release(p, 1);

        // Contended but eventually granted: a release from another
        // thread mid-spin yields Some(elapsed ≥ 0) and the lock.
        assert!(t.try_acquire(p, 3, LockMode::Exclusive));
        std::thread::scope(|s| {
            let table = &t;
            s.spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(2));
                table.release(p, 3);
            });
            let waited = t.acquire_spin_timed(p, 4, LockMode::Exclusive, 50_000_000);
            assert!(waited.is_some(), "lock granted after release");
        });
        assert!(!t.try_acquire(p, 5, LockMode::Exclusive), "4 holds it");
        t.release(p, 4);
    }
}
