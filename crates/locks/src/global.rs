//! Owner-side global lock table and the callback-locking protocol.
//!
//! Paper §2.2 normal processing:
//!
//! * Read request: if no other node holds the page exclusively, grant;
//!   otherwise call back the X holder (which downgrades/releases and
//!   returns its copy of the page), then grant.
//! * Write request: grant immediately if unlocked; otherwise send
//!   callbacks to all holders, wait for the acknowledgments, then grant
//!   the exclusive lock.
//!
//! The table is pure bookkeeping: [`GlobalLockTable::request`] computes
//! the callbacks required, the cluster executes them (they may be
//! deferred while a holder's local transaction still holds the page),
//! reports each completion via [`GlobalLockTable::callback_applied`],
//! and re-issues the request, which then grants.

use crate::LockMode;
use cblog_common::{NodeId, PageId};
use std::collections::HashMap;

/// What a callback asks the holding node to do.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CallbackAction {
    /// Give the lock up entirely (a conflicting exclusive request).
    Release,
    /// Demote an exclusive lock to shared (a conflicting read request).
    Demote,
}

/// Result of an owner-side lock request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GlobalRequestOutcome {
    /// Granted; the requester may cache the lock in the asked mode.
    Granted,
    /// Callbacks must complete first.
    NeedsCallbacks(Vec<(NodeId, CallbackAction)>),
}

/// The owner's record of which nodes hold locks on its pages.
#[derive(Debug, Default, Clone)]
pub struct GlobalLockTable {
    locks: HashMap<PageId, Vec<(NodeId, LockMode)>>,
}

impl GlobalLockTable {
    /// Empty table.
    pub fn new() -> Self {
        GlobalLockTable::default()
    }

    /// Requests `mode` on `pid` for node `requester`.
    pub fn request(
        &mut self,
        pid: PageId,
        requester: NodeId,
        mode: LockMode,
    ) -> GlobalRequestOutcome {
        let holders = self.locks.entry(pid).or_default();
        let own = holders.iter().position(|(n, _)| *n == requester);
        if let Some(i) = own {
            if holders[i].1.covers(mode) {
                return GlobalRequestOutcome::Granted;
            }
        }
        match mode {
            LockMode::Shared => {
                let xs: Vec<(NodeId, CallbackAction)> = holders
                    .iter()
                    .filter(|(n, m)| *n != requester && *m == LockMode::Exclusive)
                    .map(|(n, _)| (*n, CallbackAction::Demote))
                    .collect();
                if !xs.is_empty() {
                    return GlobalRequestOutcome::NeedsCallbacks(xs);
                }
                if own.is_none() {
                    holders.push((requester, LockMode::Shared));
                }
                GlobalRequestOutcome::Granted
            }
            LockMode::Exclusive => {
                let others: Vec<(NodeId, CallbackAction)> = holders
                    .iter()
                    .filter(|(n, _)| *n != requester)
                    .map(|(n, _)| (*n, CallbackAction::Release))
                    .collect();
                if !others.is_empty() {
                    return GlobalRequestOutcome::NeedsCallbacks(others);
                }
                match own {
                    Some(i) => holders[i].1 = LockMode::Exclusive,
                    None => holders.push((requester, LockMode::Exclusive)),
                }
                GlobalRequestOutcome::Granted
            }
        }
    }

    /// Applies the result of a completed callback on `victim`.
    pub fn callback_applied(&mut self, pid: PageId, victim: NodeId, action: CallbackAction) {
        if let Some(holders) = self.locks.get_mut(&pid) {
            match action {
                CallbackAction::Release => holders.retain(|(n, _)| *n != victim),
                CallbackAction::Demote => {
                    for (n, m) in holders.iter_mut() {
                        if *n == victim {
                            *m = LockMode::Shared;
                        }
                    }
                }
            }
            if holders.is_empty() {
                self.locks.remove(&pid);
            }
        }
    }

    /// Voluntary release by a node (e.g. it dropped the page and lock).
    pub fn release(&mut self, pid: PageId, node: NodeId) {
        self.callback_applied(pid, node, CallbackAction::Release);
    }

    /// Nodes holding `pid`, with modes.
    pub fn holders(&self, pid: PageId) -> Vec<(NodeId, LockMode)> {
        self.locks.get(&pid).cloned().unwrap_or_default()
    }

    /// The exclusive holder of `pid`, if any.
    pub fn exclusive_holder(&self, pid: PageId) -> Option<NodeId> {
        self.locks.get(&pid).and_then(|hs| {
            hs.iter()
                .find(|(_, m)| *m == LockMode::Exclusive)
                .map(|(n, _)| *n)
        })
    }

    /// All locks granted to `node`, sorted by page (recovery §2.3.3:
    /// "the list of locks N_r had acquired from the crashed node").
    pub fn locks_of(&self, node: NodeId) -> Vec<(PageId, LockMode)> {
        let mut v: Vec<(PageId, LockMode)> = self
            .locks
            .iter()
            .filter_map(|(pid, hs)| hs.iter().find(|(n, _)| *n == node).map(|(_, m)| (*pid, *m)))
            .collect();
        v.sort_by_key(|(p, _)| *p);
        v
    }

    /// Recovery §2.3.3 at an operational node: release all *shared*
    /// locks held by the crashed node, retain its exclusive locks (they
    /// fence unrecovered pages). Returns the pages whose shared locks
    /// were dropped and the pages where exclusive locks are retained.
    pub fn drop_shared_retain_exclusive(&mut self, crashed: NodeId) -> (Vec<PageId>, Vec<PageId>) {
        let mut dropped = Vec::new();
        let mut retained = Vec::new();
        self.locks.retain(|pid, hs| {
            hs.retain(|(n, m)| {
                if *n == crashed {
                    match m {
                        LockMode::Shared => {
                            dropped.push(*pid);
                            false
                        }
                        LockMode::Exclusive => {
                            retained.push(*pid);
                            true
                        }
                    }
                } else {
                    true
                }
            });
            !hs.is_empty()
        });
        dropped.sort();
        retained.sort();
        (dropped, retained)
    }

    /// Inserts a grant directly (lock-table reconstruction at the
    /// recovering node, §2.3.3).
    pub fn insert_grant(&mut self, pid: PageId, node: NodeId, mode: LockMode) {
        let hs = self.locks.entry(pid).or_default();
        match hs.iter_mut().find(|(n, _)| *n == node) {
            Some((_, m)) => {
                if mode == LockMode::Exclusive {
                    *m = LockMode::Exclusive;
                }
            }
            None => hs.push((node, mode)),
        }
    }

    /// Drops everything (node crash).
    pub fn clear(&mut self) {
        self.locks.clear();
    }

    /// Number of (page, node) grants outstanding.
    pub fn grant_count(&self) -> usize {
        self.locks.values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> PageId {
        PageId::new(NodeId(0), i)
    }

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn shared_grants_accumulate() {
        let mut g = GlobalLockTable::new();
        assert_eq!(
            g.request(p(0), n(1), LockMode::Shared),
            GlobalRequestOutcome::Granted
        );
        assert_eq!(
            g.request(p(0), n(2), LockMode::Shared),
            GlobalRequestOutcome::Granted
        );
        assert_eq!(g.holders(p(0)).len(), 2);
    }

    #[test]
    fn write_request_calls_back_all_holders() {
        let mut g = GlobalLockTable::new();
        g.request(p(0), n(1), LockMode::Shared);
        g.request(p(0), n(2), LockMode::Shared);
        match g.request(p(0), n(3), LockMode::Exclusive) {
            GlobalRequestOutcome::NeedsCallbacks(cbs) => {
                assert_eq!(cbs.len(), 2);
                assert!(cbs.iter().all(|(_, a)| *a == CallbackAction::Release));
                for (v, a) in cbs {
                    g.callback_applied(p(0), v, a);
                }
            }
            o => panic!("expected callbacks, got {o:?}"),
        }
        assert_eq!(
            g.request(p(0), n(3), LockMode::Exclusive),
            GlobalRequestOutcome::Granted
        );
        assert_eq!(g.exclusive_holder(p(0)), Some(n(3)));
    }

    #[test]
    fn read_request_demotes_exclusive_holder() {
        let mut g = GlobalLockTable::new();
        g.request(p(0), n(1), LockMode::Exclusive);
        match g.request(p(0), n(2), LockMode::Shared) {
            GlobalRequestOutcome::NeedsCallbacks(cbs) => {
                assert_eq!(cbs, vec![(n(1), CallbackAction::Demote)]);
                g.callback_applied(p(0), n(1), CallbackAction::Demote);
            }
            o => panic!("expected callbacks, got {o:?}"),
        }
        assert_eq!(
            g.request(p(0), n(2), LockMode::Shared),
            GlobalRequestOutcome::Granted
        );
        let hs = g.holders(p(0));
        assert!(hs.contains(&(n(1), LockMode::Shared)));
        assert!(hs.contains(&(n(2), LockMode::Shared)));
    }

    #[test]
    fn upgrade_calls_back_other_sharers_only() {
        let mut g = GlobalLockTable::new();
        g.request(p(0), n(1), LockMode::Shared);
        g.request(p(0), n(2), LockMode::Shared);
        match g.request(p(0), n(1), LockMode::Exclusive) {
            GlobalRequestOutcome::NeedsCallbacks(cbs) => {
                assert_eq!(cbs, vec![(n(2), CallbackAction::Release)]);
                g.callback_applied(p(0), n(2), CallbackAction::Release);
            }
            o => panic!("expected callbacks, got {o:?}"),
        }
        assert_eq!(
            g.request(p(0), n(1), LockMode::Exclusive),
            GlobalRequestOutcome::Granted
        );
    }

    #[test]
    fn covering_request_is_free() {
        let mut g = GlobalLockTable::new();
        g.request(p(0), n(1), LockMode::Exclusive);
        assert_eq!(
            g.request(p(0), n(1), LockMode::Shared),
            GlobalRequestOutcome::Granted
        );
        assert_eq!(
            g.request(p(0), n(1), LockMode::Exclusive),
            GlobalRequestOutcome::Granted
        );
    }

    #[test]
    fn crash_recovery_lock_handling() {
        let mut g = GlobalLockTable::new();
        g.request(p(0), n(1), LockMode::Shared);
        g.request(p(1), n(1), LockMode::Exclusive);
        g.request(p(2), n(2), LockMode::Exclusive);
        g.request(p(0), n(2), LockMode::Shared);
        let (dropped, retained) = g.drop_shared_retain_exclusive(n(1));
        assert_eq!(dropped, vec![p(0)]);
        assert_eq!(retained, vec![p(1)]);
        // n1's X lock still fences p(1).
        assert!(matches!(
            g.request(p(1), n(2), LockMode::Shared),
            GlobalRequestOutcome::NeedsCallbacks(_)
        ));
        // n2 unaffected.
        assert_eq!(
            g.locks_of(n(2)),
            vec![(p(0), LockMode::Shared), (p(2), LockMode::Exclusive)]
        );
    }

    #[test]
    fn insert_grant_reconstructs() {
        let mut g = GlobalLockTable::new();
        g.insert_grant(p(0), n(1), LockMode::Shared);
        g.insert_grant(p(0), n(1), LockMode::Exclusive);
        g.insert_grant(p(0), n(1), LockMode::Shared); // never downgrades
        assert_eq!(g.holders(p(0)), vec![(n(1), LockMode::Exclusive)]);
    }

    #[test]
    fn voluntary_release() {
        let mut g = GlobalLockTable::new();
        g.request(p(0), n(1), LockMode::Exclusive);
        g.release(p(0), n(1));
        assert!(g.holders(p(0)).is_empty());
        assert_eq!(g.grant_count(), 0);
    }
}
