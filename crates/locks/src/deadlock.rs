//! Waits-for graph deadlock detection.
//!
//! The deterministic cluster scheduler records an edge whenever a
//! transaction's operation reports `WouldBlock` on a set of holders,
//! and clears a transaction's edges when it runs again or terminates.
//! Cycle detection picks the youngest transaction in the cycle as the
//! victim (largest id: ids grow with start order on each node).

use cblog_common::TxnId;
use std::collections::{HashMap, HashSet};

/// A waits-for graph over transactions.
#[derive(Debug, Default)]
pub struct WaitsForGraph {
    edges: HashMap<TxnId, HashSet<TxnId>>,
}

impl WaitsForGraph {
    /// Empty graph.
    pub fn new() -> Self {
        WaitsForGraph::default()
    }

    /// Replaces the wait set of `waiter` (it blocks on `holders`).
    pub fn set_waits(&mut self, waiter: TxnId, holders: &[TxnId]) {
        let set: HashSet<TxnId> = holders.iter().copied().filter(|h| *h != waiter).collect();
        if set.is_empty() {
            self.edges.remove(&waiter);
        } else {
            self.edges.insert(waiter, set);
        }
    }

    /// Removes `txn` both as waiter and as awaited holder.
    pub fn remove(&mut self, txn: TxnId) {
        self.edges.remove(&txn);
        for set in self.edges.values_mut() {
            set.remove(&txn);
        }
        self.edges.retain(|_, s| !s.is_empty());
    }

    /// Number of waiting transactions.
    pub fn waiter_count(&self) -> usize {
        self.edges.len()
    }

    /// Finds a cycle and returns the chosen victim (the youngest, i.e.
    /// largest-id transaction in the cycle), or `None`.
    pub fn find_victim(&self) -> Option<TxnId> {
        // Iterative DFS with three-color marking over a deterministic
        // ordering of start nodes.
        let mut starts: Vec<TxnId> = self.edges.keys().copied().collect();
        starts.sort();
        let mut color: HashMap<TxnId, u8> = HashMap::new(); // 1=gray, 2=black
        for &s in &starts {
            if color.get(&s).copied().unwrap_or(0) != 0 {
                continue;
            }
            // stack of (node, neighbor iterator index); keep a path.
            let mut path: Vec<TxnId> = Vec::new();
            let mut stack: Vec<(TxnId, Vec<TxnId>, usize)> = Vec::new();
            let neigh = |t: TxnId| -> Vec<TxnId> {
                let mut v: Vec<TxnId> = self
                    .edges
                    .get(&t)
                    .map(|s| s.iter().copied().collect())
                    .unwrap_or_default();
                v.sort();
                v
            };
            color.insert(s, 1);
            path.push(s);
            stack.push((s, neigh(s), 0));
            while let Some((node, ns, idx)) = stack.last_mut() {
                if *idx >= ns.len() {
                    color.insert(*node, 2);
                    path.pop();
                    stack.pop();
                    continue;
                }
                let next = ns[*idx];
                *idx += 1;
                match color.get(&next).copied().unwrap_or(0) {
                    0 => {
                        color.insert(next, 1);
                        path.push(next);
                        let nn = neigh(next);
                        stack.push((next, nn, 0));
                    }
                    1 => {
                        // Found a cycle: the path suffix from `next`.
                        let pos = path.iter().position(|t| *t == next).expect("on path");
                        return path[pos..].iter().copied().max();
                    }
                    _ => {}
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cblog_common::NodeId;

    fn t(n: u32, s: u64) -> TxnId {
        TxnId::new(NodeId(n), s)
    }

    #[test]
    fn no_cycle_no_victim() {
        let mut g = WaitsForGraph::new();
        g.set_waits(t(1, 1), &[t(1, 2)]);
        g.set_waits(t(1, 2), &[t(2, 1)]);
        assert_eq!(g.find_victim(), None);
    }

    #[test]
    fn two_cycle_picks_youngest() {
        let mut g = WaitsForGraph::new();
        g.set_waits(t(1, 1), &[t(1, 2)]);
        g.set_waits(t(1, 2), &[t(1, 1)]);
        assert_eq!(g.find_victim(), Some(t(1, 2)));
    }

    #[test]
    fn cross_node_cycle_detected() {
        let mut g = WaitsForGraph::new();
        g.set_waits(t(1, 5), &[t(2, 3)]);
        g.set_waits(t(2, 3), &[t(3, 9)]);
        g.set_waits(t(3, 9), &[t(1, 5)]);
        let v = g.find_victim().unwrap();
        assert_eq!(v, t(3, 9), "largest TxnId in cycle");
    }

    #[test]
    fn self_edges_are_ignored() {
        let mut g = WaitsForGraph::new();
        g.set_waits(t(1, 1), &[t(1, 1)]);
        assert_eq!(g.find_victim(), None);
        assert_eq!(g.waiter_count(), 0);
    }

    #[test]
    fn remove_breaks_cycles() {
        let mut g = WaitsForGraph::new();
        g.set_waits(t(1, 1), &[t(1, 2)]);
        g.set_waits(t(1, 2), &[t(1, 1)]);
        g.remove(t(1, 2));
        assert_eq!(g.find_victim(), None);
        assert_eq!(g.waiter_count(), 0, "t1's edge to removed txn is gone");
    }

    #[test]
    fn set_waits_replaces_previous_edges() {
        let mut g = WaitsForGraph::new();
        g.set_waits(t(1, 1), &[t(1, 2)]);
        g.set_waits(t(1, 2), &[t(1, 1)]);
        // t1 stops waiting on t2, now waits on t3.
        g.set_waits(t(1, 1), &[t(1, 3)]);
        assert_eq!(g.find_victim(), None);
    }

    #[test]
    fn cycle_off_the_dfs_root_found() {
        let mut g = WaitsForGraph::new();
        g.set_waits(t(1, 1), &[t(1, 2)]);
        g.set_waits(t(1, 2), &[t(1, 3)]);
        g.set_waits(t(1, 3), &[t(1, 2)]);
        assert_eq!(g.find_victim(), Some(t(1, 3)));
    }
}
