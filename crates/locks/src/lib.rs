//! Locking for client-based logging nodes.
//!
//! Paper §2.1: concurrency control is strict two-phase locking at page
//! granularity; each node has a lock manager that caches acquired locks
//! across transaction boundaries (*inter-transaction caching*) and
//! forwards requests for remotely-owned pages to the owner; cache
//! consistency uses the **callback locking** protocol; called-back
//! exclusive locks are released or demoted to shared.
//!
//! Three tables cooperate:
//!
//! * [`LocalLockTable`] — transaction-level S/X locks inside one node
//!   (strict 2PL among local transactions).
//! * [`CachedLockTable`] — the node-level locks this node currently
//!   holds from owner nodes; these survive transaction termination and
//!   are what callbacks revoke.
//! * [`GlobalLockTable`] — the owner-side table of which *nodes* hold
//!   which locks on the owner's pages; computes the callback victims
//!   for conflicting requests.
//!
//! Blocking is surfaced explicitly (requests return the conflicting
//! holders) so the deterministic cluster scheduler can queue, retry and
//! detect deadlocks via [`deadlock::WaitsForGraph`].

pub mod cached;
pub mod deadlock;
pub mod global;
pub mod local;
pub mod sharded;

pub use cached::CachedLockTable;
pub use deadlock::WaitsForGraph;
pub use global::{CallbackAction, GlobalLockTable, GlobalRequestOutcome};
pub use local::{LocalLockTable, LocalRequestOutcome};
pub use sharded::ShardedLockTable;

/// Lock modes at page granularity.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum LockMode {
    /// Shared (read) lock.
    Shared,
    /// Exclusive (write) lock.
    Exclusive,
}

impl LockMode {
    /// Lock compatibility: S-S only.
    pub fn compatible(self, other: LockMode) -> bool {
        matches!((self, other), (LockMode::Shared, LockMode::Shared))
    }

    /// True if `self` already covers a request for `want` (X covers S).
    pub fn covers(self, want: LockMode) -> bool {
        self == LockMode::Exclusive || want == LockMode::Shared
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compatibility_matrix() {
        assert!(LockMode::Shared.compatible(LockMode::Shared));
        assert!(!LockMode::Shared.compatible(LockMode::Exclusive));
        assert!(!LockMode::Exclusive.compatible(LockMode::Shared));
        assert!(!LockMode::Exclusive.compatible(LockMode::Exclusive));
    }

    #[test]
    fn coverage() {
        assert!(LockMode::Exclusive.covers(LockMode::Shared));
        assert!(LockMode::Exclusive.covers(LockMode::Exclusive));
        assert!(LockMode::Shared.covers(LockMode::Shared));
        assert!(!LockMode::Shared.covers(LockMode::Exclusive));
    }
}
