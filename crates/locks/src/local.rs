//! Transaction-level lock table (strict 2PL within one node).

use crate::LockMode;
use cblog_common::{PageId, TxnId};
use std::collections::HashMap;

/// Result of a local lock request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LocalRequestOutcome {
    /// Lock granted (or already held in a covering mode).
    Granted,
    /// Conflicting local transactions hold the page.
    Blocked(Vec<TxnId>),
}

/// Per-node table of transaction-level page locks.
///
/// Requests either succeed or report the conflicting holders; the
/// scheduler owns queueing and retry, which keeps the table free of
/// hidden state and makes conflicts observable to the deadlock
/// detector.
#[derive(Debug, Default)]
pub struct LocalLockTable {
    locks: HashMap<PageId, Vec<(TxnId, LockMode)>>,
}

impl LocalLockTable {
    /// Empty table.
    pub fn new() -> Self {
        LocalLockTable::default()
    }

    /// Requests `mode` on `pid` for `txn`. Upgrade (S→X) succeeds only
    /// if `txn` is the sole holder.
    pub fn request(&mut self, txn: TxnId, pid: PageId, mode: LockMode) -> LocalRequestOutcome {
        let holders = self.locks.entry(pid).or_default();
        if let Some(i) = holders.iter().position(|(t, _)| *t == txn) {
            let held = holders[i].1;
            if held.covers(mode) {
                return LocalRequestOutcome::Granted;
            }
            // Upgrade S -> X.
            let others: Vec<TxnId> = holders
                .iter()
                .filter(|(t, _)| *t != txn)
                .map(|(t, _)| *t)
                .collect();
            if others.is_empty() {
                holders[i].1 = LockMode::Exclusive;
                return LocalRequestOutcome::Granted;
            }
            return LocalRequestOutcome::Blocked(others);
        }
        let conflicting: Vec<TxnId> = holders
            .iter()
            .filter(|(_, m)| !m.compatible(mode))
            .map(|(t, _)| *t)
            .collect();
        if conflicting.is_empty() {
            holders.push((txn, mode));
            LocalRequestOutcome::Granted
        } else {
            LocalRequestOutcome::Blocked(conflicting)
        }
    }

    /// Returns the local transactions that would block `txn` from
    /// acquiring `mode` on `pid`, without granting anything. Used to
    /// order the two-level acquisition: the transaction-level lock is
    /// granted only after the node-level lock covers it, so a request
    /// that still has to travel to the owner never holds a local lock
    /// that defers incoming callbacks (which would livelock with the
    /// remote holder's own upgrade).
    pub fn conflicts(&self, txn: TxnId, pid: PageId, mode: LockMode) -> Vec<TxnId> {
        let Some(holders) = self.locks.get(&pid) else {
            return Vec::new();
        };
        match holders.iter().find(|(t, _)| *t == txn) {
            Some((_, held)) if held.covers(mode) => Vec::new(),
            Some(_) => holders
                .iter()
                .filter(|(t, _)| *t != txn)
                .map(|(t, _)| *t)
                .collect(),
            None => holders
                .iter()
                .filter(|(_, m)| !m.compatible(mode))
                .map(|(t, _)| *t)
                .collect(),
        }
    }

    /// Mode `txn` holds on `pid`, if any.
    pub fn held(&self, txn: TxnId, pid: PageId) -> Option<LockMode> {
        self.locks
            .get(&pid)?
            .iter()
            .find(|(t, _)| *t == txn)
            .map(|(_, m)| *m)
    }

    /// All transactions holding `pid` (any mode).
    pub fn holders(&self, pid: PageId) -> Vec<(TxnId, LockMode)> {
        self.locks.get(&pid).cloned().unwrap_or_default()
    }

    /// True if any local transaction holds `pid`.
    pub fn is_locked(&self, pid: PageId) -> bool {
        self.locks.get(&pid).is_some_and(|h| !h.is_empty())
    }

    /// Pages `txn` currently holds, with modes (sorted by page).
    pub fn locks_of(&self, txn: TxnId) -> Vec<(PageId, LockMode)> {
        let mut v: Vec<(PageId, LockMode)> = self
            .locks
            .iter()
            .filter_map(|(pid, hs)| hs.iter().find(|(t, _)| *t == txn).map(|(_, m)| (*pid, *m)))
            .collect();
        v.sort_by_key(|(p, _)| *p);
        v
    }

    /// Releases every lock of `txn` (strict 2PL release at termination).
    pub fn release_all(&mut self, txn: TxnId) {
        self.locks.retain(|_, hs| {
            hs.retain(|(t, _)| *t != txn);
            !hs.is_empty()
        });
    }

    /// Drops everything (node crash).
    pub fn clear(&mut self) {
        self.locks.clear();
    }

    /// Number of (txn, page) lock grants outstanding.
    pub fn grant_count(&self) -> usize {
        self.locks.values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cblog_common::NodeId;

    fn t(i: u64) -> TxnId {
        TxnId::new(NodeId(1), i)
    }

    fn p(i: u32) -> PageId {
        PageId::new(NodeId(1), i)
    }

    #[test]
    fn shared_locks_coexist() {
        let mut lt = LocalLockTable::new();
        assert_eq!(
            lt.request(t(1), p(0), LockMode::Shared),
            LocalRequestOutcome::Granted
        );
        assert_eq!(
            lt.request(t(2), p(0), LockMode::Shared),
            LocalRequestOutcome::Granted
        );
        assert_eq!(lt.holders(p(0)).len(), 2);
    }

    #[test]
    fn exclusive_conflicts_reported() {
        let mut lt = LocalLockTable::new();
        lt.request(t(1), p(0), LockMode::Exclusive);
        match lt.request(t(2), p(0), LockMode::Shared) {
            LocalRequestOutcome::Blocked(hs) => assert_eq!(hs, vec![t(1)]),
            g => panic!("expected block, got {g:?}"),
        }
        match lt.request(t(2), p(0), LockMode::Exclusive) {
            LocalRequestOutcome::Blocked(hs) => assert_eq!(hs, vec![t(1)]),
            g => panic!("expected block, got {g:?}"),
        }
    }

    #[test]
    fn reentrant_and_covering_grants() {
        let mut lt = LocalLockTable::new();
        lt.request(t(1), p(0), LockMode::Exclusive);
        assert_eq!(
            lt.request(t(1), p(0), LockMode::Shared),
            LocalRequestOutcome::Granted
        );
        assert_eq!(
            lt.request(t(1), p(0), LockMode::Exclusive),
            LocalRequestOutcome::Granted
        );
        assert_eq!(lt.held(t(1), p(0)), Some(LockMode::Exclusive));
    }

    #[test]
    fn upgrade_succeeds_alone_blocks_with_others() {
        let mut lt = LocalLockTable::new();
        lt.request(t(1), p(0), LockMode::Shared);
        assert_eq!(
            lt.request(t(1), p(0), LockMode::Exclusive),
            LocalRequestOutcome::Granted
        );
        lt.release_all(t(1));

        lt.request(t(1), p(0), LockMode::Shared);
        lt.request(t(2), p(0), LockMode::Shared);
        match lt.request(t(1), p(0), LockMode::Exclusive) {
            LocalRequestOutcome::Blocked(hs) => assert_eq!(hs, vec![t(2)]),
            g => panic!("expected block, got {g:?}"),
        }
        // Still holds its shared lock.
        assert_eq!(lt.held(t(1), p(0)), Some(LockMode::Shared));
    }

    #[test]
    fn release_all_frees_pages() {
        let mut lt = LocalLockTable::new();
        lt.request(t(1), p(0), LockMode::Exclusive);
        lt.request(t(1), p(1), LockMode::Shared);
        lt.request(t(2), p(1), LockMode::Shared);
        assert_eq!(lt.locks_of(t(1)).len(), 2);
        lt.release_all(t(1));
        assert!(lt.locks_of(t(1)).is_empty());
        assert!(!lt.is_locked(p(0)));
        assert!(lt.is_locked(p(1)), "t2 still holds p1");
        assert_eq!(lt.grant_count(), 1);
    }

    #[test]
    fn clear_empties_table() {
        let mut lt = LocalLockTable::new();
        lt.request(t(1), p(0), LockMode::Exclusive);
        lt.clear();
        assert_eq!(lt.grant_count(), 0);
    }
}
