//! B+-tree node encoding: one tree node = one slotted-page record.
//!
//! ```text
//! leaf:     [0x4C, n: u16, (key u64, value u64) * n]            sorted by key
//! internal: [0x49, n: u16, (child rid: pid u64 + slot u16) * (n+1), key u64 * n]
//! ```

use cblog_common::{Decoder, Encoder, Error, PageId, Result, Rid};

const TAG_LEAF: u8 = 0x4C;
const TAG_INTERNAL: u8 = 0x49;

/// Node flavour.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NodeKind {
    /// Holds key → value entries.
    Leaf,
    /// Holds separators and child record ids.
    Internal,
}

/// An in-memory tree node (decoded record).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TreeNode {
    kind: NodeKind,
    /// Leaf: sorted (key, value). Internal: sorted separator keys.
    keys: Vec<u64>,
    /// Leaf only.
    values: Vec<u64>,
    /// Internal only: children.len() == keys.len() + 1.
    children: Vec<Rid>,
}

impl TreeNode {
    /// A leaf with no entries.
    pub fn empty_leaf() -> TreeNode {
        TreeNode {
            kind: NodeKind::Leaf,
            keys: Vec::new(),
            values: Vec::new(),
            children: Vec::new(),
        }
    }

    /// An internal node over `children` separated by `keys`.
    pub fn internal(keys: Vec<u64>, children: Vec<Rid>) -> TreeNode {
        assert_eq!(children.len(), keys.len() + 1);
        TreeNode {
            kind: NodeKind::Internal,
            keys,
            values: Vec::new(),
            children,
        }
    }

    /// Node flavour.
    pub fn kind(&self) -> NodeKind {
        self.kind
    }

    /// Number of keys (leaf entries or separators).
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True if the node holds no keys.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    // -------------------------------------------------------------
    // Leaf operations
    // -------------------------------------------------------------

    /// Value for `key`, if present (leaf only).
    pub fn leaf_get(&self, key: u64) -> Option<u64> {
        debug_assert_eq!(self.kind, NodeKind::Leaf);
        self.keys.binary_search(&key).ok().map(|i| self.values[i])
    }

    /// Inserts/overwrites an entry (leaf only).
    pub fn leaf_insert(&mut self, key: u64, value: u64) {
        debug_assert_eq!(self.kind, NodeKind::Leaf);
        match self.keys.binary_search(&key) {
            Ok(i) => self.values[i] = value,
            Err(i) => {
                self.keys.insert(i, key);
                self.values.insert(i, value);
            }
        }
    }

    /// Removes an entry (leaf only), returning its value.
    pub fn leaf_remove(&mut self, key: u64) -> Option<u64> {
        debug_assert_eq!(self.kind, NodeKind::Leaf);
        match self.keys.binary_search(&key) {
            Ok(i) => {
                self.keys.remove(i);
                Some(self.values.remove(i))
            }
            Err(_) => None,
        }
    }

    /// All (key, value) pairs in order (leaf only).
    pub fn leaf_entries(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        debug_assert_eq!(self.kind, NodeKind::Leaf);
        self.keys.iter().copied().zip(self.values.iter().copied())
    }

    /// Splits a full leaf in half; returns `(separator, right_half)`.
    /// The separator is the first key of the right half (B+-tree
    /// convention: keys >= separator go right).
    pub fn split_leaf(&mut self) -> (u64, TreeNode) {
        debug_assert_eq!(self.kind, NodeKind::Leaf);
        let mid = self.keys.len() / 2;
        let right_keys = self.keys.split_off(mid);
        let right_vals = self.values.split_off(mid);
        let sep = right_keys[0];
        (
            sep,
            TreeNode {
                kind: NodeKind::Leaf,
                keys: right_keys,
                values: right_vals,
                children: Vec::new(),
            },
        )
    }

    // -------------------------------------------------------------
    // Internal-node operations
    // -------------------------------------------------------------

    /// The child to descend into for `key` (internal only).
    pub fn child_for(&self, key: u64) -> Rid {
        debug_assert_eq!(self.kind, NodeKind::Internal);
        let i = match self.keys.binary_search(&key) {
            Ok(i) => i + 1, // keys equal to a separator live right of it
            Err(i) => i,
        };
        self.children[i]
    }

    /// Leftmost child (internal only).
    pub fn first_child(&self) -> Rid {
        debug_assert_eq!(self.kind, NodeKind::Internal);
        self.children[0]
    }

    /// Inserts a separator + right child after a child split.
    pub fn internal_insert(&mut self, sep: u64, right: Rid) {
        debug_assert_eq!(self.kind, NodeKind::Internal);
        let i = match self.keys.binary_search(&sep) {
            Ok(i) | Err(i) => i,
        };
        self.keys.insert(i, sep);
        self.children.insert(i + 1, right);
    }

    /// Removes child `rid` and the separator bounding it (internal
    /// only): the dropped child's key range folds into its left
    /// sibling (or the new first child, when `rid` was leftmost).
    /// Returns false — and leaves the node untouched — if `rid` is
    /// not a child or is the node's only child (removing it would
    /// leave an internal node over nothing).
    pub fn internal_remove_child(&mut self, rid: Rid) -> bool {
        debug_assert_eq!(self.kind, NodeKind::Internal);
        let Some(i) = self.children.iter().position(|c| *c == rid) else {
            return false;
        };
        if self.keys.is_empty() {
            return false;
        }
        self.children.remove(i);
        self.keys.remove(i.saturating_sub(1));
        true
    }

    /// Splits a full internal node; returns `(promoted_key, right)`.
    /// The promoted key moves up and appears in neither half.
    pub fn split_internal(&mut self) -> (u64, TreeNode) {
        debug_assert_eq!(self.kind, NodeKind::Internal);
        let mid = self.keys.len() / 2;
        let up = self.keys[mid];
        let right_keys = self.keys.split_off(mid + 1);
        self.keys.pop(); // remove the promoted key from the left half
        let right_children = self.children.split_off(mid + 1);
        (
            up,
            TreeNode {
                kind: NodeKind::Internal,
                keys: right_keys,
                values: Vec::new(),
                children: right_children,
            },
        )
    }

    /// For a range scan: each child with a flag saying whether its key
    /// interval intersects `[lo, hi]`.
    pub fn children_covering(&self, lo: u64, hi: u64) -> Vec<(Rid, bool)> {
        debug_assert_eq!(self.kind, NodeKind::Internal);
        let mut out = Vec::with_capacity(self.children.len());
        for (i, &child) in self.children.iter().enumerate() {
            // Child i covers keys in [keys[i-1], keys[i]).
            let child_lo = if i == 0 { 0 } else { self.keys[i - 1] };
            let child_hi = if i == self.keys.len() {
                u64::MAX
            } else {
                self.keys[i].saturating_sub(1)
            };
            out.push((child, child_lo <= hi && lo <= child_hi));
        }
        out
    }

    /// For structural checks: each child with its key bounds.
    pub fn child_bounds(&self, lo: u64, hi: u64) -> Vec<(Rid, u64, u64)> {
        debug_assert_eq!(self.kind, NodeKind::Internal);
        let mut out = Vec::with_capacity(self.children.len());
        for (i, &child) in self.children.iter().enumerate() {
            let child_lo = if i == 0 { lo } else { self.keys[i - 1] };
            let child_hi = if i == self.keys.len() {
                hi
            } else {
                self.keys[i].saturating_sub(1)
            };
            out.push((child, child_lo, child_hi));
        }
        out
    }

    /// Verifies key ordering inside the node.
    pub fn check_sorted(&self) -> Result<()> {
        if self.keys.windows(2).any(|w| w[0] >= w[1]) {
            return Err(Error::Protocol(format!(
                "unsorted node keys: {:?}",
                self.keys
            )));
        }
        if self.kind == NodeKind::Internal && self.children.len() != self.keys.len() + 1 {
            return Err(Error::Protocol("internal arity mismatch".into()));
        }
        if self.kind == NodeKind::Leaf && self.values.len() != self.keys.len() {
            return Err(Error::Protocol("leaf arity mismatch".into()));
        }
        Ok(())
    }

    // -------------------------------------------------------------
    // Serialization
    // -------------------------------------------------------------

    /// Serializes the node into record bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::with_capacity(4 + self.keys.len() * 18);
        match self.kind {
            NodeKind::Leaf => {
                e.put_u8(TAG_LEAF);
                e.put_u16(self.keys.len() as u16);
                for (k, v) in self.keys.iter().zip(&self.values) {
                    e.put_u64(*k);
                    e.put_u64(*v);
                }
            }
            NodeKind::Internal => {
                e.put_u8(TAG_INTERNAL);
                e.put_u16(self.keys.len() as u16);
                for c in &self.children {
                    e.put_u64(c.page.to_u64());
                    e.put_u16(c.slot);
                }
                for k in &self.keys {
                    e.put_u64(*k);
                }
            }
        }
        e.into_vec()
    }

    /// Inverse of [`TreeNode::encode`].
    pub fn decode(bytes: &[u8]) -> Result<TreeNode> {
        let mut d = Decoder::new(bytes);
        match d.get_u8()? {
            TAG_LEAF => {
                let n = d.get_u16()? as usize;
                let mut keys = Vec::with_capacity(n);
                let mut values = Vec::with_capacity(n);
                for _ in 0..n {
                    keys.push(d.get_u64()?);
                    values.push(d.get_u64()?);
                }
                Ok(TreeNode {
                    kind: NodeKind::Leaf,
                    keys,
                    values,
                    children: Vec::new(),
                })
            }
            TAG_INTERNAL => {
                let n = d.get_u16()? as usize;
                let mut children = Vec::with_capacity(n + 1);
                for _ in 0..n + 1 {
                    let page = PageId::from_u64(d.get_u64()?);
                    let slot = d.get_u16()?;
                    children.push(Rid::new(page, slot));
                }
                let mut keys = Vec::with_capacity(n);
                for _ in 0..n {
                    keys.push(d.get_u64()?);
                }
                Ok(TreeNode {
                    kind: NodeKind::Internal,
                    keys,
                    values: Vec::new(),
                    children,
                })
            }
            t => Err(Error::Corrupt(format!("bad btree node tag {t:#x}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cblog_common::NodeId;

    fn rid(i: u16) -> Rid {
        Rid::new(PageId::new(NodeId(0), 1), i)
    }

    #[test]
    fn leaf_insert_get_remove_sorted() {
        let mut n = TreeNode::empty_leaf();
        for k in [5u64, 1, 9, 3, 7] {
            n.leaf_insert(k, k * 10);
        }
        n.check_sorted().unwrap();
        assert_eq!(n.leaf_get(3), Some(30));
        assert_eq!(n.leaf_get(4), None);
        n.leaf_insert(3, 333); // overwrite
        assert_eq!(n.leaf_get(3), Some(333));
        assert_eq!(n.len(), 5);
        assert_eq!(n.leaf_remove(3), Some(333));
        assert_eq!(n.leaf_remove(3), None);
        assert_eq!(n.len(), 4);
    }

    #[test]
    fn leaf_split_halves_and_separates() {
        let mut n = TreeNode::empty_leaf();
        for k in 0..10u64 {
            n.leaf_insert(k, k);
        }
        let (sep, right) = n.split_leaf();
        assert_eq!(sep, 5);
        assert_eq!(n.len(), 5);
        assert_eq!(right.len(), 5);
        assert!(n.leaf_entries().all(|(k, _)| k < sep));
        assert!(right.leaf_entries().all(|(k, _)| k >= sep));
    }

    #[test]
    fn internal_routing() {
        // children: [c0 | 10 | c1 | 20 | c2]
        let n = TreeNode::internal(vec![10, 20], vec![rid(0), rid(1), rid(2)]);
        assert_eq!(n.child_for(5), rid(0));
        assert_eq!(n.child_for(10), rid(1), "separator key goes right");
        assert_eq!(n.child_for(15), rid(1));
        assert_eq!(n.child_for(20), rid(2));
        assert_eq!(n.child_for(u64::MAX), rid(2));
        assert_eq!(n.first_child(), rid(0));
    }

    #[test]
    fn internal_insert_and_split() {
        let mut n = TreeNode::internal(vec![10], vec![rid(0), rid(1)]);
        n.internal_insert(20, rid(2));
        n.internal_insert(5, rid(3));
        n.check_sorted().unwrap();
        assert_eq!(n.len(), 3);
        // keys [5,10,20], children [c0, c3, c1, c2]
        assert_eq!(n.child_for(7), rid(3));
        let (up, right) = n.split_internal();
        assert_eq!(up, 10);
        n.check_sorted().unwrap();
        right.check_sorted().unwrap();
        assert_eq!(n.len() + right.len(), 2, "promoted key in neither half");
    }

    #[test]
    fn encode_decode_round_trips() {
        let mut leaf = TreeNode::empty_leaf();
        for k in 0..7u64 {
            leaf.leaf_insert(k * 3, k);
        }
        assert_eq!(TreeNode::decode(&leaf.encode()).unwrap(), leaf);

        let internal = TreeNode::internal(vec![10, 20], vec![rid(0), rid(1), rid(2)]);
        assert_eq!(TreeNode::decode(&internal.encode()).unwrap(), internal);

        assert!(TreeNode::decode(&[0xFF, 0, 0]).is_err());
        assert!(TreeNode::decode(&[]).is_err());
    }

    #[test]
    fn children_covering_prunes() {
        let n = TreeNode::internal(vec![10, 20], vec![rid(0), rid(1), rid(2)]);
        let cover: Vec<bool> = n
            .children_covering(12, 15)
            .into_iter()
            .map(|(_, c)| c)
            .collect();
        assert_eq!(cover, vec![false, true, false]);
        let cover: Vec<bool> = n
            .children_covering(0, u64::MAX)
            .into_iter()
            .map(|(_, c)| c)
            .collect();
        assert_eq!(cover, vec![true, true, true]);
    }

    #[test]
    fn check_sorted_catches_corruption() {
        let n = TreeNode::internal(vec![20, 10], vec![rid(0), rid(1), rid(2)]);
        assert!(n.check_sorted().is_err());
    }
}
