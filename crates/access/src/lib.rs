//! A B+-tree access method built **entirely on the client-based-logging
//! transactional substrate**.
//!
//! Every tree node is one record in a slotted page; every structure
//! modification (leaf update, split, root growth) is an ordinary
//! logically-logged record operation executed inside the caller's
//! transaction. That buys, with zero additional recovery code:
//!
//! * **atomic structure modifications** — a transaction that aborts
//!   mid-split rolls the split back through the normal CLR path;
//! * **crash safety** — node records replay through the §2.3/§2.4
//!   NodePSNList protocol like any other page content;
//! * **distribution** — any node of the cluster can search or modify
//!   the tree; page-level callback locking serializes conflicting
//!   structure modifications.
//!
//! This is the pattern the paper's conclusion gestures at: the
//! BeSS storage manager the authors were integrating with provides
//! access methods above exactly this kind of transactional page/record
//! layer.
//!
//! Simplifications (documented, not hidden): fixed `u64 → u64`
//! key/value pairs; deletion does not rebalance underflowed nodes,
//! but a leaf that empties completely is folded out of its parent (a
//! structural merge that frees the node record); the fan-out is a
//! configurable constant so tests can force deep trees on few pages.
//!
//! Structural operations are observable: every traverse, split, and
//! merge bumps an `access/*` counter on the transaction's home node
//! and — when the cluster's causal tracer is on — emits a `Tree` span
//! under the transaction's span, so B+-tree work shows up in PSN
//! lineages and the Chrome trace next to the page transfers it causes.

mod node;

pub use node::{NodeKind, TreeNode};

use cblog_common::metrics::keys;
use cblog_common::span::{SpanKind, TreeOp};
use cblog_common::{Error, PageId, Result, Rid, TxnId};
use cblog_core::Cluster;

/// A B+-tree whose nodes live in slotted records of cluster pages.
#[derive(Clone, Debug)]
pub struct BTree {
    /// The root node's record id — stable for the tree's lifetime
    /// (root growth rewrites the root record in place).
    root: Rid,
    /// Pages providing node storage (must be slotted-formatted).
    pages: Vec<PageId>,
    /// Maximum entries per node before a split.
    max_entries: usize,
}

impl BTree {
    /// Creates an empty tree inside `txn`. The pages must already be
    /// slotted-formatted (see [`Cluster::format_slotted`]).
    pub fn create(
        cluster: &mut Cluster,
        txn: TxnId,
        pages: Vec<PageId>,
        max_entries: usize,
    ) -> Result<BTree> {
        if pages.is_empty() {
            return Err(Error::Invalid("btree needs at least one page".into()));
        }
        if max_entries < 2 {
            return Err(Error::Invalid("fan-out must be at least 2".into()));
        }
        let mut tree = BTree {
            root: Rid::new(pages[0], 0), // placeholder until the insert below
            pages,
            max_entries,
        };
        let root_node = TreeNode::empty_leaf();
        let bytes = tree.encode_padded(&root_node);
        tree.root = cluster.insert_record(txn, tree.pages[0], &bytes)?;
        Ok(tree)
    }

    /// The root record id.
    pub fn root(&self) -> Rid {
        self.root
    }

    /// Worst-case encoded node size for this fan-out: a node may
    /// temporarily hold `max_entries + 1` keys just before splitting.
    /// Records are padded to this size at allocation so in-place
    /// updates never need to grow (growth inside a full slotted page
    /// would fail).
    fn node_record_size(&self) -> usize {
        let m = self.max_entries;
        let leaf = 3 + (m + 1) * 16;
        let internal = 3 + (m + 2) * 10 + (m + 1) * 8;
        leaf.max(internal)
    }

    fn encode_padded(&self, node: &TreeNode) -> Vec<u8> {
        let mut bytes = node.encode();
        debug_assert!(bytes.len() <= self.node_record_size());
        bytes.resize(self.node_record_size(), 0);
        bytes
    }

    /// Counts a structural operation on the transaction's home node
    /// and emits a `Tree` span under the transaction's span when the
    /// cluster's tracer is on.
    fn note(&self, cluster: &Cluster, txn: TxnId, op: TreeOp) {
        let key = match op {
            TreeOp::Traverse => keys::ACCESS_TRAVERSES,
            TreeOp::Split => keys::ACCESS_SPLITS,
            TreeOp::Merge => keys::ACCESS_MERGES,
        };
        cluster.node(txn.node).registry().counter(key).bump();
        let tracer = cluster.tracer();
        if tracer.is_enabled() {
            let now = cluster.network().clock().now();
            tracer.point(
                now,
                txn.node,
                cluster.txn_ctx(txn).span,
                SpanKind::Tree { op, txn },
            );
        }
    }

    fn load(&self, cluster: &mut Cluster, txn: TxnId, rid: Rid) -> Result<TreeNode> {
        let bytes = cluster.read_record(txn, rid)?;
        TreeNode::decode(&bytes)
    }

    fn store(&self, cluster: &mut Cluster, txn: TxnId, rid: Rid, node: &TreeNode) -> Result<()> {
        cluster.update_record(txn, rid, &self.encode_padded(node))
    }

    fn alloc(&self, cluster: &mut Cluster, txn: TxnId, node: &TreeNode) -> Result<Rid> {
        let bytes = self.encode_padded(node);
        for &pid in &self.pages {
            match cluster.insert_record(txn, pid, &bytes) {
                Ok(rid) => return Ok(rid),
                Err(Error::Invalid(_)) => continue, // page full, try next
                Err(e) => return Err(e),
            }
        }
        Err(Error::Invalid("btree out of node storage".into()))
    }

    /// Looks a key up.
    pub fn get(&self, cluster: &mut Cluster, txn: TxnId, key: u64) -> Result<Option<u64>> {
        self.note(cluster, txn, TreeOp::Traverse);
        let mut rid = self.root;
        loop {
            let node = self.load(cluster, txn, rid)?;
            match node.kind() {
                NodeKind::Leaf => return Ok(node.leaf_get(key)),
                NodeKind::Internal => rid = node.child_for(key),
            }
        }
    }

    /// Inserts (or overwrites) a key. Splits propagate upward; if the
    /// root splits, the root record is rewritten in place as a new
    /// internal node so [`BTree::root`] stays valid.
    pub fn insert(&self, cluster: &mut Cluster, txn: TxnId, key: u64, value: u64) -> Result<()> {
        self.note(cluster, txn, TreeOp::Traverse);
        if let Some((sep, right_rid)) = self.insert_rec(cluster, txn, self.root, key, value)? {
            // Root split: move the current root contents into a new
            // record, rewrite the root record as an internal node over
            // [old-root-copy, right].
            let old_root = self.load(cluster, txn, self.root)?;
            let left_rid = self.alloc(cluster, txn, &old_root)?;
            let new_root = TreeNode::internal(vec![sep], vec![left_rid, right_rid]);
            self.store(cluster, txn, self.root, &new_root)?;
        }
        Ok(())
    }

    /// Recursive insert; returns `Some((separator, new_right_rid))` if
    /// this node split.
    fn insert_rec(
        &self,
        cluster: &mut Cluster,
        txn: TxnId,
        rid: Rid,
        key: u64,
        value: u64,
    ) -> Result<Option<(u64, Rid)>> {
        let mut node = self.load(cluster, txn, rid)?;
        match node.kind() {
            NodeKind::Leaf => {
                node.leaf_insert(key, value);
                if node.len() <= self.max_entries {
                    self.store(cluster, txn, rid, &node)?;
                    return Ok(None);
                }
                let (sep, right) = node.split_leaf();
                let right_rid = self.alloc(cluster, txn, &right)?;
                self.store(cluster, txn, rid, &node)?;
                self.note(cluster, txn, TreeOp::Split);
                Ok(Some((sep, right_rid)))
            }
            NodeKind::Internal => {
                let child = node.child_for(key);
                let split = self.insert_rec(cluster, txn, child, key, value)?;
                let Some((sep, right_rid)) = split else {
                    return Ok(None);
                };
                node.internal_insert(sep, right_rid);
                if node.len() <= self.max_entries {
                    self.store(cluster, txn, rid, &node)?;
                    return Ok(None);
                }
                let (up, right) = node.split_internal();
                let right_rid2 = self.alloc(cluster, txn, &right)?;
                self.store(cluster, txn, rid, &node)?;
                self.note(cluster, txn, TreeOp::Split);
                Ok(Some((up, right_rid2)))
            }
        }
    }

    /// Removes a key, returning its value. Underflowed nodes are not
    /// rebalanced, but a leaf that empties completely is merged away:
    /// its parent drops the separator and pointer and the node record
    /// is freed (all inside `txn`, so an abort restores it).
    pub fn delete(&self, cluster: &mut Cluster, txn: TxnId, key: u64) -> Result<Option<u64>> {
        self.note(cluster, txn, TreeOp::Traverse);
        let (old, _) = self.delete_rec(cluster, txn, self.root, key)?;
        Ok(old)
    }

    /// Recursive delete; returns `(removed_value, child_is_empty_leaf)`
    /// so the parent can fold an emptied leaf out of the tree.
    fn delete_rec(
        &self,
        cluster: &mut Cluster,
        txn: TxnId,
        rid: Rid,
        key: u64,
    ) -> Result<(Option<u64>, bool)> {
        let mut node = self.load(cluster, txn, rid)?;
        match node.kind() {
            NodeKind::Leaf => {
                let old = node.leaf_remove(key);
                if old.is_some() {
                    self.store(cluster, txn, rid, &node)?;
                }
                Ok((old, old.is_some() && node.is_empty()))
            }
            NodeKind::Internal => {
                let child = node.child_for(key);
                let (old, child_empty) = self.delete_rec(cluster, txn, child, key)?;
                // Merge an emptied leaf into its sibling's key range —
                // unless it is this node's only child (a lone empty
                // leaf is still a correct, if trivial, subtree).
                if child_empty && node.internal_remove_child(child) {
                    self.store(cluster, txn, rid, &node)?;
                    cluster.delete_record(txn, child)?;
                    self.note(cluster, txn, TreeOp::Merge);
                }
                Ok((old, false))
            }
        }
    }

    /// Returns all `(key, value)` pairs with `lo <= key <= hi`, in key
    /// order.
    pub fn range(
        &self,
        cluster: &mut Cluster,
        txn: TxnId,
        lo: u64,
        hi: u64,
    ) -> Result<Vec<(u64, u64)>> {
        self.note(cluster, txn, TreeOp::Traverse);
        let mut out = Vec::new();
        self.range_rec(cluster, txn, self.root, lo, hi, &mut out)?;
        Ok(out)
    }

    fn range_rec(
        &self,
        cluster: &mut Cluster,
        txn: TxnId,
        rid: Rid,
        lo: u64,
        hi: u64,
        out: &mut Vec<(u64, u64)>,
    ) -> Result<()> {
        let node = self.load(cluster, txn, rid)?;
        match node.kind() {
            NodeKind::Leaf => {
                for (k, v) in node.leaf_entries() {
                    if k >= lo && k <= hi {
                        out.push((k, v));
                    }
                }
            }
            NodeKind::Internal => {
                for (child, covers) in node.children_covering(lo, hi) {
                    if covers {
                        self.range_rec(cluster, txn, child, lo, hi, out)?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Number of live entries (full scan; for tests and stats).
    pub fn len(&self, cluster: &mut Cluster, txn: TxnId) -> Result<usize> {
        Ok(self.range(cluster, txn, 0, u64::MAX)?.len())
    }

    /// True if the tree holds no entries.
    pub fn is_empty(&self, cluster: &mut Cluster, txn: TxnId) -> Result<bool> {
        Ok(self.len(cluster, txn)? == 0)
    }

    /// Tree depth (root to leaf; for tests).
    pub fn depth(&self, cluster: &mut Cluster, txn: TxnId) -> Result<usize> {
        let mut rid = self.root;
        let mut d = 1;
        loop {
            let node = self.load(cluster, txn, rid)?;
            match node.kind() {
                NodeKind::Leaf => return Ok(d),
                NodeKind::Internal => {
                    rid = node.first_child();
                    d += 1;
                }
            }
        }
    }

    /// Structural sanity check: keys sorted in every node, children
    /// ranges consistent with separators. Returns the entry count.
    pub fn check(&self, cluster: &mut Cluster, txn: TxnId) -> Result<usize> {
        self.check_rec(cluster, txn, self.root, 0, u64::MAX)
    }

    fn check_rec(
        &self,
        cluster: &mut Cluster,
        txn: TxnId,
        rid: Rid,
        lo: u64,
        hi: u64,
    ) -> Result<usize> {
        let node = self.load(cluster, txn, rid)?;
        node.check_sorted()?;
        match node.kind() {
            NodeKind::Leaf => {
                for (k, _) in node.leaf_entries() {
                    if k < lo || k > hi {
                        return Err(Error::Protocol(format!("leaf key {k} outside [{lo},{hi}]")));
                    }
                }
                Ok(node.len())
            }
            NodeKind::Internal => {
                let mut total = 0;
                for (child, clo, chi) in node.child_bounds(lo, hi) {
                    total += self.check_rec(cluster, txn, child, clo, chi)?;
                }
                Ok(total)
            }
        }
    }
}
