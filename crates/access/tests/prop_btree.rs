//! Property test: random operation sequences on the B+-tree match a
//! `BTreeMap` model, across random fan-outs, with a structural check
//! and a crash/recovery round at the end of every case.

use cblog_access::BTree;
use cblog_common::{CostModel, NodeId, PageId};
use cblog_core::{recovery, Cluster, ClusterConfig, NodeConfig};
use proptest::prelude::*;
use std::collections::BTreeMap;

const TREE_PAGES: u32 = 16;

fn cluster() -> (Cluster, Vec<PageId>) {
    let mut c = Cluster::new(ClusterConfig {
        node_count: 2,
        owned_pages: vec![TREE_PAGES, 0],
        default_node: NodeConfig {
            page_size: 2048,
            buffer_frames: 32,
            owned_pages: 0,
            log_capacity: None,
        },
        cost: CostModel::unit(),
        force_on_transfer: false,
    })
    .unwrap();
    let pages: Vec<PageId> = (0..TREE_PAGES).map(|i| PageId::new(NodeId(0), i)).collect();
    for p in &pages {
        c.format_slotted(*p).unwrap();
    }
    (c, pages)
}

#[derive(Clone, Debug)]
enum TreeOp {
    Insert(u64, u64),
    Delete(u64),
    Get(u64),
    Range(u64, u64),
}

fn tree_op() -> impl Strategy<Value = TreeOp> {
    prop_oneof![
        3 => (0u64..64, any::<u64>()).prop_map(|(k, v)| TreeOp::Insert(k, v)),
        1 => (0u64..64).prop_map(TreeOp::Delete),
        1 => (0u64..64).prop_map(TreeOp::Get),
        1 => (0u64..64, 0u64..64).prop_map(|(a, b)| TreeOp::Range(a.min(b), a.max(b))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn btree_matches_model_and_survives_crash(
        ops in prop::collection::vec(tree_op(), 1..120),
        fanout in 3usize..10,
    ) {
        let (mut c, pages) = cluster();
        let t = c.begin(NodeId(1)).unwrap();
        let tree = BTree::create(&mut c, t, pages.clone(), fanout).unwrap();
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        for op in &ops {
            match op {
                TreeOp::Insert(k, v) => {
                    tree.insert(&mut c, t, *k, *v).unwrap();
                    model.insert(*k, *v);
                }
                TreeOp::Delete(k) => {
                    let got = tree.delete(&mut c, t, *k).unwrap();
                    prop_assert_eq!(got, model.remove(k));
                }
                TreeOp::Get(k) => {
                    prop_assert_eq!(tree.get(&mut c, t, *k).unwrap(), model.get(k).copied());
                }
                TreeOp::Range(lo, hi) => {
                    let got = tree.range(&mut c, t, *lo, *hi).unwrap();
                    let want: Vec<(u64, u64)> =
                        model.range(*lo..=*hi).map(|(k, v)| (*k, *v)).collect();
                    prop_assert_eq!(got, want);
                }
            }
        }
        prop_assert_eq!(tree.check(&mut c, t).unwrap(), model.len());
        c.commit(t).unwrap();
        // Crash the owner with the current images only in its buffer;
        // the recovered tree must still match the model.
        for p in &pages {
            let _ = c.evict_page(NodeId(1), *p);
        }
        c.crash(NodeId(0));
        recovery::recover_single(&mut c, NodeId(0)).unwrap();
        let t = c.begin(NodeId(1)).unwrap();
        prop_assert_eq!(tree.check(&mut c, t).unwrap(), model.len());
        for (k, v) in &model {
            prop_assert_eq!(tree.get(&mut c, t, *k).unwrap(), Some(*v));
        }
        c.commit(t).unwrap();
    }
}
