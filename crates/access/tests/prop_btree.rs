//! Randomized model test: random operation sequences on the B+-tree
//! match a `BTreeMap` model, across random fan-outs, with a structural
//! check and a crash/recovery round at the end of every case.
//!
//! Uses the workspace's deterministic `Rng` (the build has no
//! crates.io access, so no proptest); every case is reproducible from
//! its printed seed.

use cblog_access::BTree;
use cblog_common::{CostModel, NodeId, PageId, Rng};
use cblog_core::{recovery, Cluster, ClusterConfig, RecoveryOptions};
use std::collections::BTreeMap;

const TREE_PAGES: u32 = 16;

fn cluster() -> (Cluster, Vec<PageId>) {
    let mut c = Cluster::new(
        ClusterConfig::builder()
            .owned_pages(vec![TREE_PAGES, 0])
            .page_size(2048)
            .buffer_frames(32)
            .default_owned_pages(0)
            .cost(CostModel::unit())
            .build(),
    )
    .unwrap();
    let pages: Vec<PageId> = (0..TREE_PAGES).map(|i| PageId::new(NodeId(0), i)).collect();
    for p in &pages {
        c.format_slotted(*p).unwrap();
    }
    (c, pages)
}

#[derive(Clone, Debug)]
enum TreeOp {
    Insert(u64, u64),
    Delete(u64),
    Get(u64),
    Range(u64, u64),
}

fn gen_op(rng: &mut Rng) -> TreeOp {
    // Weights mirror the original proptest strategy: 3:1:1:1.
    match rng.gen_range(0..6) {
        0..=2 => TreeOp::Insert(rng.gen_range(0..64), rng.next_u64()),
        3 => TreeOp::Delete(rng.gen_range(0..64)),
        4 => TreeOp::Get(rng.gen_range(0..64)),
        _ => {
            let a = rng.gen_range(0..64);
            let b = rng.gen_range(0..64);
            TreeOp::Range(a.min(b), a.max(b))
        }
    }
}

#[test]
fn btree_matches_model_and_survives_crash() {
    for case in 0u64..16 {
        let mut rng = Rng::seed_from_u64(0xB7EE_0000 + case);
        let n_ops = rng.gen_range_usize(1..120);
        let fanout = rng.gen_range_usize(3..10);
        let (mut c, pages) = cluster();
        let t = c.begin(NodeId(1)).unwrap();
        let tree = BTree::create(&mut c, t, pages.clone(), fanout).unwrap();
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        for _ in 0..n_ops {
            match gen_op(&mut rng) {
                TreeOp::Insert(k, v) => {
                    tree.insert(&mut c, t, k, v).unwrap();
                    model.insert(k, v);
                }
                TreeOp::Delete(k) => {
                    let got = tree.delete(&mut c, t, k).unwrap();
                    assert_eq!(got, model.remove(&k), "case {case}");
                }
                TreeOp::Get(k) => {
                    assert_eq!(
                        tree.get(&mut c, t, k).unwrap(),
                        model.get(&k).copied(),
                        "case {case}"
                    );
                }
                TreeOp::Range(lo, hi) => {
                    let got = tree.range(&mut c, t, lo, hi).unwrap();
                    let want: Vec<(u64, u64)> =
                        model.range(lo..=hi).map(|(k, v)| (*k, *v)).collect();
                    assert_eq!(got, want, "case {case}");
                }
            }
        }
        assert_eq!(tree.check(&mut c, t).unwrap(), model.len(), "case {case}");
        c.commit(t).unwrap();
        // Crash the owner with the current images only in its buffer;
        // the recovered tree must still match the model.
        for p in &pages {
            let _ = c.evict_page(NodeId(1), *p);
        }
        c.crash(NodeId(0));
        recovery::recover(&mut c, &RecoveryOptions::single(NodeId(0))).unwrap();
        let t = c.begin(NodeId(1)).unwrap();
        assert_eq!(tree.check(&mut c, t).unwrap(), model.len(), "case {case}");
        for (k, v) in &model {
            assert_eq!(tree.get(&mut c, t, *k).unwrap(), Some(*v), "case {case}");
        }
        c.commit(t).unwrap();
    }
}
