//! B+-tree over the transactional cluster: correctness against a
//! `BTreeMap` model, atomicity of aborted splits, crash recovery of
//! the tree structure, and multi-node access.

use cblog_access::BTree;
use cblog_common::{CostModel, NodeId, PageId, Rng};
use cblog_core::{recovery, Cluster, ClusterConfig, RecoveryOptions};
use std::collections::BTreeMap;

const TREE_PAGES: u32 = 24;

fn cluster(clients: usize) -> (Cluster, Vec<PageId>) {
    let mut owned = vec![TREE_PAGES];
    owned.extend(std::iter::repeat(0).take(clients));
    let mut c = Cluster::new(
        ClusterConfig::builder()
            .owned_pages(owned)
            .page_size(2048)
            .buffer_frames(48)
            .default_owned_pages(0)
            .cost(CostModel::unit())
            .build(),
    )
    .unwrap();
    let pages: Vec<PageId> = (0..TREE_PAGES).map(|i| PageId::new(NodeId(0), i)).collect();
    for p in &pages {
        c.format_slotted(*p).unwrap();
    }
    (c, pages)
}

#[test]
fn insert_get_matches_btreemap_through_splits() {
    let (mut c, pages) = cluster(1);
    let t = c.begin(NodeId(1)).unwrap();
    let tree = BTree::create(&mut c, t, pages, 8).unwrap();
    let mut model = BTreeMap::new();
    let mut rng = Rng::seed_from_u64(7);
    let mut keys: Vec<u64> = (0..400).map(|i| i * 3).collect();
    rng.shuffle(&mut keys);
    for &k in &keys {
        tree.insert(&mut c, t, k, k + 1).unwrap();
        model.insert(k, k + 1);
    }
    assert!(tree.depth(&mut c, t).unwrap() >= 3, "splits happened");
    assert_eq!(tree.check(&mut c, t).unwrap(), model.len());
    for &k in &keys {
        assert_eq!(tree.get(&mut c, t, k).unwrap(), Some(k + 1));
    }
    // Absent keys.
    assert_eq!(tree.get(&mut c, t, 1).unwrap(), None);
    assert_eq!(tree.get(&mut c, t, u64::MAX).unwrap(), None);
    c.commit(t).unwrap();
}

#[test]
fn overwrite_and_delete_match_model() {
    let (mut c, pages) = cluster(1);
    let t = c.begin(NodeId(1)).unwrap();
    let tree = BTree::create(&mut c, t, pages, 6).unwrap();
    let mut model = BTreeMap::new();
    let mut rng = Rng::seed_from_u64(8);
    for _ in 0..600 {
        let k = rng.gen_range(0..200u64);
        match rng.gen_range(0..3u64) {
            0 | 1 => {
                let v = rng.gen_range(0..1_000_000u64);
                tree.insert(&mut c, t, k, v).unwrap();
                model.insert(k, v);
            }
            _ => {
                let got = tree.delete(&mut c, t, k).unwrap();
                assert_eq!(got, model.remove(&k));
            }
        }
    }
    assert_eq!(tree.check(&mut c, t).unwrap(), model.len());
    for (k, v) in &model {
        assert_eq!(tree.get(&mut c, t, *k).unwrap(), Some(*v));
    }
    c.commit(t).unwrap();
}

#[test]
fn range_scans_match_model() {
    let (mut c, pages) = cluster(1);
    let t = c.begin(NodeId(1)).unwrap();
    let tree = BTree::create(&mut c, t, pages, 5).unwrap();
    let mut model = BTreeMap::new();
    for k in (0..300u64).step_by(2) {
        tree.insert(&mut c, t, k, k * 7).unwrap();
        model.insert(k, k * 7);
    }
    for (lo, hi) in [
        (0u64, 10u64),
        (37, 153),
        (0, u64::MAX),
        (299, 299),
        (500, 600),
    ] {
        let got = tree.range(&mut c, t, lo, hi).unwrap();
        let want: Vec<(u64, u64)> = model.range(lo..=hi).map(|(k, v)| (*k, *v)).collect();
        assert_eq!(got, want, "range [{lo},{hi}]");
    }
    c.commit(t).unwrap();
}

#[test]
fn aborted_bulk_insert_rolls_back_splits() {
    let (mut c, pages) = cluster(1);
    // Build and commit a small tree.
    let t = c.begin(NodeId(1)).unwrap();
    let tree = BTree::create(&mut c, t, pages, 4).unwrap();
    for k in 0..10u64 {
        tree.insert(&mut c, t, k, k).unwrap();
    }
    c.commit(t).unwrap();
    let t = c.begin(NodeId(1)).unwrap();
    let depth_before = tree.depth(&mut c, t).unwrap();
    let count_before = tree.check(&mut c, t).unwrap();
    c.commit(t).unwrap();
    // A big insert burst that forces deep splits, then abort.
    let t = c.begin(NodeId(1)).unwrap();
    for k in 100..250u64 {
        tree.insert(&mut c, t, k, k).unwrap();
    }
    assert!(tree.depth(&mut c, t).unwrap() > depth_before);
    c.abort(t).unwrap();
    // Everything — leaf contents AND structure records — rolled back.
    let t = c.begin(NodeId(1)).unwrap();
    assert_eq!(tree.depth(&mut c, t).unwrap(), depth_before);
    assert_eq!(tree.check(&mut c, t).unwrap(), count_before);
    for k in 0..10u64 {
        assert_eq!(tree.get(&mut c, t, k).unwrap(), Some(k));
    }
    assert_eq!(tree.get(&mut c, t, 150).unwrap(), None);
    c.commit(t).unwrap();
}

#[test]
fn tree_survives_owner_crash_and_recovery() {
    let (mut c, pages) = cluster(2);
    let t = c.begin(NodeId(1)).unwrap();
    let tree = BTree::create(&mut c, t, pages.clone(), 6).unwrap();
    for k in 0..200u64 {
        tree.insert(&mut c, t, k, k * 2).unwrap();
    }
    c.commit(t).unwrap();
    // Push every tree page's current image to the owner buffer, then
    // crash the owner: the tree must be rebuilt from the client's log.
    for p in &pages {
        let _ = c.evict_page(NodeId(1), *p);
    }
    c.crash(NodeId(0));
    let rep = recovery::recover(&mut c, &RecoveryOptions::single(NodeId(0))).unwrap();
    assert!(rep.pages_recovered > 0);
    // Full structural check + all lookups through the other client.
    let t = c.begin(NodeId(2)).unwrap();
    assert_eq!(tree.check(&mut c, t).unwrap(), 200);
    for k in 0..200u64 {
        assert_eq!(tree.get(&mut c, t, k).unwrap(), Some(k * 2));
    }
    c.commit(t).unwrap();
}

#[test]
fn two_clients_share_the_tree() {
    let (mut c, pages) = cluster(2);
    let t = c.begin(NodeId(1)).unwrap();
    let tree = BTree::create(&mut c, t, pages, 8).unwrap();
    c.commit(t).unwrap();
    // Alternating writers (serialized by page locks at this scale).
    for round in 0..20u64 {
        for client in [1u32, 2] {
            let key = round * 10 + client as u64;
            let t = c.begin(NodeId(client)).unwrap();
            tree.insert(&mut c, t, key, key * 100).unwrap();
            c.commit(t).unwrap();
        }
    }
    let t = c.begin(NodeId(2)).unwrap();
    assert_eq!(tree.check(&mut c, t).unwrap(), 40);
    for round in 0..20u64 {
        for client in [1u64, 2] {
            let key = round * 10 + client;
            assert_eq!(tree.get(&mut c, t, key).unwrap(), Some(key * 100));
        }
    }
    c.commit(t).unwrap();
}

#[test]
fn index_spanning_two_owners_survives_either_owner_crash() {
    // Tree node pages split across two owner nodes: the index itself
    // is distributed, and recovering either owner rebuilds its half.
    let mut c = Cluster::new(
        ClusterConfig::builder()
            .owned_pages(vec![12, 12, 0, 0])
            .page_size(2048)
            .buffer_frames(48)
            .default_owned_pages(0)
            .cost(CostModel::unit())
            .build(),
    )
    .unwrap();
    let mut pages: Vec<PageId> = Vec::new();
    for owner in [0u32, 1] {
        for i in 0..12 {
            let p = PageId::new(NodeId(owner), i);
            c.format_slotted(p).unwrap();
            pages.push(p);
        }
    }
    // Interleave so node records land on both owners.
    let interleaved: Vec<PageId> = (0..12).flat_map(|i| [pages[i], pages[12 + i]]).collect();
    let t = c.begin(NodeId(2)).unwrap();
    let tree = BTree::create(&mut c, t, interleaved.clone(), 6).unwrap();
    for k in 0..250u64 {
        tree.insert(&mut c, t, k, k + 1).unwrap();
    }
    c.commit(t).unwrap();
    for victim in [NodeId(0), NodeId(1)] {
        for p in &interleaved {
            let _ = c.evict_page(NodeId(2), *p);
            let _ = c.evict_page(NodeId(3), *p);
        }
        c.crash(victim);
        recovery::recover(&mut c, &RecoveryOptions::single(victim)).unwrap();
        let t = c.begin(NodeId(3)).unwrap();
        assert_eq!(tree.check(&mut c, t).unwrap(), 250);
        for k in (0..250u64).step_by(17) {
            assert_eq!(tree.get(&mut c, t, k).unwrap(), Some(k + 1));
        }
        c.commit(t).unwrap();
    }
}

#[test]
fn crash_mid_transaction_loses_uncommitted_tree_growth() {
    let (mut c, pages) = cluster(2);
    let t = c.begin(NodeId(1)).unwrap();
    let tree = BTree::create(&mut c, t, pages, 4).unwrap();
    for k in 0..20u64 {
        tree.insert(&mut c, t, k, k).unwrap();
    }
    c.commit(t).unwrap();
    // Uncommitted burst with durable records, then client crash.
    let t = c.begin(NodeId(1)).unwrap();
    for k in 100..160u64 {
        tree.insert(&mut c, t, k, k).unwrap();
    }
    c.node_mut(NodeId(1)).force_log().unwrap();
    c.crash(NodeId(1));
    let rep = recovery::recover(&mut c, &RecoveryOptions::single(NodeId(1))).unwrap();
    assert_eq!(rep.losers_undone, 1);
    let t = c.begin(NodeId(2)).unwrap();
    assert_eq!(tree.check(&mut c, t).unwrap(), 20, "burst undone");
    for k in 0..20u64 {
        assert_eq!(tree.get(&mut c, t, k).unwrap(), Some(k));
    }
    c.commit(t).unwrap();
}

#[test]
fn structural_ops_are_counted_and_traced() {
    use cblog_common::metrics::keys;
    use cblog_common::span::{SpanKind, TreeOp};
    let mut owned = vec![TREE_PAGES, 0];
    owned.truncate(2);
    let mut c = Cluster::new(
        ClusterConfig::builder()
            .owned_pages(owned)
            .page_size(2048)
            .buffer_frames(48)
            .default_owned_pages(0)
            .cost(CostModel::unit())
            .tracing(true)
            .build(),
    )
    .unwrap();
    let pages: Vec<PageId> = (0..TREE_PAGES).map(|i| PageId::new(NodeId(0), i)).collect();
    for p in &pages {
        c.format_slotted(*p).unwrap();
    }
    let t = c.begin(NodeId(1)).unwrap();
    let tree = BTree::create(&mut c, t, pages, 4).unwrap();
    for k in 0..60u64 {
        tree.insert(&mut c, t, k, k).unwrap();
    }
    assert_eq!(tree.get(&mut c, t, 30).unwrap(), Some(30));
    for k in 0..60u64 {
        tree.delete(&mut c, t, k).unwrap();
    }
    assert_eq!(
        tree.check(&mut c, t).unwrap(),
        0,
        "tree emptied, still sound"
    );
    c.commit(t).unwrap();

    let reg = c.node(NodeId(1)).registry();
    let traverses = reg.counter(keys::ACCESS_TRAVERSES).get();
    let splits = reg.counter(keys::ACCESS_SPLITS).get();
    let merges = reg.counter(keys::ACCESS_MERGES).get();
    assert!(
        traverses >= 121,
        "get+insert+delete each traverse: {traverses}"
    );
    assert!(splits > 0, "fan-out 4 over 60 keys splits: {splits}");
    assert!(merges > 0, "emptied leaves merge away: {merges}");

    // The spans mirror the counters and hang off the transaction span.
    let spans = c.tracer().spans();
    let tree_spans: Vec<_> = spans
        .iter()
        .filter_map(|s| match s.kind {
            SpanKind::Tree { op, .. } => Some((op, s.parent)),
            _ => None,
        })
        .collect();
    let count = |want: TreeOp| tree_spans.iter().filter(|(op, _)| *op == want).count() as u64;
    assert_eq!(count(TreeOp::Traverse), traverses);
    assert_eq!(count(TreeOp::Split), splits);
    assert_eq!(count(TreeOp::Merge), merges);
    assert!(
        tree_spans.iter().all(|(_, parent)| !parent.is_none()),
        "tree spans are parented under their transaction"
    );
    c.trace_check().unwrap();
}
