//! Real message transport for the threaded runtime.
//!
//! The simulator's [`Network`](crate::Network) accounts logical
//! messages and charges the simulated clock, but actual data moves by
//! direct call on one thread. The threaded runtime needs messages to
//! cross real OS threads, so this module provides a small transport
//! interface and an implementation over `std::sync::mpsc` channels: a
//! full mesh where every node holds a clone of every other node's
//! sender and its own receiver.
//!
//! Guarantees the runtime relies on:
//!
//! - **Per-link FIFO.** An mpsc channel delivers a single sender's
//!   messages in send order, so messages from node A to node B arrive
//!   in the order A sent them (no cross-link ordering is promised,
//!   matching a real network).
//! - **No silent loss.** A send to a node whose endpoint has been
//!   dropped fails with [`Error::NodeDown`] — the sender finds out.
//!   Messages still queued when an endpoint shuts down are counted by
//!   [`ChannelEndpoint::drain`], so `sent == received + drained` holds
//!   across the mesh and tests can assert nothing vanished.

use crate::MsgKind;
use cblog_common::{Error, NodeId, Result, SpanCtx};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::Arc;
use std::time::Duration;

/// One protocol message in flight between two nodes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Envelope {
    /// Sending node.
    pub from: NodeId,
    /// Destination node.
    pub to: NodeId,
    /// Protocol message type (shared taxonomy with the simulator).
    pub kind: MsgKind,
    /// Opaque payload, encoded by the protocol layer.
    pub payload: Vec<u8>,
    /// Causal span context of the send — the channel-mesh analogue of
    /// the simulator's `MsgHeader`, so the receiving side can parent
    /// its spans on the message that caused them. [`SpanCtx::NONE`]
    /// when the sender is not tracing.
    pub ctx: SpanCtx,
}

/// Node-local handle on an inter-thread message fabric.
///
/// Implementations must be `Send` so a handle can move into the worker
/// thread that owns the node.
pub trait Transport: Send {
    /// The node this endpoint belongs to.
    fn node(&self) -> NodeId;

    /// Number of nodes in the mesh.
    fn node_count(&self) -> usize;

    /// Sends `payload` to `to`. Fails with [`Error::NodeDown`] if the
    /// destination endpoint has shut down.
    fn send(&self, to: NodeId, kind: MsgKind, payload: Vec<u8>) -> Result<()> {
        self.send_ctx(to, kind, payload, SpanCtx::NONE)
    }

    /// As [`Transport::send`], carrying the sender's causal span
    /// context in the message header.
    fn send_ctx(&self, to: NodeId, kind: MsgKind, payload: Vec<u8>, ctx: SpanCtx) -> Result<()>;

    /// Non-blocking receive; `None` when the queue is empty.
    fn try_recv(&self) -> Option<Envelope>;

    /// Blocking receive with a timeout; `None` on timeout or when all
    /// senders are gone.
    fn recv_timeout(&self, timeout: Duration) -> Option<Envelope>;

    /// Messages successfully handed to the fabric by this endpoint.
    fn sent(&self) -> u64;

    /// Messages received (via `try_recv` / `recv_timeout`) by this
    /// endpoint.
    fn received(&self) -> u64;
}

/// Full-mesh channel transport: constructor for a set of connected
/// [`ChannelEndpoint`]s.
pub struct ChannelMesh;

impl ChannelMesh {
    /// Builds an `n`-node mesh and returns one endpoint per node,
    /// indexed by node id. Move each endpoint into its node's worker
    /// thread.
    pub fn endpoints(n: usize) -> Vec<ChannelEndpoint> {
        let mut senders = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = channel();
            senders.push(tx);
            receivers.push(rx);
        }
        receivers
            .into_iter()
            .enumerate()
            .map(|(i, rx)| ChannelEndpoint {
                node: NodeId(i as u32),
                peers: senders.clone(),
                rx,
                sent: Arc::new(AtomicU64::new(0)),
                received: Arc::new(AtomicU64::new(0)),
                drained: Arc::new(AtomicU64::new(0)),
            })
            .collect()
    }
}

/// One node's endpoint on a [`ChannelMesh`]: senders to every peer
/// (including itself) plus its own receive queue.
pub struct ChannelEndpoint {
    node: NodeId,
    peers: Vec<Sender<Envelope>>,
    rx: Receiver<Envelope>,
    sent: Arc<AtomicU64>,
    received: Arc<AtomicU64>,
    drained: Arc<AtomicU64>,
}

impl ChannelEndpoint {
    /// Consumes and counts every message still queued, for shutdown
    /// accounting. After draining, `sent` across the mesh equals
    /// `received + drained` across the mesh. Returns the number
    /// drained by this call.
    pub fn drain(&self) -> u64 {
        let mut n = 0;
        while self.rx.try_recv().is_ok() {
            n += 1;
        }
        self.drained.fetch_add(n, Ordering::Relaxed);
        n
    }

    /// Messages drained at shutdown (never handed to the protocol).
    pub fn drained(&self) -> u64 {
        self.drained.load(Ordering::Relaxed)
    }
}

impl Transport for ChannelEndpoint {
    fn node(&self) -> NodeId {
        self.node
    }

    fn node_count(&self) -> usize {
        self.peers.len()
    }

    fn send_ctx(&self, to: NodeId, kind: MsgKind, payload: Vec<u8>, ctx: SpanCtx) -> Result<()> {
        let tx = self
            .peers
            .get(to.0 as usize)
            .ok_or_else(|| Error::Invalid(format!("send to unknown node {}", to.0)))?;
        let env = Envelope {
            from: self.node,
            to,
            kind,
            payload,
            ctx,
        };
        match tx.send(env) {
            Ok(()) => {
                self.sent.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Err(_) => Err(Error::NodeDown(to)),
        }
    }

    fn try_recv(&self) -> Option<Envelope> {
        match self.rx.try_recv() {
            Ok(env) => {
                self.received.fetch_add(1, Ordering::Relaxed);
                Some(env)
            }
            Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => None,
        }
    }

    fn recv_timeout(&self, timeout: Duration) -> Option<Envelope> {
        match self.rx.recv_timeout(timeout) {
            Ok(env) => {
                self.received.fetch_add(1, Ordering::Relaxed);
                Some(env)
            }
            Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => None,
        }
    }

    fn sent(&self) -> u64 {
        self.sent.load(Ordering::Relaxed)
    }

    fn received(&self) -> u64 {
        self.received.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn seq_payload(i: u64) -> Vec<u8> {
        i.to_le_bytes().to_vec()
    }

    fn seq_of(env: &Envelope) -> u64 {
        u64::from_le_bytes(env.payload.as_slice().try_into().unwrap())
    }

    #[test]
    fn per_link_delivery_is_in_order() {
        let mut eps = ChannelMesh::endpoints(3);
        let receiver = eps.remove(0);
        const N: u64 = 1000;
        thread::scope(|s| {
            for ep in eps {
                s.spawn(move || {
                    for i in 0..N {
                        ep.send(NodeId(0), MsgKind::PageShip, seq_payload(i))
                            .unwrap();
                    }
                });
            }
            s.spawn(move || {
                // Track the last sequence number seen per sender; each
                // link must deliver in send order even though the two
                // links interleave arbitrarily.
                let mut last = [None::<u64>; 3];
                for _ in 0..2 * N {
                    let env = receiver
                        .recv_timeout(Duration::from_secs(5))
                        .expect("receive timed out");
                    let seq = seq_of(&env);
                    if let Some(prev) = last[env.from.0 as usize] {
                        assert!(
                            seq > prev,
                            "link {} reordered: {seq} after {prev}",
                            env.from.0
                        );
                    }
                    last[env.from.0 as usize] = Some(seq);
                }
                assert_eq!(receiver.received(), 2 * N);
                assert_eq!(last[1], Some(N - 1));
                assert_eq!(last[2], Some(N - 1));
            });
        });
    }

    #[test]
    fn send_to_down_node_fails_and_nothing_is_lost_silently() {
        let mut eps = ChannelMesh::endpoints(2);
        let b = eps.remove(1);
        let a = eps.remove(0);

        // A sends some traffic B never consumes, then B shuts down.
        for i in 0..10 {
            a.send(NodeId(1), MsgKind::Callback, seq_payload(i))
                .unwrap();
        }
        let drained = b.drain();
        assert_eq!(drained, 10, "queued messages are accounted at shutdown");
        assert_eq!(a.sent(), b.received() + b.drained());
        drop(b);

        // Further sends to the downed node fail loudly instead of
        // disappearing, and are not counted as sent.
        let before = a.sent();
        match a.send(NodeId(1), MsgKind::Callback, vec![]) {
            Err(Error::NodeDown(n)) => assert_eq!(n, NodeId(1)),
            other => panic!("expected NodeDown, got {other:?}"),
        }
        assert_eq!(a.sent(), before);
    }

    #[test]
    fn self_send_and_bounds() {
        let mut eps = ChannelMesh::endpoints(1);
        let a = eps.remove(0);
        assert_eq!(a.node(), NodeId(0));
        assert_eq!(a.node_count(), 1);
        a.send(NodeId(0), MsgKind::FlushAck, vec![7]).unwrap();
        let env = a.try_recv().unwrap();
        assert_eq!(env.from, NodeId(0));
        assert_eq!(env.kind, MsgKind::FlushAck);
        assert_eq!(env.payload, vec![7]);
        assert_eq!(env.ctx, SpanCtx::NONE, "plain send carries no context");
        assert!(a.try_recv().is_none());
        assert!(a.send(NodeId(9), MsgKind::FlushAck, vec![]).is_err());
    }

    #[test]
    fn span_context_rides_the_header() {
        use cblog_common::SpanId;
        let mut eps = ChannelMesh::endpoints(1);
        let a = eps.remove(0);
        let ctx = SpanCtx::child(SpanId(9), SpanId(3));
        a.send_ctx(NodeId(0), MsgKind::LockRequest, vec![1], ctx)
            .unwrap();
        let env = a.try_recv().unwrap();
        assert_eq!(env.ctx, ctx, "causal context survives the channel");
    }
}
