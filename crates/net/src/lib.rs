//! Accounted message transport for the deterministic cluster.
//!
//! The paper's performance case is made in message and I/O counts; the
//! [`Network`] records every logical protocol message (kind, size,
//! endpoints), charges the simulated clock, and enforces reachability
//! (sending to a crashed node fails, so protocols must handle it).
//! Actual data transfer in the simulator happens by direct call —
//! after the send has been accounted — which keeps runs deterministic
//! and the protocol state machines synchronous.

use cblog_common::{CostModel, Error, NodeId, Result, SimClock, SimTime};
use std::collections::HashSet;

/// Every message type exchanged by any protocol in the workspace,
/// including the baselines (so experiment tables can break traffic down
/// uniformly).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[allow(missing_docs)]
pub enum MsgKind {
    // ---- normal processing (paper §2.2) ----
    /// Lock request forwarded to the owner node.
    LockRequest,
    /// Owner grants a lock (optionally shipping the page).
    LockGrant,
    /// Page image shipped owner → requester.
    PageShip,
    /// Callback sent to a holder of a conflicting lock.
    Callback,
    /// Holder acknowledges a callback (optionally returning the page).
    CallbackAck,
    /// Dirty remote page replaced from a cache, sent to its owner.
    ReplacePage,
    /// §2.5: ask the owner to force a page to disk.
    ForceRequest,
    /// Owner tells past replacers that a page hit the disk.
    FlushAck,
    // ---- commit-time traffic (baselines; CBL sends none) ----
    /// ARIES/CSA-style shipping of log records to the server.
    LogShip,
    /// Commit request to the server.
    CommitRequest,
    /// Server acknowledges a commit after forcing its log.
    CommitAck,
    /// Server-coordinated checkpoint round (ARIES/CSA §3.1).
    CheckpointSync,
    // ---- crash recovery (paper §2.3 / §2.4) ----
    /// Crashed node asks an operational node for its cache list + DPT
    /// entries for pages the crashed node owns.
    RecoveryInfoRequest,
    /// The reply: cached-page list and DPT entries.
    RecoveryInfoReply,
    /// Crashed node pulls a cached page copy from a holder.
    RecoveryPageFetch,
    /// Lock lists shipped to the recovering node (§2.3.3).
    LockListShip,
    /// Recovering node sends the list of pages needing recovery and
    /// asks for the NodePSNList (§2.3.4).
    PsnListRequest,
    /// NodePSNList reply.
    PsnListReply,
    /// Coordinator sends a page (plus PSN bound) to a node for replay.
    RecoveryPageSend,
    /// Node returns the partially recovered page.
    RecoveryPageReturn,
    /// Recovery-complete broadcast.
    RecoveryDone,
}

impl MsgKind {
    /// All kinds, for iteration in reports.
    pub const ALL: [MsgKind; 21] = [
        MsgKind::LockRequest,
        MsgKind::LockGrant,
        MsgKind::PageShip,
        MsgKind::Callback,
        MsgKind::CallbackAck,
        MsgKind::ReplacePage,
        MsgKind::ForceRequest,
        MsgKind::FlushAck,
        MsgKind::LogShip,
        MsgKind::CommitRequest,
        MsgKind::CommitAck,
        MsgKind::CheckpointSync,
        MsgKind::RecoveryInfoRequest,
        MsgKind::RecoveryInfoReply,
        MsgKind::RecoveryPageFetch,
        MsgKind::LockListShip,
        MsgKind::PsnListRequest,
        MsgKind::PsnListReply,
        MsgKind::RecoveryPageSend,
        MsgKind::RecoveryPageReturn,
        MsgKind::RecoveryDone,
    ];

    fn index(self) -> usize {
        MsgKind::ALL
            .iter()
            .position(|k| *k == self)
            .expect("kind in ALL")
    }

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            MsgKind::LockRequest => "lock-req",
            MsgKind::LockGrant => "lock-grant",
            MsgKind::PageShip => "page-ship",
            MsgKind::Callback => "callback",
            MsgKind::CallbackAck => "callback-ack",
            MsgKind::ReplacePage => "replace-page",
            MsgKind::ForceRequest => "force-req",
            MsgKind::FlushAck => "flush-ack",
            MsgKind::LogShip => "log-ship",
            MsgKind::CommitRequest => "commit-req",
            MsgKind::CommitAck => "commit-ack",
            MsgKind::CheckpointSync => "ckpt-sync",
            MsgKind::RecoveryInfoRequest => "rec-info-req",
            MsgKind::RecoveryInfoReply => "rec-info-reply",
            MsgKind::RecoveryPageFetch => "rec-page-fetch",
            MsgKind::LockListShip => "lock-list",
            MsgKind::PsnListRequest => "psnlist-req",
            MsgKind::PsnListReply => "psnlist-reply",
            MsgKind::RecoveryPageSend => "rec-page-send",
            MsgKind::RecoveryPageReturn => "rec-page-return",
            MsgKind::RecoveryDone => "rec-done",
        }
    }

    /// True for messages that only exist during crash recovery.
    pub fn is_recovery(self) -> bool {
        matches!(
            self,
            MsgKind::RecoveryInfoRequest
                | MsgKind::RecoveryInfoReply
                | MsgKind::RecoveryPageFetch
                | MsgKind::LockListShip
                | MsgKind::PsnListRequest
                | MsgKind::PsnListReply
                | MsgKind::RecoveryPageSend
                | MsgKind::RecoveryPageReturn
                | MsgKind::RecoveryDone
        )
    }
}

/// Immutable snapshot of traffic statistics.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Message count per kind (indexed like [`MsgKind::ALL`]).
    pub counts: [u64; 21],
    /// Byte count per kind.
    pub bytes: [u64; 21],
}

impl NetStats {
    /// Total messages.
    pub fn total_messages(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Total bytes.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().sum()
    }

    /// Count for one kind.
    pub fn count(&self, kind: MsgKind) -> u64 {
        self.counts[kind.index()]
    }

    /// Bytes for one kind.
    pub fn bytes_of(&self, kind: MsgKind) -> u64 {
        self.bytes[kind.index()]
    }

    /// Messages belonging to recovery protocols only.
    pub fn recovery_messages(&self) -> u64 {
        MsgKind::ALL
            .iter()
            .filter(|k| k.is_recovery())
            .map(|k| self.count(*k))
            .sum()
    }

    /// Difference since an earlier snapshot.
    pub fn since(&self, earlier: &NetStats) -> NetStats {
        let mut out = NetStats::default();
        for i in 0..self.counts.len() {
            out.counts[i] = self.counts[i] - earlier.counts[i];
            out.bytes[i] = self.bytes[i] - earlier.bytes[i];
        }
        out
    }
}

/// The accounted transport.
#[derive(Debug)]
pub struct Network {
    clock: SimClock,
    cost: CostModel,
    stats: NetStats,
    per_node_sent: Vec<u64>,
    per_node_recv: Vec<u64>,
    crashed: HashSet<NodeId>,
    disk_ios: Vec<u64>,
}

impl Network {
    /// Transport for `nodes` nodes under `cost`.
    pub fn new(nodes: usize, cost: CostModel) -> Self {
        Network {
            clock: SimClock::new(nodes),
            cost,
            stats: NetStats::default(),
            per_node_sent: vec![0; nodes],
            per_node_recv: vec![0; nodes],
            crashed: HashSet::new(),
            disk_ios: vec![0; nodes],
        }
    }

    /// Records one message `from → to` of `kind` carrying `bytes`
    /// payload bytes. Fails if either endpoint is crashed.
    pub fn send(&mut self, from: NodeId, to: NodeId, kind: MsgKind, bytes: usize) -> Result<()> {
        if self.crashed.contains(&to) {
            return Err(Error::NodeDown(to));
        }
        if self.crashed.contains(&from) {
            return Err(Error::NodeDown(from));
        }
        let i = kind.index();
        self.stats.counts[i] += 1;
        self.stats.bytes[i] += bytes as u64;
        if let Some(s) = self.per_node_sent.get_mut(from.0 as usize) {
            *s += 1;
        }
        if let Some(r) = self.per_node_recv.get_mut(to.0 as usize) {
            *r += 1;
        }
        let wire = self.cost.message_cost(bytes);
        self.clock.advance(wire);
        self.clock.charge_overlapped(from, self.cost.handle_us);
        self.clock.charge_overlapped(to, self.cost.handle_us);
        Ok(())
    }

    /// Records a disk I/O of `bytes` performed by `node`.
    pub fn disk_io(&mut self, node: NodeId, bytes: usize) {
        if let Some(d) = self.disk_ios.get_mut(node.0 as usize) {
            *d += 1;
        }
        let t = self.cost.io_cost(bytes);
        self.clock.advance(t);
        self.clock.charge_overlapped(node, t);
    }

    /// Marks a node crashed (unreachable).
    pub fn mark_crashed(&mut self, node: NodeId) {
        self.crashed.insert(node);
    }

    /// Marks a node reachable again (restart begins).
    pub fn mark_up(&mut self, node: NodeId) {
        self.crashed.remove(&node);
    }

    /// Is `node` currently crashed?
    pub fn is_crashed(&self, node: NodeId) -> bool {
        self.crashed.contains(&node)
    }

    /// Current statistics snapshot.
    pub fn stats(&self) -> NetStats {
        self.stats.clone()
    }

    /// Messages sent by `node`.
    pub fn sent_by(&self, node: NodeId) -> u64 {
        self.per_node_sent
            .get(node.0 as usize)
            .copied()
            .unwrap_or(0)
    }

    /// Messages received by `node`.
    pub fn received_by(&self, node: NodeId) -> u64 {
        self.per_node_recv
            .get(node.0 as usize)
            .copied()
            .unwrap_or(0)
    }

    /// Disk I/Os charged to `node`.
    pub fn disk_ios_of(&self, node: NodeId) -> u64 {
        self.disk_ios.get(node.0 as usize).copied().unwrap_or(0)
    }

    /// The simulated clock (elapsed time, per-node busy time).
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Advances the simulated clock by non-protocol work.
    pub fn advance_time(&mut self, dt: SimTime) {
        self.clock.advance(dt);
    }

    /// Charges pure CPU service time to a node.
    pub fn charge_node(&mut self, node: NodeId, dt: SimTime) {
        self.clock.charge_overlapped(node, dt);
    }

    /// Resets statistics and clock (after warmup); crash flags persist.
    pub fn reset_stats(&mut self) {
        self.stats = NetStats::default();
        self.per_node_sent.iter_mut().for_each(|v| *v = 0);
        self.per_node_recv.iter_mut().for_each(|v| *v = 0);
        self.disk_ios.iter_mut().for_each(|v| *v = 0);
        self.clock.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> Network {
        Network::new(3, CostModel::unit())
    }

    #[test]
    fn send_counts_by_kind_and_node() {
        let mut n = net();
        n.send(NodeId(0), NodeId(1), MsgKind::LockRequest, 64)
            .unwrap();
        n.send(NodeId(1), NodeId(0), MsgKind::LockGrant, 32)
            .unwrap();
        n.send(NodeId(0), NodeId(1), MsgKind::LockRequest, 64)
            .unwrap();
        let s = n.stats();
        assert_eq!(s.count(MsgKind::LockRequest), 2);
        assert_eq!(s.count(MsgKind::LockGrant), 1);
        assert_eq!(s.bytes_of(MsgKind::LockRequest), 128);
        assert_eq!(s.total_messages(), 3);
        assert_eq!(s.total_bytes(), 160);
        assert_eq!(n.sent_by(NodeId(0)), 2);
        assert_eq!(n.received_by(NodeId(1)), 2);
        assert_eq!(n.sent_by(NodeId(1)), 1);
    }

    #[test]
    fn crashed_nodes_unreachable_both_ways() {
        let mut n = net();
        n.mark_crashed(NodeId(1));
        assert!(matches!(
            n.send(NodeId(0), NodeId(1), MsgKind::PageShip, 10),
            Err(Error::NodeDown(NodeId(1)))
        ));
        assert!(matches!(
            n.send(NodeId(1), NodeId(0), MsgKind::PageShip, 10),
            Err(Error::NodeDown(NodeId(1)))
        ));
        assert!(n.is_crashed(NodeId(1)));
        n.mark_up(NodeId(1));
        assert!(n.send(NodeId(0), NodeId(1), MsgKind::PageShip, 10).is_ok());
    }

    #[test]
    fn disk_io_charges_node() {
        let mut n = net();
        n.disk_io(NodeId(2), 8192);
        assert_eq!(n.disk_ios_of(NodeId(2)), 1);
        assert!(n.clock().busy(NodeId(2)) > 0);
    }

    #[test]
    fn stats_since_diff() {
        let mut n = net();
        n.send(NodeId(0), NodeId(1), MsgKind::Callback, 8).unwrap();
        let snap = n.stats();
        n.send(NodeId(0), NodeId(1), MsgKind::Callback, 8).unwrap();
        n.send(NodeId(0), NodeId(1), MsgKind::CallbackAck, 8)
            .unwrap();
        let d = n.stats().since(&snap);
        assert_eq!(d.count(MsgKind::Callback), 1);
        assert_eq!(d.count(MsgKind::CallbackAck), 1);
    }

    #[test]
    fn recovery_kind_classification() {
        assert!(MsgKind::PsnListReply.is_recovery());
        assert!(!MsgKind::LockRequest.is_recovery());
        let mut n = net();
        n.send(NodeId(0), NodeId(1), MsgKind::PsnListRequest, 8)
            .unwrap();
        n.send(NodeId(0), NodeId(1), MsgKind::LockRequest, 8)
            .unwrap();
        assert_eq!(n.stats().recovery_messages(), 1);
    }

    #[test]
    fn all_kinds_have_unique_indices_and_labels() {
        let mut seen = std::collections::HashSet::new();
        for k in MsgKind::ALL {
            assert!(seen.insert(k.label()), "duplicate label {}", k.label());
        }
        assert_eq!(seen.len(), MsgKind::ALL.len());
    }

    #[test]
    fn reset_clears_counts_keeps_crashes() {
        let mut n = net();
        n.send(NodeId(0), NodeId(1), MsgKind::PageShip, 10).unwrap();
        n.mark_crashed(NodeId(2));
        n.reset_stats();
        assert_eq!(n.stats().total_messages(), 0);
        assert_eq!(n.sent_by(NodeId(0)), 0);
        assert!(n.is_crashed(NodeId(2)));
    }
}
