//! Accounted message transport for the deterministic cluster.
//!
//! The paper's performance case is made in message and I/O counts; the
//! [`Network`] records every logical protocol message (kind, size,
//! endpoints), charges the simulated clock, and enforces reachability
//! (sending to a crashed node fails, so protocols must handle it).
//! Actual data transfer in the simulator happens by direct call —
//! after the send has been accounted — which keeps runs deterministic
//! and the protocol state machines synchronous.

use cblog_common::{
    Bucket, CostModel, Error, NodeId, Result, Rng, SimClock, SimTime, Span, SpanCtx, SpanKind,
    Tracer,
};
use std::collections::HashSet;

pub mod transport;

/// Trace header attached to a protocol message: the span of the
/// operation the message belongs to and that span's causal parent.
///
/// This is how cross-node causal edges (page ship, lock grant, DPT
/// exchange, replay shuttle) become explicit in the trace instead of
/// being inferred: the sender stamps its operation's [`SpanCtx`] on the
/// message, and the transport records a `Msg` span parented to it. On
/// a traced run the header also costs [`MsgHeader::WIRE_BYTES`] on the
/// wire, so the trace-overhead experiment can price the propagation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MsgHeader {
    /// The causal context of the sending operation.
    pub ctx: SpanCtx,
}

impl MsgHeader {
    /// The empty header (untraced send).
    pub const NONE: MsgHeader = MsgHeader { ctx: SpanCtx::NONE };

    /// Wire size of a header: two 8-byte span ids.
    pub const WIRE_BYTES: usize = 16;

    /// Header carrying `ctx`.
    pub fn of(ctx: SpanCtx) -> MsgHeader {
        MsgHeader { ctx }
    }
}

/// One deterministic fault action, applied by a [`FaultScript`] to a
/// specific message on the wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultAction {
    /// The message is lost in flight ([`Error::MsgLost`] to the
    /// sender); reliable sends retry, and the retry consumes the next
    /// sequence index.
    Drop,
    /// A spurious second copy is accounted on the wire.
    Duplicate,
    /// The message is charged `delay_us` of extra latency.
    Delay,
    /// Delivered behind newer traffic — in the synchronous simulator a
    /// reordered message is simply a late one, charged like a delay
    /// but counted separately.
    Reorder,
}

impl FaultAction {
    /// Every action, for schedule enumeration.
    pub const ALL: [FaultAction; 4] = [
        FaultAction::Drop,
        FaultAction::Duplicate,
        FaultAction::Delay,
        FaultAction::Reorder,
    ];
}

/// Schedule-driven fault injection: `(sequence index, action)` pairs
/// applied to the Nth fault-eligible message the transport carries
/// (0-based, counting only messages that pass the plan's
/// [`FaultPlan::with_only_kinds`] filter). Installing a script
/// replaces the RNG rolls entirely, making every branch of a fault
/// schedule enumerable and exactly replayable — this is the model
/// checker's injection mode. Multiple actions on one index apply in
/// list order.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultScript {
    /// The schedule, as (message sequence index, action) pairs.
    pub steps: Vec<(u64, FaultAction)>,
}

impl FaultScript {
    /// A script from explicit steps.
    pub fn new(steps: Vec<(u64, FaultAction)>) -> Self {
        FaultScript { steps }
    }

    /// True if the script never fires.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

/// Deterministic fault-injection plan for the transport (and, via
/// [`Network::roll_tear`], for torn log writes at crash time).
///
/// All probabilities default to zero, making the default plan a strict
/// no-op; every roll comes from one private RNG stream seeded by
/// `seed`, so a given plan replays identically. Message faults apply to
/// every [`MsgKind`] unless narrowed with [`FaultPlan::with_only_kinds`].
/// Installing a [`FaultScript`] switches the plan from RNG-driven to
/// schedule-driven: the probabilities are ignored and only the scripted
/// steps fire.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// Seed for the injector's private RNG stream.
    pub seed: u64,
    /// Probability a message is dropped in flight (the lost copy is
    /// still accounted — it consumed the wire).
    pub drop: f64,
    /// Probability a message is delayed by `delay_us`.
    pub delay: f64,
    /// Extra latency charged to a delayed or reordered message, sim-µs.
    pub delay_us: SimTime,
    /// Probability a message is duplicated (the spurious copy is
    /// accounted like a real send; receivers treat it idempotently).
    pub duplicate: f64,
    /// Probability a message is reordered behind newer traffic. In the
    /// synchronous simulator a reordered message is simply a late one,
    /// so it is charged like a delay but counted separately.
    pub reorder: f64,
    /// Probability a node crash tears the in-flight log write: a prefix
    /// of the unsynced tail survives on the device, possibly with its
    /// last byte corrupted (see `cblog_wal`).
    pub tear: f64,
    /// Restrict message faults to these kinds (None = all kinds).
    pub only_kinds: Option<Vec<MsgKind>>,
    /// Resend budget for [`Network::send_reliable`] after the first
    /// attempt. Bounded so lossy links cost time, never livelock.
    pub max_retries: u32,
    /// Base backoff charged before each resend (grows linearly with the
    /// attempt number), sim-µs.
    pub retry_backoff_us: SimTime,
    /// Schedule-driven injection mode: when set, the probability knobs
    /// are ignored and exactly the scripted steps fire.
    pub script: Option<FaultScript>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::new(0)
    }
}

impl FaultPlan {
    /// A no-op plan carrying `seed` for later fault knobs.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            drop: 0.0,
            delay: 0.0,
            delay_us: 100,
            duplicate: 0.0,
            reorder: 0.0,
            tear: 0.0,
            only_kinds: None,
            max_retries: 16,
            retry_backoff_us: 25,
            script: None,
        }
    }

    /// Sets the drop probability.
    pub fn with_drop(mut self, p: f64) -> Self {
        self.drop = p;
        self
    }

    /// Sets the delay probability and the per-delay latency.
    pub fn with_delay(mut self, p: f64, us: SimTime) -> Self {
        self.delay = p;
        self.delay_us = us;
        self
    }

    /// Sets the duplication probability.
    pub fn with_duplicate(mut self, p: f64) -> Self {
        self.duplicate = p;
        self
    }

    /// Sets the reorder probability.
    pub fn with_reorder(mut self, p: f64) -> Self {
        self.reorder = p;
        self
    }

    /// Sets the torn-log-write probability applied at crash time.
    pub fn with_tear(mut self, p: f64) -> Self {
        self.tear = p;
        self
    }

    /// Restricts message faults to the given kinds.
    pub fn with_only_kinds(mut self, kinds: &[MsgKind]) -> Self {
        self.only_kinds = Some(kinds.to_vec());
        self
    }

    /// Sets the retry budget and backoff for reliable sends.
    pub fn with_retries(mut self, max_retries: u32, backoff_us: SimTime) -> Self {
        self.max_retries = max_retries;
        self.retry_backoff_us = backoff_us;
        self
    }

    /// Switches to schedule-driven injection: exactly `script`'s steps
    /// fire, and the probability knobs are ignored.
    pub fn with_script(mut self, script: FaultScript) -> Self {
        self.script = Some(script);
        self
    }

    /// True if no message fault can ever fire.
    pub fn is_noop(&self) -> bool {
        match &self.script {
            Some(s) => s.is_empty(),
            None => {
                self.drop <= 0.0
                    && self.delay <= 0.0
                    && self.duplicate <= 0.0
                    && self.reorder <= 0.0
            }
        }
    }

    fn applies_to(&self, kind: MsgKind) -> bool {
        match &self.only_kinds {
            Some(ks) => ks.contains(&kind),
            None => true,
        }
    }
}

/// Counters of injected faults and the retries they caused.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Messages dropped in flight.
    pub dropped: u64,
    /// Messages delayed by `delay_us`.
    pub delayed: u64,
    /// Messages duplicated on the wire.
    pub duplicated: u64,
    /// Messages delivered out of order (charged as late delivery).
    pub reordered: u64,
    /// Resends performed by [`Network::send_reliable`].
    pub retries: u64,
    /// Reliable sends that exhausted their retry budget.
    pub exhausted: u64,
}

/// Every message type exchanged by any protocol in the workspace,
/// including the baselines (so experiment tables can break traffic down
/// uniformly).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[allow(missing_docs)]
pub enum MsgKind {
    // ---- normal processing (paper §2.2) ----
    /// Lock request forwarded to the owner node.
    LockRequest,
    /// Owner grants a lock (optionally shipping the page).
    LockGrant,
    /// Page image shipped owner → requester.
    PageShip,
    /// Callback sent to a holder of a conflicting lock.
    Callback,
    /// Holder acknowledges a callback (optionally returning the page).
    CallbackAck,
    /// Dirty remote page replaced from a cache, sent to its owner.
    ReplacePage,
    /// §2.5: ask the owner to force a page to disk.
    ForceRequest,
    /// Owner tells past replacers that a page hit the disk.
    FlushAck,
    // ---- commit-time traffic (baselines; CBL sends none) ----
    /// ARIES/CSA-style shipping of log records to the server.
    LogShip,
    /// Commit request to the server.
    CommitRequest,
    /// Server acknowledges a commit after forcing its log.
    CommitAck,
    /// Server-coordinated checkpoint round (ARIES/CSA §3.1).
    CheckpointSync,
    // ---- crash recovery (paper §2.3 / §2.4) ----
    /// Crashed node asks an operational node for its cache list + DPT
    /// entries for pages the crashed node owns.
    RecoveryInfoRequest,
    /// The reply: cached-page list and DPT entries.
    RecoveryInfoReply,
    /// Crashed node pulls a cached page copy from a holder.
    RecoveryPageFetch,
    /// Lock lists shipped to the recovering node (§2.3.3).
    LockListShip,
    /// Recovering node sends the list of pages needing recovery and
    /// asks for the NodePSNList (§2.3.4).
    PsnListRequest,
    /// NodePSNList reply.
    PsnListReply,
    /// Coordinator sends a page (plus PSN bound) to a node for replay.
    RecoveryPageSend,
    /// Node returns the partially recovered page.
    RecoveryPageReturn,
    /// Recovery-complete broadcast.
    RecoveryDone,
}

impl MsgKind {
    /// All kinds, for iteration in reports.
    pub const ALL: [MsgKind; 21] = [
        MsgKind::LockRequest,
        MsgKind::LockGrant,
        MsgKind::PageShip,
        MsgKind::Callback,
        MsgKind::CallbackAck,
        MsgKind::ReplacePage,
        MsgKind::ForceRequest,
        MsgKind::FlushAck,
        MsgKind::LogShip,
        MsgKind::CommitRequest,
        MsgKind::CommitAck,
        MsgKind::CheckpointSync,
        MsgKind::RecoveryInfoRequest,
        MsgKind::RecoveryInfoReply,
        MsgKind::RecoveryPageFetch,
        MsgKind::LockListShip,
        MsgKind::PsnListRequest,
        MsgKind::PsnListReply,
        MsgKind::RecoveryPageSend,
        MsgKind::RecoveryPageReturn,
        MsgKind::RecoveryDone,
    ];

    fn index(self) -> usize {
        MsgKind::ALL
            .iter()
            .position(|k| *k == self)
            .expect("kind in ALL")
    }

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            MsgKind::LockRequest => "lock-req",
            MsgKind::LockGrant => "lock-grant",
            MsgKind::PageShip => "page-ship",
            MsgKind::Callback => "callback",
            MsgKind::CallbackAck => "callback-ack",
            MsgKind::ReplacePage => "replace-page",
            MsgKind::ForceRequest => "force-req",
            MsgKind::FlushAck => "flush-ack",
            MsgKind::LogShip => "log-ship",
            MsgKind::CommitRequest => "commit-req",
            MsgKind::CommitAck => "commit-ack",
            MsgKind::CheckpointSync => "ckpt-sync",
            MsgKind::RecoveryInfoRequest => "rec-info-req",
            MsgKind::RecoveryInfoReply => "rec-info-reply",
            MsgKind::RecoveryPageFetch => "rec-page-fetch",
            MsgKind::LockListShip => "lock-list",
            MsgKind::PsnListRequest => "psnlist-req",
            MsgKind::PsnListReply => "psnlist-reply",
            MsgKind::RecoveryPageSend => "rec-page-send",
            MsgKind::RecoveryPageReturn => "rec-page-return",
            MsgKind::RecoveryDone => "rec-done",
        }
    }

    /// True for messages that only exist during crash recovery.
    pub fn is_recovery(self) -> bool {
        matches!(
            self,
            MsgKind::RecoveryInfoRequest
                | MsgKind::RecoveryInfoReply
                | MsgKind::RecoveryPageFetch
                | MsgKind::LockListShip
                | MsgKind::PsnListRequest
                | MsgKind::PsnListReply
                | MsgKind::RecoveryPageSend
                | MsgKind::RecoveryPageReturn
                | MsgKind::RecoveryDone
        )
    }
}

/// Immutable snapshot of traffic statistics.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Message count per kind (indexed like [`MsgKind::ALL`]).
    pub counts: [u64; 21],
    /// Byte count per kind.
    pub bytes: [u64; 21],
}

impl NetStats {
    /// Total messages.
    pub fn total_messages(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Total bytes.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().sum()
    }

    /// Count for one kind.
    pub fn count(&self, kind: MsgKind) -> u64 {
        self.counts[kind.index()]
    }

    /// Bytes for one kind.
    pub fn bytes_of(&self, kind: MsgKind) -> u64 {
        self.bytes[kind.index()]
    }

    /// Messages belonging to recovery protocols only.
    pub fn recovery_messages(&self) -> u64 {
        MsgKind::ALL
            .iter()
            .filter(|k| k.is_recovery())
            .map(|k| self.count(*k))
            .sum()
    }

    /// Difference since an earlier snapshot.
    pub fn since(&self, earlier: &NetStats) -> NetStats {
        let mut out = NetStats::default();
        for i in 0..self.counts.len() {
            out.counts[i] = self.counts[i] - earlier.counts[i];
            out.bytes[i] = self.bytes[i] - earlier.bytes[i];
        }
        out
    }
}

/// The accounted transport.
#[derive(Debug)]
pub struct Network {
    clock: SimClock,
    cost: CostModel,
    stats: NetStats,
    per_node_sent: Vec<u64>,
    per_node_recv: Vec<u64>,
    crashed: HashSet<NodeId>,
    disk_ios: Vec<u64>,
    faults: FaultPlan,
    fault_rng: Rng,
    fault_stats: FaultStats,
    script_seq: u64,
    tracer: Tracer,
    attribution: Option<Bucket>,
    overlap: Option<SimTime>,
}

impl Network {
    /// Transport for `nodes` nodes under `cost`, fault-free.
    pub fn new(nodes: usize, cost: CostModel) -> Self {
        Network::with_faults(nodes, cost, FaultPlan::default())
    }

    /// Transport with a fault-injection plan.
    pub fn with_faults(nodes: usize, cost: CostModel, faults: FaultPlan) -> Self {
        let fault_rng = Rng::seed_from_u64(faults.seed);
        Network {
            clock: SimClock::new(nodes),
            cost,
            stats: NetStats::default(),
            per_node_sent: vec![0; nodes],
            per_node_recv: vec![0; nodes],
            crashed: HashSet::new(),
            disk_ios: vec![0; nodes],
            faults,
            fault_rng,
            fault_stats: FaultStats::default(),
            script_seq: 0,
            tracer: Tracer::disabled(),
            attribution: None,
            overlap: None,
        }
    }

    /// Enters overlap mode: until [`Network::end_overlap`], every
    /// global-clock advance (wire time, disk I/O, fault delays, retry
    /// backoff) is *accumulated* instead of moving the shared clock, so
    /// the caller can measure a unit of work's serial duration and then
    /// advance the wall once for a whole batch of units that logically
    /// run concurrently. Per-node busy charges are unaffected — they
    /// never moved the global clock to begin with. Panics if overlap
    /// mode is already active (no nesting).
    pub fn begin_overlap(&mut self) {
        assert!(self.overlap.is_none(), "overlap mode already active");
        self.overlap = Some(0);
    }

    /// Leaves overlap mode and returns the simulated time the unit
    /// would have consumed had it run serially. The caller decides how
    /// much of it actually elapses on the wall (see
    /// [`Network::advance_time`]).
    pub fn end_overlap(&mut self) -> SimTime {
        self.overlap.take().expect("overlap mode not active")
    }

    /// Is overlap mode active?
    pub fn overlap_active(&self) -> bool {
        self.overlap.is_some()
    }

    /// Unconditionally drops any active overlap accumulator. Error
    /// paths unwinding out of a parallel replay must call this so a
    /// leaked overlap mode cannot silently swallow later clock
    /// advances (a stalled simulated clock).
    pub fn clear_overlap(&mut self) {
        self.overlap = None;
    }

    /// All global-clock advances funnel through here so overlap mode
    /// sees every one of them.
    fn advance_clock(&mut self, dt: SimTime) {
        match &mut self.overlap {
            Some(acc) => *acc += dt,
            None => self.clock.advance(dt),
        }
    }

    /// Overrides the profiler bucket every subsequent charge lands in
    /// (None = each charge's natural bucket: disk I/O → `Disk`,
    /// message handling → `Net`, CPU → `Cpu`). Crash recovery sets
    /// this to [`Bucket::Replay`] for its whole run so restart work is
    /// attributed as such regardless of the resource it consumed.
    pub fn set_attribution(&mut self, bucket: Option<Bucket>) {
        self.attribution = bucket;
    }

    /// The active attribution override.
    pub fn attribution(&self) -> Option<Bucket> {
        self.attribution
    }

    fn bucket_for(&self, natural: Bucket) -> Bucket {
        self.attribution.unwrap_or(natural)
    }

    /// Installs the cluster's tracer: every header-carrying send emits
    /// a `Msg` span parented to the header's context.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The transport's tracer handle.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The active fault plan.
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    /// Injected-fault counters.
    pub fn fault_stats(&self) -> FaultStats {
        self.fault_stats.clone()
    }

    fn account(&mut self, from: NodeId, to: NodeId, kind: MsgKind, bytes: usize) {
        let i = kind.index();
        self.stats.counts[i] += 1;
        self.stats.bytes[i] += bytes as u64;
        if let Some(s) = self.per_node_sent.get_mut(from.0 as usize) {
            *s += 1;
        }
        if let Some(r) = self.per_node_recv.get_mut(to.0 as usize) {
            *r += 1;
        }
        let wire = self.cost.message_cost(bytes);
        let bucket = self.bucket_for(Bucket::Net);
        self.advance_clock(wire);
        self.clock
            .charge_overlapped_as(from, bucket, self.cost.handle_us);
        self.clock
            .charge_overlapped_as(to, bucket, self.cost.handle_us);
    }

    /// Records one message `from → to` of `kind` carrying `bytes`
    /// payload bytes. Fails if either endpoint is crashed, or with
    /// [`Error::MsgLost`] if the fault plan drops it — the lost copy is
    /// still accounted, since it consumed the wire.
    pub fn send(&mut self, from: NodeId, to: NodeId, kind: MsgKind, bytes: usize) -> Result<()> {
        if self.crashed.contains(&to) {
            return Err(Error::NodeDown(to));
        }
        if self.crashed.contains(&from) {
            return Err(Error::NodeDown(from));
        }
        self.account(from, to, kind, bytes);
        if self.faults.applies_to(kind) {
            if self.faults.script.is_some() {
                // Schedule-driven mode: the sequence counter advances
                // on every eligible message — including under an empty
                // script, so a clean pass can measure the schedule
                // space — and exactly the scripted steps fire.
                let seq = self.script_seq;
                self.script_seq += 1;
                let acts: Vec<FaultAction> = self
                    .faults
                    .script
                    .as_ref()
                    .expect("checked")
                    .steps
                    .iter()
                    .filter(|(at, _)| *at == seq)
                    .map(|(_, a)| *a)
                    .collect();
                for act in acts {
                    match act {
                        FaultAction::Duplicate => {
                            self.fault_stats.duplicated += 1;
                            self.account(from, to, kind, bytes);
                        }
                        FaultAction::Delay => {
                            self.fault_stats.delayed += 1;
                            self.advance_clock(self.faults.delay_us);
                        }
                        FaultAction::Reorder => {
                            self.fault_stats.reordered += 1;
                            self.advance_clock(self.faults.delay_us);
                        }
                        FaultAction::Drop => {
                            self.fault_stats.dropped += 1;
                            return Err(Error::MsgLost { from, to });
                        }
                    }
                }
            } else if !self.faults.is_noop() {
                if self.faults.duplicate > 0.0 && self.fault_rng.gen_bool(self.faults.duplicate) {
                    self.fault_stats.duplicated += 1;
                    self.account(from, to, kind, bytes);
                }
                if self.faults.delay > 0.0 && self.fault_rng.gen_bool(self.faults.delay) {
                    self.fault_stats.delayed += 1;
                    self.advance_clock(self.faults.delay_us);
                }
                if self.faults.reorder > 0.0 && self.fault_rng.gen_bool(self.faults.reorder) {
                    self.fault_stats.reordered += 1;
                    self.advance_clock(self.faults.delay_us);
                }
                if self.faults.drop > 0.0 && self.fault_rng.gen_bool(self.faults.drop) {
                    self.fault_stats.dropped += 1;
                    return Err(Error::MsgLost { from, to });
                }
            }
        }
        Ok(())
    }

    /// Fault-eligible messages seen so far in schedule-driven mode
    /// (the next unused [`FaultScript`] sequence index). Always 0
    /// without a script installed — a clean sizing pass must install
    /// an *empty* script.
    pub fn script_msgs_seen(&self) -> u64 {
        self.script_seq
    }

    /// As [`Network::send`] with a trace header: on a traced run the
    /// header's [`MsgHeader::WIRE_BYTES`] are accounted on the wire and
    /// a `Msg` span (the explicit cross-node causal edge) is emitted,
    /// parented to the header's span. A dropped message still emits —
    /// it consumed the wire; only an unreachable endpoint does not.
    pub fn send_hdr(
        &mut self,
        from: NodeId,
        to: NodeId,
        kind: MsgKind,
        bytes: usize,
        hdr: MsgHeader,
    ) -> Result<()> {
        let bytes = bytes + self.header_bytes();
        let r = self.send(from, to, kind, bytes);
        if !matches!(r, Err(Error::NodeDown(_))) {
            self.trace_msg(from, to, kind, bytes, hdr);
        }
        r
    }

    /// As [`Network::send_reliable`] with a trace header (see
    /// [`Network::send_hdr`]); one `Msg` span covers the logical
    /// message regardless of how many resends masked losses.
    pub fn send_reliable_hdr(
        &mut self,
        from: NodeId,
        to: NodeId,
        kind: MsgKind,
        bytes: usize,
        hdr: MsgHeader,
    ) -> Result<()> {
        let bytes = bytes + self.header_bytes();
        let r = self.send_reliable(from, to, kind, bytes);
        if !matches!(r, Err(Error::NodeDown(_))) {
            self.trace_msg(from, to, kind, bytes, hdr);
        }
        r
    }

    fn header_bytes(&self) -> usize {
        if self.tracer.is_enabled() {
            MsgHeader::WIRE_BYTES
        } else {
            0
        }
    }

    fn trace_msg(&self, from: NodeId, to: NodeId, kind: MsgKind, bytes: usize, hdr: MsgHeader) {
        if !self.tracer.is_enabled() {
            return;
        }
        let id = self.tracer.alloc();
        self.tracer.emit(Span {
            id,
            parent: hdr.ctx.span,
            node: from,
            start: self.clock.now(),
            dur: 0,
            kind: SpanKind::Msg {
                kind: kind.label(),
                from,
                to,
                bytes: bytes as u64,
                carries_log: matches!(kind, MsgKind::LogShip),
            },
        });
    }

    /// As [`Network::send`] but resends on loss, up to the plan's retry
    /// budget, charging a linearly growing backoff before each resend.
    /// Crashed endpoints fail immediately (a down node is not a lost
    /// message). Exhausting the budget yields
    /// [`Error::RetriesExhausted`].
    pub fn send_reliable(
        &mut self,
        from: NodeId,
        to: NodeId,
        kind: MsgKind,
        bytes: usize,
    ) -> Result<()> {
        let mut attempt: u32 = 0;
        loop {
            match self.send(from, to, kind, bytes) {
                Err(Error::MsgLost { .. }) if attempt < self.faults.max_retries => {
                    attempt += 1;
                    self.fault_stats.retries += 1;
                    self.advance_clock(self.faults.retry_backoff_us * attempt as u64);
                }
                Err(Error::MsgLost { .. }) => {
                    self.fault_stats.exhausted += 1;
                    return Err(Error::RetriesExhausted {
                        from,
                        to,
                        attempts: attempt + 1,
                    });
                }
                r => return r,
            }
        }
    }

    /// Rolls the torn-write fault for a crash interrupting a force of
    /// `pending` unsynced tail bytes: `Some((landed, corrupt))` means
    /// `landed` bytes of the tail physically reached the device, with
    /// the last landed byte flipped if `corrupt`.
    pub fn roll_tear(&mut self, pending: u64) -> Option<(u64, bool)> {
        if pending == 0 || self.faults.tear <= 0.0 || !self.fault_rng.gen_bool(self.faults.tear) {
            return None;
        }
        let landed = self.fault_rng.gen_range(1..pending + 1);
        let corrupt = self.fault_rng.gen_bool(0.5);
        Some((landed, corrupt))
    }

    /// Records a disk I/O of `bytes` performed by `node`.
    pub fn disk_io(&mut self, node: NodeId, bytes: usize) {
        if let Some(d) = self.disk_ios.get_mut(node.0 as usize) {
            *d += 1;
        }
        let t = self.cost.io_cost(bytes);
        let bucket = self.bucket_for(Bucket::Disk);
        self.advance_clock(t);
        self.clock.charge_overlapped_as(node, bucket, t);
    }

    /// Marks a node crashed (unreachable).
    pub fn mark_crashed(&mut self, node: NodeId) {
        self.crashed.insert(node);
    }

    /// Marks a node reachable again (restart begins).
    pub fn mark_up(&mut self, node: NodeId) {
        self.crashed.remove(&node);
    }

    /// Is `node` currently crashed?
    pub fn is_crashed(&self, node: NodeId) -> bool {
        self.crashed.contains(&node)
    }

    /// Current statistics snapshot.
    pub fn stats(&self) -> NetStats {
        self.stats.clone()
    }

    /// Messages sent by `node`.
    pub fn sent_by(&self, node: NodeId) -> u64 {
        self.per_node_sent
            .get(node.0 as usize)
            .copied()
            .unwrap_or(0)
    }

    /// Messages received by `node`.
    pub fn received_by(&self, node: NodeId) -> u64 {
        self.per_node_recv
            .get(node.0 as usize)
            .copied()
            .unwrap_or(0)
    }

    /// Disk I/Os charged to `node`.
    pub fn disk_ios_of(&self, node: NodeId) -> u64 {
        self.disk_ios.get(node.0 as usize).copied().unwrap_or(0)
    }

    /// The simulated clock (elapsed time, per-node busy time).
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Advances the simulated clock by non-protocol work.
    pub fn advance_time(&mut self, dt: SimTime) {
        self.advance_clock(dt);
    }

    /// Charges pure CPU service time to a node.
    pub fn charge_node(&mut self, node: NodeId, dt: SimTime) {
        let bucket = self.bucket_for(Bucket::Cpu);
        self.clock.charge_overlapped_as(node, bucket, dt);
    }

    /// Records lock-blocked time for a node (profiler only — blocked
    /// time is never busy time).
    pub fn charge_wait(&mut self, node: NodeId, dt: SimTime) {
        self.clock.charge_wait(node, dt);
    }

    /// Resets statistics and clock (after warmup); crash flags and the
    /// fault RNG stream persist.
    pub fn reset_stats(&mut self) {
        self.stats = NetStats::default();
        self.fault_stats = FaultStats::default();
        self.per_node_sent.iter_mut().for_each(|v| *v = 0);
        self.per_node_recv.iter_mut().for_each(|v| *v = 0);
        self.disk_ios.iter_mut().for_each(|v| *v = 0);
        self.clock.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> Network {
        Network::new(3, CostModel::unit())
    }

    #[test]
    fn send_counts_by_kind_and_node() {
        let mut n = net();
        n.send(NodeId(0), NodeId(1), MsgKind::LockRequest, 64)
            .unwrap();
        n.send(NodeId(1), NodeId(0), MsgKind::LockGrant, 32)
            .unwrap();
        n.send(NodeId(0), NodeId(1), MsgKind::LockRequest, 64)
            .unwrap();
        let s = n.stats();
        assert_eq!(s.count(MsgKind::LockRequest), 2);
        assert_eq!(s.count(MsgKind::LockGrant), 1);
        assert_eq!(s.bytes_of(MsgKind::LockRequest), 128);
        assert_eq!(s.total_messages(), 3);
        assert_eq!(s.total_bytes(), 160);
        assert_eq!(n.sent_by(NodeId(0)), 2);
        assert_eq!(n.received_by(NodeId(1)), 2);
        assert_eq!(n.sent_by(NodeId(1)), 1);
    }

    #[test]
    fn crashed_nodes_unreachable_both_ways() {
        let mut n = net();
        n.mark_crashed(NodeId(1));
        assert!(matches!(
            n.send(NodeId(0), NodeId(1), MsgKind::PageShip, 10),
            Err(Error::NodeDown(NodeId(1)))
        ));
        assert!(matches!(
            n.send(NodeId(1), NodeId(0), MsgKind::PageShip, 10),
            Err(Error::NodeDown(NodeId(1)))
        ));
        assert!(n.is_crashed(NodeId(1)));
        n.mark_up(NodeId(1));
        assert!(n.send(NodeId(0), NodeId(1), MsgKind::PageShip, 10).is_ok());
    }

    #[test]
    fn disk_io_charges_node() {
        let mut n = net();
        n.disk_io(NodeId(2), 8192);
        assert_eq!(n.disk_ios_of(NodeId(2)), 1);
        assert!(n.clock().busy(NodeId(2)) > 0);
    }

    #[test]
    fn stats_since_diff() {
        let mut n = net();
        n.send(NodeId(0), NodeId(1), MsgKind::Callback, 8).unwrap();
        let snap = n.stats();
        n.send(NodeId(0), NodeId(1), MsgKind::Callback, 8).unwrap();
        n.send(NodeId(0), NodeId(1), MsgKind::CallbackAck, 8)
            .unwrap();
        let d = n.stats().since(&snap);
        assert_eq!(d.count(MsgKind::Callback), 1);
        assert_eq!(d.count(MsgKind::CallbackAck), 1);
    }

    #[test]
    fn recovery_kind_classification() {
        assert!(MsgKind::PsnListReply.is_recovery());
        assert!(!MsgKind::LockRequest.is_recovery());
        let mut n = net();
        n.send(NodeId(0), NodeId(1), MsgKind::PsnListRequest, 8)
            .unwrap();
        n.send(NodeId(0), NodeId(1), MsgKind::LockRequest, 8)
            .unwrap();
        assert_eq!(n.stats().recovery_messages(), 1);
    }

    #[test]
    fn all_kinds_have_unique_indices_and_labels() {
        let mut seen = std::collections::HashSet::new();
        for k in MsgKind::ALL {
            assert!(seen.insert(k.label()), "duplicate label {}", k.label());
        }
        assert_eq!(seen.len(), MsgKind::ALL.len());
    }

    #[test]
    fn default_fault_plan_is_noop() {
        assert!(FaultPlan::default().is_noop());
        let mut n = net();
        for _ in 0..50 {
            n.send(NodeId(0), NodeId(1), MsgKind::PageShip, 100)
                .unwrap();
        }
        let fs = n.fault_stats();
        assert_eq!(fs, FaultStats::default());
    }

    #[test]
    fn certain_drop_loses_message_but_accounts_it() {
        let mut n = Network::with_faults(2, CostModel::unit(), FaultPlan::new(7).with_drop(1.0));
        assert!(matches!(
            n.send(NodeId(0), NodeId(1), MsgKind::PageShip, 100),
            Err(Error::MsgLost { .. })
        ));
        assert_eq!(n.stats().count(MsgKind::PageShip), 1, "lost copy accounted");
        assert_eq!(n.fault_stats().dropped, 1);
    }

    #[test]
    fn duplicate_accounts_second_copy() {
        let mut n =
            Network::with_faults(2, CostModel::unit(), FaultPlan::new(7).with_duplicate(1.0));
        n.send(NodeId(0), NodeId(1), MsgKind::Callback, 10).unwrap();
        assert_eq!(n.stats().count(MsgKind::Callback), 2);
        assert_eq!(n.fault_stats().duplicated, 1);
    }

    #[test]
    fn delay_and_reorder_charge_extra_latency() {
        let base = {
            let mut n = net();
            n.send(NodeId(0), NodeId(1), MsgKind::PageShip, 100)
                .unwrap();
            n.clock().now()
        };
        let mut n = Network::with_faults(
            2,
            CostModel::unit(),
            FaultPlan::new(7).with_delay(1.0, 500).with_reorder(1.0),
        );
        n.send(NodeId(0), NodeId(1), MsgKind::PageShip, 100)
            .unwrap();
        assert_eq!(n.clock().now(), base + 1000, "delay + reorder latency");
        assert_eq!(n.fault_stats().delayed, 1);
        assert_eq!(n.fault_stats().reordered, 1);
    }

    #[test]
    fn send_reliable_retries_through_loss_then_succeeds() {
        let mut n = Network::with_faults(2, CostModel::unit(), FaultPlan::new(42).with_drop(0.5));
        for _ in 0..20 {
            n.send_reliable(NodeId(0), NodeId(1), MsgKind::LockRequest, 48)
                .unwrap();
        }
        let fs = n.fault_stats();
        assert!(fs.retries > 0, "a 50% lossy link must retry");
        assert_eq!(fs.exhausted, 0);
        assert_eq!(fs.dropped, fs.retries, "every drop was retried");
    }

    #[test]
    fn send_reliable_exhausts_bounded_budget_on_dead_link() {
        let mut n = Network::with_faults(
            2,
            CostModel::unit(),
            FaultPlan::new(7).with_drop(1.0).with_retries(3, 10),
        );
        match n.send_reliable(NodeId(0), NodeId(1), MsgKind::PageShip, 100) {
            Err(Error::RetriesExhausted { attempts, .. }) => assert_eq!(attempts, 4),
            r => panic!("expected RetriesExhausted, got {r:?}"),
        }
        assert_eq!(n.fault_stats().exhausted, 1);
        assert_eq!(
            n.stats().count(MsgKind::PageShip),
            4,
            "every attempt accounted"
        );
    }

    #[test]
    fn send_reliable_does_not_retry_crashed_endpoints() {
        let mut n = Network::with_faults(2, CostModel::unit(), FaultPlan::new(7).with_drop(1.0));
        n.mark_crashed(NodeId(1));
        assert!(matches!(
            n.send_reliable(NodeId(0), NodeId(1), MsgKind::PageShip, 100),
            Err(Error::NodeDown(NodeId(1)))
        ));
        assert_eq!(n.fault_stats().retries, 0);
    }

    #[test]
    fn only_kinds_narrows_fault_scope() {
        let mut n = Network::with_faults(
            2,
            CostModel::unit(),
            FaultPlan::new(7)
                .with_drop(1.0)
                .with_only_kinds(&[MsgKind::PageShip]),
        );
        n.send(NodeId(0), NodeId(1), MsgKind::LockRequest, 48)
            .unwrap();
        assert!(n
            .send(NodeId(0), NodeId(1), MsgKind::PageShip, 100)
            .is_err());
    }

    #[test]
    fn roll_tear_is_seeded_and_bounded() {
        let mut a = Network::with_faults(2, CostModel::unit(), FaultPlan::new(9).with_tear(1.0));
        let mut b = Network::with_faults(2, CostModel::unit(), FaultPlan::new(9).with_tear(1.0));
        for _ in 0..10 {
            let ra = a.roll_tear(100);
            assert_eq!(ra, b.roll_tear(100), "same seed, same rolls");
            let (landed, _) = ra.expect("tear probability 1");
            assert!((1..=100).contains(&landed));
        }
        assert_eq!(a.roll_tear(0), None, "nothing pending, nothing torn");
        let mut c = net();
        assert_eq!(c.roll_tear(100), None, "no-op plan never tears");
    }

    #[test]
    fn traced_send_emits_msg_span_with_header_parent() {
        let mut n = net();
        let t = Tracer::new(64);
        n.set_tracer(t.clone());
        let op = t.alloc();
        n.send_hdr(
            NodeId(0),
            NodeId(1),
            MsgKind::PageShip,
            100,
            MsgHeader::of(SpanCtx::root(op)),
        )
        .unwrap();
        let spans = t.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].parent, op, "edge parented to the operation");
        match &spans[0].kind {
            SpanKind::Msg {
                kind,
                from,
                to,
                bytes,
                carries_log,
            } => {
                assert_eq!(*kind, "page-ship");
                assert_eq!((*from, *to), (NodeId(0), NodeId(1)));
                assert_eq!(*bytes, 100 + MsgHeader::WIRE_BYTES as u64);
                assert!(!carries_log);
            }
            k => panic!("expected Msg span, got {k:?}"),
        }
        // The header cost hit the accounted wire bytes too.
        assert_eq!(
            n.stats().bytes_of(MsgKind::PageShip),
            100 + MsgHeader::WIRE_BYTES as u64
        );
    }

    #[test]
    fn untraced_send_hdr_costs_nothing_and_emits_nothing() {
        let mut n = net();
        n.send_hdr(NodeId(0), NodeId(1), MsgKind::Callback, 50, MsgHeader::NONE)
            .unwrap();
        assert_eq!(n.stats().bytes_of(MsgKind::Callback), 50, "no header bytes");
        assert!(n.tracer().spans().is_empty());
    }

    #[test]
    fn reliable_hdr_emits_one_span_across_retries() {
        let mut n = Network::with_faults(2, CostModel::unit(), FaultPlan::new(42).with_drop(0.5));
        let t = Tracer::new(256);
        n.set_tracer(t.clone());
        for _ in 0..20 {
            n.send_reliable_hdr(
                NodeId(0),
                NodeId(1),
                MsgKind::LockRequest,
                48,
                MsgHeader::NONE,
            )
            .unwrap();
        }
        assert!(n.fault_stats().retries > 0, "losses actually retried");
        assert_eq!(t.spans().len(), 20, "one span per logical message");
    }

    #[test]
    fn log_ship_span_trips_the_watchdog() {
        let mut n = net();
        let t = Tracer::new(64);
        n.set_tracer(t.clone());
        n.send_hdr(NodeId(1), NodeId(0), MsgKind::LogShip, 256, MsgHeader::NONE)
            .unwrap();
        let err = t.check().unwrap_err();
        assert!(err.contains("log records crossed the network"), "{err}");
    }

    #[test]
    fn send_to_crashed_node_emits_no_span() {
        let mut n = net();
        let t = Tracer::new(64);
        n.set_tracer(t.clone());
        n.mark_crashed(NodeId(1));
        assert!(n
            .send_hdr(NodeId(0), NodeId(1), MsgKind::PageShip, 10, MsgHeader::NONE)
            .is_err());
        assert!(t.spans().is_empty(), "unreachable endpoint: nothing sent");
    }

    #[test]
    fn profiler_buckets_follow_charge_sites() {
        let cost = CostModel::default();
        let mut n = Network::new(2, cost.clone());
        n.send(NodeId(0), NodeId(1), MsgKind::PageShip, 100)
            .unwrap();
        n.disk_io(NodeId(0), 1024);
        n.charge_node(NodeId(0), 5);
        n.charge_wait(NodeId(0), 9);
        let c = n.clock();
        assert_eq!(c.bucket_us(NodeId(0), Bucket::Net), cost.handle_us);
        assert_eq!(c.bucket_us(NodeId(1), Bucket::Net), cost.handle_us);
        assert_eq!(c.bucket_us(NodeId(0), Bucket::Disk), cost.io_cost(1024));
        assert_eq!(c.bucket_us(NodeId(0), Bucket::Cpu), 5);
        assert_eq!(c.bucket_us(NodeId(0), Bucket::LockWait), 9);
        assert_eq!(
            c.busy(NodeId(0)),
            cost.handle_us + cost.io_cost(1024) + 5,
            "lock-wait stays out of busy"
        );
        // A replay scope reroutes every charge, whatever the resource.
        n.set_attribution(Some(Bucket::Replay));
        n.disk_io(NodeId(1), 1024);
        n.charge_node(NodeId(1), 7);
        n.set_attribution(None);
        assert_eq!(n.clock().bucket_us(NodeId(1), Bucket::Disk), 0);
        assert_eq!(
            n.clock().bucket_us(NodeId(1), Bucket::Replay),
            cost.io_cost(1024) + 7
        );
        assert_eq!(n.attribution(), None);
    }

    #[test]
    fn overlap_mode_accumulates_instead_of_advancing() {
        let mut n = net();
        let cost = CostModel::unit();
        let before = n.clock().now();
        n.begin_overlap();
        assert!(n.overlap_active());
        n.send(NodeId(0), NodeId(1), MsgKind::PageShip, 100)
            .unwrap();
        n.disk_io(NodeId(0), 1024);
        n.advance_time(11);
        let serial = n.end_overlap();
        assert_eq!(
            serial,
            cost.message_cost(100) + cost.io_cost(1024) + 11,
            "accumulator captures every would-be advance"
        );
        assert_eq!(n.clock().now(), before, "global clock held still");
        // Per-node busy charges land normally even in overlap mode.
        assert_eq!(n.clock().bucket_us(NodeId(0), Bucket::Net), cost.handle_us);
        // Out of overlap mode the clock moves again.
        n.advance_time(7);
        assert_eq!(n.clock().now(), before + 7);
        // clear_overlap is the unconditional error-path escape hatch.
        n.begin_overlap();
        n.advance_time(1000);
        n.clear_overlap();
        assert!(!n.overlap_active());
        n.advance_time(3);
        assert_eq!(n.clock().now(), before + 10);
    }

    #[test]
    fn reset_clears_counts_keeps_crashes() {
        let mut n = net();
        n.send(NodeId(0), NodeId(1), MsgKind::PageShip, 10).unwrap();
        n.mark_crashed(NodeId(2));
        n.reset_stats();
        assert_eq!(n.stats().total_messages(), 0);
        assert_eq!(n.sent_by(NodeId(0)), 0);
        assert!(n.is_crashed(NodeId(2)));
    }
}
