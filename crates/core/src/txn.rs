//! Per-transaction state.

use cblog_common::{Lsn, TxnId};

/// Lifecycle of a transaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TxnStatus {
    /// Running; may read, write, commit or abort.
    Active,
    /// Rolling back (the abort path is underway; during restart this is
    /// the "loser" state).
    Aborting,
    /// Commit record appended, force pending: the transaction has
    /// finished its work and released its locks, but its Commit record
    /// is not yet durable. Group commit parks transactions here until
    /// a shared log force covers their commit LSN. If the node crashes
    /// in this state the transaction is a loser — exactly the
    /// unacknowledged-commit window durability semantics require.
    Committing,
    /// Durably committed.
    Committed,
    /// Fully rolled back.
    Aborted,
}

/// A savepoint: partial-rollback target (paper §2.2 "nodes can support
/// the savepoint concept and offer partial rollbacks").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Savepoint {
    /// The owning transaction.
    pub txn: TxnId,
    /// Last log record of the transaction at savepoint time; rollback
    /// undoes everything chained after this LSN.
    pub at_lsn: Lsn,
}

/// Runtime state of one transaction on its node.
#[derive(Clone, Debug)]
pub struct TxnState {
    /// Transaction id.
    pub id: TxnId,
    /// Status.
    pub status: TxnStatus,
    /// Most recent log record written by the transaction.
    pub last_lsn: Lsn,
    /// First log record (Begin); bounds log truncation.
    pub first_lsn: Lsn,
    /// During rollback: the next record to undo (CLR undo-next chain).
    pub undo_next: Lsn,
    /// Number of updates performed (stats / tests).
    pub updates: u64,
}

impl TxnState {
    /// Fresh active transaction whose Begin record is at `begin_lsn`.
    pub fn new(id: TxnId, begin_lsn: Lsn) -> Self {
        TxnState {
            id,
            status: TxnStatus::Active,
            last_lsn: begin_lsn,
            first_lsn: begin_lsn,
            undo_next: begin_lsn,
            updates: 0,
        }
    }

    /// True if the transaction can still issue operations.
    pub fn is_active(&self) -> bool {
        self.status == TxnStatus::Active
    }

    /// True once the transaction has terminated either way.
    pub fn is_terminated(&self) -> bool {
        matches!(self.status, TxnStatus::Committed | TxnStatus::Aborted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cblog_common::NodeId;

    #[test]
    fn lifecycle_flags() {
        let mut t = TxnState::new(TxnId::new(NodeId(1), 1), Lsn(8));
        assert!(t.is_active());
        assert!(!t.is_terminated());
        t.status = TxnStatus::Aborting;
        assert!(!t.is_active());
        assert!(!t.is_terminated());
        t.status = TxnStatus::Committing;
        assert!(!t.is_active(), "force-pending txn issues no more ops");
        assert!(!t.is_terminated(), "not durable until the force lands");
        t.status = TxnStatus::Aborted;
        assert!(t.is_terminated());
        t.status = TxnStatus::Committed;
        assert!(t.is_terminated());
    }

    #[test]
    fn new_txn_chains_from_begin() {
        let t = TxnState::new(TxnId::new(NodeId(1), 1), Lsn(42));
        assert_eq!(t.last_lsn, Lsn(42));
        assert_eq!(t.first_lsn, Lsn(42));
        assert_eq!(t.undo_next, Lsn(42));
        assert_eq!(t.updates, 0);
    }
}
