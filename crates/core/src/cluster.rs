//! The deterministic distributed cluster: data-shipping protocol,
//! callback locking, commit/abort/savepoints, owner-side page service,
//! flush acknowledgments and the §2.5 log-space protocol.
//!
//! Every inter-node interaction is accounted through the
//! [`cblog_net::Network`] before the data moves, so experiments read
//! exact protocol costs. Blocking is explicit: operations that cannot
//! proceed return [`Error::WouldBlock`] (conflicting transactions) or
//! [`Error::OwnerDown`] (page owner crashed), and the caller retries
//! after other transactions advance — the `cblog-sim` scheduler layers
//! queueing, retry and deadlock-victim handling on top.

use crate::config::ClusterConfig;
use crate::group_commit::ForceScheduler;
use crate::node::{Node, RollbackStep};
use crate::txn::{Savepoint, TxnStatus};
use cblog_common::metrics::{keys, prof_key};
use cblog_common::{
    Bucket, Error, Fnv1a, Lsn, MetricValue, NodeId, PageId, Psn, Result, Rid, Sampler, SimTime,
    Snapshot, Span, SpanCtx, SpanId, SpanKind, TraceEvent, Tracer, TransferWhy, TxnId,
};
use cblog_locks::{
    CallbackAction, GlobalRequestOutcome, LocalRequestOutcome, LockMode, WaitsForGraph,
};
use cblog_net::{MsgHeader, MsgKind, Network};
use cblog_storage::{EvictedPage, PageKind, SlottedPage};
use cblog_wal::PageOp;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Control-message payload size used for accounting.
pub const CTRL_BYTES: usize = 48;

#[inline]
fn ix(id: NodeId) -> usize {
    id.0 as usize
}

/// A cluster of client-based-logging nodes.
pub struct Cluster {
    nodes: Vec<Node>,
    net: Network,
    cfg: ClusterConfig,
    wfg: WaitsForGraph,
    /// Sim-time at which each currently-blocked transaction first hit
    /// a lock conflict; drained into the `locks/wait_us` histogram
    /// when the access finally succeeds (or the waiter aborts).
    wait_since: HashMap<TxnId, SimTime>,
    /// Per-node group-commit force schedulers (index = node id).
    schedulers: Vec<ForceScheduler>,
    /// Cluster-wide causal tracer (disabled unless
    /// [`crate::ClusterConfigBuilder::tracing`] turned it on). The
    /// network holds a clone and emits message spans itself.
    tracer: Tracer,
    /// In-flight transaction spans: id + begin sim-time, closed into a
    /// [`SpanKind::Txn`] interval span at durable-commit or abort.
    txn_spans: HashMap<TxnId, (SpanId, SimTime)>,
    /// Transactions begun so far, cluster-wide — drives the 1-in-N
    /// span-sampling decision (`trace_sample_one_in`).
    txns_begun: u64,
    /// Interval sampler turning the metrics snapshot into per-metric
    /// time series (None unless the config enabled telemetry).
    sampler: Option<Sampler>,
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Cluster({} nodes)", self.nodes.len())
    }
}

impl Cluster {
    /// Builds the cluster per `cfg`.
    pub fn new(cfg: ClusterConfig) -> Result<Self> {
        let mut nodes = Vec::with_capacity(cfg.node_count);
        for i in 0..cfg.node_count {
            nodes.push(Node::new(NodeId(i as u32), cfg.node_config(i))?);
        }
        let mut net = Network::with_faults(cfg.node_count, cfg.cost.clone(), cfg.faults.clone());
        let tracer = if cfg.tracing {
            Tracer::new(cfg.trace_capacity)
        } else {
            Tracer::disabled()
        };
        net.set_tracer(tracer.clone());
        let schedulers = (0..cfg.node_count)
            .map(|_| ForceScheduler::new(cfg.group_commit))
            .collect();
        let sampler = cfg
            .telemetry()
            .map(|(interval_us, cap)| Sampler::new(interval_us, cap));
        Ok(Cluster {
            nodes,
            net,
            cfg,
            wfg: WaitsForGraph::new(),
            wait_since: HashMap::new(),
            schedulers,
            tracer,
            txn_spans: HashMap::new(),
            txns_begun: 0,
            sampler,
        })
    }

    fn now(&self) -> SimTime {
        self.net.clock().now()
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Immutable access to a node.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0 as usize]
    }

    /// Mutable access to a node (tests, recovery, baselines).
    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.0 as usize]
    }

    /// The accounted network.
    pub fn network(&self) -> &Network {
        &self.net
    }

    pub(crate) fn network_mut(&mut self) -> &mut Network {
        &mut self.net
    }

    /// Cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// The cluster-wide causal tracer (disabled unless the config
    /// enabled tracing).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Checks every invariant the online watchdog has accumulated;
    /// `Err` carries the violation list plus the offending page's
    /// lineage slice. Cheap when tracing is off (vacuously ok).
    pub fn trace_check(&self) -> Result<()> {
        self.tracer.check().map_err(Error::Protocol)
    }

    /// The causal context of `txn`'s in-flight span (NONE when tracing
    /// is off or the transaction already finished).
    pub fn txn_ctx(&self, txn: TxnId) -> SpanCtx {
        match self.txn_spans.get(&txn) {
            Some(&(sid, _)) => SpanCtx::root(sid),
            None => SpanCtx::NONE,
        }
    }

    /// Closes `txn`'s interval span, if one is open.
    fn close_txn_span(&mut self, txn: TxnId, committed: bool) {
        if let Some((sid, t0)) = self.txn_spans.remove(&txn) {
            let now = self.now();
            self.tracer.emit(Span {
                id: sid,
                parent: SpanId::NONE,
                node: txn.node,
                start: t0,
                dur: now.saturating_sub(t0),
                kind: SpanKind::Txn { txn, committed },
            });
        }
    }

    fn page_size(&self) -> usize {
        self.cfg.default_node.page_size
    }

    fn page_bytes(&self) -> usize {
        self.page_size() + 64
    }

    /// Charges the clock for a log force if the node forced between
    /// `forces_before` and now (the force wrote `bytes` tail bytes).
    /// The force's simulated latency feeds the node's `wal/force_us`
    /// histogram and flight recorder.
    fn charge_force(&mut self, node: NodeId, forces_before: u64, bytes: u64) {
        if self.nodes[ix(node)].log.forces() > forces_before {
            self.net.disk_io(node, bytes as usize);
            let us = self.cfg.cost.io_cost(bytes as usize);
            let n = &self.nodes[ix(node)];
            n.registry.histogram(keys::WAL_FORCE_US).record(us);
            n.recorder
                .record(self.net.clock().now(), TraceEvent::LogForce { bytes, us });
        }
    }

    /// Unsynced log-tail bytes at `node` — the span a torn write can
    /// bite. Exposed so fault tests can sweep [`Cluster::crash_torn`]
    /// over every byte boundary of the pending tail.
    pub fn pending_log_bytes(&self, node: NodeId) -> u64 {
        let lm = &self.nodes[ix(node)].log;
        lm.end_lsn().0 - lm.flushed_lsn().0
    }

    /// The distinct torn-write landing points of `node`'s unforced log
    /// tail (see [`cblog_wal::LogManager::torn_landing_points`]): every
    /// record boundary plus every byte of the final record. The model
    /// checker enumerates [`Cluster::crash_torn`] over exactly these.
    pub fn torn_landing_points(&self, node: NodeId) -> Vec<u64> {
        self.nodes[ix(node)].log.torn_landing_points()
    }

    /// Record-boundary landing points only (see
    /// [`cblog_wal::LogManager::torn_record_boundaries`]) — the
    /// coarser tear grid multi-victim crash products enumerate.
    pub fn torn_record_boundaries(&self, node: NodeId) -> Vec<u64> {
        self.nodes[ix(node)].log.torn_record_boundaries()
    }

    /// Repairs the torn log tails of crashed `nodes` — exactly what
    /// recovery does first — *without* starting recovery (the nodes
    /// stay crashed), so the model checker can fingerprint the
    /// post-repair durable state ([`Cluster::durable_state_hash`]) and
    /// prune a branch before paying for its recovery. Safe to follow
    /// with [`recovery::recover`](crate::recovery::recover): the
    /// repair is idempotent.
    pub fn repair_tails(&mut self, nodes: &[NodeId]) -> Result<u64> {
        let mut torn = 0;
        for &n in nodes {
            torn += self.nodes[ix(n)].repair_tail()?;
        }
        Ok(torn)
    }

    /// FNV-1a fingerprint of the cluster's entire durable state: every
    /// node's on-device database pages, durable log bytes, and master
    /// record. Volatile state (buffers, lock tables, DPTs, clocks,
    /// metrics) is excluded, so two histories that would survive a
    /// power cut identically hash identically — the pruning key of the
    /// model checker's crash-branch exploration.
    pub fn durable_state_hash(&mut self) -> Result<u64> {
        let mut h = Fnv1a::new();
        for n in &mut self.nodes {
            n.durable_state_hash(&mut h)?;
        }
        Ok(h.finish())
    }

    // ------------------------------------------------------------------
    // Setup helpers (not part of the transactional API)
    // ------------------------------------------------------------------

    /// Formats an owned page as a slotted record page before workloads
    /// start.
    pub fn format_slotted(&mut self, pid: PageId) -> Result<()> {
        self.nodes[ix(pid.owner)].format_owned_page(pid.index, PageKind::Slotted)
    }

    // ------------------------------------------------------------------
    // Transaction API
    // ------------------------------------------------------------------

    /// Starts a transaction on `node`.
    pub fn begin(&mut self, node: NodeId) -> Result<TxnId> {
        let r = match self.nodes[ix(node)].begin() {
            Err(Error::LogFull(_)) => {
                self.ensure_log_space(node)?;
                self.nodes[ix(node)].begin()
            }
            r => r,
        };
        if let Ok(txn) = r {
            self.nodes[ix(node)]
                .recorder
                .record(self.now(), TraceEvent::TxnBegin { txn });
            // 1-in-N span sampling: an unsampled transaction gets no
            // root span, so its child spans carry a NONE context and
            // drop at emission. Cluster-wide invariant spans (updates,
            // transfers, page writes, truncations) are still traced —
            // the watchdog's checks never lose coverage.
            self.txns_begun += 1;
            let sampled = (self.txns_begun - 1) % self.cfg.trace_sample_one_in() == 0;
            if self.tracer.is_enabled() && sampled {
                self.txn_spans
                    .insert(txn, (self.tracer.alloc(), self.now()));
            }
        }
        r
    }

    /// Reads counter slot `slot` of `pid` under a shared lock.
    pub fn read_u64(&mut self, txn: TxnId, pid: PageId, slot: usize) -> Result<u64> {
        self.ensure_access(txn, pid, LockMode::Shared)?;
        let n = ix(txn.node);
        let page = self.nodes[n]
            .buffer
            .get_mut(pid)
            .ok_or(Error::NoSuchPage(pid))?;
        page.read_slot(slot)
    }

    /// Writes counter slot `slot` of `pid` under an exclusive lock,
    /// logging a physical byte-range record locally.
    pub fn write_u64(&mut self, txn: TxnId, pid: PageId, slot: usize, value: u64) -> Result<()> {
        self.ensure_access(txn, pid, LockMode::Exclusive)?;
        let n = ix(txn.node);
        let before = {
            let page = self.nodes[n]
                .buffer
                .get_mut(pid)
                .ok_or(Error::NoSuchPage(pid))?;
            page.read_slot(slot)?
        };
        let op = PageOp::WriteRange {
            off: (slot * 8) as u32,
            before: before.to_le_bytes().to_vec(),
            after: value.to_le_bytes().to_vec(),
        };
        self.logged_update(txn, pid, op)
    }

    fn require_slotted(&self, node: NodeId, pid: PageId) -> Result<()> {
        match self.nodes[ix(node)].buffer.peek(pid) {
            Some(p) if p.kind() == PageKind::Slotted => Ok(()),
            Some(p) => Err(Error::Invalid(format!(
                "record operation on non-slotted page {pid} ({:?})",
                p.kind()
            ))),
            None => Err(Error::NoSuchPage(pid)),
        }
    }

    /// Inserts a record into a slotted page (logical logging), returning
    /// its rid.
    pub fn insert_record(&mut self, txn: TxnId, pid: PageId, data: &[u8]) -> Result<Rid> {
        self.ensure_access(txn, pid, LockMode::Exclusive)?;
        self.require_slotted(txn.node, pid)?;
        let n = ix(txn.node);
        // Determine the slot the insert will land in without mutating.
        let slot = {
            let page = self.nodes[n]
                .buffer
                .get_mut(pid)
                .ok_or(Error::NoSuchPage(pid))?;
            let sp = SlottedPage::new(page);
            (0..sp.dir_len())
                .find(|&s| !sp.is_live(s))
                .unwrap_or(sp.dir_len())
        };
        let op = PageOp::Insert {
            slot,
            data: data.to_vec(),
        };
        self.logged_update(txn, pid, op)?;
        Ok(Rid::new(pid, slot))
    }

    /// Deletes a record from a slotted page.
    pub fn delete_record(&mut self, txn: TxnId, rid: Rid) -> Result<()> {
        self.ensure_access(txn, rid.page, LockMode::Exclusive)?;
        self.require_slotted(txn.node, rid.page)?;
        let n = ix(txn.node);
        let old = {
            let page = self.nodes[n]
                .buffer
                .get_mut(rid.page)
                .ok_or(Error::NoSuchPage(rid.page))?;
            SlottedPage::new(page).get(rid.slot)?.to_vec()
        };
        let op = PageOp::Delete {
            slot: rid.slot,
            old,
        };
        self.logged_update(txn, rid.page, op)
    }

    /// Replaces a record in a slotted page.
    pub fn update_record(&mut self, txn: TxnId, rid: Rid, data: &[u8]) -> Result<()> {
        self.ensure_access(txn, rid.page, LockMode::Exclusive)?;
        self.require_slotted(txn.node, rid.page)?;
        let n = ix(txn.node);
        let old = {
            let page = self.nodes[n]
                .buffer
                .get_mut(rid.page)
                .ok_or(Error::NoSuchPage(rid.page))?;
            SlottedPage::new(page).get(rid.slot)?.to_vec()
        };
        let op = PageOp::UpdateRec {
            slot: rid.slot,
            old,
            new: data.to_vec(),
        };
        self.logged_update(txn, rid.page, op)
    }

    /// Reads a record under a shared lock.
    pub fn read_record(&mut self, txn: TxnId, rid: Rid) -> Result<Vec<u8>> {
        self.ensure_access(txn, rid.page, LockMode::Shared)?;
        self.require_slotted(txn.node, rid.page)?;
        let n = ix(txn.node);
        let page = self.nodes[n]
            .buffer
            .get_mut(rid.page)
            .ok_or(Error::NoSuchPage(rid.page))?;
        Ok(SlottedPage::new(page).get(rid.slot)?.to_vec())
    }

    fn logged_update(&mut self, txn: TxnId, pid: PageId, op: PageOp) -> Result<()> {
        let n = ix(txn.node);
        match self.nodes[n].log_update(txn, pid, op.clone()) {
            Ok(()) => {
                self.trace_update(txn, pid, false);
                Ok(())
            }
            Err(Error::LogFull(_)) => {
                // §2.5: reclaim log space, then retry once. The space
                // protocol may have replaced the target page itself —
                // bring it back (the X lock is still cached).
                self.ensure_log_space(txn.node)?;
                if !self.nodes[n].buffer.contains(pid) {
                    self.fetch_page(txn.node, pid)?;
                }
                self.nodes[n].log_update(txn, pid, op)?;
                self.trace_update(txn, pid, false);
                Ok(())
            }
            Err(e) => Err(e),
        }
    }

    /// Emits the PSN-lineage edge for the update `txn` just logged
    /// against `pid`: the page's PSN moved `psn → psn+1` at the txn's
    /// new last LSN. The watchdog checks the edge against the page's
    /// global PSN frontier as it is emitted.
    fn trace_update(&self, txn: TxnId, pid: PageId, clr: bool) {
        if !self.tracer.is_enabled() {
            return;
        }
        let n = ix(txn.node);
        let Some(page) = self.nodes[n].buffer.peek(pid) else {
            return;
        };
        let after = page.psn();
        let lsn = self.nodes[n]
            .txns
            .get(&txn)
            .map(|t| t.last_lsn)
            .unwrap_or(Lsn::ZERO);
        self.tracer.point(
            self.now(),
            txn.node,
            self.txn_ctx(txn).span,
            SpanKind::Update {
                pid,
                txn,
                psn: Psn(after.0.saturating_sub(1)),
                lsn,
                clr,
            },
        );
    }

    /// Emits a page-transfer span for `pid` moving `from → to` at
    /// `psn`. The WAL rule only constrains replacements to the owner
    /// (the sender's log must be forced through the page's updates —
    /// [`cblog_wal::LogManager::fully_forced`] after
    /// `prepare_replace_to_owner`); shipping a cached copy outward
    /// writes no disk and is always WAL-clean.
    pub(crate) fn trace_transfer(
        &self,
        pid: PageId,
        from: NodeId,
        to: NodeId,
        psn: Psn,
        why: TransferWhy,
    ) -> SpanId {
        if !self.tracer.is_enabled() {
            return SpanId::NONE;
        }
        let wal_ok = match why {
            TransferWhy::Callback | TransferWhy::Replace => self.nodes[ix(from)].log.fully_forced(),
            TransferWhy::Ship | TransferWhy::Recovery => true,
        };
        self.tracer.point(
            self.now(),
            from,
            SpanId::NONE,
            SpanKind::Transfer {
                pid,
                from,
                to,
                psn,
                why,
                wal_ok,
            },
        )
    }

    /// Commits `txn`: local log force only — **no messages** (paper
    /// §1.1). Cached pages and node-level locks are retained. This is
    /// the synchronous wrapper around the group-commit pipeline: the
    /// commit is submitted and, if the node's force scheduler did not
    /// flush it already, its batch is forced on the spot. Under the
    /// default [`crate::GroupCommitPolicy::Immediate`] policy this is
    /// exactly one force per commit.
    pub fn commit(&mut self, txn: TxnId) -> Result<()> {
        self.commit_submit(txn)?;
        if self.schedulers[ix(txn.node)].is_pending(txn) {
            self.flush_node(txn.node)?;
        }
        debug_assert!(
            matches!(
                self.nodes[ix(txn.node)].txns.get(&txn).map(|t| t.status),
                Some(TxnStatus::Committed)
            ),
            "synchronous commit must leave the txn durable"
        );
        Ok(())
    }

    /// First half of the async commit pipeline: appends the Commit
    /// record, releases the transaction's locks and registers it with
    /// the node's force scheduler as force-pending. The transaction is
    /// durable (and may be reported committed) only once
    /// [`Cluster::poll_committed`] returns true. Under the
    /// [`crate::GroupCommitPolicy::Immediate`] policy the batch
    /// flushes before this returns.
    pub fn commit_submit(&mut self, txn: TxnId) -> Result<()> {
        let node = txn.node;
        let n = ix(node);
        let lsn = match self.nodes[n].commit_begin(txn) {
            Ok(l) => l,
            Err(Error::LogFull(_)) => {
                self.ensure_log_space(node)?;
                self.nodes[n].commit_begin(txn)?
            }
            Err(e) => return Err(e),
        };
        self.wfg.remove(txn);
        let now = self.now();
        self.tracer
            .point(now, node, self.txn_ctx(txn).span, SpanKind::Commit { txn });
        self.schedulers[n].submit(txn, lsn, now);
        // Surface the adaptation online: the window this batch is (or
        // the next batch would be) held open for.
        self.nodes[n]
            .registry
            .gauge(keys::WAL_WINDOW_US)
            .set(self.schedulers[n].window_us() as i64);
        if self.schedulers[n].is_due(now) {
            self.flush_node(node)?;
        }
        Ok(())
    }

    /// Polls the async commit pipeline: true once `txn`'s Commit
    /// record is durable and the transaction acknowledged. A pending
    /// transaction whose batch became due (window expired or batch
    /// filled) is flushed here; otherwise use
    /// [`Cluster::pump_commits`] to advance an idle system to the next
    /// window deadline.
    pub fn poll_committed(&mut self, txn: TxnId) -> Result<bool> {
        let node = txn.node;
        let n = ix(node);
        // A force taken for any other reason (WAL rule on a page
        // transfer, checkpoint, log-space reclaim) may already have
        // covered the commit record.
        self.reap_acked(node)?;
        if self.schedulers[n].is_pending(txn) && self.schedulers[n].is_due(self.now()) {
            self.flush_node(node)?;
        }
        match self.nodes[n].txns.get(&txn).map(|t| t.status) {
            Some(TxnStatus::Committed) => Ok(true),
            Some(TxnStatus::Committing) => Ok(false),
            Some(s) => Err(Error::Protocol(format!(
                "poll_committed on {txn} in state {s:?}"
            ))),
            None => Err(Error::NoSuchTxn(txn)),
        }
    }

    /// Drives the group-commit pipeline when no transaction can make
    /// progress: flushes every node whose batch is due; if none is due
    /// but commits are pending, idle-advances the sim-clock to the
    /// earliest open window deadline and flushes what became due.
    /// Returns true if any commit was acknowledged.
    pub fn pump_commits(&mut self) -> Result<bool> {
        let mut acked = self.flush_due_nodes()?;
        if acked == 0 {
            if let Some(d) = self.schedulers.iter().filter_map(|s| s.deadline()).min() {
                let now = self.now();
                if d > now {
                    self.net.advance_time(d - now);
                }
                acked += self.flush_due_nodes()?;
            }
        }
        self.sample_telemetry();
        Ok(acked > 0)
    }

    /// Flushes every node whose batch is due, re-evaluating *all*
    /// schedulers until none is: forcing one node's log advances the
    /// sim-clock (disk I/O), which can push another scheduler — one
    /// already examined this pass, or one whose adaptive window
    /// resized shorter — past its deadline. A single index sweep would
    /// skip that batch until the next pump.
    fn flush_due_nodes(&mut self) -> Result<usize> {
        let mut acked = 0;
        loop {
            let mut flushed = false;
            for i in 0..self.nodes.len() {
                if self.schedulers[i].is_due(self.now()) {
                    acked += self.flush_node(NodeId(i as u32))?;
                    flushed = true;
                }
            }
            if !flushed {
                break;
            }
        }
        Ok(acked)
    }

    /// Acknowledges every force-pending commit on `node` whose Commit
    /// record is already durable (idempotent).
    fn reap_acked(&mut self, node: NodeId) -> Result<usize> {
        let n = ix(node);
        let flushed = self.nodes[n].log.flushed_lsn();
        let acked = self.schedulers[n].drain_acked(flushed);
        for t in &acked {
            self.nodes[n].finish_commit(*t)?;
            self.nodes[n]
                .recorder
                .record(self.now(), TraceEvent::TxnCommit { txn: *t });
            self.close_txn_span(*t, true);
        }
        Ok(acked.len())
    }

    /// Forces `node`'s log once for its whole batch of force-pending
    /// commits and acknowledges all of them: the group commit. One
    /// `io_fixed_us` is charged for the batch, so the per-commit force
    /// cost drops as the group grows. Returns the number of commits
    /// acknowledged.
    fn flush_node(&mut self, node: NodeId) -> Result<usize> {
        let n = ix(node);
        // Commits covered by an interleaved force are acknowledged
        // without paying for a new one.
        let mut acked = self.reap_acked(node)?;
        let batch = self.schedulers[n].pending_len() as u64;
        if batch == 0 {
            return Ok(acked);
        }
        let bytes = self.pending_log_bytes(node);
        let forces0 = self.nodes[n].log.forces();
        self.nodes[n].log.force_all()?;
        self.charge_force(node, forces0, bytes);
        let us = self.cfg.cost.io_cost(bytes as usize);
        {
            let nd = &self.nodes[n];
            nd.registry.histogram(keys::WAL_GROUP_SIZE).record(batch);
            // The paper's headline metric: what the one local force at
            // commit costs (distinct from forces taken for the WAL rule
            // or checkpoints, which land only in `wal/force_us`). Every
            // commit in the batch observed the shared force's latency.
            for _ in 0..batch {
                nd.registry.histogram(keys::WAL_COMMIT_FORCE_US).record(us);
            }
            nd.recorder.record(
                self.net.clock().now(),
                TraceEvent::GroupCommit { txns: batch, bytes },
            );
        }
        self.tracer.point(
            self.now(),
            node,
            SpanId::NONE,
            SpanKind::GroupForce {
                node,
                txns: batch,
                bytes,
            },
        );
        acked += self.reap_acked(node)?;
        let commits = self.nodes[n].commits();
        if let Some(ratio) = (self.nodes[n].log.forces() * 1000).checked_div(commits) {
            self.nodes[n]
                .registry
                .gauge(keys::WAL_FORCES_PER_COMMIT)
                .set(ratio as i64);
        }
        Ok(acked)
    }

    /// Takes a savepoint.
    pub fn savepoint(&mut self, txn: TxnId) -> Result<Savepoint> {
        self.nodes[ix(txn.node)].savepoint(txn)
    }

    /// Partially rolls `txn` back to `sp`; the transaction stays
    /// active. Pages that were replaced from the cache are re-fetched
    /// from their owners (paper §2.2).
    pub fn rollback_to(&mut self, txn: TxnId, sp: Savepoint) -> Result<()> {
        if sp.txn != txn {
            return Err(Error::Invalid("savepoint belongs to another txn".into()));
        }
        self.drive_rollback(txn, sp.at_lsn)
    }

    /// Aborts `txn` (total rollback + Abort record). Retryable if a
    /// page fetch hits a crashed owner.
    pub fn abort(&mut self, txn: TxnId) -> Result<()> {
        let n = ix(txn.node);
        self.nodes[n].start_abort(txn)?;
        self.drive_rollback(txn, Lsn::ZERO)?;
        self.nodes[n].finish_abort(txn)?;
        self.nodes[n]
            .recorder
            .record(self.now(), TraceEvent::TxnAbort { txn });
        self.close_txn_span(txn, false);
        // A waiter that dies waiting (deadlock victim) still spent its
        // time queueing — fold it into the same wait histogram the
        // successful acquisitions feed.
        if let Some(t0) = self.wait_since.remove(&txn) {
            let now = self.now();
            let waited = now.saturating_sub(t0);
            self.nodes[n]
                .registry
                .histogram(keys::LOCKS_WAIT_US)
                .record(waited);
            self.net.charge_wait(txn.node, waited);
        }
        self.wfg.remove(txn);
        Ok(())
    }

    fn drive_rollback(&mut self, txn: TxnId, upto: Lsn) -> Result<()> {
        let n = ix(txn.node);
        loop {
            match self.nodes[n].rollback_step(txn, upto) {
                Ok(RollbackStep::Done) => return Ok(()),
                Ok(RollbackStep::Undone(pid)) => {
                    // A CLR bumps the PSN like any forward update —
                    // the lineage shows undo steps explicitly.
                    self.trace_update(txn, pid, true);
                }
                Ok(RollbackStep::NeedPage(pid)) => {
                    // The transaction still holds its X lock; only the
                    // page image must come back from the owner.
                    self.fetch_page(txn.node, pid)?;
                }
                Err(Error::LogFull(_)) => {
                    // CLR appends also obey the §2.5 protocol.
                    self.ensure_log_space(txn.node)?;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Takes a fuzzy checkpoint on `node` — purely local (contribution
    /// (4) of the paper).
    pub fn checkpoint(&mut self, node: NodeId) -> Result<Lsn> {
        let n = ix(node);
        let pending = self.pending_log_bytes(node) + 128;
        let forces0 = self.nodes[n].log.forces();
        let lsn = self.nodes[n].checkpoint()?;
        self.charge_force(node, forces0, pending);
        self.truncate_log_traced(node);
        Ok(lsn)
    }

    /// Truncates `node`'s log and emits the §2.5 audit span: the
    /// reclaimed prefix (`upto`) against the master checkpoint anchor.
    /// The online watchdog flags any truncation past the anchor —
    /// records newer than the checkpoint must never be discarded.
    /// Before the first checkpoint there is no anchor, so nothing is
    /// emitted (the low-water mark alone bounds the reclaim).
    fn truncate_log_traced(&mut self, node: NodeId) {
        let n = ix(node);
        let anchor = self.nodes[n].log.last_checkpoint();
        let upto = self.nodes[n].truncate_log();
        if !anchor.is_zero() {
            self.tracer.point(
                self.now(),
                node,
                SpanId::NONE,
                SpanKind::LogTruncate { node, upto, anchor },
            );
        }
    }

    // ------------------------------------------------------------------
    // Deadlock bookkeeping (driven by the scheduler)
    // ------------------------------------------------------------------

    /// Records that `txn` is blocked on `holders`.
    pub fn note_blocked(&mut self, txn: TxnId, holders: &[TxnId]) {
        self.wfg.set_waits(txn, holders);
    }

    /// Records that `txn` made progress (no longer waiting).
    pub fn note_unblocked(&mut self, txn: TxnId) {
        self.wfg.remove(txn);
    }

    /// Finds a deadlock victim, if a cycle exists. Detection is
    /// counted on the victim's node (`locks/deadlocks`) and noted in
    /// its flight recorder — both use interior mutability, so `&self`
    /// suffices.
    pub fn find_deadlock_victim(&self) -> Option<TxnId> {
        let victim = self.wfg.find_victim()?;
        let n = &self.nodes[ix(victim.node)];
        n.registry.counter(keys::LOCKS_DEADLOCKS).bump();
        n.recorder
            .record(self.now(), TraceEvent::Deadlock { victim });
        Some(victim)
    }

    // ------------------------------------------------------------------
    // The data-shipping / callback-locking protocol (paper §2.2)
    // ------------------------------------------------------------------

    /// Ensures `txn` holds `mode` on `pid` at both levels and that the
    /// page is cached at its node. Lock outcomes feed the node's
    /// `locks/*` metrics: a grant bumps `locks/acquisitions` (and, if
    /// the transaction had been blocked, records the full blocked span
    /// in the `locks/wait_us` histogram); a conflict bumps
    /// `locks/waits` and leaves a [`TraceEvent::LockWait`] in the
    /// flight recorder.
    pub fn ensure_access(&mut self, txn: TxnId, pid: PageId, mode: LockMode) -> Result<()> {
        let r = self.ensure_access_inner(txn, pid, mode);
        let reg = &self.nodes[ix(txn.node)].registry;
        match &r {
            Ok(()) => {
                reg.counter(keys::LOCKS_ACQUISITIONS).bump();
                if let Some(t0) = self.wait_since.remove(&txn) {
                    let now = self.net.clock().now();
                    let waited = now.saturating_sub(t0);
                    reg.histogram(keys::LOCKS_WAIT_US).record(waited);
                    self.net.charge_wait(txn.node, waited);
                }
            }
            Err(Error::WouldBlock { .. }) => {
                reg.counter(keys::LOCKS_WAITS).bump();
                let now = self.net.clock().now();
                self.wait_since.entry(txn).or_insert(now);
                self.nodes[ix(txn.node)]
                    .recorder
                    .record(now, TraceEvent::LockWait { txn, pid });
            }
            Err(_) => {}
        }
        r
    }

    fn ensure_access_inner(&mut self, txn: TxnId, pid: PageId, mode: LockMode) -> Result<()> {
        let node = txn.node;
        let n = ix(node);
        if self.nodes[n].is_crashed() {
            return Err(Error::NodeDown(node));
        }
        // 1. Check (without granting) for conflicting local
        // transactions — strict 2PL among local txns.
        let conflicts = self.nodes[n].local_locks.conflicts(txn, pid, mode);
        if !conflicts.is_empty() {
            return Err(Error::WouldBlock {
                txn,
                holders: conflicts,
            });
        }
        // 2. Node-level cached lock; contact the owner if not covered.
        // The transaction-level lock is granted only *after* coverage
        // exists: a request still waiting for the owner must not hold
        // a local lock that defers incoming callbacks (that ordering
        // livelocks two upgrading nodes against each other).
        if !self.nodes[n].cached_locks.covers(pid, mode) {
            self.acquire_node_lock(txn, pid, mode)?;
        }
        // 3. Transaction-level grant. Another local transaction may
        // have slipped in while this request waited on the owner; that
        // surfaces as a normal retryable block.
        match self.nodes[n].local_locks.request(txn, pid, mode) {
            LocalRequestOutcome::Granted => {}
            LocalRequestOutcome::Blocked(holders) => {
                return Err(Error::WouldBlock { txn, holders });
            }
        }
        // 4. Page presence.
        if !self.nodes[n].buffer.contains(pid) {
            self.fetch_page(node, pid)?;
        }
        // 5. Paper §2.2: a DPT entry is added when the node obtains an
        // exclusive lock and no entry exists, with RedoLSN set
        // conservatively to the current end of the log.
        if mode == LockMode::Exclusive {
            let psn = self.nodes[n].buffer.peek(pid).expect("fetched above").psn();
            let end = self.nodes[n].log.end_lsn();
            self.nodes[n].dpt.ensure(pid, psn, end);
        }
        Ok(())
    }

    /// Acquires a node-level lock from the owner, running callbacks.
    fn acquire_node_lock(&mut self, txn: TxnId, pid: PageId, mode: LockMode) -> Result<()> {
        let node = txn.node;
        let owner = pid.owner;
        if self.net.is_crashed(owner) {
            return Err(Error::OwnerDown { owner, page: pid });
        }
        let ctx = self.txn_ctx(txn);
        if owner != node {
            self.net.send_reliable_hdr(
                node,
                owner,
                MsgKind::LockRequest,
                CTRL_BYTES,
                MsgHeader::of(ctx),
            )?;
        }
        loop {
            let outcome = self.nodes[ix(owner)].global_locks.request(pid, node, mode);
            match outcome {
                GlobalRequestOutcome::Granted => break,
                GlobalRequestOutcome::NeedsCallbacks(victims) => {
                    for (victim, action) in victims {
                        self.run_callback(txn, pid, victim, action)?;
                    }
                }
            }
        }
        self.nodes[ix(node)].cached_locks.grant(pid, mode);
        // The grant is attributed to the owner: that is where the
        // global lock table serialized this requester against the rest
        // of the cluster.
        let grant = self.tracer.point(
            self.now(),
            owner,
            ctx.span,
            SpanKind::LockGrant {
                pid,
                owner,
                to: node,
                txn,
            },
        );
        if owner != node {
            self.net.send_reliable_hdr(
                owner,
                node,
                MsgKind::LockGrant,
                CTRL_BYTES,
                MsgHeader::of(SpanCtx::child(grant, ctx.span)),
            )?;
        }
        Ok(())
    }

    /// Executes one callback against `victim` (paper §2.2): the victim
    /// downgrades/releases its cached lock and ships its buffered copy
    /// of the page, if any, to the owner.
    fn run_callback(
        &mut self,
        waiter: TxnId,
        pid: PageId,
        victim: NodeId,
        action: CallbackAction,
    ) -> Result<()> {
        let owner = pid.owner;
        let v = ix(victim);
        if self.nodes[v].is_crashed() {
            // An exclusive lock retained by a crashed node fences the
            // page until that node recovers (§2.3.3).
            return Err(Error::WouldBlock {
                txn: waiter,
                holders: Vec::new(),
            });
        }
        if victim == owner {
            // The owner revoking its own lock: no messages, and its
            // buffer copy stays put — the owner's buffer is where the
            // authoritative image lives.
            let blocking: Vec<TxnId> = self.nodes[v]
                .local_locks
                .holders(pid)
                .into_iter()
                .filter(|(_, m)| match action {
                    CallbackAction::Release => true,
                    CallbackAction::Demote => *m == LockMode::Exclusive,
                })
                .map(|(t, _)| t)
                .collect();
            if !blocking.is_empty() {
                return Err(Error::WouldBlock {
                    txn: waiter,
                    holders: blocking,
                });
            }
            match action {
                CallbackAction::Demote => {
                    self.nodes[v].cached_locks.demote(pid);
                }
                CallbackAction::Release => {
                    self.nodes[v].cached_locks.release(pid);
                }
            }
            self.nodes[v]
                .global_locks
                .callback_applied(pid, victim, action);
            return Ok(());
        }
        let ctx = self.txn_ctx(waiter);
        self.net.send_reliable_hdr(
            owner,
            victim,
            MsgKind::Callback,
            CTRL_BYTES,
            MsgHeader::of(ctx),
        )?;
        // Callbacks are deferred while a local transaction of the
        // victim holds a conflicting transaction-level lock.
        let blocking: Vec<TxnId> = self.nodes[v]
            .local_locks
            .holders(pid)
            .into_iter()
            .filter(|(_, m)| match action {
                CallbackAction::Release => true,
                CallbackAction::Demote => *m == LockMode::Exclusive,
            })
            .map(|(t, _)| t)
            .collect();
        if !blocking.is_empty() {
            return Err(Error::WouldBlock {
                txn: waiter,
                holders: blocking,
            });
        }
        // Comply: adjust the cached lock, ship the page copy if cached.
        let had_page = self.nodes[v].buffer.contains(pid);
        let dirty = self.nodes[v].buffer.is_dirty(pid).unwrap_or(false);
        match action {
            CallbackAction::Demote => {
                self.nodes[v].cached_locks.demote(pid);
            }
            CallbackAction::Release => {
                self.nodes[v].cached_locks.release(pid);
            }
        }
        if had_page && dirty {
            // WAL rule + §2.5 bookkeeping, then ship to the owner.
            let forces0 = self.nodes[v].log.forces();
            let pending = self.pending_log_bytes(victim);
            self.nodes[v].prepare_replace_to_owner(pid)?;
            self.charge_force(victim, forces0, pending);
            let copy = self.nodes[v].buffer.peek(pid).expect("had_page").clone();
            let xfer = self.trace_transfer(pid, victim, owner, copy.psn(), TransferWhy::Callback);
            self.net.send_reliable_hdr(
                victim,
                owner,
                MsgKind::CallbackAck,
                self.page_bytes(),
                MsgHeader::of(SpanCtx::child(xfer, ctx.span)),
            )?;
            self.nodes[v].recorder.record(
                self.net.clock().now(),
                TraceEvent::PageTransfer {
                    pid,
                    from: victim,
                    to: owner,
                },
            );
            let ev = self.nodes[ix(owner)].receive_replaced(victim, copy)?;
            if let Some(ev) = ev {
                self.route_eviction(owner, ev)?;
            }
            self.nodes[v].buffer.mark_clean(pid);
            if self.cfg.force_on_transfer {
                // Baseline ablation (§3.2): the page hits the disk
                // before it may travel onward.
                self.force_page(pid)?;
            }
        } else {
            self.net.send_reliable_hdr(
                victim,
                owner,
                MsgKind::CallbackAck,
                CTRL_BYTES,
                MsgHeader::of(ctx),
            )?;
        }
        if action == CallbackAction::Release && had_page {
            self.nodes[v].buffer.remove(pid);
        }
        self.nodes[ix(owner)]
            .global_locks
            .callback_applied(pid, victim, action);
        Ok(())
    }

    /// Brings `pid` into `node`'s cache from the owner's authoritative
    /// copy (buffer, else disk).
    pub(crate) fn fetch_page(&mut self, node: NodeId, pid: PageId) -> Result<()> {
        let owner = pid.owner;
        if self.net.is_crashed(owner) {
            return Err(Error::OwnerDown { owner, page: pid });
        }
        if self.cfg.force_on_transfer
            && owner != node
            && self.nodes[ix(owner)].buffer.is_dirty(pid).unwrap_or(false)
        {
            self.force_page(pid)?;
        }
        let (page, did_io) = self.nodes[ix(owner)].authoritative_copy(pid)?;
        if did_io {
            self.net.disk_io(owner, self.page_size());
        }
        if owner != node {
            let xfer = self.trace_transfer(pid, owner, node, page.psn(), TransferWhy::Ship);
            self.net.send_reliable_hdr(
                owner,
                node,
                MsgKind::PageShip,
                self.page_bytes(),
                MsgHeader::of(SpanCtx::root(xfer)),
            )?;
            self.nodes[ix(node)].recorder.record(
                self.net.clock().now(),
                TraceEvent::PageTransfer {
                    pid,
                    from: owner,
                    to: node,
                },
            );
        }
        let ev = self.nodes[ix(node)].cache_page(page, false)?;
        if let Some(ev) = ev {
            self.route_eviction(node, ev)?;
        }
        Ok(())
    }

    /// Routes a buffer-pool eviction victim: locally owned dirty pages
    /// are written in place; remotely owned dirty pages are shipped to
    /// the owner (paper §2.1). Clean pages just drop (cached locks are
    /// retained either way).
    pub(crate) fn route_eviction(&mut self, node: NodeId, ev: EvictedPage) -> Result<()> {
        let pid = ev.page.id();
        if !ev.dirty {
            return Ok(());
        }
        // A dirty frame left the pool before its owner forced it.
        self.nodes[ix(node)]
            .registry
            .counter(keys::BUF_DIRTY_STEALS)
            .bump();
        if pid.owner == node {
            let acks = {
                let n = ix(node);
                let forces0 = self.nodes[n].log.forces();
                let pending = self.pending_log_bytes(node);
                let acks = self.nodes[n].write_owned_page(&ev.page)?;
                self.charge_force(node, forces0, pending);
                acks
            };
            self.net.disk_io(node, self.page_size());
            let write = self.trace_page_write(node, pid, ev.page.psn());
            self.send_flush_acks(node, pid, acks, write)?;
        } else {
            let owner = pid.owner;
            if self.net.is_crashed(owner) {
                // Cannot ship to a crashed owner: keep the page cached
                // (it may evict something else whose owner is up).
                let n = ix(node);
                if let Some(ev2) = self.nodes[n].buffer.insert(ev.page, true)? {
                    if ev2.page.id() == pid {
                        return Err(Error::OwnerDown { owner, page: pid });
                    }
                    return self.route_eviction(node, ev2);
                }
                return Ok(());
            }
            let forces0 = self.nodes[ix(node)].log.forces();
            let pending = self.pending_log_bytes(node);
            self.nodes[ix(node)].prepare_replace_to_owner(pid)?;
            self.charge_force(node, forces0, pending);
            let xfer = self.trace_transfer(pid, node, owner, ev.page.psn(), TransferWhy::Replace);
            self.net.send_reliable_hdr(
                node,
                owner,
                MsgKind::ReplacePage,
                self.page_bytes(),
                MsgHeader::of(SpanCtx::root(xfer)),
            )?;
            self.nodes[ix(node)].recorder.record(
                self.net.clock().now(),
                TraceEvent::PageTransfer {
                    pid,
                    from: node,
                    to: owner,
                },
            );
            let ev2 = self.nodes[ix(owner)].receive_replaced(node, ev.page)?;
            if let Some(ev2) = ev2 {
                self.route_eviction(owner, ev2)?;
            }
            if self.cfg.force_on_transfer {
                self.force_page(pid)?;
            }
        }
        Ok(())
    }

    fn send_flush_acks(
        &mut self,
        owner: NodeId,
        pid: PageId,
        acks: Vec<NodeId>,
        parent: SpanId,
    ) -> Result<()> {
        for a in acks {
            if self.net.is_crashed(a) {
                continue; // the node will reconcile during its recovery
            }
            // Flush acks are loss-tolerant hints: a dropped ack just
            // leaves a stale (conservative) DPT entry at the replacer,
            // so there is no retry — the protocol stays correct.
            let hdr = MsgHeader::of(SpanCtx::root(parent));
            match self
                .net
                .send_hdr(owner, a, MsgKind::FlushAck, CTRL_BYTES, hdr)
            {
                Ok(()) => {
                    self.nodes[ix(a)].dpt.on_flush_ack(pid);
                }
                Err(Error::MsgLost { .. }) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Emits a disk-write span for owned page `pid` on `node`. WAL
    /// rule: the write is clean if the owner's log has no unforced
    /// records covering the page — [`Node::write_owned_page`] forces
    /// when a DPT entry exists, so a surviving entry with an unforced
    /// tail means the rule was skipped.
    fn trace_page_write(&self, node: NodeId, pid: PageId, psn: Psn) -> SpanId {
        if !self.tracer.is_enabled() {
            return SpanId::NONE;
        }
        let n = &self.nodes[ix(node)];
        let wal_ok = !n.dpt.contains(pid) || n.log.fully_forced();
        self.tracer.point(
            self.now(),
            node,
            SpanId::NONE,
            SpanKind::PageWrite {
                pid,
                node,
                psn,
                wal_ok,
            },
        )
    }

    // ------------------------------------------------------------------
    // Owner-side force and the §2.5 log-space protocol
    // ------------------------------------------------------------------

    /// Ensures the latest image of owned page `pid` is on the owner's
    /// disk and flush-acknowledges every node that had replaced it.
    pub fn force_page(&mut self, pid: PageId) -> Result<()> {
        let owner = pid.owner;
        let o = ix(owner);
        if self.nodes[o].is_crashed() {
            return Err(Error::NodeDown(owner));
        }
        // If a remote node holds the page exclusively with a dirty
        // cached copy, pull that copy first (§2.5: "the page is first
        // requested from a node that has it in its cache").
        if let Some(holder) = self.nodes[o].global_locks.exclusive_holder(pid) {
            if holder != owner {
                let h = ix(holder);
                if !self.nodes[h].is_crashed()
                    && self.nodes[h].buffer.is_dirty(pid).unwrap_or(false)
                {
                    self.net.send_reliable_hdr(
                        owner,
                        holder,
                        MsgKind::ForceRequest,
                        CTRL_BYTES,
                        MsgHeader::NONE,
                    )?;
                    let forces0 = self.nodes[h].log.forces();
                    let pending = self.pending_log_bytes(holder);
                    self.nodes[h].prepare_replace_to_owner(pid)?;
                    self.charge_force(holder, forces0, pending);
                    let copy = self.nodes[h]
                        .buffer
                        .peek(pid)
                        .expect("dirty implies cached")
                        .clone();
                    let xfer =
                        self.trace_transfer(pid, holder, owner, copy.psn(), TransferWhy::Callback);
                    self.net.send_reliable_hdr(
                        holder,
                        owner,
                        MsgKind::PageShip,
                        self.page_bytes(),
                        MsgHeader::of(SpanCtx::root(xfer)),
                    )?;
                    let ev = self.nodes[o].receive_replaced(holder, copy)?;
                    if let Some(ev) = ev {
                        self.route_eviction(owner, ev)?;
                    }
                    self.nodes[h].buffer.mark_clean(pid);
                }
            }
        }
        let dirty =
            self.nodes[o].buffer.is_dirty(pid).unwrap_or(false) || self.nodes[o].dpt.contains(pid);
        let mut write = SpanId::NONE;
        let acks = if dirty {
            let (page, did_io) = self.nodes[o].authoritative_copy(pid)?;
            if did_io {
                self.net.disk_io(owner, self.page_size());
            }
            let forces0 = self.nodes[o].log.forces();
            let pending = self.pending_log_bytes(owner);
            let acks = self.nodes[o].write_owned_page(&page)?;
            self.charge_force(owner, forces0, pending);
            self.net.disk_io(owner, self.page_size());
            write = self.trace_page_write(owner, pid, page.psn());
            acks
        } else {
            // Nothing dirty owner-side; ack any recorded replacers
            // whose image already reached the disk.
            self.nodes[o]
                .replacers
                .remove(&pid)
                .map(|s| s.into_iter().collect())
                .unwrap_or_default()
        };
        self.send_flush_acks(owner, pid, acks, write)
    }

    /// The §2.5 log-space protocol: repeatedly replace the DPT page
    /// with the minimum RedoLSN and ask its owner to force it, until
    /// enough space is reclaimed (or nothing more can move).
    pub fn ensure_log_space(&mut self, node: NodeId) -> Result<()> {
        let n = ix(node);
        if self.nodes[n].log().available_space().is_none() {
            return Err(Error::Protocol(
                "log-space protocol on unbounded log".into(),
            ));
        }
        for _round in 0..64 {
            self.truncate_log_traced(node);
            let cap_ok = self.nodes[n]
                .log()
                .available_space()
                .map(|a| a * 4 >= self.nodes[n].config().log_capacity.unwrap_or(1))
                .unwrap_or(true);
            if cap_ok {
                return Ok(());
            }
            let Some(entry) = self.nodes[n].dpt.min_redo_entry().copied() else {
                // Nothing replaceable: space is pinned by active
                // transactions or the checkpoint anchor.
                self.truncate_log_traced(node);
                return Ok(());
            };
            let pid = entry.pid;
            if pid.owner == node {
                // Own page: cached (own dirty pages never leave without
                // being written). Write it.
                self.force_page(pid)?;
            } else {
                if self.net.is_crashed(pid.owner) {
                    return Err(Error::OwnerDown {
                        owner: pid.owner,
                        page: pid,
                    });
                }
                // Replace from the cache if present, then ask the owner
                // to force.
                if self.nodes[n].buffer.contains(pid)
                    && self.nodes[n].buffer.is_dirty(pid).unwrap_or(false)
                {
                    let ev = self.nodes[n].buffer.remove(pid).expect("present");
                    self.route_eviction(node, ev)?;
                } else {
                    self.nodes[n].buffer.remove(pid);
                }
                self.net.send_reliable_hdr(
                    node,
                    pid.owner,
                    MsgKind::ForceRequest,
                    CTRL_BYTES,
                    MsgHeader::NONE,
                )?;
                self.force_page(pid)?;
            }
        }
        self.truncate_log_traced(node);
        Ok(())
    }

    /// Evicts `pid` from `node`'s cache, routing it per §2.1 (write in
    /// place if locally owned, ship to the owner otherwise). Returns
    /// true if the page was cached. Cached locks are retained.
    pub fn evict_page(&mut self, node: NodeId, pid: PageId) -> Result<bool> {
        match self.nodes[ix(node)].buffer.remove(pid) {
            Some(ev) => {
                self.route_eviction(node, ev)?;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    // ------------------------------------------------------------------
    // Crash injection
    // ------------------------------------------------------------------

    /// Crashes `node`: volatile state is lost and the node becomes
    /// unreachable. Lock and data requests against pages it owns stall
    /// until it recovers; all other nodes keep processing (paper §2.3).
    ///
    /// If the cluster's [`cblog_net::FaultPlan`] has a nonzero `tear`
    /// probability and the node had unforced log-tail bytes, the fault
    /// injector may turn the crash into a torn write: a prefix of the
    /// tail lands on disk (optionally with its last landed byte
    /// corrupted), modeling a crash mid-force.
    pub fn crash(&mut self, node: NodeId) {
        let pending = self.pending_log_bytes(node);
        let tear = self.net.roll_tear(pending);
        self.crash_inner(node, tear);
    }

    /// Crashes `node` with a deterministic torn log write: exactly
    /// `landed` bytes of the unforced tail reach disk, and if `corrupt`
    /// the last landed byte is flipped. Tests use this to pin down tail
    /// repair at exact chunk boundaries.
    pub fn crash_torn(&mut self, node: NodeId, landed: u64, corrupt: bool) {
        self.crash_inner(node, Some((landed, corrupt)));
    }

    fn crash_inner(&mut self, node: NodeId, tear: Option<(u64, bool)>) {
        self.nodes[ix(node)]
            .recorder
            .record(self.now(), TraceEvent::Crash);
        // The crash span doubles as a watchdog epoch marker: unforced
        // PSNs above the durable coverage died with the volatile state
        // and will legitimately be re-walked after recovery.
        self.tracer
            .point(self.now(), node, SpanId::NONE, SpanKind::Crash { node });
        self.txn_spans.retain(|t, _| t.node != node);
        match tear {
            Some((landed, corrupt)) => self.nodes[ix(node)].crash_torn(landed, corrupt),
            None => self.nodes[ix(node)].crash(),
        }
        // Force-pending commits die with the tail: they were never
        // acknowledged, and restart rolls them back as losers.
        self.schedulers[ix(node)].clear();
        self.net.mark_crashed(node);
        // Transactions of the crashed node disappear from the global
        // waits-for graph (their locks will be handled by recovery).
        let ids: Vec<TxnId> = self
            .nodes
            .iter()
            .flat_map(|nd| nd.active_txns())
            .filter(|t| t.node == node)
            .collect();
        for t in ids {
            self.wfg.remove(t);
        }
    }

    /// True if `node` is crashed and unrecovered.
    pub fn is_crashed(&self, node: NodeId) -> bool {
        self.nodes[ix(node)].is_crashed()
    }

    // ------------------------------------------------------------------
    // Observability export
    // ------------------------------------------------------------------

    /// One cluster-wide metrics snapshot: every node's registry under
    /// an `n<id>/` prefix, plus the network's per-message-kind counts
    /// and bytes under `net/`.
    pub fn metrics_snapshot(&self) -> Snapshot {
        self.mirror_profile_gauges();
        let mut out = Snapshot::default();
        for node in &self.nodes {
            out.merge_prefixed(&format!("n{}/", node.id().0), node.registry().snapshot());
        }
        let stats = self.net.stats();
        for kind in MsgKind::ALL {
            let msgs = stats.count(kind);
            if msgs == 0 {
                continue;
            }
            out.entries.insert(
                format!("net/{}/msgs", kind.label()),
                MetricValue::Counter(msgs),
            );
            out.entries.insert(
                format!("net/{}/bytes", kind.label()),
                MetricValue::Counter(stats.bytes_of(kind)),
            );
        }
        out.entries.insert(
            "net/total/msgs".into(),
            MetricValue::Counter(stats.total_messages()),
        );
        out.entries.insert(
            "net/total/bytes".into(),
            MetricValue::Counter(stats.total_bytes()),
        );
        out
    }

    /// Mirrors derived observability state into per-node gauges so it
    /// flows through snapshots and the interval sampler: the sim-clock
    /// resource-time profile (`prof/{disk,cpu,net,lock_wait,replay}_us`,
    /// cumulative) and the force scheduler's queue depth
    /// (`wal/pending_commits`). Gauges use interior mutability, so
    /// `&self` suffices.
    fn mirror_profile_gauges(&self) {
        for (i, node) in self.nodes.iter().enumerate() {
            let reg = node.registry();
            for b in Bucket::ALL {
                reg.gauge(prof_key(b))
                    .set(self.net.clock().bucket_us(node.id(), b) as i64);
            }
            reg.gauge(keys::WAL_PENDING_COMMITS)
                .set(self.schedulers[i].pending_len() as i64);
        }
    }

    /// Feeds the interval sampler, if telemetry is on: every sim-clock
    /// boundary crossed since the last call records one point per
    /// metric (counter/histogram deltas, gauge levels). The simulation
    /// driver calls this after each scheduler step; the cluster also
    /// calls it from [`Cluster::pump_commits`], which idle-advances
    /// the clock. Free when telemetry is off.
    pub fn sample_telemetry(&mut self) {
        if self.sampler.is_some() {
            let now = self.now();
            let snap = self.metrics_snapshot();
            if let Some(s) = self.sampler.as_mut() {
                s.sample(now, &snap);
            }
        }
    }

    /// The accumulated per-metric time series (None unless the config
    /// enabled telemetry via [`crate::ClusterConfigBuilder::telemetry`]).
    pub fn sampler(&self) -> Option<&Sampler> {
        self.sampler.as_ref()
    }

    /// Renders every node's flight-recorder ring, oldest event first —
    /// the post-mortem dump printed when an oracle check fails.
    pub fn flight_dump(&self) -> String {
        let mut out = String::new();
        for node in &self.nodes {
            let _ = writeln!(out, "--- flight recorder {} ---", node.id());
            out.push_str(&node.recorder().render());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cblog_common::CostModel;

    fn cluster(owned: Vec<u32>) -> Cluster {
        Cluster::new(
            ClusterConfig::builder()
                .owned_pages(owned)
                .page_size(512)
                .buffer_frames(8)
                .default_owned_pages(0)
                .cost(CostModel::unit())
                .build(),
        )
        .unwrap()
    }

    fn pid(owner: u32, idx: u32) -> PageId {
        PageId::new(NodeId(owner), idx)
    }

    #[test]
    fn span_sampling_traces_one_txn_in_n() {
        let mut c = Cluster::new(
            ClusterConfig::builder()
                .owned_pages(vec![4])
                .page_size(512)
                .buffer_frames(8)
                .default_owned_pages(0)
                .cost(CostModel::unit())
                .tracing(true)
                .trace_sample_one_in(2)
                .build(),
        )
        .unwrap();
        for i in 0..4 {
            let t = c.begin(NodeId(0)).unwrap();
            c.write_u64(t, pid(0, 0), 0, i).unwrap();
            c.commit(t).unwrap();
        }
        let spans = c.tracer().spans();
        let txn_spans = spans
            .iter()
            .filter(|s| matches!(s.kind, SpanKind::Txn { .. }))
            .count();
        assert_eq!(txn_spans, 2, "1-in-2 sampling keeps half the txn trees");
        // Sampling must not thin invariant coverage: every update is
        // still traced (as an unparented point for unsampled txns).
        let updates = spans
            .iter()
            .filter(|s| matches!(s.kind, SpanKind::Update { .. }))
            .count();
        assert_eq!(updates, 4, "invariant spans survive sampling");
        c.trace_check().unwrap();
    }

    #[test]
    fn telemetry_sampler_collects_profile_and_queue_series() {
        let mut c = Cluster::new(
            ClusterConfig::builder()
                .owned_pages(vec![4])
                .page_size(512)
                .buffer_frames(8)
                .default_owned_pages(0)
                .telemetry(1_000, 64)
                .build(),
        )
        .unwrap();
        for i in 0..5 {
            let t = c.begin(NodeId(0)).unwrap();
            c.write_u64(t, pid(0, 0), 0, i).unwrap();
            c.commit(t).unwrap();
            c.sample_telemetry();
        }
        let s = c.sampler().expect("telemetry is on");
        let disk = s
            .series("n0/prof/disk_us")
            .unwrap_or_else(|| panic!("disk profile sampled; have {:?}", s.names()));
        // The cumulative disk gauge's last sample matches the clock's
        // disk bucket at the time it was taken.
        let (_, last) = *disk.samples().last().unwrap();
        assert!(last > 0, "commit forces charged disk time");
        assert!(
            s.series("n0/wal/pending_commits").is_some(),
            "queue-depth gauge sampled"
        );
        assert_eq!(
            last as u64,
            c.network().clock().bucket_us(NodeId(0), Bucket::Disk),
            "cumulative gauge mirrors the clock bucket"
        );
    }

    #[test]
    fn checkpoint_truncation_emits_the_log_space_audit_span() {
        let mut c = Cluster::new(
            ClusterConfig::builder()
                .owned_pages(vec![4])
                .page_size(512)
                .buffer_frames(8)
                .default_owned_pages(0)
                .cost(CostModel::unit())
                .tracing(true)
                .build(),
        )
        .unwrap();
        let t = c.begin(NodeId(0)).unwrap();
        c.write_u64(t, pid(0, 0), 0, 7).unwrap();
        c.commit(t).unwrap();
        c.checkpoint(NodeId(0)).unwrap();
        let truncs: Vec<_> = c
            .tracer()
            .spans()
            .into_iter()
            .filter(|s| matches!(s.kind, SpanKind::LogTruncate { .. }))
            .collect();
        assert!(!truncs.is_empty(), "checkpoint truncation is audited");
        // And the watchdog agrees the reclaim respected the anchor.
        c.trace_check().unwrap();
    }

    #[test]
    fn local_read_write_commit_is_message_free_after_warmup() {
        let mut c = cluster(vec![4]);
        let t = c.begin(NodeId(0)).unwrap();
        c.write_u64(t, pid(0, 0), 0, 5).unwrap();
        c.commit(t).unwrap();
        assert_eq!(c.network().stats().total_messages(), 0);
        let t2 = c.begin(NodeId(0)).unwrap();
        assert_eq!(c.read_u64(t2, pid(0, 0), 0).unwrap(), 5);
        c.commit(t2).unwrap();
        assert_eq!(c.network().stats().total_messages(), 0);
    }

    #[test]
    fn remote_write_ships_page_once_then_commits_locally() {
        let mut c = cluster(vec![4, 0]);
        let t = c.begin(NodeId(1)).unwrap();
        c.write_u64(t, pid(0, 0), 0, 9).unwrap();
        let msgs_before_commit = c.network().stats().total_messages();
        assert!(msgs_before_commit > 0, "first access pays lock+ship");
        c.commit(t).unwrap();
        assert_eq!(
            c.network().stats().total_messages(),
            msgs_before_commit,
            "commit itself is message-free"
        );
        // Second transaction on the cached page+lock: zero messages.
        let t2 = c.begin(NodeId(1)).unwrap();
        c.write_u64(t2, pid(0, 0), 0, 10).unwrap();
        c.commit(t2).unwrap();
        assert_eq!(c.network().stats().total_messages(), msgs_before_commit);
    }

    #[test]
    fn callback_transfers_page_between_writers() {
        let mut c = cluster(vec![4, 0, 0]);
        let p = pid(0, 0);
        let t1 = c.begin(NodeId(1)).unwrap();
        c.write_u64(t1, p, 0, 1).unwrap();
        c.commit(t1).unwrap();
        // Node 2 wants the page: callback revokes node 1's X lock and
        // the fresh copy reaches node 2 through the owner.
        let t2 = c.begin(NodeId(2)).unwrap();
        assert_eq!(c.read_u64(t2, p, 0).unwrap(), 1);
        c.write_u64(t2, p, 0, 2).unwrap();
        c.commit(t2).unwrap();
        let s = c.network().stats();
        assert!(s.count(MsgKind::Callback) >= 1);
        assert!(s.count(MsgKind::CallbackAck) >= 1);
        // Node 1's lock was revoked entirely (X requested).
        assert!(c.node(NodeId(1)).cached_locks().mode(p).is_none());
    }

    #[test]
    fn callback_deferred_while_local_txn_holds_page() {
        let mut c = cluster(vec![4, 0, 0]);
        let p = pid(0, 0);
        let t1 = c.begin(NodeId(1)).unwrap();
        c.write_u64(t1, p, 0, 1).unwrap();
        // t1 still active: node 2's request must block on t1.
        let t2 = c.begin(NodeId(2)).unwrap();
        match c.read_u64(t2, p, 0) {
            Err(Error::WouldBlock { holders, .. }) => assert_eq!(holders, vec![t1]),
            r => panic!("expected WouldBlock, got {r:?}"),
        }
        c.commit(t1).unwrap();
        assert_eq!(c.read_u64(t2, p, 0).unwrap(), 1);
        c.commit(t2).unwrap();
    }

    #[test]
    fn shared_readers_coexist_across_nodes() {
        let mut c = cluster(vec![4, 0, 0]);
        let p = pid(0, 0);
        let t1 = c.begin(NodeId(1)).unwrap();
        let t2 = c.begin(NodeId(2)).unwrap();
        assert_eq!(c.read_u64(t1, p, 0).unwrap(), 0);
        assert_eq!(c.read_u64(t2, p, 0).unwrap(), 0);
        c.commit(t1).unwrap();
        c.commit(t2).unwrap();
        assert_eq!(c.network().stats().count(MsgKind::Callback), 0);
    }

    #[test]
    fn read_after_remote_write_sees_fresh_copy_via_demote() {
        let mut c = cluster(vec![4, 0, 0]);
        let p = pid(0, 0);
        let t1 = c.begin(NodeId(1)).unwrap();
        c.write_u64(t1, p, 0, 7).unwrap();
        c.commit(t1).unwrap();
        let t2 = c.begin(NodeId(2)).unwrap();
        assert_eq!(c.read_u64(t2, p, 0).unwrap(), 7);
        c.commit(t2).unwrap();
        // Node 1 retains a demoted shared lock and its cached page.
        assert_eq!(
            c.node(NodeId(1)).cached_locks().mode(p),
            Some(LockMode::Shared)
        );
        assert!(c.node(NodeId(1)).buffer().contains(p));
    }

    #[test]
    fn abort_undoes_remote_updates() {
        let mut c = cluster(vec![4, 0]);
        let p = pid(0, 0);
        let t0 = c.begin(NodeId(1)).unwrap();
        c.write_u64(t0, p, 0, 100).unwrap();
        c.commit(t0).unwrap();
        let t1 = c.begin(NodeId(1)).unwrap();
        c.write_u64(t1, p, 0, 200).unwrap();
        c.write_u64(t1, p, 1, 201).unwrap();
        c.abort(t1).unwrap();
        let t2 = c.begin(NodeId(1)).unwrap();
        assert_eq!(c.read_u64(t2, p, 0).unwrap(), 100);
        assert_eq!(c.read_u64(t2, p, 1).unwrap(), 0);
        c.commit(t2).unwrap();
    }

    #[test]
    fn savepoint_partial_rollback_through_cluster() {
        let mut c = cluster(vec![4]);
        let p = pid(0, 0);
        let t = c.begin(NodeId(0)).unwrap();
        c.write_u64(t, p, 0, 1).unwrap();
        let sp = c.savepoint(t).unwrap();
        c.write_u64(t, p, 1, 2).unwrap();
        c.rollback_to(t, sp).unwrap();
        c.write_u64(t, p, 2, 3).unwrap();
        c.commit(t).unwrap();
        let t2 = c.begin(NodeId(0)).unwrap();
        assert_eq!(c.read_u64(t2, p, 0).unwrap(), 1);
        assert_eq!(c.read_u64(t2, p, 1).unwrap(), 0);
        assert_eq!(c.read_u64(t2, p, 2).unwrap(), 3);
        c.commit(t2).unwrap();
    }

    #[test]
    fn slotted_record_ops_round_trip() {
        let mut c = cluster(vec![4, 0]);
        let p = pid(0, 1);
        c.format_slotted(p).unwrap();
        let t = c.begin(NodeId(1)).unwrap();
        let rid = c.insert_record(t, p, b"hello").unwrap();
        assert_eq!(c.read_record(t, rid).unwrap(), b"hello");
        c.update_record(t, rid, b"world").unwrap();
        assert_eq!(c.read_record(t, rid).unwrap(), b"world");
        c.commit(t).unwrap();
        // Abort of a delete restores the record.
        let t2 = c.begin(NodeId(1)).unwrap();
        c.delete_record(t2, rid).unwrap();
        c.abort(t2).unwrap();
        let t3 = c.begin(NodeId(1)).unwrap();
        assert_eq!(c.read_record(t3, rid).unwrap(), b"world");
        c.commit(t3).unwrap();
    }

    #[test]
    fn eviction_ships_dirty_remote_page_to_owner_and_flush_ack_clears_dpt() {
        let mut c = Cluster::new(
            ClusterConfig::builder()
                .owned_pages(vec![8, 0])
                .page_size(512)
                .buffer_frames(2) // tiny cache to force evictions
                .default_owned_pages(0)
                .cost(CostModel::unit())
                .build(),
        )
        .unwrap();
        // Dirty one page at node 1, then touch others to evict it.
        let hot = pid(0, 0);
        let t = c.begin(NodeId(1)).unwrap();
        c.write_u64(t, hot, 0, 42).unwrap();
        c.commit(t).unwrap();
        let t2 = c.begin(NodeId(1)).unwrap();
        for i in 1..4 {
            c.read_u64(t2, pid(0, i), 0).unwrap();
        }
        c.commit(t2).unwrap();
        assert!(
            !c.node(NodeId(1)).buffer().contains(hot),
            "hot page evicted"
        );
        assert!(c.network().stats().count(MsgKind::ReplacePage) >= 1);
        // DPT entry survives until the owner forces the page.
        assert!(c.node(NodeId(1)).dpt().contains(hot));
        c.force_page(hot).unwrap();
        assert!(!c.node(NodeId(1)).dpt().contains(hot));
        assert!(c.network().stats().count(MsgKind::FlushAck) >= 1);
        // And the value survived the round trip.
        let t3 = c.begin(NodeId(1)).unwrap();
        assert_eq!(c.read_u64(t3, hot, 0).unwrap(), 42);
        c.commit(t3).unwrap();
    }

    #[test]
    fn bounded_log_triggers_space_protocol_and_work_continues() {
        let mut c = Cluster::new(
            ClusterConfig::builder()
                .owned_pages(vec![4, 0])
                .page_size(512)
                .buffer_frames(8)
                .default_owned_pages(0)
                .log_capacity(Some(4096))
                .cost(CostModel::unit())
                .build(),
        )
        .unwrap();
        let p = pid(0, 0);
        // Hammer updates well past the log capacity.
        for i in 0..200u64 {
            let t = c.begin(NodeId(1)).unwrap();
            c.write_u64(t, p, (i % 8) as usize, i).unwrap();
            c.commit(t).unwrap();
        }
        // Last write to slot 7 was i = 199 (199 % 8 == 7).
        let t = c.begin(NodeId(1)).unwrap();
        assert_eq!(c.read_u64(t, p, 7).unwrap(), 199);
        c.commit(t).unwrap();
    }

    #[test]
    fn crashed_owner_stalls_requests_from_others() {
        let mut c = cluster(vec![4, 4, 0]);
        c.crash(NodeId(0));
        let t = c.begin(NodeId(2)).unwrap();
        assert!(matches!(
            c.read_u64(t, pid(0, 0), 0),
            Err(Error::OwnerDown { .. })
        ));
        // Pages of the other owner remain accessible.
        assert_eq!(c.read_u64(t, pid(1, 0), 0).unwrap(), 0);
        c.commit(t).unwrap();
    }

    #[test]
    fn local_transactions_on_one_node_respect_2pl() {
        let mut c = cluster(vec![4, 0]);
        let p = pid(0, 0);
        let t1 = c.begin(NodeId(1)).unwrap();
        let t2 = c.begin(NodeId(1)).unwrap();
        c.write_u64(t1, p, 0, 1).unwrap();
        // t2 blocks on t1's transaction-level lock (same node).
        match c.read_u64(t2, p, 0) {
            Err(Error::WouldBlock { holders, .. }) => assert_eq!(holders, vec![t1]),
            r => panic!("expected local block, got {r:?}"),
        }
        c.commit(t1).unwrap();
        assert_eq!(c.read_u64(t2, p, 0).unwrap(), 1);
        // Shared readers coexist locally.
        let t3 = c.begin(NodeId(1)).unwrap();
        assert_eq!(c.read_u64(t3, p, 0).unwrap(), 1);
        c.commit(t2).unwrap();
        c.commit(t3).unwrap();
    }

    #[test]
    fn api_errors_propagate_cleanly() {
        let mut c = cluster(vec![2, 0]);
        let p = pid(0, 0);
        let t = c.begin(NodeId(1)).unwrap();
        // Slot out of range.
        assert!(matches!(c.read_u64(t, p, 10_000), Err(Error::Invalid(_))));
        // Unknown page index (outside the owner's space map).
        assert!(c.read_u64(t, pid(0, 99), 0).is_err());
        // Record ops on a raw (non-slotted) page fail without
        // corrupting anything.
        assert!(c.insert_record(t, p, b"x").is_err());
        // The transaction is still usable.
        c.write_u64(t, p, 0, 1).unwrap();
        c.commit(t).unwrap();
        // Operations on a committed transaction are rejected.
        assert!(c.write_u64(t, p, 0, 2).is_err());
        assert!(c.commit(t).is_err());
    }

    #[test]
    fn slotted_page_full_surfaces_error_and_txn_survives() {
        let mut c = cluster(vec![2, 0]);
        let p = pid(0, 1);
        c.format_slotted(p).unwrap();
        let t = c.begin(NodeId(1)).unwrap();
        let big = vec![7u8; 100];
        let mut inserted = 0;
        loop {
            match c.insert_record(t, p, &big) {
                Ok(_) => inserted += 1,
                Err(Error::Invalid(_)) => break,
                Err(e) => panic!("unexpected {e}"),
            }
            assert!(inserted < 100);
        }
        assert!(inserted >= 2);
        // The transaction can still commit its successful inserts.
        c.commit(t).unwrap();
        let t2 = c.begin(NodeId(1)).unwrap();
        assert_eq!(
            c.read_record(t2, Rid::new(p, 0)).unwrap(),
            big,
            "earlier inserts intact"
        );
        c.commit(t2).unwrap();
    }

    #[test]
    fn metrics_snapshot_covers_nodes_and_network() {
        let mut c = cluster(vec![4, 0]);
        let p = pid(0, 0);
        let t = c.begin(NodeId(1)).unwrap();
        c.write_u64(t, p, 0, 9).unwrap();
        c.commit(t).unwrap();
        let snap = c.metrics_snapshot();
        assert_eq!(snap.counter("n1/txn/commits"), 1);
        assert!(snap.counter("n1/wal/records") >= 2, "update + commit");
        assert_eq!(snap.counter("n1/wal/forces"), 1);
        assert!(snap.counter("n1/locks/acquisitions") >= 1);
        assert!(snap.counter("net/page-ship/msgs") >= 1);
        assert!(snap.counter("net/total/bytes") > 0);
        // The commit-force latency distribution is in the snapshot too.
        let h = snap.histogram("n1/wal/commit_force_us").expect("histogram");
        assert_eq!(h.count, 1);
        assert!(h.p50() > 0);
        // JSON export carries the same keys.
        let json = snap.to_json();
        assert!(json.contains("\"n1/txn/commits\""));
        assert!(json.contains("\"n1/wal/commit_force_us\""));
        // Owner-side registry shows served work (its device counters).
        assert!(snap.counter("n0/db/reads") + snap.counter("n0/buf/hits") > 0);
    }

    #[test]
    fn flight_recorder_traces_txn_lifecycle_and_transfers() {
        let mut c = cluster(vec![4, 0, 0]);
        let p = pid(0, 0);
        let t1 = c.begin(NodeId(1)).unwrap();
        c.write_u64(t1, p, 0, 1).unwrap();
        // A second node's request while t1 holds the lock → lock-wait.
        let t2 = c.begin(NodeId(2)).unwrap();
        assert!(matches!(
            c.read_u64(t2, p, 0),
            Err(Error::WouldBlock { .. })
        ));
        c.commit(t1).unwrap();
        assert_eq!(c.read_u64(t2, p, 0).unwrap(), 1);
        c.commit(t2).unwrap();
        let n1 = c.node(NodeId(1)).recorder().render();
        assert!(n1.contains("txn-begin"), "missing begin: {n1}");
        assert!(n1.contains("txn-commit"), "missing commit: {n1}");
        assert!(n1.contains("log-force"), "missing force: {n1}");
        let n2 = c.node(NodeId(2)).recorder().render();
        assert!(n2.contains("lock-wait"), "missing wait: {n2}");
        assert!(n2.contains("page-transfer"), "missing transfer: {n2}");
        // Waiting was measured on node 2 once the lock was granted.
        let snap = c.metrics_snapshot();
        assert!(snap.counter("n2/locks/waits") >= 1);
        let w = snap.histogram("n2/locks/wait_us").expect("wait histogram");
        assert_eq!(w.count, 1);
        // The combined dump names every node.
        let dump = c.flight_dump();
        assert!(dump.contains("--- flight recorder N0 ---"));
        assert!(dump.contains("--- flight recorder N2 ---"));
    }

    #[test]
    fn crash_event_survives_in_recorder_and_registry_persists() {
        let mut c = cluster(vec![4, 0]);
        let t = c.begin(NodeId(0)).unwrap();
        c.write_u64(t, pid(0, 0), 0, 7).unwrap();
        c.commit(t).unwrap();
        c.crash(NodeId(0));
        // Observability state is not volatile: the crash itself and
        // the pre-crash history remain visible.
        let r = c.node(NodeId(0)).recorder().render();
        assert!(r.contains("crash"));
        assert!(r.contains("txn-commit"));
        assert_eq!(c.metrics_snapshot().counter("n0/txn/commits"), 1);
    }

    #[test]
    fn deadlock_detected_across_nodes() {
        let mut c = cluster(vec![4, 0, 0]);
        let pa = pid(0, 0);
        let pb = pid(0, 1);
        let t1 = c.begin(NodeId(1)).unwrap();
        let t2 = c.begin(NodeId(2)).unwrap();
        c.write_u64(t1, pa, 0, 1).unwrap();
        c.write_u64(t2, pb, 0, 2).unwrap();
        let r1 = c.write_u64(t1, pb, 0, 3);
        if let Err(Error::WouldBlock { holders, .. }) = &r1 {
            c.note_blocked(t1, holders);
        } else {
            panic!("t1 should block");
        }
        let r2 = c.write_u64(t2, pa, 0, 4);
        if let Err(Error::WouldBlock { holders, .. }) = &r2 {
            c.note_blocked(t2, holders);
        } else {
            panic!("t2 should block");
        }
        let victim = c.find_deadlock_victim().expect("cycle exists");
        assert!(victim == t1 || victim == t2);
        let vkey = format!("n{}/locks/deadlocks", victim.node.0);
        assert_eq!(c.metrics_snapshot().counter(&vkey), 1);
        assert!(c
            .node(victim.node)
            .recorder()
            .render()
            .contains("deadlock victim"));
        c.abort(victim).unwrap();
        // Survivor can finish.
        let survivor = if victim == t1 { t2 } else { t1 };
        let target = if victim == t1 { pa } else { pb };
        c.write_u64(survivor, target, 0, 9).unwrap();
        c.commit(survivor).unwrap();
    }
}
