//! Client-based logging for high performance distributed architectures.
//!
//! This crate is the reproduction of the system proposed by Panagos,
//! Biliris, Jagadish and Rastogi (ICDE 1996): a data-shipping
//! distributed transaction architecture in which **every node logs all
//! of its updates to its own local log** — including updates to pages
//! owned by remote nodes — and:
//!
//! * commits with a single local log force and **zero messages**;
//! * handles transaction rollback and its own crash recovery
//!   exclusively, without ever merging log files;
//! * takes fuzzy checkpoints independently of every other node;
//! * needs no clock synchronization: the order of updates to a page is
//!   recovered from per-page PSNs carried in log records.
//!
//! # Architecture
//!
//! A [`Cluster`] owns a set of [`Node`]s and drives every inter-node
//! interaction through an accounted [`cblog_net::Network`], making runs
//! deterministic and protocol costs observable. Nodes own the paper's
//! per-node machinery: buffer pool (steal/no-force), local WAL, dirty
//! page table, transaction-, cached- and owner-side lock tables.
//!
//! ```
//! use cblog_core::{Cluster, ClusterConfig};
//! use cblog_locks::LockMode;
//!
//! // Two owner nodes and one diskless client node (Figure 1 style).
//! let mut cluster = Cluster::new(
//!     ClusterConfig::builder().owned_pages(vec![4, 4, 0]).build(),
//! ).unwrap();
//!
//! let p = cblog_common::PageId::new(cblog_common::NodeId(0), 0);
//! // Node 2 updates a page owned by node 0 and commits locally.
//! let t = cluster.begin(cblog_common::NodeId(2)).unwrap();
//! cluster.write_u64(t, p, 0, 42).unwrap();
//! let before = cluster.network().stats().total_messages();
//! cluster.commit(t).unwrap();
//! let after = cluster.network().stats().total_messages();
//! assert_eq!(before, after, "commit sends no messages");
//! ```

pub mod cluster;
pub mod config;
pub mod group_commit;
pub mod node;
pub mod recovery;
pub mod runtime;
pub mod txn;

pub use cblog_common::RecoveryPhase;
pub use cblog_net::{FaultAction, FaultPlan, FaultScript, FaultStats};
pub use cluster::Cluster;
pub use config::{ClusterConfig, ClusterConfigBuilder, GroupCommitPolicy, NodeConfig};
pub use group_commit::{ForceScheduler, PendingCommit};
pub use node::{AnalysisResult, Node, NodePsnEntry};
pub use recovery::{
    plan_replay, recover, PhaseTimings, RecoveryOptions, RecoveryReport, ReplayMode, ReplayPlan,
    ReplayUnit, WaveTiming,
};
pub use runtime::{PlanOp, RunReport, Runtime, TxnPlan};
pub use txn::{Savepoint, TxnState, TxnStatus};
