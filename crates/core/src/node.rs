//! A processing node: buffer pool, local WAL, DPT, lock tables,
//! transaction manager, checkpointing, and the node-local halves of the
//! recovery protocol (restart analysis, NodePSNList construction,
//! PSN-filtered replay).
//!
//! Everything here is node-local: no method sends messages. The
//! [`crate::Cluster`] composes these pieces into the distributed
//! protocols and accounts every message.

use crate::config::NodeConfig;
use crate::txn::{Savepoint, TxnState, TxnStatus};
use cblog_common::metrics::keys;
use cblog_common::{
    Counter, Error, FlightRecorder, Fnv1a, Lsn, NodeId, PageId, Psn, Registry, Result, TxnId,
};
use cblog_locks::{CachedLockTable, GlobalLockTable, LocalLockTable};
use cblog_storage::{BufferPool, Database, EvictedPage, MemStorage, Page, PageKind};
use cblog_wal::{
    CheckpointBody, DirtyPageTable, DptEntry, LogManager, LogPayload, LogRecord, LogStore,
    MemLogStore, PageOp,
};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Reserved transaction id used for non-transactional records
/// (checkpoints) in a node's log.
fn system_txn(node: NodeId) -> TxnId {
    TxnId::new(node, 0)
}

/// One entry of a NodePSNList (paper §2.3.4): the PSN a page had just
/// before the first update of a transaction burst, plus where in the
/// local log replay should start.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NodePsnEntry {
    /// The page.
    pub pid: PageId,
    /// PSN just before the burst's first update.
    pub psn: Psn,
    /// Log location of that record (replay resume point).
    pub lsn: Lsn,
    /// Transaction that wrote the burst. Replay planning uses this to
    /// order pages touched by one multi-page transaction (DESIGN §13);
    /// the replay protocol itself never reads it.
    pub txn: TxnId,
}

/// Summary of restart analysis (ARIES analysis pass over the local
/// log, paper §2.3.1 / §2.4).
#[derive(Clone, Debug, Default)]
pub struct AnalysisResult {
    /// Loser transactions (active or mid-rollback at crash time).
    pub losers: Vec<TxnId>,
    /// Where the scan started.
    pub start_lsn: Lsn,
    /// Number of DPT entries reconstructed.
    pub dpt_entries: usize,
    /// Number of records scanned.
    pub records_scanned: u64,
    /// Bytes of log scanned.
    pub bytes_scanned: u64,
}

/// Outcome of one rollback step (driven by the cluster because undoing
/// may require re-fetching a page from its owner, §2.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RollbackStep {
    /// The page must be brought into the cache before undo proceeds.
    NeedPage(PageId),
    /// One update was undone (a CLR was written).
    Undone(PageId),
    /// Rollback (to the requested point) is complete.
    Done,
}

/// A processing node.
pub struct Node {
    id: NodeId,
    cfg: NodeConfig,
    pub(crate) db: Option<Database>,
    pub(crate) log: LogManager,
    pub(crate) buffer: BufferPool,
    pub(crate) dpt: DirtyPageTable,
    pub(crate) local_locks: LocalLockTable,
    pub(crate) cached_locks: CachedLockTable,
    pub(crate) global_locks: GlobalLockTable,
    pub(crate) txns: HashMap<TxnId, TxnState>,
    /// Owner-side: nodes that shipped dirty copies of each owned page
    /// and await a flush acknowledgment (§2.2 / §2.5).
    pub(crate) replacers: BTreeMap<PageId, BTreeSet<NodeId>>,
    /// Per-node metrics registry. Observability state is *not* part of
    /// the simulated node: it survives [`Node::crash`] so experiments
    /// can measure across failures.
    pub(crate) registry: Registry,
    /// Bounded ring of recent protocol events (same survival rule).
    pub(crate) recorder: FlightRecorder,
    next_seq: u64,
    crashed: bool,
    commits: Counter,
    aborts: Counter,
}

impl std::fmt::Debug for Node {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Node({} owner={} crashed={} txns={} dpt={})",
            self.id,
            self.db.is_some(),
            self.crashed,
            self.txns.len(),
            self.dpt.len()
        )
    }
}

impl Node {
    /// Builds a node with in-memory database and log. Owner nodes
    /// (owned_pages > 0) get all their pages pre-allocated as raw
    /// counter pages.
    pub fn new(id: NodeId, cfg: NodeConfig) -> Result<Self> {
        Node::with_log_store(id, cfg, Box::new(MemLogStore::new()))
    }

    /// Builds a node whose WAL lives on the caller-provided store.
    /// The threaded runtime passes a `FileLogStore` here so log forces
    /// are real `fsync`s; the simulator keeps the in-memory default.
    pub fn with_log_store(id: NodeId, cfg: NodeConfig, store: Box<dyn LogStore>) -> Result<Self> {
        let db = if cfg.owned_pages > 0 {
            let storage = Box::new(MemStorage::new(cfg.page_size));
            let mut db = Database::create(storage, id, cfg.owned_pages)?;
            for _ in 0..cfg.owned_pages {
                db.allocate_page(PageKind::Raw)?;
            }
            Some(db)
        } else {
            None
        };
        let log = match cfg.log_capacity {
            Some(cap) => LogManager::with_capacity(id, store, cap)?,
            None => LogManager::new(id, store)?,
        };
        let buffer = BufferPool::new(cfg.buffer_frames);
        // The registry observes the very cells the subsystems bump:
        // existing counters are registered as shared handles, so the
        // WAL / buffer / storage code needs no metric plumbing of its
        // own.
        let registry = Registry::new();
        registry.register_counter(keys::WAL_RECORDS, log.records_counter());
        registry.register_counter(keys::WAL_FORCES, log.forces_counter());
        registry.register_counter(keys::WAL_BYTES, log.bytes_appended_counter());
        registry.register_counter(keys::WAL_STORE_SYNCS, log.store_syncs_counter());
        registry.register_counter(keys::WAL_REPAIR_SCAN_BYTES, log.repair_scanned_counter());
        if let Some(h) = log.fsync_histogram() {
            registry.register_histogram(keys::WAL_FSYNC_US, h);
        }
        registry.register_counter(keys::BUF_HITS, buffer.hits());
        registry.register_counter(keys::BUF_MISSES, buffer.misses());
        registry.register_counter(keys::BUF_EVICTIONS, buffer.evictions());
        if let Some(db) = &db {
            registry.register_counter(keys::DB_READS, db.reads_counter());
            registry.register_counter(keys::DB_WRITES, db.writes_counter());
            registry.register_counter(keys::DB_SYNCS, db.syncs_counter());
        }
        let commits = registry.counter(keys::TXN_COMMITS);
        let aborts = registry.counter(keys::TXN_ABORTS);
        let recorder = FlightRecorder::new(256);
        // Ring wraparound is visible as a gauge, not just a method:
        // experiments that undersize the ring see the loss in their
        // metrics snapshot.
        recorder.set_dropped_gauge(registry.gauge(keys::TRACE_DROPPED_EVENTS));
        Ok(Node {
            id,
            buffer,
            db,
            log,
            dpt: DirtyPageTable::new(),
            local_locks: LocalLockTable::new(),
            cached_locks: CachedLockTable::new(),
            global_locks: GlobalLockTable::new(),
            txns: HashMap::new(),
            replacers: BTreeMap::new(),
            recorder,
            registry,
            next_seq: 1,
            crashed: false,
            commits,
            aborts,
            cfg,
        })
    }

    /// Node id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// True between [`Node::crash`] and the start of recovery.
    pub fn is_crashed(&self) -> bool {
        self.crashed
    }

    /// True if the node owns a database.
    pub fn is_owner(&self) -> bool {
        self.db.is_some()
    }

    /// Node configuration.
    pub fn config(&self) -> &NodeConfig {
        &self.cfg
    }

    /// The local log.
    pub fn log(&self) -> &LogManager {
        &self.log
    }

    /// Forces the entire local log (test harnesses use this to make
    /// uncommitted records durable before injecting a crash).
    pub fn force_log(&mut self) -> Result<()> {
        self.log.force_all()
    }

    /// The dirty page table.
    pub fn dpt(&self) -> &DirtyPageTable {
        &self.dpt
    }

    /// The buffer pool.
    pub fn buffer(&self) -> &BufferPool {
        &self.buffer
    }

    /// The node-level cached locks.
    pub fn cached_locks(&self) -> &CachedLockTable {
        &self.cached_locks
    }

    /// The owner-side global lock table.
    pub fn global_locks(&self) -> &GlobalLockTable {
        &self.global_locks
    }

    /// Committed-transaction count.
    pub fn commits(&self) -> u64 {
        self.commits.get()
    }

    /// Aborted-transaction count.
    pub fn aborts(&self) -> u64 {
        self.aborts.get()
    }

    /// The node's metrics registry (`subsystem/metric` names; see
    /// `cblog_common::obs`).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The node's flight recorder (bounded ring of protocol events).
    pub fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// State of a transaction, if known.
    pub fn txn(&self, id: TxnId) -> Option<&TxnState> {
        self.txns.get(&id)
    }

    /// Ids of transactions currently active on this node.
    pub fn active_txns(&self) -> Vec<TxnId> {
        let mut v: Vec<TxnId> = self
            .txns
            .values()
            .filter(|t| !t.is_terminated())
            .map(|t| t.id)
            .collect();
        v.sort();
        v
    }

    // ------------------------------------------------------------------
    // Transaction lifecycle (node-local)
    // ------------------------------------------------------------------

    /// Starts a transaction, logging its Begin record.
    pub fn begin(&mut self) -> Result<TxnId> {
        self.ensure_up()?;
        let id = TxnId::new(self.id, self.next_seq);
        self.next_seq += 1;
        let lsn = self.log.append(&LogRecord {
            txn: id,
            prev_lsn: Lsn::ZERO,
            payload: LogPayload::Begin,
        })?;
        self.txns.insert(id, TxnState::new(id, lsn));
        Ok(id)
    }

    fn ensure_up(&self) -> Result<()> {
        if self.crashed {
            Err(Error::NodeDown(self.id))
        } else {
            Ok(())
        }
    }

    fn active_txn(&mut self, id: TxnId) -> Result<&mut TxnState> {
        let t = self.txns.get_mut(&id).ok_or(Error::NoSuchTxn(id))?;
        match t.status {
            TxnStatus::Active => Ok(t),
            TxnStatus::Aborting | TxnStatus::Aborted => Err(Error::TxnAborted(id)),
            TxnStatus::Committing | TxnStatus::Committed => Err(Error::NoSuchTxn(id)),
        }
    }

    /// Applies and logs one update to a cached page. Preconditions
    /// (checked): transaction active, page present in the buffer. Lock
    /// discipline is the cluster's job.
    pub fn log_update(&mut self, txn: TxnId, pid: PageId, op: PageOp) -> Result<()> {
        self.ensure_up()?;
        self.active_txn(txn)?;
        let page = self.buffer.get_mut(pid).ok_or(Error::NoSuchPage(pid))?;
        // Apply first (ops are all-or-nothing), then log; un-apply if
        // the log is full so state stays consistent.
        op.apply_redo(page)?;
        let psn_before = page.psn();
        let prev = self.txns[&txn].last_lsn;
        let rec = LogRecord {
            txn,
            prev_lsn: prev,
            payload: LogPayload::Update {
                pid,
                psn_before,
                op: op.clone(),
            },
        };
        let lsn = match self.log.append(&rec) {
            Ok(l) => l,
            Err(e) => {
                let page = self.buffer.get_mut(pid).expect("still cached");
                op.apply_undo(page)?;
                return Err(e);
            }
        };
        let page = self.buffer.get_mut(pid).expect("still cached");
        page.bump_psn();
        let psn_after = page.psn();
        self.buffer.mark_dirty(pid);
        self.dpt.on_update(pid, psn_after, lsn);
        let t = self.txns.get_mut(&txn).expect("checked");
        t.last_lsn = lsn;
        t.undo_next = lsn;
        t.updates += 1;
        Ok(())
    }

    /// First half of commit: appends the Commit record and parks the
    /// transaction as force-pending ([`TxnStatus::Committing`]) at the
    /// returned LSN. Transaction-level locks release here (strict 2PL
    /// held through the append; early release is safe because any
    /// same-node dependent commits through the same log — its force
    /// covers this record — and any cross-node visibility requires a
    /// page transfer, which forces the whole log first under the WAL
    /// rule). The caller owns the force: either immediately
    /// ([`Node::commit`]) or batched by the cluster's force scheduler.
    pub fn commit_begin(&mut self, txn: TxnId) -> Result<Lsn> {
        self.ensure_up()?;
        let prev = self.active_txn(txn)?.last_lsn;
        let lsn = self.log.append(&LogRecord {
            txn,
            prev_lsn: prev,
            payload: LogPayload::Commit,
        })?;
        let t = self.txns.get_mut(&txn).expect("checked");
        t.status = TxnStatus::Committing;
        t.last_lsn = lsn;
        self.local_locks.release_all(txn);
        Ok(lsn)
    }

    /// Second half of commit: acknowledges a force-pending transaction
    /// whose Commit record has become durable.
    pub fn finish_commit(&mut self, txn: TxnId) -> Result<()> {
        let t = self.txns.get_mut(&txn).ok_or(Error::NoSuchTxn(txn))?;
        if t.status != TxnStatus::Committing {
            return Err(Error::Protocol(format!(
                "finish_commit on {txn} in state {:?}",
                t.status
            )));
        }
        debug_assert!(
            t.last_lsn < self.log.flushed_lsn(),
            "commit record must be durable before acknowledgement"
        );
        t.status = TxnStatus::Committed;
        self.commits.bump();
        Ok(())
    }

    /// Commits: one Commit record, one local log force, zero messages
    /// (the paper's headline property). Strict 2PL: transaction-level
    /// locks release; node-level cached locks are retained.
    pub fn commit(&mut self, txn: TxnId) -> Result<()> {
        let lsn = self.commit_begin(txn)?;
        self.log.force(lsn)?;
        self.finish_commit(txn)
    }

    /// Takes a savepoint for partial rollback.
    pub fn savepoint(&mut self, txn: TxnId) -> Result<Savepoint> {
        self.ensure_up()?;
        let t = self.active_txn(txn)?;
        Ok(Savepoint {
            txn,
            at_lsn: t.last_lsn,
        })
    }

    /// Marks a transaction as rolling back (total abort entry point).
    pub fn start_abort(&mut self, txn: TxnId) -> Result<()> {
        self.ensure_up()?;
        let t = self.txns.get_mut(&txn).ok_or(Error::NoSuchTxn(txn))?;
        match t.status {
            TxnStatus::Active | TxnStatus::Aborting => {
                t.status = TxnStatus::Aborting;
                Ok(())
            }
            _ => Err(Error::TxnAborted(txn)),
        }
    }

    /// Performs one step of rollback toward `upto` (Lsn::ZERO = total).
    /// The cluster drives the loop because undo may need a page fetched
    /// back from its owner.
    pub fn rollback_step(&mut self, txn: TxnId, upto: Lsn) -> Result<RollbackStep> {
        self.ensure_up()?;
        let (mut cursor, _last) = {
            let t = self.txns.get(&txn).ok_or(Error::NoSuchTxn(txn))?;
            (t.undo_next, t.last_lsn)
        };
        loop {
            if cursor.is_zero() || cursor <= upto {
                return Ok(RollbackStep::Done);
            }
            let (rec, _) = self.log.read_record(cursor)?;
            debug_assert_eq!(rec.txn, txn, "undo chain stays within the transaction");
            match rec.payload {
                LogPayload::Begin => return Ok(RollbackStep::Done),
                LogPayload::Clr { undo_next, .. } => {
                    cursor = undo_next;
                    let t = self.txns.get_mut(&txn).expect("checked");
                    t.undo_next = undo_next;
                }
                LogPayload::Update { pid, op, .. } => {
                    if !self.buffer.contains(pid) {
                        return Ok(RollbackStep::NeedPage(pid));
                    }
                    let comp = op.inverse();
                    let page = self.buffer.get_mut(pid).expect("checked");
                    comp.apply_redo(page)?;
                    let psn_before = page.psn();
                    let prev = self.txns[&txn].last_lsn;
                    let clr = LogRecord {
                        txn,
                        prev_lsn: prev,
                        payload: LogPayload::Clr {
                            pid,
                            psn_before,
                            op: comp,
                            undo_next: rec.prev_lsn,
                        },
                    };
                    let lsn = self.log.append(&clr)?;
                    let page = self.buffer.get_mut(pid).expect("checked");
                    page.bump_psn();
                    let psn_after = page.psn();
                    self.buffer.mark_dirty(pid);
                    self.dpt.on_update(pid, psn_after, lsn);
                    let t = self.txns.get_mut(&txn).expect("checked");
                    t.last_lsn = lsn;
                    t.undo_next = rec.prev_lsn;
                    return Ok(RollbackStep::Undone(pid));
                }
                ref p => {
                    return Err(Error::Protocol(format!(
                        "unexpected {p:?} on undo chain of {txn}"
                    )))
                }
            }
        }
    }

    /// Finishes a total rollback: Abort record, local lock release.
    pub fn finish_abort(&mut self, txn: TxnId) -> Result<()> {
        self.ensure_up()?;
        let prev = {
            let t = self.txns.get(&txn).ok_or(Error::NoSuchTxn(txn))?;
            t.last_lsn
        };
        let lsn = self.log.append(&LogRecord {
            txn,
            prev_lsn: prev,
            payload: LogPayload::Abort,
        })?;
        let t = self.txns.get_mut(&txn).expect("checked");
        t.status = TxnStatus::Aborted;
        t.last_lsn = lsn;
        self.local_locks.release_all(txn);
        self.aborts.bump();
        Ok(())
    }

    // ------------------------------------------------------------------
    // Checkpointing (fuzzy, independent — paper §2.2, contribution (4))
    // ------------------------------------------------------------------

    /// Takes a fuzzy checkpoint: begin record, DPT + active-transaction
    /// snapshot, end record, force, master-record update. No pages are
    /// forced and no other node is contacted.
    pub fn checkpoint(&mut self) -> Result<Lsn> {
        self.ensure_up()?;
        let sys = system_txn(self.id);
        let begin = self.log.append(&LogRecord {
            txn: sys,
            prev_lsn: Lsn::ZERO,
            payload: LogPayload::CheckpointBegin,
        })?;
        let body = CheckpointBody {
            dpt: self.dpt.entries(),
            // Force-pending (Committing) transactions are excluded: the
            // checkpoint's own force makes their Commit records durable,
            // so restart must not treat them as losers (their Commit
            // record precedes the checkpoint and would confuse the undo
            // chain).
            active_txns: self
                .txns
                .values()
                .filter(|t| !t.is_terminated() && t.status != TxnStatus::Committing)
                .map(|t| (t.id, t.last_lsn))
                .collect(),
        };
        let end = self.log.append(&LogRecord {
            txn: sys,
            prev_lsn: begin,
            payload: LogPayload::CheckpointEnd(body),
        })?;
        self.log.force(end)?;
        self.log.write_master(begin)?;
        Ok(begin)
    }

    /// The lowest LSN the local log must retain: min of DPT RedoLSNs,
    /// first LSNs of active transactions, and the last checkpoint.
    pub fn log_low_water(&self) -> Lsn {
        let mut low = self.log.end_lsn();
        if let Some(l) = self.dpt.min_redo_lsn() {
            low = low.min(l);
        }
        for t in self.txns.values() {
            if !t.is_terminated() {
                low = low.min(t.first_lsn);
            }
        }
        let ckpt = self.log.last_checkpoint();
        if !ckpt.is_zero() {
            low = low.min(ckpt);
        }
        low
    }

    /// Advances the log truncation point to the current low-water mark
    /// and returns it.
    pub fn truncate_log(&mut self) -> Lsn {
        let low = self.log_low_water();
        self.log.truncate(low);
        low
    }

    // ------------------------------------------------------------------
    // Buffer / page plumbing used by the cluster
    // ------------------------------------------------------------------

    /// Inserts a page into the cache; any eviction victim is returned
    /// for the cluster to route (write locally / ship to owner).
    pub fn cache_page(&mut self, page: Page, dirty: bool) -> Result<Option<EvictedPage>> {
        self.buffer.insert(page, dirty)
    }

    /// Current image of an owned page: buffer copy if cached, else the
    /// disk version. Returns `(page, did_disk_read)`.
    pub fn authoritative_copy(&mut self, pid: PageId) -> Result<(Page, bool)> {
        if pid.owner != self.id {
            return Err(Error::Protocol(format!(
                "{} asked for authoritative copy of {pid}",
                self.id
            )));
        }
        if let Some(p) = self.buffer.peek(pid) {
            return Ok((p.clone(), false));
        }
        let db = self.db.as_mut().ok_or(Error::NoSuchPage(pid))?;
        Ok((db.read_page(pid.index)?, true))
    }

    /// Serialized current image of an owned page (buffer copy if
    /// cached, else disk). Runtimes use this to cross-check final
    /// database state byte-for-byte against the sim oracle.
    pub fn page_image(&mut self, pid: PageId) -> Result<Vec<u8>> {
        Ok(self.authoritative_copy(pid)?.0.to_bytes())
    }

    /// Owner-side ingestion of a dirty page replaced from `from`'s
    /// cache (§2.1). Caller routes any eviction victim.
    pub fn receive_replaced(&mut self, from: NodeId, page: Page) -> Result<Option<EvictedPage>> {
        self.ensure_up()?;
        let pid = page.id();
        if pid.owner != self.id {
            return Err(Error::Protocol(format!(
                "{} received replaced page {pid} it does not own",
                self.id
            )));
        }
        self.replacers.entry(pid).or_default().insert(from);
        self.buffer.insert(page, true)
    }

    /// Writes an owned page image to disk, honouring the WAL rule for
    /// the node's own updates. Returns the nodes to flush-acknowledge.
    pub fn write_owned_page(&mut self, page: &Page) -> Result<Vec<NodeId>> {
        let pid = page.id();
        if self.dpt.contains(pid) {
            // Own log records may cover this image: force them first.
            self.log.force_all()?;
        }
        let db = self.db.as_mut().ok_or(Error::NoSuchPage(pid))?;
        db.write_page(page)?;
        db.sync()?;
        // Own DPT entry is satisfied by the write.
        self.dpt.remove(pid);
        self.buffer.mark_clean(pid);
        let acks = self
            .replacers
            .remove(&pid)
            .map(|s| s.into_iter().collect())
            .unwrap_or_default();
        Ok(acks)
    }

    /// PSN of the on-disk version of an owned page.
    pub fn disk_psn(&mut self, pid: PageId) -> Result<Psn> {
        let db = self.db.as_mut().ok_or(Error::NoSuchPage(pid))?;
        db.disk_psn(pid.index)
    }

    /// Prepares a dirty *remote* page for shipping to its owner: WAL
    /// rule (force local log), DPT replace bookkeeping. Returns the end
    /// of log remembered for §2.5.
    pub fn prepare_replace_to_owner(&mut self, pid: PageId) -> Result<Lsn> {
        self.log.force_all()?;
        let end = self.log.end_lsn();
        self.dpt.on_replace(pid, end);
        Ok(end)
    }

    /// Setup-time helper: rewrites an owned page's kind (e.g. format a
    /// slotted page before the workload starts). Not part of the
    /// transactional API.
    pub fn format_owned_page(&mut self, index: u32, kind: PageKind) -> Result<()> {
        let db = self
            .db
            .as_mut()
            .ok_or(Error::Invalid("not an owner".into()))?;
        let mut page = db.read_page(index)?;
        page.set_kind(kind);
        for b in page.body_mut() {
            *b = 0;
        }
        db.write_page(&page)?;
        if let Some(buf) = self.buffer.get_mut(page.id()) {
            *buf = page;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Crash and restart analysis
    // ------------------------------------------------------------------

    /// Crashes the node: volatile state (cache, lock tables, DPT,
    /// transaction table, owner-side replacer sets, unforced log tail)
    /// is lost; the database and the durable log survive. The metrics
    /// registry and flight recorder also survive — they model the
    /// experimenter's instruments, not the node's memory.
    pub fn crash(&mut self) {
        self.log.simulate_crash();
        self.clear_volatile();
    }

    /// Crashes the node mid-force: the first `landed` bytes of the
    /// unforced log tail reach the disk (a torn write); if `corrupt`,
    /// the last landed byte is additionally flipped, modeling a sector
    /// scribble. Restart's tail repair discards the torn suffix.
    pub fn crash_torn(&mut self, landed: u64, corrupt: bool) {
        self.log.simulate_crash_torn(landed, corrupt);
        self.clear_volatile();
    }

    fn clear_volatile(&mut self) {
        self.buffer.clear();
        self.dpt.clear();
        self.local_locks.clear();
        self.cached_locks.clear();
        self.global_locks.clear();
        self.txns.clear();
        self.replacers.clear();
        self.crashed = true;
    }

    /// Clears the crashed flag (restart begins) and repairs the log
    /// tail: a torn/corrupted suffix left by a crash mid-force is
    /// checksum-detected and truncated away so it is never replayed.
    /// Returns the number of torn bytes discarded (0 for a clean log).
    pub fn mark_restarting(&mut self) -> Result<u64> {
        self.crashed = false;
        self.repair_tail()
    }

    /// The tail repair of [`Node::mark_restarting`] alone: the crashed
    /// flag stays set, so recovery still accepts the node afterwards.
    /// Idempotent — the model checker repairs early to fingerprint the
    /// post-repair durable state before committing to a recovery run.
    pub fn repair_tail(&mut self) -> Result<u64> {
        let torn = self.log.repair_tail()?;
        if torn > 0 {
            self.registry.counter(keys::WAL_TORN_BYTES).add(torn);
        }
        Ok(torn)
    }

    /// ARIES analysis over the local log from the last complete
    /// checkpoint: rebuilds the DPT (a conservative superset) and the
    /// loser transaction table.
    pub fn restart_analysis(&mut self) -> Result<AnalysisResult> {
        let ckpt = self.log.last_checkpoint();
        let start = if ckpt.is_zero() {
            self.log.base_lsn()
        } else {
            ckpt
        };
        let mut att: HashMap<TxnId, TxnState> = HashMap::new();
        let mut dpt = DirtyPageTable::new();
        let mut records = 0u64;
        let mut max_seq = 0u64;
        let scan_start = start;
        let mut pos = start;
        let end = self.log.end_lsn();
        while pos < end {
            let (rec, next) = self.log.read_record(pos)?;
            records += 1;
            if rec.txn.node == self.id {
                max_seq = max_seq.max(rec.txn.seq);
            }
            match &rec.payload {
                LogPayload::Begin => {
                    att.insert(rec.txn, TxnState::new(rec.txn, pos));
                }
                LogPayload::Update {
                    pid, psn_before, ..
                } => {
                    let t = att
                        .entry(rec.txn)
                        .or_insert_with(|| TxnState::new(rec.txn, pos));
                    t.last_lsn = pos;
                    t.undo_next = pos;
                    t.updates += 1;
                    match dpt.get(*pid) {
                        Some(_) => dpt.on_update(*pid, psn_before.next(), pos),
                        None => {
                            dpt.insert(DptEntry {
                                pid: *pid,
                                psn_first: *psn_before,
                                curr_psn: psn_before.next(),
                                redo_lsn: pos,
                                replaced_at_lsn: None,
                                updated_since_replace: true,
                            });
                        }
                    }
                }
                LogPayload::Clr {
                    pid,
                    psn_before,
                    undo_next,
                    ..
                } => {
                    let t = att
                        .entry(rec.txn)
                        .or_insert_with(|| TxnState::new(rec.txn, pos));
                    t.last_lsn = pos;
                    t.undo_next = *undo_next;
                    t.status = TxnStatus::Aborting;
                    match dpt.get(*pid) {
                        Some(_) => dpt.on_update(*pid, psn_before.next(), pos),
                        None => {
                            dpt.insert(DptEntry {
                                pid: *pid,
                                psn_first: *psn_before,
                                curr_psn: psn_before.next(),
                                redo_lsn: pos,
                                replaced_at_lsn: None,
                                updated_since_replace: true,
                            });
                        }
                    }
                }
                LogPayload::Commit => {
                    att.remove(&rec.txn);
                }
                LogPayload::Abort => {
                    // Abort records are written only after the rollback
                    // completed, so the transaction needs no more undo.
                    att.remove(&rec.txn);
                }
                LogPayload::CheckpointBegin => {}
                LogPayload::CheckpointEnd(body) => {
                    for e in &body.dpt {
                        if !dpt.contains(e.pid) {
                            dpt.insert(*e);
                        }
                    }
                    for (t, last) in &body.active_txns {
                        att.entry(*t).or_insert_with(|| {
                            let mut s = TxnState::new(*t, *last);
                            s.last_lsn = *last;
                            s.undo_next = *last;
                            s
                        });
                        if t.node == self.id {
                            max_seq = max_seq.max(t.seq);
                        }
                    }
                }
                LogPayload::AllocPage { .. } | LogPayload::FreePage { .. } => {}
            }
            pos = next;
        }
        let bytes_scanned = end.0 - scan_start.0;
        let mut losers: Vec<TxnId> = att.keys().copied().collect();
        losers.sort();
        for (id, mut t) in att {
            t.status = TxnStatus::Aborting;
            self.txns.insert(id, t);
        }
        self.dpt = dpt;
        self.next_seq = self.next_seq.max(max_seq + 1);
        Ok(AnalysisResult {
            losers,
            start_lsn: start,
            dpt_entries: self.dpt.len(),
            records_scanned: records,
            bytes_scanned,
        })
    }

    /// Folds this node's durable state into `h`: the on-device
    /// database pages (in index order), then the durable log bytes and
    /// master record. Volatile state — buffer pool, lock tables, DPT,
    /// transaction table — is excluded, so the digest is exactly what
    /// a crash at this instant preserves.
    pub fn durable_state_hash(&mut self, h: &mut Fnv1a) -> Result<()> {
        h.write_u64(self.id.0 as u64);
        if let Some(db) = &mut self.db {
            for i in 0..db.capacity() {
                match db.read_page(i) {
                    Ok(p) => h.write(&p.to_bytes()),
                    Err(_) => h.write_u64(u64::MAX),
                }
            }
        }
        self.log.durable_hash(h)
    }

    /// Pages owned by `owner` that this node's loser transactions
    /// updated, re-derived from the local log by walking each loser's
    /// undo chain (§2.4). Under strict 2PL every such page was held
    /// exclusively at crash time, so the list reconstructs the fences
    /// a *crashed* owner lost with its lock table — the operational
    /// counterpart is `drop_shared_retain_exclusive`. Call after
    /// [`Node::restart_analysis`] has rebuilt the loser table.
    pub fn loser_page_locks(&mut self, owner: NodeId) -> Result<Vec<PageId>> {
        let losers: Vec<Lsn> = self
            .txns
            .values()
            .filter(|t| t.status == TxnStatus::Aborting)
            .map(|t| t.undo_next)
            .collect();
        let mut pages: BTreeSet<PageId> = BTreeSet::new();
        for mut cursor in losers {
            while !cursor.is_zero() {
                let (rec, _) = self.log.read_record(cursor)?;
                match rec.payload {
                    LogPayload::Update { pid, .. } => {
                        if pid.owner == owner {
                            pages.insert(pid);
                        }
                        cursor = rec.prev_lsn;
                    }
                    LogPayload::Clr { pid, undo_next, .. } => {
                        if pid.owner == owner {
                            pages.insert(pid);
                        }
                        cursor = undo_next;
                    }
                    _ => break,
                }
            }
        }
        Ok(pages.into_iter().collect())
    }

    // ------------------------------------------------------------------
    // NodePSNList construction and PSN-filtered replay (paper §2.3.4)
    // ------------------------------------------------------------------

    /// Builds this node's NodePSNList for `pages`: scans the local log
    /// from the minimum RedoLSN of the DPT entries for those pages and
    /// records (page, PSN, log location) whenever an examined record
    /// updates one of the pages and belongs to a different transaction
    /// than the previous record recorded for that page.
    pub fn build_psn_list(&mut self, pages: &[PageId]) -> Result<Vec<NodePsnEntry>> {
        let wanted: BTreeSet<PageId> = pages.iter().copied().collect();
        let from = pages
            .iter()
            .filter_map(|p| self.dpt.get(*p).map(|e| e.redo_lsn))
            .min();
        let Some(from) = from else {
            return Ok(Vec::new());
        };
        let mut out: Vec<NodePsnEntry> = Vec::new();
        let mut last_txn: HashMap<PageId, TxnId> = HashMap::new();
        let mut pos = from;
        let end = self.log.end_lsn();
        while pos < end {
            let (rec, next) = self.log.read_record(pos)?;
            if let (Some(pid), Some(psn)) = (rec.page(), rec.psn_before()) {
                if wanted.contains(&pid) && last_txn.get(&pid) != Some(&rec.txn) {
                    out.push(NodePsnEntry {
                        pid,
                        psn,
                        lsn: pos,
                        txn: rec.txn,
                    });
                    last_txn.insert(pid, rec.txn);
                }
            }
            pos = next;
        }
        Ok(out)
    }

    /// Replays this node's log records for `page` starting at
    /// `start_lsn`, applying each record whose stored PSN equals the
    /// page's current PSN, stopping when a record for the page carries
    /// a PSN greater than `bound` (if given). Returns `(resume_lsn,
    /// applied_count, hit_bound)`.
    pub fn replay_page(
        &mut self,
        page: &mut Page,
        start_lsn: Lsn,
        bound: Option<Psn>,
    ) -> Result<(Lsn, u64, bool)> {
        let pid = page.id();
        let mut pos = start_lsn;
        let end = self.log.end_lsn();
        let mut applied = 0u64;
        while pos < end {
            let (rec, next) = self.log.read_record(pos)?;
            if rec.page() == Some(pid) {
                let psn_before = rec.psn_before().expect("update/clr has psn");
                if let Some(b) = bound {
                    if psn_before > b {
                        return Ok((pos, applied, true));
                    }
                }
                if psn_before == page.psn() {
                    rec.op().expect("update/clr has op").apply_redo(page)?;
                    page.set_psn(psn_before.next());
                    applied += 1;
                }
            }
            pos = next;
        }
        Ok((end, applied, false))
    }

    /// Extracts this node's redo records for `page` starting at
    /// `start_lsn` as `(psn_before, op)` pairs, in log order. This is
    /// the serial "log dispatch" half of parallel replay: one pass per
    /// page over the local log here, then workers apply the extracted
    /// ops concurrently under the same PSN filter [`Node::replay_page`]
    /// uses — without needing `&mut self` (the log) at apply time.
    pub fn collect_replay_records(
        &mut self,
        pid: PageId,
        start_lsn: Lsn,
    ) -> Result<Vec<(Psn, PageOp)>> {
        let mut pos = start_lsn;
        let end = self.log.end_lsn();
        let mut out = Vec::new();
        while pos < end {
            let (rec, next) = self.log.read_record(pos)?;
            if rec.page() == Some(pid) {
                let psn_before = rec.psn_before().expect("update/clr has psn");
                let op = rec.op().expect("update/clr has op").clone();
                out.push((psn_before, op));
            }
            pos = next;
        }
        Ok(out)
    }

    /// Batched [`Node::collect_replay_records`]: one scan of the local
    /// log serving every target page at once. `targets` maps each page
    /// to the LSN its redo starts at; records before a page's start
    /// are skipped. The threaded runtime extracts all replay units of
    /// a crashed node this way — O(log) instead of O(pages × log) —
    /// before handing the per-page vectors to parallel workers.
    pub fn collect_replay_records_batch(
        &mut self,
        targets: &BTreeMap<PageId, Lsn>,
    ) -> Result<BTreeMap<PageId, Vec<(Psn, PageOp)>>> {
        let mut out: BTreeMap<PageId, Vec<(Psn, PageOp)>> =
            targets.keys().map(|&pid| (pid, Vec::new())).collect();
        let Some(&from) = targets.values().min() else {
            return Ok(out);
        };
        let mut pos = from;
        let end = self.log.end_lsn();
        while pos < end {
            let (rec, next) = self.log.read_record(pos)?;
            if let Some(pid) = rec.page() {
                if let Some(&start) = targets.get(&pid) {
                    if pos >= start {
                        let psn_before = rec.psn_before().expect("update/clr has psn");
                        let op = rec.op().expect("update/clr has op").clone();
                        out.get_mut(&pid)
                            .expect("target vec exists")
                            .push((psn_before, op));
                    }
                }
            }
            pos = next;
        }
        Ok(out)
    }

    /// Convenience for tests and the sim: read a u64 slot from the
    /// cached copy of a page (no locking).
    pub fn peek_slot(&self, pid: PageId, slot: usize) -> Option<u64> {
        self.buffer.peek(pid).and_then(|p| p.read_slot(slot).ok())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node() -> Node {
        Node::new(
            NodeId(0),
            NodeConfig {
                page_size: 512,
                buffer_frames: 8,
                owned_pages: 4,
                log_capacity: None,
            },
        )
        .unwrap()
    }

    fn load(n: &mut Node, idx: u32) -> PageId {
        let pid = PageId::new(n.id(), idx);
        let (page, _) = n.authoritative_copy(pid).unwrap();
        n.cache_page(page, false).unwrap();
        pid
    }

    fn upd(n: &mut Node, t: TxnId, pid: PageId, slot: usize, v: u64) {
        let before = n.buffer.peek(pid).unwrap().read_slot(slot).unwrap();
        n.log_update(
            t,
            pid,
            PageOp::WriteRange {
                off: (slot * 8) as u32,
                before: before.to_le_bytes().to_vec(),
                after: v.to_le_bytes().to_vec(),
            },
        )
        .unwrap();
    }

    #[test]
    fn update_bumps_psn_and_tracks_dpt() {
        let mut n = node();
        let t = n.begin().unwrap();
        let pid = load(&mut n, 0);
        let psn0 = n.buffer.peek(pid).unwrap().psn();
        upd(&mut n, t, pid, 0, 7);
        let page = n.buffer.peek(pid).unwrap();
        assert_eq!(page.psn(), psn0.next());
        assert_eq!(page.read_slot(0).unwrap(), 7);
        let e = n.dpt().get(pid).unwrap();
        assert_eq!(e.curr_psn, psn0.next());
        assert_eq!(n.buffer.is_dirty(pid), Some(true));
    }

    #[test]
    fn commit_forces_log_once() {
        let mut n = node();
        let t = n.begin().unwrap();
        let pid = load(&mut n, 0);
        upd(&mut n, t, pid, 0, 1);
        upd(&mut n, t, pid, 1, 2);
        let forces0 = n.log().forces();
        n.commit(t).unwrap();
        assert_eq!(n.log().forces(), forces0 + 1);
        assert_eq!(n.txn(t).unwrap().status, TxnStatus::Committed);
        assert!(n.commits() == 1);
    }

    #[test]
    fn rollback_restores_values_and_writes_clrs() {
        let mut n = node();
        let t = n.begin().unwrap();
        let pid = load(&mut n, 0);
        upd(&mut n, t, pid, 0, 10);
        upd(&mut n, t, pid, 1, 20);
        let recs0 = n.log().records_appended();
        n.start_abort(t).unwrap();
        let mut undone = 0;
        loop {
            match n.rollback_step(t, Lsn::ZERO).unwrap() {
                RollbackStep::Undone(_) => undone += 1,
                RollbackStep::Done => break,
                RollbackStep::NeedPage(p) => panic!("page {p} should be cached"),
            }
        }
        n.finish_abort(t).unwrap();
        assert_eq!(undone, 2);
        // Two CLRs + one Abort record.
        assert_eq!(n.log().records_appended(), recs0 + 3);
        let page = n.buffer.peek(pid).unwrap();
        assert_eq!(page.read_slot(0).unwrap(), 0);
        assert_eq!(page.read_slot(1).unwrap(), 0);
        assert_eq!(n.txn(t).unwrap().status, TxnStatus::Aborted);
    }

    #[test]
    fn partial_rollback_to_savepoint() {
        let mut n = node();
        let t = n.begin().unwrap();
        let pid = load(&mut n, 0);
        upd(&mut n, t, pid, 0, 10);
        let sp = n.savepoint(t).unwrap();
        upd(&mut n, t, pid, 1, 20);
        upd(&mut n, t, pid, 2, 30);
        loop {
            match n.rollback_step(t, sp.at_lsn).unwrap() {
                RollbackStep::Done => break,
                RollbackStep::Undone(_) => {}
                RollbackStep::NeedPage(p) => panic!("page {p} should be cached"),
            }
        }
        let page = n.buffer.peek(pid).unwrap();
        assert_eq!(page.read_slot(0).unwrap(), 10, "pre-savepoint survives");
        assert_eq!(page.read_slot(1).unwrap(), 0);
        assert_eq!(page.read_slot(2).unwrap(), 0);
        // Transaction still active and usable.
        upd(&mut n, t, pid, 3, 40);
        n.commit(t).unwrap();
    }

    #[test]
    fn checkpoint_snapshots_dpt_and_att() {
        let mut n = node();
        let t = n.begin().unwrap();
        let pid = load(&mut n, 0);
        upd(&mut n, t, pid, 0, 5);
        let ckpt = n.checkpoint().unwrap();
        assert_eq!(n.log().last_checkpoint(), ckpt);
        // Read back the checkpoint body.
        let mut found = false;
        let end = n.log.end_lsn();
        let mut pos = ckpt;
        while pos < end {
            let (rec, next) = n.log.read_record(pos).unwrap();
            if let LogPayload::CheckpointEnd(body) = rec.payload {
                assert_eq!(body.dpt.len(), 1);
                assert_eq!(body.dpt[0].pid, pid);
                assert_eq!(body.active_txns.len(), 1);
                assert_eq!(body.active_txns[0].0, t);
                found = true;
            }
            pos = next;
        }
        assert!(found);
    }

    #[test]
    fn analysis_rebuilds_losers_and_dpt() {
        let mut n = node();
        let t1 = n.begin().unwrap();
        let t2 = n.begin().unwrap();
        let pid = load(&mut n, 0);
        let pid1 = load(&mut n, 1);
        upd(&mut n, t1, pid, 0, 1);
        upd(&mut n, t2, pid1, 0, 2);
        n.commit(t1).unwrap();
        // t2 still active; crash.
        n.crash();
        assert!(n.is_crashed());
        assert!(n.buffer().is_empty());
        n.mark_restarting().unwrap();
        let a = n.restart_analysis().unwrap();
        assert_eq!(a.losers, vec![t2]);
        // Both pages were updated; both must be in the rebuilt DPT.
        assert!(n.dpt().contains(pid));
        assert!(n.dpt().contains(pid1));
        // next_seq moved past t2.
        let t3 = n.begin().unwrap();
        assert!(t3.seq > t2.seq);
    }

    #[test]
    fn analysis_uses_checkpoint_dpt_for_pre_checkpoint_dirt() {
        let mut n = node();
        let t1 = n.begin().unwrap();
        let pid = load(&mut n, 0);
        upd(&mut n, t1, pid, 0, 1);
        n.commit(t1).unwrap();
        n.checkpoint().unwrap();
        // No post-checkpoint records for pid, but the page is still
        // dirty (never written to disk): the checkpoint body must
        // resurrect the entry.
        n.crash();
        n.mark_restarting().unwrap();
        let a = n.restart_analysis().unwrap();
        assert!(a.losers.is_empty());
        assert!(n.dpt().contains(pid));
    }

    #[test]
    fn write_owned_page_clears_dpt_and_lists_replacers() {
        let mut n = node();
        let t = n.begin().unwrap();
        let pid = load(&mut n, 0);
        upd(&mut n, t, pid, 0, 9);
        n.commit(t).unwrap();
        // A remote node ships a replaced dirty copy.
        let (copy, _) = n.authoritative_copy(pid).unwrap();
        n.receive_replaced(NodeId(5), copy).unwrap();
        let page = n.buffer.peek(pid).unwrap().clone();
        let acks = n.write_owned_page(&page).unwrap();
        assert_eq!(acks, vec![NodeId(5)]);
        assert!(!n.dpt().contains(pid));
        assert_eq!(n.disk_psn(pid).unwrap(), page.psn());
        assert_eq!(n.buffer.is_dirty(pid), Some(false));
    }

    #[test]
    fn psn_list_groups_by_transaction_bursts() {
        let mut n = node();
        let pid = load(&mut n, 0);
        let t1 = n.begin().unwrap();
        upd(&mut n, t1, pid, 0, 1); // psn 1->2
        upd(&mut n, t1, pid, 0, 2); // psn 2->3
        n.commit(t1).unwrap();
        let t2 = n.begin().unwrap();
        upd(&mut n, t2, pid, 0, 3); // psn 3->4
        n.commit(t2).unwrap();
        let t3 = n.begin().unwrap();
        upd(&mut n, t3, pid, 0, 4); // psn 4->5
        n.commit(t3).unwrap();
        let list = n.build_psn_list(&[pid]).unwrap();
        let psns: Vec<Psn> = list.iter().map(|e| e.psn).collect();
        // One entry per transaction burst: first update PSNs 1, 3, 4.
        assert_eq!(psns, vec![Psn(1), Psn(3), Psn(4)]);
    }

    #[test]
    fn replay_page_applies_only_matching_psns_and_honours_bound() {
        let mut n = node();
        let pid = load(&mut n, 0);
        let t1 = n.begin().unwrap();
        upd(&mut n, t1, pid, 0, 11); // psn 1->2
        upd(&mut n, t1, pid, 1, 22); // psn 2->3
        upd(&mut n, t1, pid, 2, 33); // psn 3->4
        n.commit(t1).unwrap();
        // Rebuild from the disk version (psn 1, all zeros).
        let mut page = {
            let db = n.db.as_mut().unwrap();
            db.read_page(0).unwrap()
        };
        assert_eq!(page.psn(), Psn(1));
        let start = Lsn(8);
        // Bound at PSN 2: apply records with psn_before <= 2.
        let (resume, applied, hit) = n.replay_page(&mut page, start, Some(Psn(2))).unwrap();
        assert!(hit);
        assert_eq!(applied, 2);
        assert_eq!(page.psn(), Psn(3));
        assert_eq!(page.read_slot(0).unwrap(), 11);
        assert_eq!(page.read_slot(1).unwrap(), 22);
        assert_eq!(page.read_slot(2).unwrap(), 0);
        // Continue without bound.
        let (_, applied2, hit2) = n.replay_page(&mut page, resume, None).unwrap();
        assert!(!hit2);
        assert_eq!(applied2, 1);
        assert_eq!(page.read_slot(2).unwrap(), 33);
        // Replaying again is a no-op (PSN filter).
        let (_, applied3, _) = n.replay_page(&mut page, start, None).unwrap();
        assert_eq!(applied3, 0);
    }

    #[test]
    fn crash_loses_unforced_commits_work_is_in_log_only_after_force() {
        let mut n = node();
        let t = n.begin().unwrap();
        let pid = load(&mut n, 0);
        upd(&mut n, t, pid, 0, 77);
        // No commit: crash loses the tail.
        let recs = n.log().records_appended();
        assert!(recs >= 2);
        n.crash();
        n.mark_restarting().unwrap();
        let a = n.restart_analysis().unwrap();
        // Unforced records vanished; nothing to analyze.
        assert_eq!(a.records_scanned, 0);
        assert!(a.losers.is_empty());

        // Group-commit window: a transaction whose commit_begin ran
        // but whose force is still pending is lost the same way. Its
        // durable updates make it a loser; the unforced Commit record
        // never reached the disk, so restart rolls it back.
        let t2 = n.begin().unwrap();
        let pid = load(&mut n, 0);
        upd(&mut n, t2, pid, 0, 88);
        n.force_log().unwrap();
        let commit_lsn = n.commit_begin(t2).unwrap();
        assert!(
            commit_lsn >= n.log().flushed_lsn(),
            "commit record still volatile while force-pending"
        );
        n.crash();
        n.mark_restarting().unwrap();
        let a = n.restart_analysis().unwrap();
        assert_eq!(a.losers, vec![t2], "force-pending commit is a loser");
    }

    #[test]
    fn diskless_node_has_no_database() {
        let n = Node::new(
            NodeId(3),
            NodeConfig {
                owned_pages: 0,
                ..NodeConfig::default()
            },
        )
        .unwrap();
        assert!(!n.is_owner());
    }

    #[test]
    fn operations_rejected_while_crashed() {
        let mut n = node();
        n.crash();
        assert!(matches!(n.begin(), Err(Error::NodeDown(_))));
        assert!(matches!(n.checkpoint(), Err(Error::NodeDown(_))));
    }

    #[test]
    fn log_full_unapplies_update() {
        let mut n = Node::new(
            NodeId(0),
            NodeConfig {
                page_size: 512,
                buffer_frames: 8,
                owned_pages: 2,
                log_capacity: Some(256),
            },
        )
        .unwrap();
        let t = n.begin().unwrap();
        let pid = load(&mut n, 0);
        let mut hit_full = false;
        for i in 0..100 {
            let before = n.buffer.peek(pid).unwrap().read_slot(0).unwrap();
            let r = n.log_update(
                t,
                pid,
                PageOp::WriteRange {
                    off: 0,
                    before: before.to_le_bytes().to_vec(),
                    after: (i as u64 + 1).to_le_bytes().to_vec(),
                },
            );
            if let Err(Error::LogFull(_)) = r {
                // Page value must be unchanged by the failed update.
                assert_eq!(n.buffer.peek(pid).unwrap().read_slot(0).unwrap(), before);
                hit_full = true;
                break;
            }
            r.unwrap();
        }
        assert!(hit_full, "bounded log must fill");
    }
}
