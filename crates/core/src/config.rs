//! Cluster and node configuration.
//!
//! [`ClusterConfig`] is built exclusively through
//! [`ClusterConfig::builder`] — the fluent [`ClusterConfigBuilder`] is
//! the one construction path, so every knob (group commit, fault plan,
//! cost model, …) is named at the call site instead of hand-mutated
//! struct fields.

use cblog_common::{CostModel, SimTime};
use cblog_net::FaultPlan;

/// When a node's force-pending commits are flushed to disk.
///
/// The paper's commit is a single local log force (§2.2); group commit
/// amortizes that force across transactions that commit close together
/// in time. A transaction whose Commit record has been appended waits
/// (force-pending) until the node's next force covers its LSN; one
/// force then acknowledges every covered transaction at once.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum GroupCommitPolicy {
    /// Force as soon as a Commit record is appended: one force per
    /// commit, the pre-group-commit behavior.
    #[default]
    Immediate,
    /// Coalesce commits into batches: hold the force until `window_us`
    /// sim-µs after the first pending commit, or until `max_batch`
    /// commits are pending, whichever comes first.
    Window {
        /// Maximum time a pending commit waits for company, sim-µs.
        window_us: SimTime,
        /// Force as soon as this many commits are pending (0 and 1
        /// both mean "never wait for company").
        max_batch: usize,
    },
    /// Load-adaptive windows: the scheduler tracks a decayed estimate
    /// of the commit inter-arrival gap and sizes each batch's window
    /// to collect `target_batch` commits — `window = gap ×
    /// (target_batch − 1)`, clamped to `[min_window_us,
    /// max_window_us]`. When even one companion is not expected within
    /// `max_window_us` (estimated gap exceeds it), the window
    /// collapses to `min_window_us`, so light load degenerates to
    /// near-[`GroupCommitPolicy::Immediate`] latency while heavy load
    /// converges to full batches — no per-workload tuning.
    Adaptive {
        /// Smallest window a batch is ever held open, sim-µs.
        min_window_us: SimTime,
        /// Largest window a batch is ever held open, sim-µs.
        max_window_us: SimTime,
        /// Commits per force the controller aims for; a batch this
        /// full is forced regardless of its window.
        target_batch: usize,
    },
}

impl GroupCommitPolicy {
    /// True for the force-per-commit policy.
    pub fn is_immediate(&self) -> bool {
        match *self {
            GroupCommitPolicy::Immediate => true,
            GroupCommitPolicy::Window { max_batch, .. } => max_batch <= 1,
            GroupCommitPolicy::Adaptive { target_batch, .. } => target_batch <= 1,
        }
    }
}

/// Configuration of a single node.
#[derive(Clone, Debug)]
pub struct NodeConfig {
    /// Page size in bytes (also the database block size).
    pub page_size: usize,
    /// Buffer pool capacity in pages.
    pub buffer_frames: usize,
    /// Pages in the local database (0 = diskless client node that owns
    /// no data but still has a local log, like nodes 2 and 4 in the
    /// paper's Figure 1).
    pub owned_pages: u32,
    /// Bounded log size in bytes (None = unbounded). Bounded logs
    /// trigger the §2.5 space-management protocol.
    pub log_capacity: Option<u64>,
}

impl Default for NodeConfig {
    fn default() -> Self {
        NodeConfig {
            page_size: 1024,
            buffer_frames: 64,
            owned_pages: 16,
            log_capacity: None,
        }
    }
}

/// Configuration of a whole cluster. Construct with
/// [`ClusterConfig::builder`].
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Number of nodes. Node ids are `0..node_count`.
    pub(crate) node_count: usize,
    /// Pages owned by each node (len must equal `node_count`; nodes
    /// with 0 own no database). If shorter, missing entries default to
    /// `default_node.owned_pages`.
    pub(crate) owned_pages: Vec<u32>,
    /// Template for per-node settings other than `owned_pages`.
    pub(crate) default_node: NodeConfig,
    /// Simulated cost model for messages and disk I/O.
    pub(crate) cost: CostModel,
    /// Baseline ablation: force every dirty page to the owner's disk
    /// when it is transferred between nodes (Rdb/VMS and the
    /// Mohan–Narang simple/medium shared-disks schemes, paper §3.2).
    /// The paper's design keeps this off — contribution (1).
    pub(crate) force_on_transfer: bool,
    /// Group-commit policy for the per-node force scheduler.
    /// [`GroupCommitPolicy::Immediate`] reproduces the one-force-per-
    /// commit behavior existing tests pin down.
    pub(crate) group_commit: GroupCommitPolicy,
    /// Deterministic fault-injection plan (message loss/delay/dup/
    /// reorder and torn log writes). The default plan injects nothing.
    pub(crate) faults: FaultPlan,
    /// Causal tracing: when on, every transaction, page transfer, lock
    /// grant, recovery phase and message carries a span with a causal
    /// parent, the online invariant watchdog checks PSN/WAL invariants
    /// live, and traced messages pay 16 extra wire bytes for the span
    /// header. Off by default — disabled tracing costs one branch per
    /// would-be span and changes no accounting.
    pub(crate) tracing: bool,
    /// Spans retained by the tracer (the watchdog still observes every
    /// span past this bound; the overflow count is reported as
    /// dropped).
    pub(crate) trace_capacity: usize,
    /// Span sampling: trace the full span tree of 1-in-N transactions
    /// (1 = every transaction, the pre-sampling behavior). Cluster-wide
    /// invariants (WAL rule on writes/transfers, log truncation,
    /// messages) are still traced for every transaction — sampling only
    /// thins the per-transaction trees, which is what makes long
    /// checked runs cheap.
    pub(crate) trace_sample_one_in: u64,
    /// Time-series telemetry: `Some((interval_us, ring_capacity))`
    /// attaches a metrics [`Sampler`](cblog_common::Sampler) to the
    /// cluster, sampling every registry metric once per sim-time
    /// interval into a bounded ring. Off by default (zero cost).
    pub(crate) telemetry: Option<(SimTime, usize)>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            node_count: 2,
            owned_pages: Vec::new(),
            default_node: NodeConfig::default(),
            cost: CostModel::default(),
            force_on_transfer: false,
            group_commit: GroupCommitPolicy::Immediate,
            faults: FaultPlan::default(),
            tracing: false,
            trace_capacity: cblog_common::span::DEFAULT_TRACE_CAPACITY,
            trace_sample_one_in: 1,
            telemetry: None,
        }
    }
}

impl ClusterConfig {
    /// Starts a fluent builder — the single construction path for
    /// cluster configurations.
    pub fn builder() -> ClusterConfigBuilder {
        ClusterConfigBuilder::default()
    }

    /// Per-node config for node `i`.
    pub fn node_config(&self, i: usize) -> NodeConfig {
        let mut cfg = self.default_node.clone();
        if let Some(&p) = self.owned_pages.get(i) {
            cfg.owned_pages = p;
        }
        cfg
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Page size in bytes (uniform across nodes).
    pub fn page_size(&self) -> usize {
        self.default_node.page_size
    }

    /// The cost model.
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// The group-commit policy.
    pub fn group_commit(&self) -> GroupCommitPolicy {
        self.group_commit
    }

    /// True if the force-on-transfer ablation is enabled.
    pub fn force_on_transfer(&self) -> bool {
        self.force_on_transfer
    }

    /// The fault-injection plan.
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    /// True if causal tracing is enabled.
    pub fn tracing(&self) -> bool {
        self.tracing
    }

    /// Spans retained by the tracer when tracing is enabled.
    pub fn trace_capacity(&self) -> usize {
        self.trace_capacity
    }

    /// Span-sampling rate: the full span tree is traced for 1-in-N
    /// transactions (1 = all).
    pub fn trace_sample_one_in(&self) -> u64 {
        self.trace_sample_one_in
    }

    /// Time-series telemetry `(interval_us, ring_capacity)`, if on.
    pub fn telemetry(&self) -> Option<(SimTime, usize)> {
        self.telemetry
    }
}

/// Fluent builder for [`ClusterConfig`].
///
/// ```
/// use cblog_core::{ClusterConfig, GroupCommitPolicy};
/// use cblog_net::FaultPlan;
///
/// let cfg = ClusterConfig::builder()
///     .owned_pages(vec![8, 0, 0]) // node 0 owns 8 pages; 2 clients
///     .page_size(512)
///     .buffer_frames(8)
///     .group_commit(GroupCommitPolicy::Immediate)
///     .faults(FaultPlan::new(42).with_drop(0.05))
///     .build();
/// assert_eq!(cfg.node_count(), 3);
/// ```
#[derive(Clone, Debug, Default)]
pub struct ClusterConfigBuilder {
    cfg: ClusterConfig,
}

impl ClusterConfigBuilder {
    /// Sets the node count (ids `0..n`). Usually implied by
    /// [`ClusterConfigBuilder::owned_pages`]; call this after it to
    /// grow the cluster beyond the ownership vector (extra nodes fall
    /// back to the template's `owned_pages`).
    pub fn nodes(mut self, n: usize) -> Self {
        self.cfg.node_count = n;
        self
    }

    /// Sets the per-node ownership vector and the node count to match.
    pub fn owned_pages(mut self, per_node: Vec<u32>) -> Self {
        self.cfg.node_count = per_node.len();
        self.cfg.owned_pages = per_node;
        self
    }

    /// Sets the page size for every node.
    pub fn page_size(mut self, bytes: usize) -> Self {
        self.cfg.default_node.page_size = bytes;
        self
    }

    /// Sets the buffer-pool capacity (in frames) for every node.
    pub fn buffer_frames(mut self, frames: usize) -> Self {
        self.cfg.default_node.buffer_frames = frames;
        self
    }

    /// Sets the template `owned_pages` used by nodes beyond the
    /// ownership vector.
    pub fn default_owned_pages(mut self, pages: u32) -> Self {
        self.cfg.default_node.owned_pages = pages;
        self
    }

    /// Bounds (or unbounds, with `None`) every node's log.
    pub fn log_capacity(mut self, capacity: Option<u64>) -> Self {
        self.cfg.default_node.log_capacity = capacity;
        self
    }

    /// Sets the simulated cost model.
    pub fn cost(mut self, cost: CostModel) -> Self {
        self.cfg.cost = cost;
        self
    }

    /// Enables/disables the force-on-transfer ablation (§3.2).
    pub fn force_on_transfer(mut self, on: bool) -> Self {
        self.cfg.force_on_transfer = on;
        self
    }

    /// Sets the group-commit policy.
    pub fn group_commit(mut self, policy: GroupCommitPolicy) -> Self {
        self.cfg.group_commit = policy;
        self
    }

    /// Installs a fault-injection plan.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.cfg.faults = plan;
        self
    }

    /// Enables/disables causal tracing (spans, PSN lineage, invariant
    /// watchdog, Chrome-trace export). Traced messages carry a 16-byte
    /// span header on the wire; with tracing off no accounting changes.
    pub fn tracing(mut self, on: bool) -> Self {
        self.cfg.tracing = on;
        self
    }

    /// Bounds the number of spans the tracer retains (earliest spans
    /// win; the watchdog still sees everything).
    pub fn trace_capacity(mut self, spans: usize) -> Self {
        self.cfg.trace_capacity = spans;
        self
    }

    /// Samples the full span tree of 1-in-`n` transactions instead of
    /// all of them (`n` is clamped to at least 1). Cluster-wide
    /// invariant spans stay untouched.
    pub fn trace_sample_one_in(mut self, n: u64) -> Self {
        self.cfg.trace_sample_one_in = n.max(1);
        self
    }

    /// Attaches time-series telemetry: every registry metric is
    /// sampled once per `interval_us` of sim-time into a ring of
    /// `capacity` per-interval values.
    pub fn telemetry(mut self, interval_us: SimTime, capacity: usize) -> Self {
        self.cfg.telemetry = Some((interval_us, capacity));
        self
    }

    /// Finishes the configuration.
    pub fn build(self) -> ClusterConfig {
        self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_config_overrides_owned_pages() {
        let cfg = ClusterConfig::builder()
            .owned_pages(vec![8, 0])
            .nodes(3)
            .build();
        assert_eq!(cfg.node_config(0).owned_pages, 8);
        assert_eq!(cfg.node_config(1).owned_pages, 0);
        // Missing entry falls back to the template.
        assert_eq!(
            cfg.node_config(2).owned_pages,
            NodeConfig::default().owned_pages
        );
    }

    #[test]
    fn group_commit_defaults_to_immediate() {
        assert_eq!(
            ClusterConfig::builder().build().group_commit(),
            GroupCommitPolicy::Immediate
        );
        assert!(GroupCommitPolicy::Immediate.is_immediate());
        assert!(GroupCommitPolicy::Window {
            window_us: 100,
            max_batch: 1
        }
        .is_immediate());
        assert!(!GroupCommitPolicy::Window {
            window_us: 100,
            max_batch: 8
        }
        .is_immediate());
    }
}
