//! Cluster and node configuration.

use cblog_common::{CostModel, SimTime};

/// When a node's force-pending commits are flushed to disk.
///
/// The paper's commit is a single local log force (§2.2); group commit
/// amortizes that force across transactions that commit close together
/// in time. A transaction whose Commit record has been appended waits
/// (force-pending) until the node's next force covers its LSN; one
/// force then acknowledges every covered transaction at once.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum GroupCommitPolicy {
    /// Force as soon as a Commit record is appended: one force per
    /// commit, the pre-group-commit behavior.
    #[default]
    Immediate,
    /// Coalesce commits into batches: hold the force until `window_us`
    /// sim-µs after the first pending commit, or until `max_batch`
    /// commits are pending, whichever comes first.
    Window {
        /// Maximum time a pending commit waits for company, sim-µs.
        window_us: SimTime,
        /// Force as soon as this many commits are pending (0 and 1
        /// both mean "never wait for company").
        max_batch: usize,
    },
}

impl GroupCommitPolicy {
    /// True for the force-per-commit policy.
    pub fn is_immediate(&self) -> bool {
        match *self {
            GroupCommitPolicy::Immediate => true,
            GroupCommitPolicy::Window { max_batch, .. } => max_batch <= 1,
        }
    }
}

/// Configuration of a single node.
#[derive(Clone, Debug)]
pub struct NodeConfig {
    /// Page size in bytes (also the database block size).
    pub page_size: usize,
    /// Buffer pool capacity in pages.
    pub buffer_frames: usize,
    /// Pages in the local database (0 = diskless client node that owns
    /// no data but still has a local log, like nodes 2 and 4 in the
    /// paper's Figure 1).
    pub owned_pages: u32,
    /// Bounded log size in bytes (None = unbounded). Bounded logs
    /// trigger the §2.5 space-management protocol.
    pub log_capacity: Option<u64>,
}

impl Default for NodeConfig {
    fn default() -> Self {
        NodeConfig {
            page_size: 1024,
            buffer_frames: 64,
            owned_pages: 16,
            log_capacity: None,
        }
    }
}

/// Configuration of a whole cluster.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Number of nodes. Node ids are `0..node_count`.
    pub node_count: usize,
    /// Pages owned by each node (len must equal `node_count`; nodes
    /// with 0 own no database). If shorter, missing entries default to
    /// `default_node.owned_pages`.
    pub owned_pages: Vec<u32>,
    /// Template for per-node settings other than `owned_pages`.
    pub default_node: NodeConfig,
    /// Simulated cost model for messages and disk I/O.
    pub cost: CostModel,
    /// Baseline ablation: force every dirty page to the owner's disk
    /// when it is transferred between nodes (Rdb/VMS and the
    /// Mohan–Narang simple/medium shared-disks schemes, paper §3.2).
    /// The paper's design keeps this off — contribution (1).
    pub force_on_transfer: bool,
    /// Group-commit policy for the per-node force scheduler.
    /// [`GroupCommitPolicy::Immediate`] reproduces the one-force-per-
    /// commit behavior existing tests pin down.
    pub group_commit: GroupCommitPolicy,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            node_count: 2,
            owned_pages: Vec::new(),
            default_node: NodeConfig::default(),
            cost: CostModel::default(),
            force_on_transfer: false,
            group_commit: GroupCommitPolicy::Immediate,
        }
    }
}

impl ClusterConfig {
    /// Per-node config for node `i`.
    pub fn node_config(&self, i: usize) -> NodeConfig {
        let mut cfg = self.default_node.clone();
        if let Some(&p) = self.owned_pages.get(i) {
            cfg.owned_pages = p;
        }
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_config_overrides_owned_pages() {
        let cfg = ClusterConfig {
            node_count: 3,
            owned_pages: vec![8, 0],
            ..ClusterConfig::default()
        };
        assert_eq!(cfg.node_config(0).owned_pages, 8);
        assert_eq!(cfg.node_config(1).owned_pages, 0);
        // Missing entry falls back to the template.
        assert_eq!(
            cfg.node_config(2).owned_pages,
            NodeConfig::default().owned_pages
        );
    }

    #[test]
    fn group_commit_defaults_to_immediate() {
        assert_eq!(
            ClusterConfig::default().group_commit,
            GroupCommitPolicy::Immediate
        );
        assert!(GroupCommitPolicy::Immediate.is_immediate());
        assert!(GroupCommitPolicy::Window {
            window_us: 100,
            max_batch: 1
        }
        .is_immediate());
        assert!(!GroupCommitPolicy::Window {
            window_us: 100,
            max_batch: 8
        }
        .is_immediate());
    }
}
