//! Cluster and node configuration.

use cblog_common::CostModel;

/// Configuration of a single node.
#[derive(Clone, Debug)]
pub struct NodeConfig {
    /// Page size in bytes (also the database block size).
    pub page_size: usize,
    /// Buffer pool capacity in pages.
    pub buffer_frames: usize,
    /// Pages in the local database (0 = diskless client node that owns
    /// no data but still has a local log, like nodes 2 and 4 in the
    /// paper's Figure 1).
    pub owned_pages: u32,
    /// Bounded log size in bytes (None = unbounded). Bounded logs
    /// trigger the §2.5 space-management protocol.
    pub log_capacity: Option<u64>,
}

impl Default for NodeConfig {
    fn default() -> Self {
        NodeConfig {
            page_size: 1024,
            buffer_frames: 64,
            owned_pages: 16,
            log_capacity: None,
        }
    }
}

/// Configuration of a whole cluster.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Number of nodes. Node ids are `0..node_count`.
    pub node_count: usize,
    /// Pages owned by each node (len must equal `node_count`; nodes
    /// with 0 own no database). If shorter, missing entries default to
    /// `default_node.owned_pages`.
    pub owned_pages: Vec<u32>,
    /// Template for per-node settings other than `owned_pages`.
    pub default_node: NodeConfig,
    /// Simulated cost model for messages and disk I/O.
    pub cost: CostModel,
    /// Baseline ablation: force every dirty page to the owner's disk
    /// when it is transferred between nodes (Rdb/VMS and the
    /// Mohan–Narang simple/medium shared-disks schemes, paper §3.2).
    /// The paper's design keeps this off — contribution (1).
    pub force_on_transfer: bool,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            node_count: 2,
            owned_pages: Vec::new(),
            default_node: NodeConfig::default(),
            cost: CostModel::default(),
            force_on_transfer: false,
        }
    }
}

impl ClusterConfig {
    /// Per-node config for node `i`.
    pub fn node_config(&self, i: usize) -> NodeConfig {
        let mut cfg = self.default_node.clone();
        if let Some(&p) = self.owned_pages.get(i) {
            cfg.owned_pages = p;
        }
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_config_overrides_owned_pages() {
        let cfg = ClusterConfig {
            node_count: 3,
            owned_pages: vec![8, 0],
            ..ClusterConfig::default()
        };
        assert_eq!(cfg.node_config(0).owned_pages, 8);
        assert_eq!(cfg.node_config(1).owned_pages, 0);
        // Missing entry falls back to the template.
        assert_eq!(
            cfg.node_config(2).owned_pages,
            NodeConfig::default().owned_pages
        );
    }
}
