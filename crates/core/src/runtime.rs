//! Execution runtimes: one protocol, two engines.
//!
//! The protocol code in this crate is driven two ways:
//!
//! * the **deterministic simulator** ([`Cluster`]) — single-threaded,
//!   simulated clock, in-memory stores; every run is reproducible and
//!   serves as the correctness oracle;
//! * the **threaded runtime** (`cblog-rt`) — one OS thread per node,
//!   file-backed WALs with real fsync, mpsc-channel transport,
//!   wall-clock group-commit deadlines; it measures real commits/sec
//!   and commit latency.
//!
//! [`Runtime`] is the seam between them: a workload compiled to
//! [`TxnPlan`]s runs on either engine, and the final database state of
//! the threaded engine is cross-checked byte-for-byte against the
//! simulator on the same seeded plan list.
//!
//! Plans keep equivalence checkable under real concurrency: when each
//! `(client, stream)` pair touches its own private pages, every page's
//! update sequence is stream-local, so the final page images are
//! independent of how the engine interleaves streams — any divergence
//! is an engine bug, not scheduling noise.

use crate::recovery::{RecoveryOptions, RecoveryReport};
use crate::Cluster;
use cblog_common::{Error, NodeId, PageId, Result, Snapshot, TxnId};

/// One operation of a planned transaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlanOp {
    /// Read `slot` of `pid`.
    Read {
        /// Page to read.
        pid: PageId,
        /// Slot within the page.
        slot: usize,
    },
    /// Write `value` into `slot` of `pid`.
    Write {
        /// Page to write.
        pid: PageId,
        /// Slot within the page.
        slot: usize,
        /// Value stored.
        value: u64,
    },
}

/// One planned transaction: which node runs it, which of that node's
/// concurrent streams it belongs to, its operations, and whether it
/// ends in a user abort instead of a commit.
#[derive(Clone, Debug)]
pub struct TxnPlan {
    /// Node the transaction runs on.
    pub client: NodeId,
    /// Stream index within the client (MPL lane); transactions of one
    /// stream run sequentially, streams interleave.
    pub stream: usize,
    /// Operations in order.
    pub ops: Vec<PlanOp>,
    /// End with rollback instead of commit.
    pub abort: bool,
}

/// What happened when a plan list ran.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunReport {
    /// Transactions that committed.
    pub committed: u64,
    /// Transactions that ended in their planned user abort.
    pub user_aborts: u64,
    /// Transactions the engine had to abort (conflict/deadlock).
    pub forced_aborts: u64,
    /// Individual operations executed (including rolled-back ones).
    pub ops_executed: u64,
}

/// An engine that can execute planned transactions against the CBL
/// protocol stack.
pub trait Runtime {
    /// Engine name for reports ("sim", "threads").
    fn name(&self) -> &'static str;

    /// Executes every plan (streams interleaved, each stream in
    /// order) and returns the tally.
    fn run(&mut self, plans: &[TxnPlan]) -> Result<RunReport>;

    /// Serialized final image of `pid`, for cross-engine comparison.
    fn page_image(&mut self, pid: PageId) -> Result<Vec<u8>>;

    /// Metrics snapshot after the run.
    fn metrics(&self) -> Snapshot;

    /// Runs distributed crash recovery per `opts` (paper §2.3/§2.4).
    /// Both engines plan Redo through the same pure [`crate::plan_replay`]
    /// step and honor [`crate::ReplayMode`]: the simulator overlaps the
    /// service times of a wave's units, the threaded engine replays
    /// them on real worker threads.
    fn recover(&mut self, opts: &RecoveryOptions) -> Result<RecoveryReport>;
}

/// Per-stream execution state of the sim-backed driver.
enum StreamState {
    Idle,
    Running { txn: TxnId, op: usize },
    Committing { txn: TxnId },
}

struct Stream {
    plans: Vec<TxnPlan>,
    next: usize,
    state: StreamState,
}

/// The deterministic simulator as a [`Runtime`]: a round-robin driver
/// over streams using the cluster's asynchronous commit interface
/// (submit → poll → pump), so group-commit batching behaves exactly as
/// it does under the full experiment driver.
impl Runtime for Cluster {
    fn name(&self) -> &'static str {
        "sim"
    }

    fn run(&mut self, plans: &[TxnPlan]) -> Result<RunReport> {
        let mut report = RunReport::default();
        // Bucket plans by (client, stream), preserving order.
        let mut streams: Vec<Stream> = Vec::new();
        let mut index: Vec<((NodeId, usize), usize)> = Vec::new();
        for plan in plans {
            let key = (plan.client, plan.stream);
            let slot = match index.iter().find(|(k, _)| *k == key) {
                Some((_, i)) => *i,
                None => {
                    index.push((key, streams.len()));
                    streams.push(Stream {
                        plans: Vec::new(),
                        next: 0,
                        state: StreamState::Idle,
                    });
                    streams.len() - 1
                }
            };
            streams[slot].plans.push(plan.clone());
        }

        loop {
            let mut progressed = false;
            let mut live = false;
            for s in streams.iter_mut() {
                match s.state {
                    StreamState::Idle => {
                        if s.next >= s.plans.len() {
                            continue;
                        }
                        live = true;
                        let txn = self.begin(s.plans[s.next].client)?;
                        s.state = StreamState::Running { txn, op: 0 };
                        progressed = true;
                    }
                    StreamState::Running { txn, op } => {
                        live = true;
                        let plan = &s.plans[s.next];
                        if op < plan.ops.len() {
                            let res = match plan.ops[op] {
                                PlanOp::Read { pid, slot } => {
                                    self.read_u64(txn, pid, slot).map(|_| ())
                                }
                                PlanOp::Write { pid, slot, value } => {
                                    self.write_u64(txn, pid, slot, value)
                                }
                            };
                            match res {
                                Ok(()) => {
                                    report.ops_executed += 1;
                                    s.state = StreamState::Running { txn, op: op + 1 };
                                    progressed = true;
                                }
                                Err(Error::WouldBlock { .. }) => {
                                    // Plans for equivalence runs use
                                    // private pages, so a conflict
                                    // means cross-stream contention:
                                    // abort, consume the plan.
                                    self.abort(txn)?;
                                    report.forced_aborts += 1;
                                    s.next += 1;
                                    s.state = StreamState::Idle;
                                    progressed = true;
                                }
                                Err(e) => return Err(e),
                            }
                        } else if plan.abort {
                            self.abort(txn)?;
                            report.user_aborts += 1;
                            s.next += 1;
                            s.state = StreamState::Idle;
                            progressed = true;
                        } else {
                            self.commit_submit(txn)?;
                            s.state = StreamState::Committing { txn };
                            progressed = true;
                        }
                    }
                    StreamState::Committing { txn } => {
                        live = true;
                        if self.poll_committed(txn)? {
                            report.committed += 1;
                            s.next += 1;
                            s.state = StreamState::Idle;
                            progressed = true;
                        }
                    }
                }
            }
            if !live {
                break;
            }
            if !progressed {
                // Everyone is waiting on a group-commit window:
                // advance the simulated clock until a flush fires.
                self.pump_commits()?;
            }
        }
        Ok(report)
    }

    fn page_image(&mut self, pid: PageId) -> Result<Vec<u8>> {
        self.node_mut(pid.owner).page_image(pid)
    }

    fn metrics(&self) -> Snapshot {
        self.metrics_snapshot()
    }

    fn recover(&mut self, opts: &RecoveryOptions) -> Result<RecoveryReport> {
        crate::recovery::recover_sim(self, opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClusterConfig, GroupCommitPolicy, Node};

    fn pid(owner: u32, index: u32) -> PageId {
        PageId::new(NodeId(owner), index)
    }

    /// `Node` must be `Send` so the threaded runtime can move one into
    /// each worker thread. Compile-time check.
    #[test]
    fn node_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Node>();
        assert_send::<TxnPlan>();
    }

    fn plan(client: u32, stream: usize, ops: Vec<PlanOp>, abort: bool) -> TxnPlan {
        TxnPlan {
            client: NodeId(client),
            stream,
            ops,
            abort,
        }
    }

    #[test]
    fn sim_runtime_executes_plans_and_reports() {
        let mut c = Cluster::new(ClusterConfig::builder().owned_pages(vec![4, 4]).build()).unwrap();
        let plans = vec![
            plan(
                0,
                0,
                vec![
                    PlanOp::Write {
                        pid: pid(0, 0),
                        slot: 0,
                        value: 7,
                    },
                    PlanOp::Read {
                        pid: pid(0, 0),
                        slot: 0,
                    },
                ],
                false,
            ),
            plan(
                1,
                0,
                vec![PlanOp::Write {
                    pid: pid(1, 0),
                    slot: 1,
                    value: 9,
                }],
                false,
            ),
            // User abort: the write must not survive.
            plan(
                0,
                1,
                vec![PlanOp::Write {
                    pid: pid(0, 1),
                    slot: 0,
                    value: 99,
                }],
                true,
            ),
        ];
        let report = Runtime::run(&mut c, &plans).unwrap();
        assert_eq!(report.committed, 2);
        assert_eq!(report.user_aborts, 1);
        assert_eq!(report.forced_aborts, 0);
        assert_eq!(report.ops_executed, 4);

        let t = c.begin(NodeId(0)).unwrap();
        assert_eq!(c.read_u64(t, pid(0, 0), 0).unwrap(), 7);
        assert_eq!(c.read_u64(t, pid(0, 1), 0).unwrap(), 0, "abort undone");
        c.commit(t).unwrap();
        let img = Runtime::page_image(&mut c, pid(1, 0)).unwrap();
        assert!(!img.is_empty());
    }

    #[test]
    fn sim_runtime_pumps_group_commit_windows() {
        // Window policy: commits park until the window elapses; the
        // driver must pump the clock instead of spinning forever.
        let mut c = Cluster::new(
            ClusterConfig::builder()
                .owned_pages(vec![2])
                .group_commit(GroupCommitPolicy::Window {
                    window_us: 500,
                    max_batch: 64,
                })
                .build(),
        )
        .unwrap();
        let plans: Vec<TxnPlan> = (0..3)
            .map(|i| {
                plan(
                    0,
                    i,
                    vec![PlanOp::Write {
                        pid: pid(0, (i % 2) as u32),
                        slot: i,
                        value: i as u64,
                    }],
                    false,
                )
            })
            .collect();
        let report = Runtime::run(&mut c, &plans).unwrap();
        assert_eq!(report.committed + report.forced_aborts, 3);
    }
}
