//! Distributed crash recovery (paper §2.3 and §2.4).
//!
//! The defining property: **node log files are never merged**. After a
//! crash, the recovering node
//!
//! 1. runs ARIES analysis over its own log (rebuilding a conservative
//!    DPT superset and the loser-transaction table),
//! 2. gathers, from every operational node, the list of its pages they
//!    cache and their DPT entries for its pages (§2.3.1),
//! 3. determines which pages need recovery (in someone's DPT and
//!    cached nowhere) and which nodes are involved, filtering by PSN
//!    against the on-disk version (§2.3.2),
//! 4. reconstructs lock tables (§2.3.3): operational nodes drop the
//!    crashed node's shared locks and retain its exclusive locks; lock
//!    lists are shipped back; recovery locks fence unrecovered pages,
//! 5. coordinates per-page replay in ascending PSN order by shuttling
//!    the page among the involved nodes, each of which replays an
//!    interval of its **own** log under the PSN filter (§2.3.4),
//! 6. undoes its loser transactions locally, writing CLRs.
//!
//! Multiple simultaneous crashes (§2.4) additionally reconstruct each
//! crashed node's DPT superset from its log and route every node's DPT
//! entries to the page owners, which merge them into per-owner
//! recovery sets; replay then proceeds exactly as in the single-crash
//! case, possibly involving several crashed nodes' logs per page.

use crate::cluster::{Cluster, CTRL_BYTES};
use crate::node::{NodePsnEntry, RollbackStep};
use crate::runtime::Runtime;
use cblog_common::{
    metrics::keys, Bucket, Error, Lsn, NodeId, PageId, Psn, RecoveryPhase, Result, SimTime, Span,
    SpanCtx, SpanId, SpanKind, TraceEvent, TransferWhy, TxnId,
};
use cblog_locks::LockMode;
use cblog_net::{MsgHeader, MsgKind};
use cblog_wal::DptEntry;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// How the Redo pass executes the [`ReplayPlan`] (DESIGN §13).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplayMode {
    /// The paper's §2.3.4 protocol verbatim: pages replay one after
    /// another, each shuttling serially among its involved nodes.
    Serial,
    /// Dependency-aware wave schedule: independent pages replay
    /// concurrently on up to `workers` lanes — overlapped service
    /// times in the simulator, real worker threads in `cblog-rt`.
    /// `workers: 1` keeps the wave structure but serial timing.
    Parallel {
        /// Concurrent replay lanes (0 is treated as 1).
        workers: usize,
    },
}

impl ReplayMode {
    /// The lane count this mode schedules for (Serial → 1).
    pub fn workers(&self) -> usize {
        match *self {
            ReplayMode::Serial => 1,
            ReplayMode::Parallel { workers } => workers.max(1),
        }
    }
}

/// How a recovery run should be performed — the one argument of
/// [`recover`], replacing the old `recover_single` /
/// `recover_with_standby` entry points.
#[derive(Clone, Debug)]
pub struct RecoveryOptions {
    nodes: Vec<NodeId>,
    standby: Option<NodeId>,
    crash_after: Option<RecoveryPhase>,
    crash_tear: Option<(u64, bool)>,
    replay: ReplayMode,
    sabotage_skip_undo: bool,
}

impl RecoveryOptions {
    /// Recover a single crashed node (paper §2.3).
    pub fn single(node: NodeId) -> Self {
        RecoveryOptions {
            nodes: vec![node],
            standby: None,
            crash_after: None,
            crash_tear: None,
            replay: ReplayMode::Serial,
            sabotage_skip_undo: false,
        }
    }

    /// Recover one or more simultaneously crashed nodes (paper §2.4
    /// when more than one).
    pub fn nodes(nodes: &[NodeId]) -> Self {
        RecoveryOptions {
            nodes: nodes.to_vec(),
            standby: None,
            crash_after: None,
            crash_tear: None,
            replay: ReplayMode::Serial,
            sabotage_skip_undo: false,
        }
    }

    /// Selects how the Redo pass executes the replay plan (default
    /// [`ReplayMode::Serial`], the paper's protocol).
    pub fn replay(mut self, mode: ReplayMode) -> Self {
        self.replay = mode;
        self
    }

    /// Let `standby` coordinate every phase of the protocol (paper
    /// §2.3: any node with access to the crashed node's database and
    /// log may perform its recovery). Coordination traffic lands on
    /// the standby instead of the restarting node.
    pub fn with_standby(mut self, standby: NodeId) -> Self {
        self.standby = Some(standby);
        self
    }

    /// Fault injection: crash the recovering nodes again immediately
    /// after `phase` completes. [`recover`] then returns
    /// [`Error::RecoveryInterrupted`] and must be re-run from scratch
    /// — the protocol is idempotent.
    pub fn crash_after(mut self, phase: RecoveryPhase) -> Self {
        self.crash_after = Some(phase);
        self
    }

    /// Composes with [`RecoveryOptions::crash_after`]: the interrupting
    /// crash also tears the victims' WAL tails, landing `landed` bytes
    /// of the unforced tail on the device and (if `corrupt`) flipping
    /// the last landed byte. No effect unless `crash_after` is set.
    pub fn crash_after_tear(mut self, landed: u64, corrupt: bool) -> Self {
        self.crash_tear = Some((landed, corrupt));
        self
    }

    /// Deliberately skips the Undo phase, leaving loser transactions'
    /// updates in place. This exists ONLY so the model checker's
    /// must-fail self-test can prove the checker catches a broken
    /// recovery; it is hidden from docs and must never be set outside
    /// that test.
    #[doc(hidden)]
    pub fn sabotage_skip_undo(mut self) -> Self {
        self.sabotage_skip_undo = true;
        self
    }

    /// The nodes this run recovers.
    pub fn recovered_nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// The coordinating standby, if any.
    pub fn standby(&self) -> Option<NodeId> {
        self.standby
    }

    /// The configured replay mode.
    pub fn replay_mode(&self) -> ReplayMode {
        self.replay
    }

    /// The injected crash point, if any.
    pub fn crash_after_phase(&self) -> Option<RecoveryPhase> {
        self.crash_after
    }
}

/// What a recovery run did — the measurable quantities of experiments
/// E5/E6/E7.
#[derive(Clone, Debug, Default)]
pub struct RecoveryReport {
    /// The nodes that were recovered.
    pub recovered_nodes: Vec<NodeId>,
    /// Pages replayed via the NodePSNList protocol.
    pub pages_recovered: usize,
    /// Pages whose cached copies made replay unnecessary.
    pub pages_skipped_cached: usize,
    /// Pages pulled from an operational cache to the owner (§2.3.1).
    pub pages_pulled_to_owner: usize,
    /// Loser transactions rolled back.
    pub losers_undone: usize,
    /// Update/CLR records re-applied during replay.
    pub records_replayed: u64,
    /// Log bytes scanned across all logs (analysis + PSN lists).
    pub log_bytes_scanned: u64,
    /// Recovery protocol messages exchanged.
    pub messages: u64,
    /// Page shuttle hops during coordinated replay.
    pub page_hops: u64,
    /// Torn log-tail bytes discarded by checksum repair at restart.
    pub torn_bytes_discarded: u64,
    /// Per-phase duration breakdown — the "where does restart time
    /// go" view of §2.3/§2.4, plus the per-wave replay split when the
    /// run used [`ReplayMode::Parallel`].
    pub timings: PhaseTimings,
    /// Waves in the run's [`ReplayPlan`] (0 when nothing replayed).
    pub replay_waves: usize,
    /// PSN intervals on the plan's critical path — the serial floor no
    /// amount of replay parallelism removes.
    pub critical_path_psns: u64,
}

/// Timing of one replay wave under [`ReplayMode::Parallel`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WaveTiming {
    /// Replay units (pages) the wave contained.
    pub units: usize,
    /// Sum of the units' service times — what the wave would have
    /// cost replayed serially.
    pub serial_us: u64,
    /// Simulated time the wave actually took: an LPT packing of the
    /// unit durations onto the configured worker lanes.
    pub makespan_us: u64,
}

/// Typed per-phase duration breakdown of a recovery run, replacing
/// the old `phase_us: Vec<(RecoveryPhase, u64)>`. Durations are
/// simulated µs in the sim engine and measured wall-clock µs in
/// `cblog-rt`. Phases that exchanged no messages and did no I/O
/// report 0.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PhaseTimings {
    us: [u64; RecoveryPhase::ALL.len()],
    replay_waves: Vec<WaveTiming>,
}

impl PhaseTimings {
    fn idx(phase: RecoveryPhase) -> usize {
        RecoveryPhase::ALL
            .iter()
            .position(|&p| p == phase)
            .expect("every phase is listed in ALL")
    }

    /// Records `us` against `phase` (accumulating).
    pub fn record(&mut self, phase: RecoveryPhase, us: u64) {
        self.us[Self::idx(phase)] += us;
    }

    /// Attaches the per-wave replay breakdown.
    pub fn set_replay_waves(&mut self, waves: Vec<WaveTiming>) {
        self.replay_waves = waves;
    }

    /// Duration of `phase`.
    pub fn us(&self, phase: RecoveryPhase) -> u64 {
        self.us[Self::idx(phase)]
    }

    /// Total duration across all phases.
    pub fn total_us(&self) -> u64 {
        self.us.iter().sum()
    }

    /// `(phase, µs)` pairs in protocol order.
    pub fn iter(&self) -> impl Iterator<Item = (RecoveryPhase, u64)> + '_ {
        RecoveryPhase::ALL.iter().map(move |&p| (p, self.us(p)))
    }

    /// Per-wave replay breakdown (empty under [`ReplayMode::Serial`]).
    pub fn replay_waves(&self) -> &[WaveTiming] {
        &self.replay_waves
    }

    /// ARIES analysis scan.
    pub fn analysis_us(&self) -> u64 {
        self.us(RecoveryPhase::Analysis)
    }

    /// Cache/DPT/lock information exchange.
    pub fn info_exchange_us(&self) -> u64 {
        self.us(RecoveryPhase::InfoExchange)
    }

    /// Lock-table reconstruction.
    pub fn lock_rebuild_us(&self) -> u64 {
        self.us(RecoveryPhase::LockRebuild)
    }

    /// Per-owner recovery-set determination.
    pub fn recovery_sets_us(&self) -> u64 {
        self.us(RecoveryPhase::RecoverySets)
    }

    /// Recovery-lock fencing.
    pub fn recovery_locks_us(&self) -> u64 {
        self.us(RecoveryPhase::RecoveryLocks)
    }

    /// NodePSNList construction and exchange.
    pub fn psn_lists_us(&self) -> u64 {
        self.us(RecoveryPhase::PsnLists)
    }

    /// Redo (coordinated page replay).
    pub fn replay_us(&self) -> u64 {
        self.us(RecoveryPhase::Replay)
    }

    /// Loser-transaction undo.
    pub fn undo_us(&self) -> u64 {
        self.us(RecoveryPhase::Undo)
    }

    /// Completion broadcast.
    pub fn done_us(&self) -> u64 {
        self.us(RecoveryPhase::Done)
    }
}

/// Closes the current recovery phase: accounts the sim-time spent
/// since `t0` under `phase`, stamps a [`TraceEvent::RecoveryPhase`]
/// into every recovering node's flight recorder, and fires the
/// injected crash point if the options ask for one after this phase.
fn end_phase(
    cluster: &mut Cluster,
    crashed: &[NodeId],
    t0: &mut SimTime,
    out: &mut PhaseTimings,
    phase: RecoveryPhase,
    opts: &RecoveryOptions,
    root: SpanId,
) -> Result<()> {
    let crash_after = opts.crash_after;
    let now = cluster.network().clock().now();
    let us = now.saturating_sub(*t0);
    *t0 = now;
    out.record(phase, us);
    for &c in crashed {
        cluster
            .node(c)
            .recorder()
            .record(now, TraceEvent::RecoveryPhase { phase, us });
        let id = cluster.tracer().alloc();
        if !id.is_none() {
            cluster.tracer().emit(Span {
                id,
                parent: root,
                node: c,
                start: now - us,
                dur: us,
                kind: SpanKind::Phase { node: c, phase },
            });
        }
    }
    if crash_after == Some(phase) {
        for &c in crashed {
            match opts.crash_tear {
                // Composed fault: the interrupting crash also tears
                // the victim's WAL tail at a chosen byte. At phase
                // boundaries the recovering node's tail is normally
                // empty (Undo ends with a force + checkpoint), so
                // `landed` clamps to whatever is actually pending —
                // the hook exists so the model checker can prove the
                // composition stays idempotent rather than assume it.
                Some((landed, corrupt)) => cluster.crash_torn(c, landed, corrupt),
                None => cluster.crash(c),
            }
        }
        return Err(Error::RecoveryInterrupted(phase));
    }
    Ok(())
}

/// Information one node contributes to another node's recovery.
#[derive(Clone, Debug, Default)]
struct ContributedInfo {
    /// Pages (owned by the recovering node) this node caches, with the
    /// cached copy's PSN.
    cached: Vec<(PageId, Psn)>,
    /// This node's DPT entries for pages owned by the recovering node.
    dpt: Vec<DptEntry>,
    /// Locks this node holds on the recovering node's pages.
    locks_held: Vec<(PageId, LockMode)>,
    /// Pages owned by this node on which the recovering node held an
    /// exclusive lock at crash time (retained as a fence).
    crashed_exclusive: Vec<PageId>,
}

/// One page's replay work: the §2.3.4 shuttle schedule, pre-merged
/// from the involved nodes' NodePSNLists.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReplayUnit {
    /// The page.
    pub pid: PageId,
    /// Shuttle hops in ascending PSN order, adjacent same-node bursts
    /// merged (keeping the minimum PSN): `(start_psn, node,
    /// resume_lsn)`.
    pub hops: Vec<(Psn, NodeId, Lsn)>,
    /// PSN intervals (transaction bursts) recorded for the page across
    /// all lists — the unit's weight in the dependency graph.
    pub psn_intervals: u64,
}

/// The Redo pass as data: which pages replay, in which concurrency
/// waves, and how long the unavoidable serial chain is. Built by
/// [`plan_replay`] at the end of Analysis — a pure function of the
/// merged NodePSNLists, shared verbatim by the simulator and the
/// threaded engine (DESIGN §13).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ReplayPlan {
    /// Replay units in ascending page order — the exact order the
    /// serial protocol visits them.
    pub units: Vec<ReplayUnit>,
    /// Wave schedule: indices into `units`; every unit in a wave is
    /// independent of the others and may replay concurrently, and no
    /// unit appears before all its dependency-graph predecessors.
    pub waves: Vec<Vec<usize>>,
    /// PSN intervals along the longest dependency chain — the lower
    /// bound on replay work no amount of parallelism removes.
    pub critical_path_psns: u64,
}

/// Builds the PSN-interval dependency graph and its wave schedule.
///
/// Vertices are pages (one [`ReplayUnit`] each, carrying the merged
/// per-page PSN chain). Cross-page edges exist only where a
/// multi-page transaction orders two pages: if one node's log shows
/// transaction T updating page P before page Q, P must not start
/// *after* Q's wave — the wave schedule replays P no later than Q,
/// mirroring the dependency-logging literature. Page transfers never
/// add cross-page edges: a transfer moves one page, and that ordering
/// is already the unit's own hop chain.
///
/// Correctness never hangs on the edges: each page's replay applies
/// only records whose stored PSN matches the page's current PSN
/// (§2.3.2's filter), so per-page PSN order — the invariant the span
/// watchdog enforces — holds in any cross-page interleaving. The
/// edges shape the *schedule*; should they ever form a cycle (two
/// transactions observing the pages in opposite orders on different
/// logs), the members simply share one final wave.
pub fn plan_replay(
    involved: &BTreeMap<PageId, Vec<NodeId>>,
    psn_lists: &BTreeMap<NodeId, Vec<NodePsnEntry>>,
) -> ReplayPlan {
    let mut units: Vec<ReplayUnit> = Vec::with_capacity(involved.len());
    let mut unit_of: BTreeMap<PageId, usize> = BTreeMap::new();
    for (&pid, nodes) in involved {
        let mut entries: Vec<(Psn, NodeId, Lsn)> = Vec::new();
        for &n in nodes {
            if let Some(list) = psn_lists.get(&n) {
                for e in list.iter().filter(|e| e.pid == pid) {
                    entries.push((e.psn, n, e.lsn));
                }
            }
        }
        let psn_intervals = entries.len() as u64;
        entries.sort();
        let mut hops: Vec<(Psn, NodeId, Lsn)> = Vec::new();
        for e in entries {
            match hops.last() {
                // Adjacent same node: keep the first (minimum PSN).
                Some(&(_, n, _)) if n == e.1 => {}
                _ => hops.push(e),
            }
        }
        unit_of.insert(pid, units.len());
        units.push(ReplayUnit {
            pid,
            hops,
            psn_intervals,
        });
    }
    // Cross-page edges from multi-page transactions: within each log's
    // list (LSN order), chain the pages each transaction touches.
    let n = units.len();
    let mut succs: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
    let mut indeg: Vec<usize> = vec![0; n];
    for list in psn_lists.values() {
        let mut last_of_txn: HashMap<TxnId, usize> = HashMap::new();
        for e in list {
            let Some(&u) = unit_of.get(&e.pid) else {
                continue;
            };
            if let Some(&prev) = last_of_txn.get(&e.txn) {
                if prev != u && succs[prev].insert(u) {
                    indeg[u] += 1;
                }
            }
            last_of_txn.insert(e.txn, u);
        }
    }
    // Kahn leveling: each wave is the currently dependency-free set,
    // and `dist` accumulates the weighted longest path.
    let mut waves: Vec<Vec<usize>> = Vec::new();
    let mut dist: Vec<u64> = vec![0; n];
    let mut done: Vec<bool> = vec![false; n];
    let mut ready: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut critical = 0u64;
    while !ready.is_empty() {
        let mut next = Vec::new();
        for &u in &ready {
            done[u] = true;
            dist[u] += units[u].psn_intervals;
            critical = critical.max(dist[u]);
            for &v in &succs[u] {
                dist[v] = dist[v].max(dist[u]);
                indeg[v] -= 1;
                if indeg[v] == 0 {
                    next.push(v);
                }
            }
        }
        waves.push(std::mem::take(&mut ready));
        ready = next;
    }
    let leftover: Vec<usize> = (0..n).filter(|&i| !done[i]).collect();
    if !leftover.is_empty() {
        // Cyclic remainder: correctness-safe in one shared wave (see
        // above); count every member's weight against the critical
        // path — a cycle is serial however it is scheduled.
        let base = critical;
        let cycle_weight: u64 = leftover.iter().map(|&u| units[u].psn_intervals).sum();
        critical = critical.max(base + cycle_weight);
        waves.push(leftover);
    }
    ReplayPlan {
        units,
        waves,
        critical_path_psns: critical,
    }
}

/// Longest-processing-time packing of `durs` onto `workers` lanes;
/// returns the makespan — the simulated duration of a wave whose
/// units run concurrently on that many lanes.
fn lpt_makespan(durs: &[SimTime], workers: usize) -> SimTime {
    let mut sorted: Vec<SimTime> = durs.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let mut lanes = vec![0u64; workers.max(1)];
    for d in sorted {
        let min = lanes
            .iter_mut()
            .min_by_key(|l| **l)
            .expect("at least one lane");
        *min += d;
    }
    lanes.into_iter().max().unwrap_or(0)
}

/// Recovers crashed nodes per `opts` — the single public entry point
/// of distributed crash recovery (§2.3 single crash, §2.4
/// simultaneous crashes, optional hot-standby coordination, optional
/// injected crash-during-recovery). Transaction processing on the
/// remaining nodes may resume as soon as this returns.
///
/// In the standby-coordinated mode the standby drives every phase —
/// information gathering, lock reconstruction, NodePSNList merging and
/// the per-page replay shuttle — while the crashed node's log is still
/// scanned by its own (restarting) process; on shared disks the
/// standby would read it directly with the same algorithm.
///
/// If `opts.crash_after(phase)` is set, the recovering nodes crash
/// again right after that phase and the call returns
/// [`Error::RecoveryInterrupted`]; re-running `recover` from scratch
/// then completes normally (the protocol is idempotent).
///
/// This entry point is runtime-generic: it dispatches to
/// [`Runtime::recover`], so the same call drives the deterministic
/// simulator ([`Cluster`]) and the threaded engine
/// (`cblog_rt::ThreadCluster`).
pub fn recover<R: Runtime + ?Sized>(rt: &mut R, opts: &RecoveryOptions) -> Result<RecoveryReport> {
    rt.recover(opts)
}

/// The old `Cluster`-only entry point, kept for one release.
#[deprecated(
    since = "0.8.0",
    note = "use the runtime-generic `recover(&mut impl Runtime, &RecoveryOptions)`"
)]
pub fn recover_cluster(cluster: &mut Cluster, opts: &RecoveryOptions) -> Result<RecoveryReport> {
    recover_sim(cluster, opts)
}

/// The simulator's recovery implementation, reached through
/// [`Runtime::recover`] on [`Cluster`].
pub(crate) fn recover_sim(cluster: &mut Cluster, opts: &RecoveryOptions) -> Result<RecoveryReport> {
    // Everything the run charges — log scans, page forces, the
    // cross-node replay shuttle — lands in the profiler's Replay
    // bucket, so resource-time breakdowns separate recovery work from
    // normal processing. The scope is restored even on the early
    // returns (crash-after injection, owner-down). The overlap
    // accumulator is cleared unconditionally for the same reason: an
    // error unwinding out of a parallel wave measurement would
    // otherwise leave the transport swallowing every later clock
    // advance — `pump_commits` would spin on a clock that never moves.
    cluster.network_mut().set_attribution(Some(Bucket::Replay));
    let r = recover_inner(cluster, opts);
    let net = cluster.network_mut();
    net.set_attribution(None);
    net.clear_overlap();
    r
}

fn recover_inner(cluster: &mut Cluster, opts: &RecoveryOptions) -> Result<RecoveryReport> {
    let crashed: &[NodeId] = &opts.nodes;
    let standby = opts.standby;
    if let Some(s) = standby {
        if crashed.contains(&s) {
            return Err(Error::Invalid(format!("{s} is itself crashed")));
        }
        if cluster.network().is_crashed(s) {
            return Err(Error::NodeDown(s));
        }
    }
    let coord_of = |c: NodeId| standby.unwrap_or(c);
    let mut report = RecoveryReport {
        recovered_nodes: crashed.to_vec(),
        ..RecoveryReport::default()
    };
    let msgs0 = cluster.network().stats().recovery_messages();
    for &c in crashed {
        if !cluster.node(c).is_crashed() {
            return Err(Error::Protocol(format!("{c} is not crashed")));
        }
    }
    // The root span of this run: every phase span and cross-node
    // recovery message is parented to it, so a trace query for a page
    // can tell recovery traffic from normal processing.
    let t_start = cluster.network().clock().now();
    let root = cluster.tracer().alloc();
    let hdr = MsgHeader::of(SpanCtx::root(root));
    // Restart: nodes become reachable again for the recovery dialogue,
    // and each repairs (discards) any torn log tail before scanning.
    for &c in crashed {
        cluster.network_mut().mark_up(c);
        report.torn_bytes_discarded += cluster.node_mut(c).mark_restarting()?;
    }
    let crashed_set: BTreeSet<NodeId> = crashed.iter().copied().collect();
    let all: Vec<NodeId> = (0..cluster.node_count() as u32).map(NodeId).collect();
    let operational: Vec<NodeId> = all
        .iter()
        .copied()
        .filter(|n| !crashed_set.contains(n) && !cluster.network().is_crashed(*n))
        .collect();
    let mut phase_t0 = cluster.network().clock().now();
    let mut timings = PhaseTimings::default();

    // ---- Phase 1: local analysis at every crashed node (§2.3.1/§2.4:
    // a DPT superset is reconstructed by scanning the local log from
    // the last complete checkpoint). ----
    let mut losers: BTreeMap<NodeId, Vec<TxnId>> = BTreeMap::new();
    for &c in crashed {
        let a = cluster.node_mut(c).restart_analysis()?;
        report.log_bytes_scanned += a.bytes_scanned;
        losers.insert(c, a.losers);
    }
    end_phase(
        cluster,
        crashed,
        &mut phase_t0,
        &mut timings,
        RecoveryPhase::Analysis,
        opts,
        root,
    )?;

    // ---- Phase 2: information exchange. Every crashed node C hears
    // from every *other* node (operational or also recovering): cache
    // inventory, DPT entries for C's pages, lock lists (§2.3.1,
    // §2.3.3). ----
    let mut info: BTreeMap<(NodeId, NodeId), ContributedInfo> = BTreeMap::new();
    for &c in crashed {
        for &r in &all {
            if r == c {
                continue;
            }
            let co = coord_of(c);
            if co != r {
                cluster.network_mut().send_reliable_hdr(
                    co,
                    r,
                    MsgKind::RecoveryInfoRequest,
                    CTRL_BYTES,
                    hdr,
                )?;
            }
            let contrib = collect_contribution(cluster, r, c, crashed_set.contains(&r))?;
            let reply_bytes = CTRL_BYTES
                + contrib.cached.len() * 16
                + contrib.dpt.len() * 44
                + contrib.locks_held.len() * 12
                + contrib.crashed_exclusive.len() * 8;
            if co != r {
                cluster.network_mut().send_reliable_hdr(
                    r,
                    co,
                    MsgKind::RecoveryInfoReply,
                    reply_bytes,
                    hdr,
                )?;
            }
            info.insert((c, r), contrib);
        }
    }
    end_phase(
        cluster,
        crashed,
        &mut phase_t0,
        &mut timings,
        RecoveryPhase::InfoExchange,
        opts,
        root,
    )?;

    // ---- Phase 3: lock reconstruction (§2.3.3). ----
    for &c in crashed {
        // Rebuild C's owner-side global lock table from the lists sent
        // by the other nodes.
        for &r in &all {
            if r == c {
                continue;
            }
            let locks = info[&(c, r)].locks_held.clone();
            if !locks.is_empty() {
                let co = coord_of(c);
                if co != r {
                    cluster.network_mut().send_reliable_hdr(
                        r,
                        co,
                        MsgKind::LockListShip,
                        CTRL_BYTES + locks.len() * 12,
                        hdr,
                    )?;
                }
                for (pid, mode) in locks {
                    cluster.node_mut(c).global_locks.insert_grant(pid, r, mode);
                    // A crashed contributor's grants are log-derived
                    // loser fences; re-establish its cached side too
                    // (the crashed_exclusive path below only covers
                    // owners that stayed up).
                    if crashed_set.contains(&r) {
                        cluster.node_mut(r).cached_locks.grant(pid, mode);
                    }
                }
            }
        }
        // Re-establish C's cached exclusive locks on remote pages (the
        // owners retained them as fences).
        for &r in &all {
            if r == c {
                continue;
            }
            for pid in info[&(c, r)].crashed_exclusive.clone() {
                cluster
                    .node_mut(c)
                    .cached_locks
                    .grant(pid, LockMode::Exclusive);
            }
        }
    }
    end_phase(
        cluster,
        crashed,
        &mut phase_t0,
        &mut timings,
        RecoveryPhase::LockRebuild,
        opts,
        root,
    )?;

    // ---- Phase 4: determine per-owner recovery sets (§2.3.1 / §2.4).
    // For every page owned by a crashed node and present in anyone's
    // DPT: if an operational node caches it, the cached copy is
    // current (skip replay; pull the copy to the owner so a later
    // crash elsewhere stays recoverable); otherwise it must be rebuilt
    // from the involved nodes' logs. ----
    #[derive(Default, Debug)]
    struct PageRecovery {
        involved: Vec<(NodeId, DptEntry)>,
    }
    let mut plans: BTreeMap<PageId, PageRecovery> = BTreeMap::new();
    for &c in crashed {
        // Gather DPT entries for pages owned by C: C's own rebuilt DPT
        // plus everyone's contributed entries.
        let mut entries: Vec<(NodeId, DptEntry)> = Vec::new();
        for e in cluster.node(c).dpt().entries_for_owner(c) {
            entries.push((c, e));
        }
        for &r in &all {
            if r == c {
                continue;
            }
            for e in info[&(c, r)].dpt.clone() {
                entries.push((r, e));
            }
        }
        // Cache inventory (operational nodes only — crashed caches are
        // gone).
        let mut cached_at: BTreeMap<PageId, Vec<NodeId>> = BTreeMap::new();
        for &r in &operational {
            for (pid, _psn) in info[&(c, r)].cached.clone() {
                cached_at.entry(pid).or_default().push(r);
            }
        }
        let mut by_page: BTreeMap<PageId, Vec<(NodeId, DptEntry)>> = BTreeMap::new();
        for (n, e) in entries {
            by_page.entry(e.pid).or_default().push((n, e));
        }
        for (pid, holders) in by_page {
            if let Some(cachers) = cached_at.get(&pid) {
                // Current copy survives in an operational cache: pull
                // it to the owner (it becomes a dirty owner-side copy
                // whose eventual flush acknowledges the DPT holders).
                report.pages_skipped_cached += 1;
                let src = cachers[0];
                cluster.network_mut().send_reliable_hdr(
                    coord_of(c),
                    src,
                    MsgKind::RecoveryPageFetch,
                    CTRL_BYTES,
                    hdr,
                )?;
                let copy = cluster
                    .node_mut(src)
                    .buffer
                    .peek(pid)
                    .expect("inventory said cached")
                    .clone();
                let page_bytes = copy.size() + 64;
                let xfer = cluster.trace_transfer(pid, src, c, copy.psn(), TransferWhy::Recovery);
                cluster.network_mut().send_reliable_hdr(
                    src,
                    c,
                    MsgKind::PageShip,
                    page_bytes,
                    MsgHeader::of(SpanCtx::child(xfer, root)),
                )?;
                let ev = cluster.node_mut(c).receive_replaced(src, copy)?;
                if let Some(ev) = ev {
                    cluster.route_eviction(c, ev)?;
                }
                report.pages_pulled_to_owner += 1;
                // Every DPT holder must eventually get a flush-ack.
                for (n, _) in &holders {
                    if *n != c {
                        cluster
                            .node_mut(c)
                            .replacers
                            .entry(pid)
                            .or_default()
                            .insert(*n);
                    }
                }
                continue;
            }
            // Filter involvement by PSN against the disk version
            // (§2.3.2): a node whose CurrPSN is not past the disk PSN
            // has nothing to replay and drops its entry.
            let disk = cluster.node_mut(c).disk_psn(pid)?;
            let mut involved = Vec::new();
            for (n, e) in holders {
                if e.curr_psn > disk {
                    involved.push((n, e));
                } else {
                    cluster.node_mut(n).dpt.remove(pid);
                }
            }
            if involved.is_empty() {
                continue;
            }
            plans.insert(pid, PageRecovery { involved });
        }
    }

    // Remote-owned candidates of crashed nodes (§2.3.1 category (b)):
    // pages owned by an *operational* node that the crashed node held
    // exclusively. Replay the crashed node's log onto the owner's
    // authoritative copy.
    let mut remote_candidates: Vec<(NodeId, PageId)> = Vec::new();
    for &c in crashed {
        for &r in &operational {
            for pid in info[&(c, r)].crashed_exclusive.clone() {
                if cluster.node(c).dpt().contains(pid) {
                    remote_candidates.push((c, pid));
                }
            }
        }
        // Reconcile DPT entries for remote pages the crashed node did
        // NOT hold exclusively: the owner has (or has flushed) those
        // updates; drop the entry if durable, else re-register for a
        // future flush-ack.
        let remote_entries: Vec<DptEntry> = cluster
            .node(c)
            .dpt()
            .entries()
            .into_iter()
            .filter(|e| e.pid.owner != c && !crashed_set.contains(&e.pid.owner))
            .collect();
        for e in remote_entries {
            let held_x = info
                .get(&(c, e.pid.owner))
                .map(|i| i.crashed_exclusive.contains(&e.pid))
                .unwrap_or(false);
            if held_x {
                continue;
            }
            let disk = cluster.node_mut(e.pid.owner).disk_psn(e.pid)?;
            if e.curr_psn <= disk {
                cluster.node_mut(c).dpt.remove(e.pid);
            } else {
                // Updates live in the owner's buffer; be flush-acked
                // when the owner writes the page.
                cluster
                    .node_mut(e.pid.owner)
                    .replacers
                    .entry(e.pid)
                    .or_default()
                    .insert(c);
            }
        }
    }
    end_phase(
        cluster,
        crashed,
        &mut phase_t0,
        &mut timings,
        RecoveryPhase::RecoverySets,
        opts,
        root,
    )?;

    // ---- Phase 5: recovery locks. The recovering owner takes (or
    // keeps) exclusive fences on every page it must recover; stale
    // page-less shared grants of other nodes on those pages are called
    // back so nobody reads a pre-recovery disk image. ----
    for (pid, _) in plans.iter() {
        let owner = pid.owner;
        if !crashed_set.contains(&owner) {
            continue;
        }
        let holders = cluster.node(owner).global_locks.holders(*pid);
        let co = coord_of(owner);
        for (h, _) in holders {
            if h != owner && !crashed_set.contains(&h) {
                if co != h {
                    cluster.network_mut().send_reliable_hdr(
                        co,
                        h,
                        MsgKind::Callback,
                        CTRL_BYTES,
                        hdr,
                    )?;
                }
                cluster.node_mut(h).cached_locks.release(*pid);
                cluster.node_mut(h).buffer.remove(*pid);
                if co != h {
                    cluster.network_mut().send_reliable_hdr(
                        h,
                        co,
                        MsgKind::CallbackAck,
                        CTRL_BYTES,
                        hdr,
                    )?;
                }
                cluster.node_mut(owner).global_locks.release(*pid, h);
            }
        }
        cluster
            .node_mut(owner)
            .global_locks
            .insert_grant(*pid, owner, LockMode::Exclusive);
    }
    end_phase(
        cluster,
        crashed,
        &mut phase_t0,
        &mut timings,
        RecoveryPhase::RecoveryLocks,
        opts,
        root,
    )?;

    // ---- Phase 6: NodePSNList exchange (§2.3.4). Each involved node
    // scans its own log once for all pages it participates in. ----
    let mut want_lists: BTreeMap<NodeId, BTreeSet<PageId>> = BTreeMap::new();
    for (pid, plan) in &plans {
        for (n, _) in &plan.involved {
            want_lists.entry(*n).or_default().insert(*pid);
        }
    }
    for (c, pid) in &remote_candidates {
        want_lists.entry(*c).or_default().insert(*pid);
    }
    let mut psn_lists: BTreeMap<NodeId, Vec<NodePsnEntry>> = BTreeMap::new();
    for (&n, pages) in &want_lists {
        let pages: Vec<PageId> = pages.iter().copied().collect();
        let coordinator_owned = pages.iter().any(|p| crashed_set.contains(&p.owner));
        if coordinator_owned && !crashed_set.contains(&n) {
            // Request travels coordinator → n; reply comes back.
            let coord = coord_of(
                pages
                    .iter()
                    .find(|p| crashed_set.contains(&p.owner))
                    .map(|p| p.owner)
                    .expect("checked"),
            );
            if coord != n {
                cluster.network_mut().send_reliable_hdr(
                    coord,
                    n,
                    MsgKind::PsnListRequest,
                    CTRL_BYTES + pages.len() * 8,
                    hdr,
                )?;
            }
            let list = cluster.node_mut(n).build_psn_list(&pages)?;
            if coord != n {
                cluster.network_mut().send_reliable_hdr(
                    n,
                    coord,
                    MsgKind::PsnListReply,
                    CTRL_BYTES + list.len() * 24,
                    hdr,
                )?;
            }
            psn_lists.insert(n, list);
        } else {
            let list = cluster.node_mut(n).build_psn_list(&pages)?;
            psn_lists.insert(n, list);
        }
    }
    // Account the list-building scans.
    for (&n, pages) in &want_lists {
        let pages: Vec<PageId> = pages.iter().copied().collect();
        let from = pages
            .iter()
            .filter_map(|p| cluster.node(n).dpt().get(*p).map(|e| e.redo_lsn))
            .min();
        if let Some(from) = from {
            report.log_bytes_scanned += cluster.node(n).log().end_lsn().0 - from.0;
        }
    }
    end_phase(
        cluster,
        crashed,
        &mut phase_t0,
        &mut timings,
        RecoveryPhase::PsnLists,
        opts,
        root,
    )?;

    // ---- Phase 7: Redo, driven by the dependency-graph wave schedule
    // (DESIGN §13). Planning is a pure function of the merged
    // NodePSNLists; Serial mode then executes the units in the paper's
    // ascending page order, Parallel mode wave by wave with the units
    // of a wave overlapping on up to `workers` lanes — each unit's
    // serial service time is measured with the transport's overlap
    // accumulator and the wall advances once per wave by the LPT
    // makespan. ----
    let involved_map: BTreeMap<PageId, Vec<NodeId>> = plans
        .iter()
        .map(|(pid, p)| (*pid, p.involved.iter().map(|(n, _)| *n).collect()))
        .collect();
    let rplan = plan_replay(&involved_map, &psn_lists);
    report.replay_waves = rplan.waves.len();
    report.critical_path_psns = rplan.critical_path_psns;
    let mut wave_timings: Vec<WaveTiming> = Vec::new();
    match opts.replay {
        ReplayMode::Serial => {
            for unit in &rplan.units {
                let coord = coord_of(unit.pid.owner);
                replay_unit(
                    cluster,
                    coord,
                    unit,
                    &involved_map[&unit.pid],
                    &mut report,
                    root,
                )?;
            }
        }
        ReplayMode::Parallel { workers } => {
            let workers = workers.max(1);
            for wave in &rplan.waves {
                let mut durs: Vec<SimTime> = Vec::with_capacity(wave.len());
                for &ui in wave {
                    let unit = &rplan.units[ui];
                    let coord = coord_of(unit.pid.owner);
                    cluster.network_mut().begin_overlap();
                    let r = replay_unit(
                        cluster,
                        coord,
                        unit,
                        &involved_map[&unit.pid],
                        &mut report,
                        root,
                    );
                    // End the measurement even on error — the outer
                    // wrapper also clears it, belt and braces.
                    let d = cluster.network_mut().end_overlap();
                    r?;
                    durs.push(d);
                }
                let serial_us: u64 = durs.iter().sum();
                let makespan_us = lpt_makespan(&durs, workers);
                cluster.network_mut().advance_time(makespan_us);
                wave_timings.push(WaveTiming {
                    units: wave.len(),
                    serial_us,
                    makespan_us,
                });
            }
        }
    }
    timings.set_replay_waves(wave_timings);
    // Surface the plan shape on every recovered node's registry.
    for &c in crashed {
        let reg = cluster.node(c).registry();
        reg.gauge(keys::RECOVERY_REPLAY_WAVES)
            .set(rplan.waves.len() as i64);
        reg.gauge(keys::RECOVERY_CRITICAL_PATH_PSNS)
            .set(rplan.critical_path_psns as i64);
        let widths = reg.histogram(keys::RECOVERY_WAVE_WIDTH);
        for w in &rplan.waves {
            widths.record(w.len() as u64);
        }
    }

    // Remote-owned candidates: the crashed node replays its own log
    // onto the owner's authoritative copy and re-caches the page.
    for (c, pid) in &remote_candidates {
        let owner = pid.owner;
        cluster.network_mut().send_reliable_hdr(
            *c,
            owner,
            MsgKind::RecoveryPageFetch,
            CTRL_BYTES,
            hdr,
        )?;
        let (mut page, did_io) = cluster.node_mut(owner).authoritative_copy(*pid)?;
        if did_io {
            cluster.network_mut().disk_io(owner, page.size());
        }
        let pb = page.size() + 64;
        let xfer = cluster.trace_transfer(*pid, owner, *c, page.psn(), TransferWhy::Recovery);
        cluster.network_mut().send_reliable_hdr(
            owner,
            *c,
            MsgKind::PageShip,
            pb,
            MsgHeader::of(SpanCtx::child(xfer, root)),
        )?;
        let start = cluster
            .node(*c)
            .dpt()
            .get(*pid)
            .map(|e| e.redo_lsn)
            .unwrap_or(Lsn::ZERO);
        let from_psn = page.psn();
        let (_, applied, _) = cluster.node_mut(*c).replay_page(&mut page, start, None)?;
        cluster.tracer().point(
            cluster.network().clock().now(),
            *c,
            root,
            SpanKind::ReplayHop {
                pid: *pid,
                node: *c,
                from_psn,
                to_psn: page.psn(),
                applied,
            },
        );
        report.records_replayed += applied;
        report.pages_recovered += 1;
        let ev = cluster.node_mut(*c).cache_page(page, true)?;
        if let Some(ev) = ev {
            cluster.route_eviction(*c, ev)?;
        }
    }
    end_phase(
        cluster,
        crashed,
        &mut phase_t0,
        &mut timings,
        RecoveryPhase::Replay,
        opts,
        root,
    )?;

    // ---- Phase 8: undo loser transactions locally, with CLRs. ----
    for &c in crashed {
        for txn in losers[&c].clone() {
            if opts.sabotage_skip_undo {
                // Checker self-test hook: leave the loser in place.
                cluster.node_mut(c).txns.remove(&txn);
                continue;
            }
            cluster.node_mut(c).start_abort(txn)?;
            loop {
                match cluster.node_mut(c).rollback_step(txn, Lsn::ZERO)? {
                    RollbackStep::Done => break,
                    RollbackStep::Undone(_) => {}
                    RollbackStep::NeedPage(pid) => {
                        cluster.fetch_page(c, pid)?;
                    }
                }
            }
            cluster.node_mut(c).finish_abort(txn)?;
            report.losers_undone += 1;
        }
        // Make the restart durable and re-anchor the log.
        cluster.node_mut(c).log.force_all()?;
        cluster.node_mut(c).checkpoint()?;
        cluster.network_mut().disk_io(c, CTRL_BYTES);
    }
    end_phase(
        cluster,
        crashed,
        &mut phase_t0,
        &mut timings,
        RecoveryPhase::Undo,
        opts,
        root,
    )?;

    // ---- Phase 9: recovery complete. The completion broadcast is
    // loss-tolerant: a node that misses it simply discovers the
    // recovered owner on its next (reliably retried) request. ----
    for &c in crashed {
        for &r in &operational {
            let co = coord_of(c);
            if co != r {
                match cluster
                    .network_mut()
                    .send_hdr(co, r, MsgKind::RecoveryDone, CTRL_BYTES, hdr)
                {
                    Ok(()) | Err(Error::MsgLost { .. }) => {}
                    Err(e) => return Err(e),
                }
            }
        }
    }
    end_phase(
        cluster,
        crashed,
        &mut phase_t0,
        &mut timings,
        RecoveryPhase::Done,
        opts,
        root,
    )?;
    if !root.is_none() {
        let now = cluster.network().clock().now();
        cluster.tracer().emit(Span {
            id: root,
            parent: SpanId::NONE,
            node: coord_of(crashed[0]),
            start: t_start,
            dur: now.saturating_sub(t_start),
            kind: SpanKind::Recovery {
                nodes: crashed.len() as u32,
            },
        });
    }
    report.timings = timings;
    report.messages = cluster.network().stats().recovery_messages() - msgs0;
    Ok(report)
}

/// Gathers what node `r` contributes to the recovery of `c`.
fn collect_contribution(
    cluster: &mut Cluster,
    r: NodeId,
    c: NodeId,
    r_is_crashed: bool,
) -> Result<ContributedInfo> {
    let mut out = ContributedInfo::default();
    if !r_is_crashed {
        // Cache inventory for pages owned by c.
        for pid in cluster.node(r).buffer().cached_ids() {
            if pid.owner == c {
                let psn = cluster.node(r).buffer().peek(pid).expect("listed").psn();
                out.cached.push((pid, psn));
            }
        }
        // §2.3.3 at the operational node: shared locks of the crashed
        // node are released, exclusive locks retained.
        let (_dropped, retained) = cluster
            .node_mut(r)
            .global_locks
            .drop_shared_retain_exclusive(c);
        out.crashed_exclusive = retained;
        // Locks r holds on c's pages.
        out.locks_held = cluster
            .node(r)
            .cached_locks()
            .all()
            .into_iter()
            .filter(|(p, _)| p.owner == c)
            .collect();
    } else {
        // r is itself recovering (multi-crash, §2.4): the owner-side
        // fences protecting r's uncommitted updates died with c's lock
        // table, and r's cached locks died with r. Strict 2PL means
        // every page a loser of r updated was exclusively locked at
        // crash time, and r's durable log proves which — contribute
        // them so phase 3 rebuilds the fence; without it, c would
        // serve its replayed (not-yet-undone) image to readers while
        // the undone copy sits unrecalled in r's cache.
        out.locks_held = cluster
            .node_mut(r)
            .loser_page_locks(c)?
            .into_iter()
            .map(|p| (p, LockMode::Exclusive))
            .collect();
    }
    // DPT entries for c's pages (crashed contributors use their
    // log-reconstructed DPT supersets, §2.4).
    out.dpt = cluster.node(r).dpt().entries_for_owner(c);
    Ok(out)
}

/// Executes one [`ReplayUnit`]: reads the owner's disk version,
/// shuttles it along the unit's pre-planned hops, and caches the
/// recovered image dirty at the owner.
fn replay_unit(
    cluster: &mut Cluster,
    coordinator: NodeId,
    unit: &ReplayUnit,
    involved: &[NodeId],
    report: &mut RecoveryReport,
    root: SpanId,
) -> Result<()> {
    let pid = unit.pid;
    let owner = pid.owner;
    // Base image: the owner's disk version.
    let mut page = cluster.node_mut(owner).authoritative_copy(pid)?.0;
    cluster.network_mut().disk_io(owner, page.size());
    let replayed = shuttle_replay(
        cluster,
        coordinator,
        pid,
        &mut page,
        &unit.hops,
        report,
        root,
    )?;
    report.records_replayed += replayed;
    report.pages_recovered += 1;
    // The recovered image is cached dirty at the owner; involved
    // remote nodes become replacers so their surviving DPT entries
    // are acknowledged when the page is eventually flushed.
    for &n in involved {
        if n != owner {
            cluster
                .node_mut(owner)
                .replacers
                .entry(pid)
                .or_default()
                .insert(n);
        }
    }
    let ev = cluster.node_mut(owner).cache_page(page, true)?;
    if let Some(ev) = ev {
        cluster.route_eviction(owner, ev)?;
    }
    Ok(())
}

/// Runs the §2.3.4 coordination loop for one page along the planned
/// hop schedule. Returns the number of records applied.
fn shuttle_replay(
    cluster: &mut Cluster,
    coordinator: NodeId,
    pid: PageId,
    page: &mut cblog_storage::Page,
    hops: &[(Psn, NodeId, Lsn)],
    report: &mut RecoveryReport,
    root: SpanId,
) -> Result<u64> {
    // Per-node resume positions (the "remembered location").
    let mut resume: HashMap<NodeId, Lsn> = HashMap::new();
    let mut applied_total = 0u64;
    let page_bytes = page.size() + 64;
    let mut queue = std::collections::VecDeque::from(hops.to_vec());
    let hdr = MsgHeader::of(SpanCtx::root(root));
    while let Some((_psn, n, lsn)) = queue.pop_front() {
        let bound = queue.front().map(|(p, _, _)| *p);
        let start = *resume.get(&n).unwrap_or(&lsn);
        if n != coordinator {
            cluster.network_mut().send_reliable_hdr(
                coordinator,
                n,
                MsgKind::RecoveryPageSend,
                page_bytes,
                hdr,
            )?;
            report.page_hops += 1;
        }
        let from_psn = page.psn();
        let (res, applied, _hit) = cluster.node_mut(n).replay_page(page, start, bound)?;
        resume.insert(n, res);
        applied_total += applied;
        // One hop of the §2.3.4 shuttle: node `n` advanced the page
        // from `from_psn` to the page's new PSN by replaying `applied`
        // records of its own log. The watchdog checks the hops visit
        // the page in ascending global PSN order.
        cluster.tracer().point(
            cluster.network().clock().now(),
            n,
            root,
            SpanKind::ReplayHop {
                pid,
                node: n,
                from_psn,
                to_psn: page.psn(),
                applied,
            },
        );
        if n != coordinator {
            cluster.network_mut().send_reliable_hdr(
                n,
                coordinator,
                MsgKind::RecoveryPageReturn,
                page_bytes,
                hdr,
            )?;
            report.page_hops += 1;
        }
    }
    Ok(applied_total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ClusterConfig;
    use cblog_common::CostModel;

    fn cluster(owned: Vec<u32>) -> Cluster {
        Cluster::new(
            ClusterConfig::builder()
                .owned_pages(owned)
                .page_size(512)
                .buffer_frames(16)
                .default_owned_pages(0)
                .cost(CostModel::unit())
                .build(),
        )
        .unwrap()
    }

    fn pid(owner: u32, idx: u32) -> PageId {
        PageId::new(NodeId(owner), idx)
    }

    /// Committed-but-unflushed local updates survive the owner's crash.
    #[test]
    fn owner_crash_recovers_committed_local_updates() {
        let mut c = cluster(vec![4]);
        let p = pid(0, 0);
        let t = c.begin(NodeId(0)).unwrap();
        c.write_u64(t, p, 0, 42).unwrap();
        c.commit(t).unwrap();
        c.crash(NodeId(0));
        let rep = recover(&mut c, &RecoveryOptions::single(NodeId(0))).unwrap();
        assert_eq!(rep.pages_recovered, 1);
        assert!(rep.records_replayed >= 1);
        let t2 = c.begin(NodeId(0)).unwrap();
        assert_eq!(c.read_u64(t2, p, 0).unwrap(), 42);
        c.commit(t2).unwrap();
    }

    /// Uncommitted updates are rolled back at restart (losers undone).
    #[test]
    fn owner_crash_undoes_losers() {
        let mut c = cluster(vec![4]);
        let p = pid(0, 0);
        let t0 = c.begin(NodeId(0)).unwrap();
        c.write_u64(t0, p, 0, 10).unwrap();
        c.commit(t0).unwrap();
        // Loser: updates, then a checkpoint forces the log (making the
        // updates durable but uncommitted), then crash.
        let t1 = c.begin(NodeId(0)).unwrap();
        c.write_u64(t1, p, 0, 999).unwrap();
        c.checkpoint(NodeId(0)).unwrap();
        c.crash(NodeId(0));
        let rep = recover(&mut c, &RecoveryOptions::single(NodeId(0))).unwrap();
        assert_eq!(rep.losers_undone, 1);
        let t2 = c.begin(NodeId(0)).unwrap();
        assert_eq!(c.read_u64(t2, p, 0).unwrap(), 10, "loser update undone");
        c.commit(t2).unwrap();
    }

    /// A client's committed updates to a remote page survive the
    /// *owner's* crash: the client's DPT + log recover them without any
    /// log merging.
    #[test]
    fn owner_crash_recovers_remote_clients_updates() {
        let mut c = cluster(vec![4, 0]);
        let p = pid(0, 0);
        let t = c.begin(NodeId(1)).unwrap();
        c.write_u64(t, p, 0, 77).unwrap();
        c.commit(t).unwrap();
        // Evict the page from node 1's cache so it travels to the
        // owner's buffer (not disk!), then crash the owner.
        let ev = c.node_mut(NodeId(1)).buffer.remove(p).unwrap();
        assert!(ev.dirty);
        c.route_eviction(NodeId(1), ev).unwrap();
        c.crash(NodeId(0));
        let rep = recover(&mut c, &RecoveryOptions::single(NodeId(0))).unwrap();
        assert_eq!(rep.pages_recovered, 1);
        assert!(rep.records_replayed >= 1);
        // Value visible again through the recovered owner.
        let t2 = c.begin(NodeId(1)).unwrap();
        assert_eq!(c.read_u64(t2, p, 0).unwrap(), 77);
        c.commit(t2).unwrap();
    }

    /// If an operational node still caches the page, no replay happens:
    /// the copy is pulled to the owner (§2.3.1).
    #[test]
    fn cached_copy_at_operational_node_skips_replay() {
        let mut c = cluster(vec![4, 0]);
        let p = pid(0, 0);
        let t = c.begin(NodeId(1)).unwrap();
        c.write_u64(t, p, 0, 55).unwrap();
        c.commit(t).unwrap();
        // Page still cached (dirty) at node 1; owner crashes.
        c.crash(NodeId(0));
        let rep = recover(&mut c, &RecoveryOptions::single(NodeId(0))).unwrap();
        assert_eq!(rep.pages_recovered, 0);
        assert_eq!(rep.pages_skipped_cached, 1);
        assert_eq!(rep.pages_pulled_to_owner, 1);
        let t2 = c.begin(NodeId(1)).unwrap();
        assert_eq!(c.read_u64(t2, p, 0).unwrap(), 55);
        c.commit(t2).unwrap();
    }

    /// Client crash: its committed updates to a remote page are
    /// recovered by replaying the client's own log onto the owner's
    /// copy (category (b) of §2.3.1).
    #[test]
    fn client_crash_recovers_its_updates_to_remote_pages() {
        let mut c = cluster(vec![4, 0]);
        let p = pid(0, 0);
        let t = c.begin(NodeId(1)).unwrap();
        c.write_u64(t, p, 0, 31).unwrap();
        c.commit(t).unwrap();
        // Client crashes with the dirty page only in its cache.
        c.crash(NodeId(1));
        // Owner cannot hand the page out while the crashed client's X
        // fence stands.
        let t0 = c.begin(NodeId(0)).unwrap();
        assert!(matches!(
            c.read_u64(t0, p, 0),
            Err(Error::WouldBlock { .. })
        ));
        let rep = recover(&mut c, &RecoveryOptions::single(NodeId(1))).unwrap();
        assert_eq!(rep.pages_recovered, 1);
        // After recovery the fence is the client's restored X lock; a
        // new reader triggers a normal callback and sees the data.
        assert_eq!(c.read_u64(t0, p, 0).unwrap(), 31);
        c.commit(t0).unwrap();
    }

    /// Client crash with an uncommitted remote update: the update is
    /// undone during the client's recovery.
    #[test]
    fn client_crash_rolls_back_uncommitted_remote_update() {
        let mut c = cluster(vec![4, 0]);
        let p = pid(0, 0);
        let t0 = c.begin(NodeId(1)).unwrap();
        c.write_u64(t0, p, 0, 5).unwrap();
        c.commit(t0).unwrap();
        let t1 = c.begin(NodeId(1)).unwrap();
        c.write_u64(t1, p, 0, 666).unwrap();
        // Force the log so the uncommitted update is durable, then
        // crash.
        c.node_mut(NodeId(1)).log.force_all().unwrap();
        c.crash(NodeId(1));
        let rep = recover(&mut c, &RecoveryOptions::single(NodeId(1))).unwrap();
        assert_eq!(rep.losers_undone, 1);
        let t2 = c.begin(NodeId(0)).unwrap();
        assert_eq!(c.read_u64(t2, p, 0).unwrap(), 5);
        c.commit(t2).unwrap();
    }

    /// Interleaved updates by several nodes replay in PSN order across
    /// logs that are never merged (§2.3.4).
    #[test]
    fn psn_order_replay_across_three_logs() {
        let mut c = cluster(vec![4, 0, 0]);
        let p = pid(0, 0);
        // Interleave: N1 += writes 1, N2 writes 2, N0 writes 3, N1
        // writes 4 — each in its own committed transaction, forcing
        // X-lock ping-pong.
        for (node, val) in [(1u32, 1u64), (2, 2), (0, 3), (1, 4)] {
            let t = c.begin(NodeId(node)).unwrap();
            c.write_u64(t, p, (val - 1) as usize, val * 10).unwrap();
            c.commit(t).unwrap();
        }
        // The last writer (node 1) holds X with the only current copy.
        // Evict it to the owner so the owner's buffer has it, then
        // crash the owner: now recovery needs N0, N1, N2's logs.
        if let Some(ev) = c.node_mut(NodeId(1)).buffer.remove(p) {
            c.route_eviction(NodeId(1), ev).unwrap();
        }
        c.crash(NodeId(0));
        let rep = recover(&mut c, &RecoveryOptions::single(NodeId(0))).unwrap();
        assert_eq!(rep.pages_recovered, 1);
        assert!(
            rep.records_replayed >= 4,
            "all four updates replayed, got {}",
            rep.records_replayed
        );
        let t = c.begin(NodeId(2)).unwrap();
        assert_eq!(c.read_u64(t, p, 0).unwrap(), 10);
        assert_eq!(c.read_u64(t, p, 1).unwrap(), 20);
        assert_eq!(c.read_u64(t, p, 2).unwrap(), 30);
        assert_eq!(c.read_u64(t, p, 3).unwrap(), 40);
        c.commit(t).unwrap();
    }

    /// Two nodes crash at once (§2.4): owner and client, with committed
    /// work split across both logs.
    #[test]
    fn multi_crash_owner_and_client() {
        let mut c = cluster(vec![4, 0, 0]);
        let p = pid(0, 0);
        let q = pid(0, 1);
        // Client 1 commits an update to p; owner commits one to q.
        let t1 = c.begin(NodeId(1)).unwrap();
        c.write_u64(t1, p, 0, 11).unwrap();
        c.commit(t1).unwrap();
        let t0 = c.begin(NodeId(0)).unwrap();
        c.write_u64(t0, q, 0, 22).unwrap();
        c.commit(t0).unwrap();
        c.crash(NodeId(0));
        c.crash(NodeId(1));
        let rep = recover(&mut c, &RecoveryOptions::nodes(&[NodeId(0), NodeId(1)])).unwrap();
        assert_eq!(rep.recovered_nodes.len(), 2);
        assert!(rep.pages_recovered >= 2);
        let t = c.begin(NodeId(2)).unwrap();
        assert_eq!(c.read_u64(t, p, 0).unwrap(), 11);
        assert_eq!(c.read_u64(t, q, 0).unwrap(), 22);
        c.commit(t).unwrap();
    }

    /// Checkpoints bound the analysis scan: records before the last
    /// complete checkpoint are not re-scanned.
    #[test]
    fn checkpoint_bounds_analysis_scan() {
        let mut c = cluster(vec![4]);
        let p = pid(0, 0);
        for i in 0..20u64 {
            let t = c.begin(NodeId(0)).unwrap();
            c.write_u64(t, p, 0, i).unwrap();
            c.commit(t).unwrap();
        }
        c.checkpoint(NodeId(0)).unwrap();
        let after_ckpt = c.node(NodeId(0)).log().end_lsn();
        let t = c.begin(NodeId(0)).unwrap();
        c.write_u64(t, p, 1, 99).unwrap();
        c.commit(t).unwrap();
        let end = c.node(NodeId(0)).log().end_lsn();
        c.crash(NodeId(0));
        let rep = recover(&mut c, &RecoveryOptions::single(NodeId(0))).unwrap();
        // Analysis scanned from the checkpoint, not from LSN 8. PSN
        // list scans may go further back (RedoLSN), but the analysis
        // share is bounded by end - ckpt.
        assert!(rep.log_bytes_scanned > 0);
        let t2 = c.begin(NodeId(0)).unwrap();
        assert_eq!(c.read_u64(t2, p, 0).unwrap(), 19);
        assert_eq!(c.read_u64(t2, p, 1).unwrap(), 99);
        c.commit(t2).unwrap();
        let _ = (after_ckpt, end);
    }

    /// Normal processing on operational nodes continues while a crashed
    /// node is down, as long as they avoid its pages (paper §2.3).
    #[test]
    fn operational_nodes_keep_working_during_outage() {
        let mut c = cluster(vec![4, 4, 0]);
        c.crash(NodeId(0));
        for i in 0..10u64 {
            let t = c.begin(NodeId(2)).unwrap();
            c.write_u64(t, pid(1, 0), 0, i).unwrap();
            c.commit(t).unwrap();
        }
        let rep = recover(&mut c, &RecoveryOptions::single(NodeId(0))).unwrap();
        assert_eq!(rep.losers_undone, 0);
        let t = c.begin(NodeId(2)).unwrap();
        assert_eq!(c.read_u64(t, pid(1, 0), 0).unwrap(), 9);
        c.commit(t).unwrap();
    }

    /// Partial flush: the disk version already holds a prefix of the
    /// update history; recovery replays only the suffix (PSN filter,
    /// §2.3.2).
    #[test]
    fn replay_starts_from_the_disk_psn() {
        let mut c = cluster(vec![4, 0]);
        let p = pid(0, 0);
        // Two committed updates (PSN 1 -> 3), flushed to disk.
        for i in 0..2u64 {
            let t = c.begin(NodeId(1)).unwrap();
            c.write_u64(t, p, i as usize, i + 1).unwrap();
            c.commit(t).unwrap();
        }
        c.force_page(p).unwrap();
        assert_eq!(c.node_mut(NodeId(0)).disk_psn(p).unwrap(), Psn(3));
        // Two more committed updates (PSN 3 -> 5), never flushed.
        for i in 2..4u64 {
            let t = c.begin(NodeId(1)).unwrap();
            c.write_u64(t, p, i as usize, i + 1).unwrap();
            c.commit(t).unwrap();
        }
        if let Some(ev) = c.node_mut(NodeId(1)).buffer.remove(p) {
            c.route_eviction(NodeId(1), ev).unwrap();
        }
        c.crash(NodeId(0));
        let rep = recover(&mut c, &RecoveryOptions::single(NodeId(0))).unwrap();
        assert_eq!(
            rep.records_replayed, 2,
            "only the un-flushed suffix is replayed"
        );
        let t = c.begin(NodeId(1)).unwrap();
        for i in 0..4u64 {
            assert_eq!(c.read_u64(t, p, i as usize).unwrap(), i + 1);
        }
        c.commit(t).unwrap();
    }

    /// While a crashed node's X fence stands, other nodes requesting
    /// the page block with *no* holder transactions (they wait for
    /// recovery, not for a transaction).
    #[test]
    fn crashed_holder_fence_blocks_without_holders() {
        let mut c = cluster(vec![4, 0, 0]);
        let p = pid(0, 0);
        let t1 = c.begin(NodeId(1)).unwrap();
        c.write_u64(t1, p, 0, 1).unwrap();
        c.commit(t1).unwrap();
        c.crash(NodeId(1));
        let t2 = c.begin(NodeId(2)).unwrap();
        match c.read_u64(t2, p, 0) {
            Err(Error::WouldBlock { holders, .. }) => {
                assert!(holders.is_empty(), "fenced by a crashed node, not a txn")
            }
            r => panic!("expected fence, got {r:?}"),
        }
        recover(&mut c, &RecoveryOptions::single(NodeId(1))).unwrap();
        assert_eq!(c.read_u64(t2, p, 0).unwrap(), 1);
        c.commit(t2).unwrap();
    }

    /// Checkpoint + flush maintenance advances log truncation, and the
    /// truncated log still recovers correctly.
    #[test]
    fn recovery_works_after_log_truncation() {
        let mut c = cluster(vec![4, 0]);
        let p = pid(0, 0);
        for i in 0..10u64 {
            let t = c.begin(NodeId(1)).unwrap();
            c.write_u64(t, p, 0, i).unwrap();
            c.commit(t).unwrap();
        }
        // Flush + checkpoint: client log truncates.
        c.force_page(p).unwrap();
        c.checkpoint(NodeId(1)).unwrap();
        let base_after = c.node(NodeId(1)).log().base_lsn();
        assert!(base_after.0 > 8, "truncation advanced");
        // More work after the truncation, then owner crash.
        let t = c.begin(NodeId(1)).unwrap();
        c.write_u64(t, p, 1, 99).unwrap();
        c.commit(t).unwrap();
        if let Some(ev) = c.node_mut(NodeId(1)).buffer.remove(p) {
            c.route_eviction(NodeId(1), ev).unwrap();
        }
        c.crash(NodeId(0));
        recover(&mut c, &RecoveryOptions::single(NodeId(0))).unwrap();
        let t = c.begin(NodeId(1)).unwrap();
        assert_eq!(c.read_u64(t, p, 0).unwrap(), 9);
        assert_eq!(c.read_u64(t, p, 1).unwrap(), 99);
        c.commit(t).unwrap();
    }

    /// Logical (record-operation) logging replays correctly through
    /// the distributed protocol: slotted-page inserts/updates/deletes
    /// from two nodes' logs rebuild the page in PSN order.
    #[test]
    fn slotted_page_recovers_from_logical_records() {
        let mut c = cluster(vec![4, 0, 0]);
        let p = pid(0, 1);
        c.format_slotted(p).unwrap();
        // Node 1 inserts two records; node 2 updates one and deletes
        // the other; node 1 inserts a third. All committed.
        let t = c.begin(NodeId(1)).unwrap();
        let ra = c.insert_record(t, p, b"alpha").unwrap();
        let rb = c.insert_record(t, p, b"bravo").unwrap();
        c.commit(t).unwrap();
        let t = c.begin(NodeId(2)).unwrap();
        c.update_record(t, ra, b"ALPHA").unwrap();
        c.delete_record(t, rb).unwrap();
        c.commit(t).unwrap();
        let t = c.begin(NodeId(1)).unwrap();
        let rc = c.insert_record(t, p, b"charlie").unwrap();
        c.commit(t).unwrap();
        // Current image only at the owner's buffer; crash it.
        if let Some(ev) = c.node_mut(NodeId(1)).buffer.remove(p) {
            c.route_eviction(NodeId(1), ev).unwrap();
        }
        c.crash(NodeId(0));
        let rep = recover(&mut c, &RecoveryOptions::single(NodeId(0))).unwrap();
        assert_eq!(rep.pages_recovered, 1);
        assert!(rep.records_replayed >= 5);
        // The insert after the delete reused the dead slot, so replay
        // must apply delete-then-insert in exactly that order.
        assert_eq!(rc.slot, rb.slot, "insert reuses the freed slot");
        let t = c.begin(NodeId(2)).unwrap();
        assert_eq!(c.read_record(t, ra).unwrap(), b"ALPHA");
        assert_eq!(c.read_record(t, rc).unwrap(), b"charlie");
        c.commit(t).unwrap();
    }

    /// §2.5 force path: the owner pulls the dirty copy from the
    /// exclusive holder before writing, and everyone's DPT entries are
    /// acknowledged.
    #[test]
    fn force_page_pulls_from_exclusive_holder() {
        let mut c = cluster(vec![4, 0, 0]);
        let p = pid(0, 0);
        // Node 1 dirties and replaces the page to the owner; node 2
        // then takes X and dirties its own copy.
        let t = c.begin(NodeId(1)).unwrap();
        c.write_u64(t, p, 0, 1).unwrap();
        c.commit(t).unwrap();
        if let Some(ev) = c.node_mut(NodeId(1)).buffer.remove(p) {
            c.route_eviction(NodeId(1), ev).unwrap();
        }
        let t = c.begin(NodeId(2)).unwrap();
        c.write_u64(t, p, 1, 2).unwrap();
        c.commit(t).unwrap();
        assert!(c.node(NodeId(1)).dpt().contains(p));
        assert!(c.node(NodeId(2)).dpt().contains(p));
        // Evict the owner's (stale) copy so the only dirty image is at
        // node 2 — force must fetch it from the X holder.
        c.node_mut(NodeId(0)).buffer.remove(p);
        c.force_page(p).unwrap();
        assert_eq!(c.node_mut(NodeId(0)).disk_psn(p).unwrap(), Psn(3));
        assert!(
            !c.node(NodeId(2)).dpt().contains(p),
            "holder's entry acknowledged"
        );
        let s = c.network().stats();
        assert!(s.count(MsgKind::ForceRequest) >= 1);
        assert!(s.count(MsgKind::FlushAck) >= 1);
    }

    /// Hot-standby coordination (§2.3): same final state, but the
    /// coordination traffic lands on the standby node.
    #[test]
    fn standby_coordinated_recovery_matches_normal() {
        let build = || {
            let mut c = cluster(vec![4, 0, 0]);
            let p = pid(0, 0);
            for (node, val) in [(1u32, 1u64), (2, 2), (1, 3)] {
                let t = c.begin(NodeId(node)).unwrap();
                c.write_u64(t, p, val as usize, val * 10).unwrap();
                c.commit(t).unwrap();
            }
            if let Some(ev) = c.node_mut(NodeId(1)).buffer.remove(p) {
                c.route_eviction(NodeId(1), ev).unwrap();
            }
            c.crash(NodeId(0));
            c
        };
        // Normal recovery.
        let mut a = build();
        recover(&mut a, &RecoveryOptions::single(NodeId(0))).unwrap();
        // Standby-coordinated recovery (node 2 coordinates).
        let mut b = build();
        let sent_before = b.network().sent_by(NodeId(2));
        recover(
            &mut b,
            &RecoveryOptions::nodes(&[NodeId(0)]).with_standby(NodeId(2)),
        )
        .unwrap();
        let standby_sent = b.network().sent_by(NodeId(2)) - sent_before;
        assert!(standby_sent > 0, "standby drives the coordination");
        // Both reach the same committed state.
        for (sys, name) in [(&mut a, "normal"), (&mut b, "standby")] {
            let t = sys.begin(NodeId(1)).unwrap();
            assert_eq!(sys.read_u64(t, pid(0, 0), 1).unwrap(), 10, "{name}");
            assert_eq!(sys.read_u64(t, pid(0, 0), 2).unwrap(), 20, "{name}");
            assert_eq!(sys.read_u64(t, pid(0, 0), 3).unwrap(), 30, "{name}");
            sys.commit(t).unwrap();
        }
    }

    /// A crashed or self-referential standby is rejected.
    #[test]
    fn invalid_standby_rejected() {
        let mut c = cluster(vec![4, 0, 0]);
        c.crash(NodeId(0));
        assert!(recover(
            &mut c,
            &RecoveryOptions::nodes(&[NodeId(0)]).with_standby(NodeId(0))
        )
        .is_err());
        c.crash(NodeId(2));
        assert!(recover(
            &mut c,
            &RecoveryOptions::nodes(&[NodeId(0)]).with_standby(NodeId(2))
        )
        .is_err());
        // A valid standby still works afterwards.
        recover(
            &mut c,
            &RecoveryOptions::nodes(&[NodeId(0), NodeId(2)]).with_standby(NodeId(1)),
        )
        .unwrap();
    }

    /// Recovery is idempotent from the outside: a second crash right
    /// after recovery still recovers to the same state.
    #[test]
    fn crash_recover_crash_recover() {
        let mut c = cluster(vec![4, 0]);
        let p = pid(0, 0);
        let t = c.begin(NodeId(1)).unwrap();
        c.write_u64(t, p, 0, 123).unwrap();
        c.commit(t).unwrap();
        if let Some(ev) = c.node_mut(NodeId(1)).buffer.remove(p) {
            c.route_eviction(NodeId(1), ev).unwrap();
        }
        c.crash(NodeId(0));
        recover(&mut c, &RecoveryOptions::single(NodeId(0))).unwrap();
        // Crash again immediately (recovered pages were only cached).
        c.crash(NodeId(0));
        recover(&mut c, &RecoveryOptions::single(NodeId(0))).unwrap();
        let t2 = c.begin(NodeId(1)).unwrap();
        assert_eq!(c.read_u64(t2, p, 0).unwrap(), 123);
        c.commit(t2).unwrap();
    }

    // ------------------------------------------------------------------
    // Replay planning (DESIGN §13)
    // ------------------------------------------------------------------

    fn entry(pid: PageId, psn: u64, lsn: u64, node: u32, seq: u64) -> NodePsnEntry {
        NodePsnEntry {
            pid,
            psn: Psn(psn),
            lsn: Lsn(lsn),
            txn: TxnId {
                node: NodeId(node),
                seq,
            },
        }
    }

    /// Pages with no shared transactions are independent: one wave,
    /// full width, critical path = deepest single chain.
    #[test]
    fn plan_independent_pages_form_one_wave() {
        let p0 = pid(0, 0);
        let p1 = pid(0, 1);
        let p2 = pid(0, 2);
        let mut involved = BTreeMap::new();
        let mut lists = BTreeMap::new();
        for p in [p0, p1, p2] {
            involved.insert(p, vec![NodeId(1)]);
        }
        lists.insert(
            NodeId(1),
            vec![
                entry(p0, 1, 10, 1, 1),
                entry(p1, 1, 20, 1, 2),
                entry(p1, 2, 30, 1, 3),
                entry(p2, 1, 40, 1, 4),
            ],
        );
        let plan = plan_replay(&involved, &lists);
        assert_eq!(plan.units.len(), 3);
        assert_eq!(plan.waves.len(), 1, "no cross-page edges → one wave");
        assert_eq!(plan.waves[0].len(), 3);
        assert_eq!(plan.critical_path_psns, 2, "deepest chain is p1's");
    }

    /// A multi-page transaction orders its pages: the page it touched
    /// later must wait for the earlier one's wave.
    #[test]
    fn plan_multi_page_txn_orders_waves() {
        let p0 = pid(0, 0);
        let p1 = pid(0, 1);
        let mut involved = BTreeMap::new();
        involved.insert(p0, vec![NodeId(1)]);
        involved.insert(p1, vec![NodeId(1)]);
        // Txn 7 touches p0 at LSN 10 then p1 at LSN 20.
        let mut lists = BTreeMap::new();
        lists.insert(
            NodeId(1),
            vec![entry(p0, 1, 10, 1, 7), entry(p1, 1, 20, 1, 7)],
        );
        let plan = plan_replay(&involved, &lists);
        assert_eq!(plan.waves.len(), 2, "p1 depends on p0");
        let first = &plan.units[plan.waves[0][0]];
        let second = &plan.units[plan.waves[1][0]];
        assert_eq!(first.pid, p0);
        assert_eq!(second.pid, p1);
        assert_eq!(plan.critical_path_psns, 2, "both intervals on the path");
    }

    /// Opposing multi-page transactions in two logs create a cycle;
    /// the planner collapses it into a final wave instead of hanging
    /// (the PSN filter self-orders correctness, edges only schedule).
    #[test]
    fn plan_cycle_collapses_into_final_wave() {
        let p0 = pid(0, 0);
        let p1 = pid(0, 1);
        let p2 = pid(0, 2);
        let mut involved = BTreeMap::new();
        for p in [p0, p1, p2] {
            involved.insert(p, vec![NodeId(1), NodeId(2)]);
        }
        let mut lists = BTreeMap::new();
        // Node 1's txn 1: p0 then p1. Node 2's txn 1: p1 then p0 —
        // a 2-cycle. p2 stays independent.
        lists.insert(
            NodeId(1),
            vec![
                entry(p0, 1, 10, 1, 1),
                entry(p1, 2, 20, 1, 1),
                entry(p2, 1, 30, 1, 2),
            ],
        );
        lists.insert(
            NodeId(2),
            vec![entry(p1, 1, 10, 2, 1), entry(p0, 2, 20, 2, 1)],
        );
        let plan = plan_replay(&involved, &lists);
        let total: usize = plan.waves.iter().map(|w| w.len()).sum();
        assert_eq!(total, 3, "every unit is scheduled despite the cycle");
        let last = plan.waves.last().unwrap();
        assert_eq!(last.len(), 2, "the cyclic pair lands in the final wave");
        assert!(plan.critical_path_psns >= 2);
    }

    // ------------------------------------------------------------------
    // Parallel replay execution
    // ------------------------------------------------------------------

    /// Builds the multi-client crash scene used by the mode-equivalence
    /// tests: two clients interleave committed updates over `d` owner
    /// pages, images are evicted to the owner's buffer, owner crashes.
    fn crash_scene(d: u32) -> Cluster {
        let mut c = cluster(vec![d.max(4), 0, 0]);
        for i in 0..d {
            let p = pid(0, i);
            for round in 0..2u64 {
                for client in 1..=2u32 {
                    let t = c.begin(NodeId(client)).unwrap();
                    c.write_u64(
                        t,
                        p,
                        (round as usize + client as usize) % 8,
                        round * 10 + i as u64,
                    )
                    .unwrap();
                    c.commit(t).unwrap();
                }
            }
            if let Some(ev) = c.node_mut(NodeId(2)).buffer.remove(p) {
                c.route_eviction(NodeId(2), ev).unwrap();
            }
        }
        c.crash(NodeId(0));
        c
    }

    /// Serial and every parallel worker count recover byte-identical
    /// page images and identical protocol tallies.
    #[test]
    fn replay_modes_recover_byte_identical_images() {
        const D: u32 = 6;
        let mut reference: Option<(Vec<Vec<u8>>, u64, usize)> = None;
        for mode in [
            ReplayMode::Serial,
            ReplayMode::Parallel { workers: 2 },
            ReplayMode::Parallel { workers: 4 },
            ReplayMode::Parallel { workers: 8 },
        ] {
            let mut c = crash_scene(D);
            let rep = recover(&mut c, &RecoveryOptions::single(NodeId(0)).replay(mode)).unwrap();
            let images: Vec<Vec<u8>> = (0..D)
                .map(|i| c.node_mut(NodeId(0)).page_image(pid(0, i)).unwrap())
                .collect();
            match &reference {
                None => reference = Some((images, rep.records_replayed, rep.pages_recovered)),
                Some((ref_images, ref_records, ref_pages)) => {
                    assert_eq!(&images, ref_images, "images diverge under {mode:?}");
                    assert_eq!(rep.records_replayed, *ref_records);
                    assert_eq!(rep.pages_recovered, *ref_pages);
                }
            }
            // Oracle read-back through the normal transaction path.
            let t = c.begin(NodeId(1)).unwrap();
            for i in 0..D {
                assert_eq!(c.read_u64(t, pid(0, i), 2).unwrap(), 10 + i as u64);
            }
            c.commit(t).unwrap();
        }
    }

    /// Parallel replay overlaps the waves' unit service times: with
    /// many independent pages the Replay phase takes less sim-time
    /// than the serial protocol, and the per-wave split is reported.
    #[test]
    fn parallel_replay_shortens_replay_phase() {
        let mut serial_c = crash_scene(8);
        let serial = recover(&mut serial_c, &RecoveryOptions::single(NodeId(0))).unwrap();
        let mut par_c = crash_scene(8);
        let par = recover(
            &mut par_c,
            &RecoveryOptions::single(NodeId(0)).replay(ReplayMode::Parallel { workers: 4 }),
        )
        .unwrap();
        assert!(
            par.timings.replay_us() < serial.timings.replay_us(),
            "parallel {} !< serial {}",
            par.timings.replay_us(),
            serial.timings.replay_us()
        );
        assert_eq!(par.replay_waves, serial.replay_waves, "same plan");
        assert_eq!(par.critical_path_psns, serial.critical_path_psns);
        assert!(serial.timings.replay_waves().is_empty());
        let waves = par.timings.replay_waves();
        assert_eq!(waves.len(), par.replay_waves);
        for w in waves {
            assert!(w.makespan_us <= w.serial_us, "packing cannot exceed serial");
        }
        // The new metrics are published on the recovered node.
        let reg = par_c.node(NodeId(0)).registry();
        assert_eq!(
            reg.gauge(cblog_common::metrics::keys::RECOVERY_REPLAY_WAVES)
                .get(),
            par.replay_waves as i64
        );
        assert_eq!(
            reg.gauge(cblog_common::metrics::keys::RECOVERY_CRITICAL_PATH_PSNS)
                .get(),
            par.critical_path_psns as i64
        );
    }

    /// Satellite regression: span sampling must never thin the
    /// ReplayHop invariant points concurrent replay emits — the
    /// watchdog's per-page PSN-order coverage stays complete.
    #[test]
    fn sampled_tracing_keeps_all_replay_hops_under_parallel_replay() {
        let mut c = Cluster::new(
            ClusterConfig::builder()
                .owned_pages(vec![6, 0, 0])
                .page_size(512)
                .buffer_frames(16)
                .default_owned_pages(0)
                .cost(CostModel::unit())
                .tracing(true)
                .trace_sample_one_in(1_000)
                .build(),
        )
        .unwrap();
        for i in 0..6u32 {
            let p = pid(0, i);
            for client in 1..=2u32 {
                let t = c.begin(NodeId(client)).unwrap();
                c.write_u64(t, p, client as usize, i as u64 + 1).unwrap();
                c.commit(t).unwrap();
            }
            if let Some(ev) = c.node_mut(NodeId(2)).buffer.remove(p) {
                c.route_eviction(NodeId(2), ev).unwrap();
            }
        }
        c.crash(NodeId(0));
        let rep = recover(
            &mut c,
            &RecoveryOptions::single(NodeId(0)).replay(ReplayMode::Parallel { workers: 4 }),
        )
        .unwrap();
        assert!(rep.pages_recovered >= 6);
        let hops = c
            .tracer()
            .spans()
            .iter()
            .filter(|s| matches!(s.kind, SpanKind::ReplayHop { .. }))
            .count() as u64;
        assert!(
            hops >= rep.pages_recovered as u64,
            "every replayed page emits at least one ReplayHop point: {hops}"
        );
        c.trace_check().expect("no PSN-order violations");
    }

    /// Satellite bugfix regression: a recovery run that fails while
    /// overlap mode is active must not leave the network clock stalled
    /// — commits afterwards still advance simulated time.
    #[test]
    fn failed_parallel_recovery_does_not_leak_overlap_mode() {
        let mut c = crash_scene(4);
        let err = recover(
            &mut c,
            &RecoveryOptions::single(NodeId(0))
                .replay(ReplayMode::Parallel { workers: 4 })
                .crash_after(RecoveryPhase::Replay),
        );
        assert!(err.is_err(), "injected mid-recovery crash");
        assert!(
            !c.network().overlap_active(),
            "error path must clear overlap mode"
        );
        // The clock still moves: a fresh recovery then a commit.
        let before = c.network().clock().now();
        recover(&mut c, &RecoveryOptions::single(NodeId(0))).unwrap();
        let t = c.begin(NodeId(1)).unwrap();
        c.write_u64(t, pid(0, 0), 0, 9).unwrap();
        c.commit(t).unwrap();
        assert!(c.network().clock().now() > before, "clock advances again");
    }
}
