//! Per-node force scheduler: the group-commit batching policy.
//!
//! `Node::commit_begin` appends a transaction's Commit record and
//! registers it here as *force-pending* at its commit LSN. The
//! scheduler decides when the node's next `LogManager::force` happens;
//! one force then acknowledges every pending transaction whose commit
//! LSN it covers. Under [`GroupCommitPolicy::Immediate`] every submit
//! is due at once (one force per commit, the paper's baseline §2.2
//! behavior); under [`GroupCommitPolicy::Window`] the force is held
//! until the window elapses or the batch fills, amortizing the
//! dominant commit-path cost (`io_fixed_us`) across the group.
//! [`GroupCommitPolicy::Adaptive`] sizes that window itself: a decayed
//! (EWMA, α = ¼) estimate of the commit inter-arrival gap picks
//! `window = gap × (target_batch − 1)` per batch, clamped to the
//! configured bounds, collapsing to the minimum window when no
//! companion commit is expected in time.
//!
//! The scheduler never talks to the log itself — the cluster owns the
//! force (it also charges simulated I/O for it). This keeps the
//! batching policy and the WAL mechanism independently testable.

use std::collections::VecDeque;

use cblog_common::{Lsn, SimTime, TxnId};

use crate::config::GroupCommitPolicy;

/// One force-pending commit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PendingCommit {
    /// The committing transaction.
    pub txn: TxnId,
    /// LSN of its Commit record; durable once `flushed_lsn` passes it.
    pub lsn: Lsn,
}

/// Coalesces force-pending commits for one node.
#[derive(Debug)]
pub struct ForceScheduler {
    policy: GroupCommitPolicy,
    pending: VecDeque<PendingCommit>,
    /// Sim-time at which the open window expires (set when the first
    /// commit of a batch arrives; cleared when the batch drains).
    deadline: Option<SimTime>,
    /// Sim-time the open batch's first commit arrived (adaptive
    /// resizes measure the window from here, never extending it).
    batch_open: SimTime,
    /// Sim-time of the last submit, for gap measurement.
    last_submit: Option<SimTime>,
    /// Decayed commit inter-arrival gap, µs in ×8 fixed point
    /// (`None` until two submits have been observed).
    ema_gap_x8: Option<u64>,
}

impl ForceScheduler {
    /// New scheduler with the given policy.
    pub fn new(policy: GroupCommitPolicy) -> Self {
        ForceScheduler {
            policy,
            pending: VecDeque::new(),
            deadline: None,
            batch_open: 0,
            last_submit: None,
            ema_gap_x8: None,
        }
    }

    /// The configured policy.
    pub fn policy(&self) -> GroupCommitPolicy {
        self.policy
    }

    /// The window the scheduler would hold the next batch open for:
    /// 0 for [`GroupCommitPolicy::Immediate`], the static width for
    /// [`GroupCommitPolicy::Window`], and the rate-derived width for
    /// [`GroupCommitPolicy::Adaptive`]. Surfaced as `wal/window_us`.
    pub fn window_us(&self) -> SimTime {
        match self.policy {
            GroupCommitPolicy::Immediate => 0,
            GroupCommitPolicy::Window { window_us, .. } => window_us,
            GroupCommitPolicy::Adaptive {
                min_window_us,
                max_window_us,
                target_batch,
            } => match self.ema_gap_x8 {
                // No rate estimate yet: assume light load.
                None => min_window_us,
                Some(g8) => {
                    let gap = g8 / 8;
                    if gap > max_window_us {
                        // Even one companion is not expected within the
                        // latency budget — batching is futile, degrade
                        // to (near-)Immediate latency.
                        min_window_us
                    } else {
                        gap.saturating_mul(target_batch.saturating_sub(1) as u64)
                            .clamp(min_window_us, max_window_us)
                    }
                }
            },
        }
    }

    /// Registers a commit as force-pending. The first commit of a
    /// batch opens the window at `now`; under the adaptive policy each
    /// submit refreshes the rate estimate and may *shrink* (never
    /// extend) the open window.
    pub fn submit(&mut self, txn: TxnId, lsn: Lsn, now: SimTime) {
        if let GroupCommitPolicy::Adaptive { .. } = self.policy {
            if let Some(prev) = self.last_submit {
                let gap = now.saturating_sub(prev);
                // EWMA with α = ¼ in ×8 fixed point: integer-only and
                // deterministic, yet able to represent sub-µs gaps.
                self.ema_gap_x8 = Some(match self.ema_gap_x8 {
                    None => gap * 8,
                    Some(e) => (3 * e + 8 * gap) / 4,
                });
            }
            self.last_submit = Some(now);
        }
        if self.pending.is_empty() {
            self.batch_open = now;
            self.deadline = match self.policy {
                GroupCommitPolicy::Immediate => Some(now),
                GroupCommitPolicy::Window { window_us, .. } => Some(now + window_us),
                GroupCommitPolicy::Adaptive { .. } => Some(now + self.window_us()),
            };
        } else if let GroupCommitPolicy::Adaptive { .. } = self.policy {
            // The refreshed estimate resizes the open window, measured
            // from the first commit's arrival. A shorter window takes
            // effect at once; a longer one never delays the commits
            // already waiting.
            let resized = self.batch_open + self.window_us();
            if self.deadline.is_some_and(|d| resized < d) {
                self.deadline = Some(resized);
            }
        }
        self.pending.push_back(PendingCommit { txn, lsn });
    }

    /// True once the batch must be forced: window expired or batch
    /// full. Empty schedulers are never due.
    pub fn is_due(&self, now: SimTime) -> bool {
        if self.pending.is_empty() {
            return false;
        }
        match self.policy {
            GroupCommitPolicy::Immediate => true,
            GroupCommitPolicy::Window { max_batch, .. } => {
                (max_batch > 0 && self.pending.len() >= max_batch)
                    || self.deadline.is_some_and(|d| now >= d)
            }
            GroupCommitPolicy::Adaptive { target_batch, .. } => {
                (target_batch > 0 && self.pending.len() >= target_batch)
                    || self.deadline.is_some_and(|d| now >= d)
            }
        }
    }

    /// Deadline of the open window, if a batch is pending. `pump`
    /// advances the sim-clock here when the system is otherwise idle.
    pub fn deadline(&self) -> Option<SimTime> {
        if self.pending.is_empty() {
            None
        } else {
            self.deadline
        }
    }

    /// Number of force-pending commits.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// True if `txn` is parked here awaiting a force.
    pub fn is_pending(&self, txn: TxnId) -> bool {
        self.pending.iter().any(|p| p.txn == txn)
    }

    /// Removes and returns every pending commit whose Commit record is
    /// durable (`lsn < flushed`), in submission order. Called after
    /// *any* force of the node's log — including WAL-rule forces taken
    /// for page transfers — so batches interleaved with other forces
    /// are acknowledged exactly once (idempotent: a second call with
    /// the same `flushed` returns nothing).
    pub fn drain_acked(&mut self, flushed: Lsn) -> Vec<TxnId> {
        let mut acked = Vec::new();
        self.pending.retain(|p| {
            if p.lsn < flushed {
                acked.push(p.txn);
                false
            } else {
                true
            }
        });
        if self.pending.is_empty() {
            self.deadline = None;
        }
        acked
    }

    /// Drops all pending commits (node crash: the unforced Commit
    /// records are gone, so the transactions were never committed).
    pub fn clear(&mut self) {
        self.pending.clear();
        self.deadline = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cblog_common::NodeId;

    fn txn(i: u64) -> TxnId {
        TxnId::new(NodeId(1), i)
    }

    fn windowed(window_us: SimTime, max_batch: usize) -> ForceScheduler {
        ForceScheduler::new(GroupCommitPolicy::Window {
            window_us,
            max_batch,
        })
    }

    #[test]
    fn immediate_is_due_on_first_submit() {
        let mut s = ForceScheduler::new(GroupCommitPolicy::Immediate);
        assert!(!s.is_due(0));
        s.submit(txn(1), Lsn(8), 0);
        assert!(s.is_due(0));
    }

    #[test]
    fn window_holds_until_deadline_or_full_batch() {
        let mut s = windowed(100, 3);
        s.submit(txn(1), Lsn(8), 50);
        assert!(!s.is_due(149), "window still open");
        assert!(s.is_due(150), "deadline reached");
        assert_eq!(s.deadline(), Some(150));
        // Later submits do not extend the first commit's deadline.
        s.submit(txn(2), Lsn(40), 120);
        assert_eq!(s.deadline(), Some(150));
        // A full batch is due regardless of the clock.
        s.submit(txn(3), Lsn(80), 121);
        assert!(s.is_due(121));
    }

    #[test]
    fn drain_acks_only_durable_commits_in_order() {
        let mut s = windowed(100, 8);
        s.submit(txn(1), Lsn(8), 0);
        s.submit(txn(2), Lsn(40), 1);
        s.submit(txn(3), Lsn(80), 2);
        // A force that covered only the first two records (e.g. a
        // WAL-rule force that ran before txn 3 appended).
        assert_eq!(s.drain_acked(Lsn(80)), vec![txn(1), txn(2)]);
        assert_eq!(s.drain_acked(Lsn(80)), Vec::<TxnId>::new(), "idempotent");
        assert!(s.is_pending(txn(3)));
        assert_eq!(s.drain_acked(Lsn(200)), vec![txn(3)]);
        assert_eq!(s.pending_len(), 0);
        assert_eq!(s.deadline(), None, "deadline cleared with the batch");
    }

    fn adaptive(min: SimTime, max: SimTime, target: usize) -> ForceScheduler {
        ForceScheduler::new(GroupCommitPolicy::Adaptive {
            min_window_us: min,
            max_window_us: max,
            target_batch: target,
        })
    }

    #[test]
    fn adaptive_starts_at_the_minimum_window() {
        let mut s = adaptive(10, 1_000, 4);
        assert_eq!(s.window_us(), 10, "no rate estimate yet");
        s.submit(txn(1), Lsn(8), 100);
        assert_eq!(s.deadline(), Some(110));
        assert!(!s.is_due(109));
        assert!(s.is_due(110));
    }

    #[test]
    fn adaptive_window_tracks_the_arrival_rate() {
        let mut s = adaptive(10, 1_000, 4);
        // Steady stream 50 µs apart: the EWMA converges to gap = 50,
        // so the window converges to 50 × (4 − 1) = 150.
        let mut now = 0;
        for i in 0..32 {
            s.submit(txn(i), Lsn(8 * (i + 1)), now);
            s.drain_acked(Lsn(u64::MAX));
            now += 50;
        }
        assert_eq!(s.window_us(), 150);
        // The stream speeds up 10×: the window shrinks toward 15.
        for i in 32..64 {
            s.submit(txn(i), Lsn(8 * (i + 1)), now);
            s.drain_acked(Lsn(u64::MAX));
            now += 5;
        }
        assert_eq!(s.window_us(), 15);
    }

    #[test]
    fn adaptive_clamps_and_degenerates_under_light_load() {
        let mut s = adaptive(10, 100, 4);
        // Gap 1000 µs > max window: no companion can arrive in time,
        // so the controller collapses to the minimum window instead of
        // making every commit wait the full 100 µs for nothing.
        let mut now = 0;
        for i in 0..16 {
            s.submit(txn(i), Lsn(8 * (i + 1)), now);
            s.drain_acked(Lsn(u64::MAX));
            now += 1_000;
        }
        assert_eq!(s.window_us(), 10);
        // Gap 60 µs: desired window 180 exceeds the max → clamped.
        let mut s = adaptive(10, 100, 4);
        let mut now = 0;
        for i in 0..16 {
            s.submit(txn(i), Lsn(8 * (i + 1)), now);
            s.drain_acked(Lsn(u64::MAX));
            now += 60;
        }
        assert_eq!(s.window_us(), 100);
        // Gap 1 µs: desired window 3 is below the min → clamped up.
        let mut s = adaptive(10, 100, 4);
        for i in 0..16 {
            s.submit(txn(i), Lsn(8 * (i + 1)), i);
            s.drain_acked(Lsn(u64::MAX));
        }
        assert_eq!(s.window_us(), 10);
    }

    #[test]
    fn adaptive_resize_shrinks_but_never_extends_an_open_window() {
        let mut s = adaptive(10, 10_000, 8);
        // Train a slow rate: gap 500 → window 3500.
        let mut now = 0;
        for i in 0..16 {
            s.submit(txn(i), Lsn(8 * (i + 1)), now);
            s.drain_acked(Lsn(u64::MAX));
            now += 500;
        }
        assert_eq!(s.window_us(), 3_500);
        // Open a batch; then a burst arrives. Each fast submit pulls
        // the gap estimate (and the open deadline) down, measured from
        // the batch's first commit.
        s.submit(txn(100), Lsn(2_000), now);
        let d0 = s.deadline().unwrap();
        assert_eq!(d0, now + 3_500);
        let open = now;
        for i in 1..5 {
            s.submit(txn(100 + i), Lsn(2_000 + 8 * i), now + i);
        }
        let d1 = s.deadline().unwrap();
        assert!(d1 < d0, "burst must shrink the open window");
        assert!(d1 >= open + 10, "never below the minimum window");
        // A slow straggler afterwards must not push the deadline back.
        s.submit(txn(200), Lsn(3_000), now + 3_000);
        assert!(s.deadline().unwrap() <= d1.max(now + 3_000));
    }

    #[test]
    fn adaptive_batch_fills_at_target() {
        let mut s = adaptive(10, 1_000_000, 3);
        s.submit(txn(1), Lsn(8), 0);
        s.submit(txn(2), Lsn(16), 0);
        assert!(!s.is_due(0), "window open, batch below target");
        s.submit(txn(3), Lsn(24), 0);
        assert!(s.is_due(0), "target batch reached");
    }

    #[test]
    fn clear_drops_everything() {
        let mut s = windowed(100, 8);
        s.submit(txn(1), Lsn(8), 0);
        s.clear();
        assert_eq!(s.pending_len(), 0);
        assert!(!s.is_due(1_000_000));
        assert_eq!(s.drain_acked(Lsn(u64::MAX)), Vec::<TxnId>::new());
    }
}
