//! Per-node force scheduler: the group-commit batching policy.
//!
//! `Node::commit_begin` appends a transaction's Commit record and
//! registers it here as *force-pending* at its commit LSN. The
//! scheduler decides when the node's next `LogManager::force` happens;
//! one force then acknowledges every pending transaction whose commit
//! LSN it covers. Under [`GroupCommitPolicy::Immediate`] every submit
//! is due at once (one force per commit, the paper's baseline §2.2
//! behavior); under [`GroupCommitPolicy::Window`] the force is held
//! until the window elapses or the batch fills, amortizing the
//! dominant commit-path cost (`io_fixed_us`) across the group.
//!
//! The scheduler never talks to the log itself — the cluster owns the
//! force (it also charges simulated I/O for it). This keeps the
//! batching policy and the WAL mechanism independently testable.

use std::collections::VecDeque;

use cblog_common::{Lsn, SimTime, TxnId};

use crate::config::GroupCommitPolicy;

/// One force-pending commit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PendingCommit {
    /// The committing transaction.
    pub txn: TxnId,
    /// LSN of its Commit record; durable once `flushed_lsn` passes it.
    pub lsn: Lsn,
}

/// Coalesces force-pending commits for one node.
#[derive(Debug)]
pub struct ForceScheduler {
    policy: GroupCommitPolicy,
    pending: VecDeque<PendingCommit>,
    /// Sim-time at which the open window expires (set when the first
    /// commit of a batch arrives; cleared when the batch drains).
    deadline: Option<SimTime>,
}

impl ForceScheduler {
    /// New scheduler with the given policy.
    pub fn new(policy: GroupCommitPolicy) -> Self {
        ForceScheduler {
            policy,
            pending: VecDeque::new(),
            deadline: None,
        }
    }

    /// The configured policy.
    pub fn policy(&self) -> GroupCommitPolicy {
        self.policy
    }

    /// Registers a commit as force-pending. The first commit of a
    /// batch opens the window at `now`.
    pub fn submit(&mut self, txn: TxnId, lsn: Lsn, now: SimTime) {
        if self.pending.is_empty() {
            self.deadline = match self.policy {
                GroupCommitPolicy::Immediate => Some(now),
                GroupCommitPolicy::Window { window_us, .. } => Some(now + window_us),
            };
        }
        self.pending.push_back(PendingCommit { txn, lsn });
    }

    /// True once the batch must be forced: window expired or batch
    /// full. Empty schedulers are never due.
    pub fn is_due(&self, now: SimTime) -> bool {
        if self.pending.is_empty() {
            return false;
        }
        match self.policy {
            GroupCommitPolicy::Immediate => true,
            GroupCommitPolicy::Window { max_batch, .. } => {
                (max_batch > 0 && self.pending.len() >= max_batch)
                    || self.deadline.is_some_and(|d| now >= d)
            }
        }
    }

    /// Deadline of the open window, if a batch is pending. `pump`
    /// advances the sim-clock here when the system is otherwise idle.
    pub fn deadline(&self) -> Option<SimTime> {
        if self.pending.is_empty() {
            None
        } else {
            self.deadline
        }
    }

    /// Number of force-pending commits.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// True if `txn` is parked here awaiting a force.
    pub fn is_pending(&self, txn: TxnId) -> bool {
        self.pending.iter().any(|p| p.txn == txn)
    }

    /// Removes and returns every pending commit whose Commit record is
    /// durable (`lsn < flushed`), in submission order. Called after
    /// *any* force of the node's log — including WAL-rule forces taken
    /// for page transfers — so batches interleaved with other forces
    /// are acknowledged exactly once (idempotent: a second call with
    /// the same `flushed` returns nothing).
    pub fn drain_acked(&mut self, flushed: Lsn) -> Vec<TxnId> {
        let mut acked = Vec::new();
        self.pending.retain(|p| {
            if p.lsn < flushed {
                acked.push(p.txn);
                false
            } else {
                true
            }
        });
        if self.pending.is_empty() {
            self.deadline = None;
        }
        acked
    }

    /// Drops all pending commits (node crash: the unforced Commit
    /// records are gone, so the transactions were never committed).
    pub fn clear(&mut self) {
        self.pending.clear();
        self.deadline = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cblog_common::NodeId;

    fn txn(i: u64) -> TxnId {
        TxnId::new(NodeId(1), i)
    }

    fn windowed(window_us: SimTime, max_batch: usize) -> ForceScheduler {
        ForceScheduler::new(GroupCommitPolicy::Window {
            window_us,
            max_batch,
        })
    }

    #[test]
    fn immediate_is_due_on_first_submit() {
        let mut s = ForceScheduler::new(GroupCommitPolicy::Immediate);
        assert!(!s.is_due(0));
        s.submit(txn(1), Lsn(8), 0);
        assert!(s.is_due(0));
    }

    #[test]
    fn window_holds_until_deadline_or_full_batch() {
        let mut s = windowed(100, 3);
        s.submit(txn(1), Lsn(8), 50);
        assert!(!s.is_due(149), "window still open");
        assert!(s.is_due(150), "deadline reached");
        assert_eq!(s.deadline(), Some(150));
        // Later submits do not extend the first commit's deadline.
        s.submit(txn(2), Lsn(40), 120);
        assert_eq!(s.deadline(), Some(150));
        // A full batch is due regardless of the clock.
        s.submit(txn(3), Lsn(80), 121);
        assert!(s.is_due(121));
    }

    #[test]
    fn drain_acks_only_durable_commits_in_order() {
        let mut s = windowed(100, 8);
        s.submit(txn(1), Lsn(8), 0);
        s.submit(txn(2), Lsn(40), 1);
        s.submit(txn(3), Lsn(80), 2);
        // A force that covered only the first two records (e.g. a
        // WAL-rule force that ran before txn 3 appended).
        assert_eq!(s.drain_acked(Lsn(80)), vec![txn(1), txn(2)]);
        assert_eq!(s.drain_acked(Lsn(80)), Vec::<TxnId>::new(), "idempotent");
        assert!(s.is_pending(txn(3)));
        assert_eq!(s.drain_acked(Lsn(200)), vec![txn(3)]);
        assert_eq!(s.pending_len(), 0);
        assert_eq!(s.deadline(), None, "deadline cleared with the batch");
    }

    #[test]
    fn clear_drops_everything() {
        let mut s = windowed(100, 8);
        s.submit(txn(1), Lsn(8), 0);
        s.clear();
        assert_eq!(s.pending_len(), 0);
        assert!(!s.is_due(1_000_000));
        assert_eq!(s.drain_acked(Lsn(u64::MAX)), Vec::<TxnId>::new());
    }
}
