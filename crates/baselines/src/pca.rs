//! Primary-copy-authority (PCA) baseline (paper §3.2, Rahm 1991).
//!
//! Under the PCA locking protocol the lock space is partitioned among
//! the nodes; we use the page's owner as its PCA node. The recovery
//! scheme the paper contrasts has three cost signatures, all modeled
//! here:
//!
//! * **no-steal** buffering — "only pages containing committed data
//!   are written to disk": dirty uncommitted pages are pinned in the
//!   modifying node's cache (a transaction aborts if its working set
//!   exceeds the cache);
//! * **commit ships pages** — "commit processing involves the sending
//!   of each updated page to the node that holds the PCA for that
//!   page";
//! * **double logging** — "during normal transaction processing the
//!   modifying node writes log records in its own log and at
//!   transaction commit it sends all the log records written for
//!   remote pages to the PCA nodes responsible for those pages", which
//!   append them to their own logs.
//!
//! The paper's scheme avoids all three: no page shipping at commit, no
//! second copy of any log record, steal buffering. Experiment E10
//! prints the resulting per-commit costs side by side.

use cblog_common::metrics::keys;
use cblog_common::{CostModel, Error, Lsn, NodeId, PageId, Psn, Registry, Result, SimTime, TxnId};
use cblog_core::{ForceScheduler, GroupCommitPolicy};
use cblog_locks::{
    CachedLockTable, CallbackAction, GlobalLockTable, GlobalRequestOutcome, LocalLockTable,
    LocalRequestOutcome, LockMode,
};
use cblog_net::{MsgKind, Network};
use cblog_storage::{BufferPool, Database, MemStorage, PageKind};
use cblog_wal::{LogManager, LogPayload, LogRecord, MemLogStore, PageOp};
use std::collections::{HashMap, HashSet};

const CTRL: usize = 48;

/// Configuration for the PCA baseline.
#[derive(Clone, Debug)]
pub struct PcaConfig {
    /// Number of nodes; node 0 owns all pages (single-PCA topology
    /// keeps comparisons against the other baselines direct).
    pub nodes: usize,
    /// Pages owned by node 0.
    pub pages: u32,
    /// Page size in bytes.
    pub page_size: usize,
    /// Per-node cache capacity in pages.
    pub buffer_frames: usize,
    /// Cost model.
    pub cost: CostModel,
    /// Group-commit policy for each node's **local** commit force (the
    /// first copy of the double log). Remote page/record shipping and
    /// the PCA-side force still happen per transaction, at flush time
    /// — batching applies where it does in the other two systems: the
    /// committing node's own log force. Defaults to
    /// [`GroupCommitPolicy::Immediate`].
    pub group_commit: GroupCommitPolicy,
}

impl Default for PcaConfig {
    fn default() -> Self {
        PcaConfig {
            nodes: 2,
            pages: 16,
            page_size: 1024,
            buffer_frames: 64,
            cost: CostModel::default(),
            group_commit: GroupCommitPolicy::Immediate,
        }
    }
}

#[derive(Debug)]
struct PcaTxn {
    /// (page, psn-before, op) history, for undo and commit shipping.
    ops: Vec<(PageId, Psn, PageOp)>,
    /// Local log chain tail.
    last_lsn: Lsn,
    /// Commit record appended and force-pending; no further work is
    /// accepted, shipping happens when the covering force lands.
    submitted: bool,
    terminated: bool,
}

struct PcaNode {
    db: Option<Database>,
    log: LogManager,
    buffer: BufferPool,
    cached: CachedLockTable,
    local: LocalLockTable,
    global: GlobalLockTable,
    txns: HashMap<TxnId, PcaTxn>,
    /// Pages pinned by uncommitted local updates (no-steal).
    pinned: HashSet<PageId>,
    next_seq: u64,
}

/// The PCA baseline system.
pub struct PcaCluster {
    cfg: PcaConfig,
    net: Network,
    nodes: Vec<PcaNode>,
    /// One force scheduler per node, batching local commit forces.
    schedulers: Vec<ForceScheduler>,
    /// Cluster-level metrics: per-node WAL counters (prefixed `n<id>/`),
    /// commit and abort counts, the uniform `locks/wait_us` histogram.
    registry: Registry,
}

impl std::fmt::Debug for PcaCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PcaCluster({} nodes)", self.nodes.len())
    }
}

impl PcaCluster {
    /// Builds the system.
    pub fn new(cfg: PcaConfig) -> Result<Self> {
        let mut nodes = Vec::with_capacity(cfg.nodes);
        for i in 0..cfg.nodes {
            let id = NodeId(i as u32);
            let db = if i == 0 {
                let mut db =
                    Database::create(Box::new(MemStorage::new(cfg.page_size)), id, cfg.pages)?;
                for _ in 0..cfg.pages {
                    db.allocate_page(PageKind::Raw)?;
                }
                Some(db)
            } else {
                None
            };
            nodes.push(PcaNode {
                db,
                log: LogManager::new(id, Box::new(MemLogStore::new()))?,
                buffer: BufferPool::new(cfg.buffer_frames),
                cached: CachedLockTable::new(),
                local: LocalLockTable::new(),
                global: GlobalLockTable::new(),
                txns: HashMap::new(),
                pinned: HashSet::new(),
                next_seq: 1,
            });
        }
        let net = Network::new(cfg.nodes, cfg.cost.clone());
        let registry = Registry::new();
        for (i, n) in nodes.iter().enumerate() {
            registry.register_counter(&format!("n{i}/wal/records"), n.log.records_counter());
            registry.register_counter(&format!("n{i}/wal/forces"), n.log.forces_counter());
            registry.register_counter(&format!("n{i}/wal/bytes"), n.log.bytes_appended_counter());
        }
        let schedulers = (0..cfg.nodes)
            .map(|_| ForceScheduler::new(cfg.group_commit))
            .collect();
        Ok(PcaCluster {
            cfg,
            net,
            nodes,
            schedulers,
            registry,
        })
    }

    /// The accounted network.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Baselines carry no causal tracer; the watchdog check is
    /// vacuously true (driver symmetry with [`cblog_core::Cluster`]).
    pub fn trace_check(&self) -> Result<()> {
        Ok(())
    }

    /// The system-wide metrics registry (mirrors the CBL cluster's
    /// `subsystem/metric` naming, per-node entries under `n<id>/`).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Folds a driver-observed lock-queueing delay into the uniform
    /// `locks/wait_us` histogram (see `ServerCluster::note_queue_wait`).
    pub fn note_queue_wait(&mut self, _txn: TxnId, us: SimTime) {
        self.registry.histogram(keys::LOCKS_WAIT_US).record(us);
    }

    /// Local log of `node`.
    pub fn log_of(&self, node: NodeId) -> &LogManager {
        &self.nodes[node.0 as usize].log
    }

    fn page_bytes(&self) -> usize {
        self.cfg.page_size + 64
    }

    /// Starts a transaction.
    pub fn begin(&mut self, node: NodeId) -> Result<TxnId> {
        let n = &mut self.nodes[node.0 as usize];
        let id = TxnId::new(node, n.next_seq);
        n.next_seq += 1;
        let lsn = n.log.append(&LogRecord {
            txn: id,
            prev_lsn: Lsn::ZERO,
            payload: LogPayload::Begin,
        })?;
        n.txns.insert(
            id,
            PcaTxn {
                ops: Vec::new(),
                last_lsn: lsn,
                submitted: false,
                terminated: false,
            },
        );
        Ok(id)
    }

    /// Reads a slot under a shared lock.
    pub fn read_u64(&mut self, txn: TxnId, pid: PageId, slot: usize) -> Result<u64> {
        self.ensure_access(txn, pid, LockMode::Shared)?;
        let n = &mut self.nodes[txn.node.0 as usize];
        let page = n.buffer.get_mut(pid).ok_or(Error::NoSuchPage(pid))?;
        page.read_slot(slot)
    }

    /// Writes a slot under an exclusive lock; logs locally (first copy
    /// of the double log) and pins the page (no-steal).
    pub fn write_u64(&mut self, txn: TxnId, pid: PageId, slot: usize, value: u64) -> Result<()> {
        self.ensure_access(txn, pid, LockMode::Exclusive)?;
        let n = &mut self.nodes[txn.node.0 as usize];
        let page = n.buffer.get_mut(pid).ok_or(Error::NoSuchPage(pid))?;
        let before = page.read_slot(slot)?;
        let op = PageOp::WriteRange {
            off: (slot * 8) as u32,
            before: before.to_le_bytes().to_vec(),
            after: value.to_le_bytes().to_vec(),
        };
        let psn_before = page.psn();
        op.apply_redo(page)?;
        page.bump_psn();
        n.buffer.mark_dirty(pid);
        if n.pinned.insert(pid) {
            n.buffer.pin(pid)?;
        }
        let t = n.txns.get_mut(&txn).ok_or(Error::NoSuchTxn(txn))?;
        if t.submitted || t.terminated {
            return Err(Error::TxnAborted(txn));
        }
        let rec = LogRecord {
            txn,
            prev_lsn: t.last_lsn,
            payload: LogPayload::Update {
                pid,
                psn_before,
                op: op.clone(),
            },
        };
        t.last_lsn = n.log.append(&rec)?;
        t.ops.push((pid, psn_before, op));
        Ok(())
    }

    /// Commit: synchronous wrapper over the async pipeline — submit
    /// the commit record, then force the local log right away if the
    /// scheduler is still holding the batch open.
    pub fn commit(&mut self, txn: TxnId) -> Result<()> {
        self.commit_submit(txn)?;
        let ni = txn.node.0 as usize;
        if self.schedulers[ni].is_pending(txn) {
            self.flush_pca_node(txn.node)?;
        }
        debug_assert!(
            self.nodes[ni].txns[&txn].terminated,
            "flush must complete the submitted txn"
        );
        Ok(())
    }

    /// Phase one of commit: append the local commit record (first copy
    /// of the double log) and park the transaction in the node's force
    /// scheduler. Remote page/log shipping happens once the covering
    /// force lands, in [`PcaCluster::finish_pca_commit`].
    pub fn commit_submit(&mut self, txn: TxnId) -> Result<()> {
        let node = txn.node;
        let ni = node.0 as usize;
        let lsn = {
            let n = &mut self.nodes[ni];
            let prev = {
                let t = n.txns.get_mut(&txn).ok_or(Error::NoSuchTxn(txn))?;
                if t.submitted || t.terminated {
                    return Err(Error::TxnAborted(txn));
                }
                t.submitted = true;
                t.last_lsn
            };
            n.log.append(&LogRecord {
                txn,
                prev_lsn: prev,
                payload: LogPayload::Commit,
            })?
        };
        let now = self.net.clock().now();
        self.schedulers[ni].submit(txn, lsn, now);
        self.registry
            .gauge(keys::WAL_WINDOW_US)
            .set(self.schedulers[ni].window_us() as i64);
        if self.schedulers[ni].is_due(now) {
            self.flush_pca_node(node)?;
        }
        Ok(())
    }

    /// Phase two of commit: has the transaction's covering force landed
    /// and its shipping completed? Reaps any freshly acked batch and
    /// flushes a due scheduler on the way.
    pub fn poll_committed(&mut self, txn: TxnId) -> Result<bool> {
        let node = txn.node;
        let ni = node.0 as usize;
        self.reap_pca_acked(node)?;
        if self.schedulers[ni].pending_len() > 0
            && self.schedulers[ni].is_due(self.net.clock().now())
        {
            self.flush_pca_node(node)?;
        }
        let t = self.nodes[ni].txns.get(&txn).ok_or(Error::NoSuchTxn(txn))?;
        if t.terminated {
            Ok(true)
        } else if t.submitted {
            Ok(false)
        } else {
            Err(Error::Protocol(format!(
                "poll_committed({txn}) before commit_submit"
            )))
        }
    }

    /// Drive parked commits without submitting new work: flush every
    /// due scheduler; if none is due, advance the clock to the earliest
    /// open deadline and flush then. Returns whether progress was made.
    pub fn pump_commits(&mut self) -> Result<bool> {
        let mut finished = self.flush_due_pca_nodes()?;
        if finished == 0 {
            if let Some(d) = self.schedulers.iter().filter_map(|s| s.deadline()).min() {
                let now = self.net.clock().now();
                if d > now {
                    self.net.advance_time(d - now);
                }
                finished += self.flush_due_pca_nodes()?;
            }
        }
        Ok(finished > 0)
    }

    /// Flush every scheduler that is due, repeating the sweep until a
    /// full pass finds none: shipping inside a flush advances the sim
    /// clock, which can push other nodes' deadlines into the past.
    fn flush_due_pca_nodes(&mut self) -> Result<usize> {
        let mut finished = 0;
        loop {
            let mut flushed = false;
            for i in 0..self.nodes.len() {
                if self.schedulers[i].is_due(self.net.clock().now()) {
                    finished += self.flush_pca_node(NodeId(i as u32))?;
                    flushed = true;
                }
            }
            if !flushed {
                break;
            }
        }
        Ok(finished)
    }

    /// Force the node's local log once for the whole open batch, then
    /// run per-transaction completion for every commit it covered.
    fn flush_pca_node(&mut self, node: NodeId) -> Result<usize> {
        let ni = node.0 as usize;
        let mut finished = self.reap_pca_acked(node)?;
        let batch = self.schedulers[ni].pending_len();
        if batch == 0 {
            return Ok(finished);
        }
        {
            let n = &mut self.nodes[ni];
            let pending = (n.log.end_lsn().0 - n.log.flushed_lsn().0) as usize;
            n.log.force_all()?;
            self.net.disk_io(node, pending);
        }
        self.registry
            .histogram(keys::WAL_GROUP_SIZE)
            .record(batch as u64);
        finished += self.reap_pca_acked(node)?;
        Ok(finished)
    }

    /// Complete every parked commit the node's forces now cover.
    fn reap_pca_acked(&mut self, node: NodeId) -> Result<usize> {
        let ni = node.0 as usize;
        let flushed = self.nodes[ni].log.flushed_lsn();
        let acked = self.schedulers[ni].drain_acked(flushed);
        let mut finished = 0;
        for txn in acked {
            self.finish_pca_commit(txn)?;
            finished += 1;
        }
        Ok(finished)
    }

    /// Completion for a durably-committed transaction: for every
    /// updated remote page, ship the page and its log records to the
    /// PCA node, which double-logs them and forces before
    /// acknowledging; then release pins and locks.
    fn finish_pca_commit(&mut self, txn: TxnId) -> Result<()> {
        let node = txn.node;
        let ni = node.0 as usize;
        let ops = {
            let n = &self.nodes[ni];
            let t = n.txns.get(&txn).ok_or(Error::NoSuchTxn(txn))?;
            t.ops.clone()
        };
        // Group updates by remote PCA node (here: owner 0 if remote).
        let mut remote_pages: Vec<PageId> = ops
            .iter()
            .map(|(p, _, _)| *p)
            .filter(|p| p.owner != node)
            .collect();
        remote_pages.sort();
        remote_pages.dedup();
        // Ship each remote page + its records to the PCA node.
        for pid in &remote_pages {
            let pca = pid.owner;
            let page = self.nodes[ni]
                .buffer
                .peek(*pid)
                .ok_or(Error::NoSuchPage(*pid))?
                .clone();
            self.net
                .send(node, pca, MsgKind::PageShip, self.page_bytes())?;
            let recs: Vec<LogRecord> = ops
                .iter()
                .filter(|(p, _, _)| p == pid)
                .map(|(p, psn, op)| LogRecord {
                    txn,
                    prev_lsn: Lsn::ZERO,
                    payload: LogPayload::Update {
                        pid: *p,
                        psn_before: *psn,
                        op: op.clone(),
                    },
                })
                .collect();
            let bytes: usize = recs.iter().map(|r| r.encode().len()).sum();
            self.net.send(node, pca, MsgKind::LogShip, bytes + CTRL)?;
            // Double logging at the PCA node, forced before the ack.
            {
                let pn = &mut self.nodes[pca.0 as usize];
                for r in &recs {
                    pn.log.append(r)?;
                }
                let pending = pn.log.end_lsn().0 - pn.log.flushed_lsn().0;
                pn.log.force_all()?;
                self.net.disk_io(pca, pending as usize);
                pn.buffer.insert(page.clone(), true)?;
            }
            self.net.send(pca, node, MsgKind::CommitAck, CTRL)?;
            // Committed data may now leave the modifier's cache.
            let n = &mut self.nodes[ni];
            if n.pinned.remove(pid) {
                n.buffer.unpin(*pid)?;
            }
            n.buffer.mark_clean(*pid);
        }
        // Unpin local pages too (they are committed now).
        {
            let n = &mut self.nodes[ni];
            let local_pins: Vec<PageId> = n
                .pinned
                .iter()
                .copied()
                .filter(|p| p.owner == node)
                .collect();
            for p in local_pins {
                n.pinned.remove(&p);
                n.buffer.unpin(p)?;
            }
            let t = n.txns.get_mut(&txn).expect("checked");
            t.terminated = true;
            n.local.release_all(txn);
        }
        let commits = self.registry.counter(keys::TXN_COMMITS);
        commits.bump();
        let forces: u64 = self.nodes.iter().map(|n| n.log.forces()).sum();
        let ratio = forces * 1000 / commits.get();
        self.registry
            .gauge(keys::WAL_FORCES_PER_COMMIT)
            .set(ratio as i64);
        Ok(())
    }

    /// Abort: pure local undo — no-steal guarantees every updated page
    /// is still cached.
    pub fn abort(&mut self, txn: TxnId) -> Result<()> {
        let node = txn.node;
        let n = &mut self.nodes[node.0 as usize];
        let t = n.txns.get_mut(&txn).ok_or(Error::NoSuchTxn(txn))?;
        if t.terminated {
            return Err(Error::TxnAborted(txn));
        }
        let ops = t.ops.clone();
        t.terminated = true;
        let mut prev = t.last_lsn;
        for (pid, _, op) in ops.iter().rev() {
            let page = n
                .buffer
                .get_mut(*pid)
                .expect("no-steal: updated pages stay cached");
            let inv = op.inverse();
            let psn_before = page.psn();
            inv.apply_redo(page)?;
            page.bump_psn();
            prev = n.log.append(&LogRecord {
                txn,
                prev_lsn: prev,
                payload: LogPayload::Clr {
                    pid: *pid,
                    psn_before,
                    op: inv,
                    undo_next: Lsn::ZERO,
                },
            })?;
        }
        n.log.append(&LogRecord {
            txn,
            prev_lsn: prev,
            payload: LogPayload::Abort,
        })?;
        let pins: Vec<PageId> = n.pinned.drain().collect();
        for p in pins {
            n.buffer.unpin(p)?;
        }
        n.local.release_all(txn);
        self.registry.counter(keys::TXN_ABORTS).bump();
        Ok(())
    }

    // Locking mirrors the callback protocol of the other systems (the
    // PCA node doubles as the lock manager for its partition).
    fn ensure_access(&mut self, txn: TxnId, pid: PageId, mode: LockMode) -> Result<()> {
        let node = txn.node;
        let ni = node.0 as usize;
        let conflicts = self.nodes[ni].local.conflicts(txn, pid, mode);
        if !conflicts.is_empty() {
            return Err(Error::WouldBlock {
                txn,
                holders: conflicts,
            });
        }
        if !self.nodes[ni].cached.covers(pid, mode) {
            let pca = pid.owner;
            if pca != node {
                self.net.send(node, pca, MsgKind::LockRequest, CTRL)?;
            }
            loop {
                let outcome = self.nodes[pca.0 as usize].global.request(pid, node, mode);
                match outcome {
                    GlobalRequestOutcome::Granted => break,
                    GlobalRequestOutcome::NeedsCallbacks(victims) => {
                        for (victim, action) in victims {
                            self.run_callback(txn, pid, victim, action)?;
                        }
                    }
                }
            }
            self.nodes[ni].cached.grant(pid, mode);
            if pca != node {
                self.net.send(pca, node, MsgKind::LockGrant, CTRL)?;
            }
        }
        match self.nodes[ni].local.request(txn, pid, mode) {
            LocalRequestOutcome::Granted => {}
            LocalRequestOutcome::Blocked(holders) => {
                return Err(Error::WouldBlock { txn, holders });
            }
        }
        if !self.nodes[ni].buffer.contains(pid) {
            self.fetch_page(node, pid)?;
        }
        Ok(())
    }

    fn run_callback(
        &mut self,
        waiter: TxnId,
        pid: PageId,
        victim: NodeId,
        action: CallbackAction,
    ) -> Result<()> {
        let pca = pid.owner;
        let vi = victim.0 as usize;
        if victim != pca {
            self.net.send(pca, victim, MsgKind::Callback, CTRL)?;
        }
        let blocking: Vec<TxnId> = self.nodes[vi]
            .local
            .holders(pid)
            .into_iter()
            .filter(|(_, m)| match action {
                CallbackAction::Release => true,
                CallbackAction::Demote => *m == LockMode::Exclusive,
            })
            .map(|(t, _)| t)
            .collect();
        if !blocking.is_empty() {
            return Err(Error::WouldBlock {
                txn: waiter,
                holders: blocking,
            });
        }
        match action {
            CallbackAction::Demote => {
                self.nodes[vi].cached.demote(pid);
            }
            CallbackAction::Release => {
                self.nodes[vi].cached.release(pid);
            }
        }
        // No-steal: a called-back page is committed data (uncommitted
        // pages are fenced by the local lock check above), so the PCA
        // node already has the committed image from commit shipping.
        if victim != pca {
            self.net.send(victim, pca, MsgKind::CallbackAck, CTRL)?;
            if action == CallbackAction::Release {
                self.nodes[vi].buffer.remove(pid);
            }
        }
        self.nodes[pca.0 as usize]
            .global
            .callback_applied(pid, victim, action);
        Ok(())
    }

    fn fetch_page(&mut self, node: NodeId, pid: PageId) -> Result<()> {
        let pca = pid.owner;
        let page = match self.nodes[pca.0 as usize].buffer.peek(pid) {
            Some(p) => p.clone(),
            None => {
                let db = self.nodes[pca.0 as usize]
                    .db
                    .as_mut()
                    .ok_or(Error::NoSuchPage(pid))?;
                let p = db.read_page(pid.index)?;
                self.net.disk_io(pca, self.cfg.page_size);
                p
            }
        };
        if pca != node {
            self.net
                .send(pca, node, MsgKind::PageShip, self.page_bytes())?;
        }
        if let Some(ev) = self.nodes[node.0 as usize].buffer.insert(page, false)? {
            // Evicted pages are clean or committed under no-steal;
            // committed dirty copies were already shipped at commit.
            debug_assert!(!ev.dirty || ev.page.id().owner == node);
            if ev.dirty && ev.page.id().owner == node {
                let db = self.nodes[node.0 as usize].db.as_mut().expect("owner");
                db.write_page(&ev.page)?;
                self.net.disk_io(node, self.cfg.page_size);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys(nodes: usize) -> PcaCluster {
        PcaCluster::new(PcaConfig {
            nodes,
            pages: 8,
            page_size: 512,
            buffer_frames: 16,
            cost: CostModel::unit(),
            group_commit: GroupCommitPolicy::Immediate,
        })
        .unwrap()
    }

    fn pid(i: u32) -> PageId {
        PageId::new(NodeId(0), i)
    }

    #[test]
    fn commit_ships_page_and_double_logs() {
        let mut s = sys(2);
        let t = s.begin(NodeId(1)).unwrap();
        s.write_u64(t, pid(0), 0, 7).unwrap();
        let stats0 = s.network().stats();
        let pca_recs0 = s.log_of(NodeId(0)).records_appended();
        s.commit(t).unwrap();
        let d = s.network().stats().since(&stats0);
        assert_eq!(d.count(MsgKind::PageShip), 1, "page travels at commit");
        assert_eq!(d.count(MsgKind::LogShip), 1, "records travel at commit");
        assert!(
            s.log_of(NodeId(0)).records_appended() > pca_recs0,
            "double logging at the PCA node"
        );
        // The modifying node logged them too (first copy).
        assert!(s.log_of(NodeId(1)).records_appended() >= 3);
    }

    #[test]
    fn values_flow_between_nodes() {
        let mut s = sys(3);
        let t = s.begin(NodeId(1)).unwrap();
        s.write_u64(t, pid(0), 0, 5).unwrap();
        s.commit(t).unwrap();
        let t2 = s.begin(NodeId(2)).unwrap();
        assert_eq!(s.read_u64(t2, pid(0), 0).unwrap(), 5);
        s.commit(t2).unwrap();
    }

    #[test]
    fn abort_is_local_under_no_steal() {
        let mut s = sys(2);
        let t0 = s.begin(NodeId(1)).unwrap();
        s.write_u64(t0, pid(0), 0, 1).unwrap();
        s.commit(t0).unwrap();
        let stats0 = s.network().stats();
        let t = s.begin(NodeId(1)).unwrap();
        s.write_u64(t, pid(0), 0, 99).unwrap();
        s.abort(t).unwrap();
        assert_eq!(
            s.network().stats().since(&stats0).total_messages(),
            0,
            "abort needs no messages: the page never left the cache"
        );
        let t2 = s.begin(NodeId(1)).unwrap();
        assert_eq!(s.read_u64(t2, pid(0), 0).unwrap(), 1);
        s.commit(t2).unwrap();
    }

    #[test]
    fn uncommitted_pages_are_pinned() {
        let mut s = sys(2);
        let t = s.begin(NodeId(1)).unwrap();
        s.write_u64(t, pid(0), 0, 1).unwrap();
        // The pinned page cannot be evicted; filling the cache with
        // reads evicts other pages instead.
        for i in 1..8 {
            s.read_u64(t, pid(i), 0).unwrap();
        }
        assert!(s.nodes[1].buffer.contains(pid(0)), "pinned page survives");
        s.commit(t).unwrap();
    }

    #[test]
    fn local_commit_force_batches_across_txns() {
        let mut s = PcaCluster::new(PcaConfig {
            nodes: 2,
            pages: 8,
            page_size: 512,
            buffer_frames: 16,
            cost: CostModel::unit(),
            group_commit: GroupCommitPolicy::Window {
                window_us: 1_000_000,
                max_batch: 64,
            },
        })
        .unwrap();
        let a = s.begin(NodeId(1)).unwrap();
        let b = s.begin(NodeId(1)).unwrap();
        s.write_u64(a, pid(0), 0, 1).unwrap();
        s.write_u64(b, pid(1), 0, 2).unwrap();
        let forces0 = s.log_of(NodeId(1)).forces();
        let stats0 = s.network().stats();
        s.commit_submit(a).unwrap();
        s.commit_submit(b).unwrap();
        assert!(!s.poll_committed(a).unwrap(), "window still open");
        assert!(!s.poll_committed(b).unwrap());
        assert_eq!(s.log_of(NodeId(1)).forces(), forces0, "no force yet");
        assert!(s.pump_commits().unwrap());
        assert_eq!(
            s.log_of(NodeId(1)).forces(),
            forces0 + 1,
            "one local force covers the whole batch"
        );
        assert!(s.poll_committed(a).unwrap());
        assert!(s.poll_committed(b).unwrap());
        // Shipping is still per transaction, after the covering force.
        let d = s.network().stats().since(&stats0);
        assert_eq!(d.count(MsgKind::PageShip), 2);
        assert_eq!(d.count(MsgKind::CommitAck), 2);
    }

    #[test]
    fn commit_cost_scales_with_updated_pages() {
        let mut s = sys(2);
        // Warm cache and locks.
        let t = s.begin(NodeId(1)).unwrap();
        for i in 0..4 {
            s.write_u64(t, pid(i), 0, 1).unwrap();
        }
        s.commit(t).unwrap();
        // Steady state: 4 remote pages updated per txn.
        let stats0 = s.network().stats();
        let t = s.begin(NodeId(1)).unwrap();
        for i in 0..4 {
            s.write_u64(t, pid(i), 0, 2).unwrap();
        }
        s.commit(t).unwrap();
        let d = s.network().stats().since(&stats0);
        assert_eq!(d.count(MsgKind::PageShip), 4);
        assert_eq!(d.count(MsgKind::LogShip), 4);
        assert_eq!(d.count(MsgKind::CommitAck), 4);
    }
}
