//! Force-on-transfer baseline (paper §3.2).
//!
//! Rdb/VMS "does not allow multiple outstanding updates belonging to
//! different nodes to be present on a database page. Thus, modified
//! pages are forced to disk before they are shipped from one node to
//! another." The Mohan–Narang simple/medium shared-disks schemes force
//! pages on exchange as well. This baseline is the client-based-logging
//! cluster itself with that behaviour enabled, so every other protocol
//! detail is held constant.

use cblog_common::Result;
use cblog_core::{Cluster, ClusterConfigBuilder};

/// Builds a cluster identical to the client-based-logging one except
/// that dirty pages are forced to the owner's disk on every inter-node
/// transfer.
pub fn force_on_transfer_cluster(builder: ClusterConfigBuilder) -> Result<Cluster> {
    Cluster::new(builder.force_on_transfer(true).build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cblog_common::{CostModel, NodeId, PageId};
    use cblog_core::ClusterConfig;

    fn cfg() -> ClusterConfigBuilder {
        ClusterConfig::builder()
            .owned_pages(vec![4, 0, 0])
            .page_size(512)
            .buffer_frames(8)
            .cost(CostModel::unit())
    }

    /// Ping-ponging a page between two writers forces disk writes under
    /// the baseline but not under client-based logging.
    #[test]
    fn transfer_forces_disk_writes_cbl_does_not() {
        let p = PageId::new(NodeId(0), 0);
        let run = |mut c: Cluster| -> u64 {
            for round in 0..4u64 {
                for node in [1u32, 2] {
                    let t = c.begin(NodeId(node)).unwrap();
                    c.write_u64(t, p, 0, round * 10 + node as u64).unwrap();
                    c.commit(t).unwrap();
                }
            }
            c.network().disk_ios_of(NodeId(0))
        };
        let cbl_owner_ios = run(Cluster::new(cfg().build()).unwrap());
        let fot_owner_ios = run(force_on_transfer_cluster(cfg()).unwrap());
        assert!(
            fot_owner_ios > cbl_owner_ios + 4,
            "force-on-transfer must write the page on every exchange: \
             cbl={cbl_owner_ios} fot={fot_owner_ios}"
        );
    }

    /// Both variants converge to the same committed state.
    #[test]
    fn semantics_identical_under_both_policies() {
        let p = PageId::new(NodeId(0), 0);
        let mut finals = Vec::new();
        for force in [false, true] {
            let mut c = if force {
                force_on_transfer_cluster(cfg()).unwrap()
            } else {
                Cluster::new(cfg().build()).unwrap()
            };
            for i in 0..6u64 {
                let node = 1 + (i % 2) as u32;
                let t = c.begin(NodeId(node)).unwrap();
                c.write_u64(t, p, 0, i).unwrap();
                c.commit(t).unwrap();
            }
            let t = c.begin(NodeId(1)).unwrap();
            finals.push(c.read_u64(t, p, 0).unwrap());
            c.commit(t).unwrap();
        }
        assert_eq!(finals[0], finals[1]);
        assert_eq!(finals[0], 5);
    }
}
