//! Baseline systems the paper compares against (§1 and §3), rebuilt on
//! the same substrate so experiments isolate the logging-paradigm
//! variable:
//!
//! * [`server::ServerCluster`] — ARIES/CSA-style client-server
//!   logging: the server keeps the **only** log; clients generate log
//!   records but ship them to the server at commit (and earlier when
//!   the WAL rule forces it on steal); client crashes are handled by
//!   the server; server checkpoints contact every connected client
//!   (paper §3.1).
//! * [`force::force_on_transfer_cluster`] — the paper's own
//!   architecture with the §3.2 Rdb/VMS behaviour switched on: dirty
//!   pages are forced to the owner's disk whenever they move between
//!   nodes.
//! * [`pca::PcaCluster`] — the primary-copy-authority scheme (Rahm
//!   1991): no-steal buffering, pages shipped to the PCA node at
//!   commit, and double logging of every record written for a remote
//!   page.
//! * [`logmerge`] — an analytic cost model of recovery schemes that
//!   merge private logs (the Mohan–Narang fast/super-fast schemes,
//!   §3.2), evaluated against the live state of a client-based-logging
//!   cluster.

pub mod force;
pub mod logmerge;
pub mod pca;
pub mod server;

pub use force::force_on_transfer_cluster;
pub use logmerge::{log_merge_cost, LogMergeCost};
pub use pca::{PcaCluster, PcaConfig};
pub use server::{ServerClientConfig, ServerCluster};
