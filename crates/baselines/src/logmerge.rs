//! Analytic cost model for log-merging recovery (paper §3.2).
//!
//! In the Mohan–Narang fast and super-fast shared-disks schemes,
//! "private logs have to be merged … even in the case where only a
//! single node crashes": the recovering node must obtain every node's
//! log tail (since its last relevant checkpoint), merge-sort the
//! records, and replay. The paper's contribution (3) is avoiding that
//! entirely. This module prices the merge against the *live* state of
//! a client-based-logging cluster, so experiment E5 can print
//! merge-recovery cost next to the measured NodePSNList cost for the
//! identical crash scenario.

use cblog_common::NodeId;
use cblog_core::Cluster;

/// Cost of a hypothetical merge-based recovery for the same crash.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LogMergeCost {
    /// Number of logs that must be read (all nodes with any records
    /// past their checkpoint).
    pub logs_merged: usize,
    /// Log bytes read and merged.
    pub bytes_read: u64,
    /// Messages to ship remote log tails to the recovering node
    /// (chunked at page size).
    pub messages: u64,
    /// Records processed by the merge (estimated from bytes with the
    /// cluster's observed mean record size).
    pub records_merged: u64,
}

/// Prices merge-based recovery of `crashed` against `cluster`'s
/// current log states. Every node's log tail from its last complete
/// checkpoint participates: that is what a merging scheme must read to
/// find updates other nodes performed on the crashed node's pages.
pub fn log_merge_cost(cluster: &Cluster, crashed: &[NodeId]) -> LogMergeCost {
    let mut out = LogMergeCost::default();
    let page_size = cluster.config().page_size() as u64;
    let mut total_records = 0u64;
    let mut total_bytes_all = 0u64;
    for i in 0..cluster.node_count() {
        let node = NodeId(i as u32);
        let lm = cluster.node(node).log();
        let ckpt = lm.last_checkpoint();
        let from = if ckpt.is_zero() { lm.base_lsn() } else { ckpt };
        let tail = lm.flushed_lsn().0.saturating_sub(from.0);
        total_records += lm.records_appended();
        total_bytes_all += lm.flushed_lsn().0;
        if tail == 0 {
            continue;
        }
        out.logs_merged += 1;
        out.bytes_read += tail;
        if !crashed.contains(&node) {
            // Remote tails must travel to the recovering node.
            out.messages += tail.div_ceil(page_size);
        }
    }
    let mean_rec = total_bytes_all
        .checked_div(total_records)
        .unwrap_or(1)
        .max(1);
    out.records_merged = out.bytes_read / mean_rec;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cblog_common::{CostModel, PageId};
    use cblog_core::ClusterConfig;

    fn cluster() -> Cluster {
        Cluster::new(
            ClusterConfig::builder()
                .owned_pages(vec![4, 0, 0])
                .page_size(512)
                .buffer_frames(8)
                .cost(CostModel::unit())
                .build(),
        )
        .unwrap()
    }

    #[test]
    fn merge_cost_grows_with_all_logs_not_just_the_crashed_one() {
        let mut c = cluster();
        let p = PageId::new(NodeId(0), 0);
        for i in 0..10u64 {
            let node = 1 + (i % 2) as u32;
            let t = c.begin(NodeId(node)).unwrap();
            c.write_u64(t, p, 0, i).unwrap();
            c.commit(t).unwrap();
        }
        let cost = log_merge_cost(&c, &[NodeId(0)]);
        // Both clients logged; both logs participate in the merge.
        assert!(cost.logs_merged >= 2, "got {cost:?}");
        assert!(cost.bytes_read > 0);
        assert!(cost.messages > 0, "remote tails must be shipped");
        assert!(cost.records_merged > 0);
    }

    #[test]
    fn checkpoints_shrink_the_merge() {
        let mut c = cluster();
        let p = PageId::new(NodeId(0), 0);
        for i in 0..10u64 {
            let t = c.begin(NodeId(1)).unwrap();
            c.write_u64(t, p, 0, i).unwrap();
            c.commit(t).unwrap();
        }
        let before = log_merge_cost(&c, &[NodeId(0)]);
        c.checkpoint(NodeId(1)).unwrap();
        let after = log_merge_cost(&c, &[NodeId(0)]);
        assert!(after.bytes_read < before.bytes_read);
    }

    #[test]
    fn idle_cluster_costs_nothing() {
        let c = cluster();
        let cost = log_merge_cost(&c, &[NodeId(0)]);
        assert_eq!(cost.bytes_read, 0);
        assert_eq!(cost.logs_merged, 0);
    }
}
