//! ARIES/CSA-style client-server logging baseline (paper §3.1).
//!
//! One server (node 0) owns the database and keeps the **only** log.
//! Clients cache pages and locks (same callback protocol as the
//! client-based-logging system, so the comparison isolates logging),
//! but they do not log locally:
//!
//! * update records accumulate in the transaction's in-memory buffer
//!   and are **shipped to the server** at commit time ("clients send
//!   all their log records to the server as part of the commit
//!   processing");
//! * the WAL rule still forces early shipping when a dirty page leaves
//!   a client cache (steal);
//! * commit = log-ship + commit request + server log force + ack — a
//!   network round trip and a *server* disk force per transaction,
//!   versus zero messages and a local force for client-based logging;
//! * transaction rollback is performed by the client (as in ARIES/CSA)
//!   but client **crashes are handled by the server**, from the
//!   server's log alone;
//! * a server checkpoint "requires communication with all connected
//!   clients" — it synchronously collects their dirty-page lists.

use cblog_common::metrics::keys;
use cblog_common::{CostModel, Error, Lsn, NodeId, PageId, Psn, Registry, Result, SimTime, TxnId};
use cblog_core::{ForceScheduler, GroupCommitPolicy};
use cblog_locks::{
    CachedLockTable, CallbackAction, GlobalLockTable, GlobalRequestOutcome, LocalLockTable,
    LocalRequestOutcome, LockMode,
};
use cblog_net::{MsgKind, Network};
use cblog_storage::{BufferPool, Database, MemStorage, Page, PageKind};
use cblog_wal::{
    CheckpointBody, DirtyPageTable, DptEntry, LogManager, LogPayload, LogRecord, MemLogStore,
    PageOp,
};
use std::collections::HashMap;

const CTRL: usize = 48;

/// Configuration of the client-server baseline.
#[derive(Clone, Debug)]
pub struct ServerClientConfig {
    /// Number of clients (node ids 1..=clients; the server is node 0).
    pub clients: usize,
    /// Pages in the server database.
    pub pages: u32,
    /// Page size in bytes.
    pub page_size: usize,
    /// Client cache capacity in pages.
    pub client_buffer_frames: usize,
    /// Server cache capacity in pages.
    pub server_buffer_frames: usize,
    /// Cost model.
    pub cost: CostModel,
    /// Group-commit policy for the **server** log: the same
    /// [`ForceScheduler`] the client-based cluster runs per node, here
    /// batching commit forces of the system's single log so E1-style
    /// comparisons measure both architectures with equal batching.
    /// Defaults to [`GroupCommitPolicy::Immediate`] — one server force
    /// per commit, the paper's §3.1 behavior.
    pub group_commit: GroupCommitPolicy,
}

impl Default for ServerClientConfig {
    fn default() -> Self {
        ServerClientConfig {
            clients: 2,
            pages: 16,
            page_size: 1024,
            client_buffer_frames: 64,
            server_buffer_frames: 256,
            cost: CostModel::default(),
            group_commit: GroupCommitPolicy::Immediate,
        }
    }
}

/// Transaction state at a client.
#[derive(Debug)]
struct CsaTxn {
    id: TxnId,
    committed: bool,
    aborted: bool,
    /// Commit record appended at the server and force-pending; the
    /// transaction accepts no further work but is not yet durable.
    submitted: bool,
    /// (page, psn-before, op) in execution order.
    ops: Vec<(PageId, Psn, PageOp)>,
    /// Prefix of `ops` already shipped to the server.
    shipped: usize,
    /// Server-side chain tail for this transaction.
    server_last_lsn: Lsn,
    begun_at_server: bool,
}

#[derive(Debug)]
struct Client {
    id: NodeId,
    buffer: BufferPool,
    cached: CachedLockTable,
    local: LocalLockTable,
    txns: HashMap<TxnId, CsaTxn>,
    next_seq: u64,
    crashed: bool,
    commits: u64,
    aborts: u64,
}

/// The client-server baseline system.
pub struct ServerCluster {
    cfg: ServerClientConfig,
    net: Network,
    db: Database,
    log: LogManager,
    sbuffer: BufferPool,
    sdpt: DirtyPageTable,
    glocks: GlobalLockTable,
    clients: Vec<Client>,
    /// Force scheduler for the server log — the system has one log, so
    /// one scheduler batches commits from every client.
    scheduler: ForceScheduler,
    /// Cluster-level metrics (the only log lives at the server, so one
    /// registry covers the whole system): server WAL counters, commit
    /// and abort counts, and the uniform `locks/wait_us` histogram.
    registry: Registry,
}

impl std::fmt::Debug for ServerCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ServerCluster({} clients)", self.clients.len())
    }
}

const SERVER: NodeId = NodeId(0);

impl ServerCluster {
    /// Builds the system: server with all pages pre-allocated, plus
    /// `cfg.clients` diskless clients.
    pub fn new(cfg: ServerClientConfig) -> Result<Self> {
        let mut db = Database::create(Box::new(MemStorage::new(cfg.page_size)), SERVER, cfg.pages)?;
        for _ in 0..cfg.pages {
            db.allocate_page(PageKind::Raw)?;
        }
        let log = LogManager::new(SERVER, Box::new(MemLogStore::new()))?;
        let registry = Registry::new();
        registry.register_counter(keys::WAL_RECORDS, log.records_counter());
        registry.register_counter(keys::WAL_FORCES, log.forces_counter());
        registry.register_counter(keys::WAL_BYTES, log.bytes_appended_counter());
        registry.register_counter(keys::WAL_STORE_SYNCS, log.store_syncs_counter());
        let net = Network::new(cfg.clients + 1, cfg.cost.clone());
        let clients = (1..=cfg.clients)
            .map(|i| Client {
                id: NodeId(i as u32),
                buffer: BufferPool::new(cfg.client_buffer_frames),
                cached: CachedLockTable::new(),
                local: LocalLockTable::new(),
                txns: HashMap::new(),
                next_seq: 1,
                crashed: false,
                commits: 0,
                aborts: 0,
            })
            .collect();
        Ok(ServerCluster {
            sbuffer: BufferPool::new(cfg.server_buffer_frames),
            sdpt: DirtyPageTable::new(),
            glocks: GlobalLockTable::new(),
            db,
            log,
            net,
            clients,
            scheduler: ForceScheduler::new(cfg.group_commit),
            cfg,
            registry,
        })
    }

    /// The accounted network.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Baselines carry no causal tracer; the watchdog check is
    /// vacuously true (driver symmetry with [`cblog_core::Cluster`]).
    pub fn trace_check(&self) -> Result<()> {
        Ok(())
    }

    /// The system-wide metrics registry (`subsystem/metric` names,
    /// mirroring the per-node registries of the CBL cluster).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Folds a driver-observed lock-queueing delay into the uniform
    /// `locks/wait_us` histogram (the CBL cluster tracks these spans
    /// itself; the baselines learn about them from the driver).
    pub fn note_queue_wait(&mut self, _txn: TxnId, us: SimTime) {
        self.registry.histogram(keys::LOCKS_WAIT_US).record(us);
    }

    /// The server's log (the system's only log).
    pub fn server_log(&self) -> &LogManager {
        &self.log
    }

    /// Committed transactions at client `c`.
    pub fn commits_of(&self, c: NodeId) -> u64 {
        self.clients[c.0 as usize - 1].commits
    }

    fn client(&mut self, id: NodeId) -> Result<&mut Client> {
        let i = id.0 as usize;
        if i == 0 || i > self.clients.len() {
            return Err(Error::Invalid(format!("{id} is not a client")));
        }
        let c = &mut self.clients[i - 1];
        if c.crashed {
            return Err(Error::NodeDown(id));
        }
        Ok(c)
    }

    fn page_bytes(&self) -> usize {
        self.cfg.page_size + 64
    }

    // ------------------------------------------------------------------
    // Transactions
    // ------------------------------------------------------------------

    /// Starts a transaction at client `node`. No message: the Begin
    /// record reaches the server with the first log shipment.
    pub fn begin(&mut self, node: NodeId) -> Result<TxnId> {
        let c = self.client(node)?;
        let id = TxnId::new(node, c.next_seq);
        c.next_seq += 1;
        c.txns.insert(
            id,
            CsaTxn {
                id,
                committed: false,
                aborted: false,
                submitted: false,
                ops: Vec::new(),
                shipped: 0,
                server_last_lsn: Lsn::ZERO,
                begun_at_server: false,
            },
        );
        Ok(id)
    }

    /// Reads a counter slot under a shared lock.
    pub fn read_u64(&mut self, txn: TxnId, pid: PageId, slot: usize) -> Result<u64> {
        self.ensure_access(txn, pid, LockMode::Shared)?;
        let c = self.client(txn.node)?;
        let page = c.buffer.get_mut(pid).ok_or(Error::NoSuchPage(pid))?;
        page.read_slot(slot)
    }

    /// Writes a counter slot under an exclusive lock. The log record is
    /// buffered at the client — nothing is logged anywhere durable yet.
    pub fn write_u64(&mut self, txn: TxnId, pid: PageId, slot: usize, value: u64) -> Result<()> {
        self.ensure_access(txn, pid, LockMode::Exclusive)?;
        let c = self.client(txn.node)?;
        let page = c.buffer.get_mut(pid).ok_or(Error::NoSuchPage(pid))?;
        let before = page.read_slot(slot)?;
        let op = PageOp::WriteRange {
            off: (slot * 8) as u32,
            before: before.to_le_bytes().to_vec(),
            after: value.to_le_bytes().to_vec(),
        };
        let psn_before = page.psn();
        op.apply_redo(page)?;
        page.bump_psn();
        c.buffer.mark_dirty(pid);
        let t = c.txns.get_mut(&txn).ok_or(Error::NoSuchTxn(txn))?;
        if t.committed || t.aborted || t.submitted {
            return Err(Error::TxnAborted(txn));
        }
        t.ops.push((pid, psn_before, op));
        Ok(())
    }

    /// Commits: ship pending log records + commit request to the
    /// server; the server appends, **forces its log**, and acks. This
    /// is the synchronous wrapper around the group-commit pipeline:
    /// under the default [`GroupCommitPolicy::Immediate`] policy it is
    /// exactly one server force per commit (the paper's §3.1 cost);
    /// under a windowed or adaptive policy the force is shared with
    /// whatever batch is pending.
    pub fn commit(&mut self, txn: TxnId) -> Result<()> {
        self.commit_submit(txn)?;
        if self.scheduler.is_pending(txn) {
            self.flush_server_log()?;
        }
        debug_assert!(
            self.clients[txn.node.0 as usize - 1]
                .txns
                .get(&txn)
                .is_some_and(|t| t.committed),
            "synchronous commit must leave the txn durable"
        );
        Ok(())
    }

    fn now(&self) -> SimTime {
        self.net.clock().now()
    }

    /// First half of the async commit pipeline: ships the
    /// transaction's records plus the commit request, appends the
    /// Commit record to the server log, releases the client's local
    /// locks and parks the transaction force-pending in the server's
    /// scheduler. Early lock release is safe for the same reason it is
    /// in the CBL cluster: every commit forces the same server log, so
    /// any dependent transaction's ack implies this Commit record was
    /// durable first. The CommitAck message is sent when the covering
    /// force lands.
    pub fn commit_submit(&mut self, txn: TxnId) -> Result<()> {
        let node = txn.node;
        self.ship_pending(node, txn)?;
        self.net.send(node, SERVER, MsgKind::CommitRequest, CTRL)?;
        let prev = {
            let c = self.client(node)?;
            let t = c.txns.get(&txn).ok_or(Error::NoSuchTxn(txn))?;
            t.server_last_lsn
        };
        let lsn = self.log.append(&LogRecord {
            txn,
            prev_lsn: prev,
            payload: LogPayload::Commit,
        })?;
        {
            let c = self.client(node)?;
            let t = c.txns.get_mut(&txn).expect("checked");
            t.submitted = true;
            t.server_last_lsn = lsn;
            c.local.release_all(txn);
        }
        let now = self.now();
        self.scheduler.submit(txn, lsn, now);
        self.registry
            .gauge(keys::WAL_WINDOW_US)
            .set(self.scheduler.window_us() as i64);
        if self.scheduler.is_due(now) {
            self.flush_server_log()?;
        }
        Ok(())
    }

    /// Polls the async commit pipeline: true once `txn`'s Commit
    /// record is durable at the server and the ack was sent. Flushes
    /// the server batch if it became due; otherwise
    /// [`ServerCluster::pump_commits`] advances an idle system to the
    /// open window's deadline.
    pub fn poll_committed(&mut self, txn: TxnId) -> Result<bool> {
        // A force taken for any other reason (WAL rule on an evicted
        // page, checkpoint, client recovery) may already have covered
        // the commit record.
        self.reap_server_acked()?;
        if self.scheduler.is_pending(txn) && self.scheduler.is_due(self.now()) {
            self.flush_server_log()?;
        }
        let c = self.client(txn.node)?;
        match c.txns.get(&txn) {
            Some(t) if t.committed => Ok(true),
            Some(t) if t.submitted => Ok(false),
            Some(_) => Err(Error::Protocol(format!(
                "poll_committed on {txn} before commit_submit"
            ))),
            None => Err(Error::NoSuchTxn(txn)),
        }
    }

    /// Drives the group-commit pipeline when no transaction can make
    /// progress: flushes the server batch if due; if not due but
    /// commits are pending, idle-advances the sim-clock to the open
    /// window deadline and flushes. Returns true if any commit was
    /// acknowledged.
    pub fn pump_commits(&mut self) -> Result<bool> {
        let mut acked = 0;
        if self.scheduler.is_due(self.now()) {
            acked += self.flush_server_log()?;
        }
        if acked == 0 {
            if let Some(d) = self.scheduler.deadline() {
                let now = self.now();
                if d > now {
                    self.net.advance_time(d - now);
                }
                if self.scheduler.is_due(self.now()) {
                    acked += self.flush_server_log()?;
                }
            }
        }
        Ok(acked > 0)
    }

    /// Acknowledges every force-pending commit whose Commit record the
    /// server log already covers (idempotent): CommitAck message, the
    /// client marks the transaction committed. A client that crashed
    /// while its ack was pending gets no message — its transaction is
    /// still durably committed and server-side recovery will replay
    /// it.
    fn reap_server_acked(&mut self) -> Result<usize> {
        let flushed = self.log.flushed_lsn();
        let acked = self.scheduler.drain_acked(flushed);
        let mut n = 0;
        for txn in acked {
            let v = txn.node.0 as usize - 1;
            if self.clients[v].crashed {
                continue;
            }
            let Some(t) = self.clients[v].txns.get_mut(&txn) else {
                continue;
            };
            self.net.send(SERVER, txn.node, MsgKind::CommitAck, CTRL)?;
            t.committed = true;
            self.clients[v].commits += 1;
            self.registry.counter(keys::TXN_COMMITS).bump();
            n += 1;
        }
        if n > 0 {
            let commits = self.registry.counter(keys::TXN_COMMITS).get();
            if let Some(ratio) = (self.log.forces() * 1000).checked_div(commits) {
                self.registry
                    .gauge(keys::WAL_FORCES_PER_COMMIT)
                    .set(ratio as i64);
            }
        }
        Ok(n)
    }

    /// Forces the server log once for the whole batch of force-pending
    /// commits and acknowledges all of them — group commit at the
    /// system's only log. Returns the number of commits acknowledged.
    fn flush_server_log(&mut self) -> Result<usize> {
        // Commits covered by an interleaved force are acknowledged
        // without paying for a new one.
        let mut acked = self.reap_server_acked()?;
        let batch = self.scheduler.pending_len() as u64;
        if batch == 0 {
            return Ok(acked);
        }
        let pending = self.log.end_lsn().0 - self.log.flushed_lsn().0;
        self.log.force_all()?;
        self.net.disk_io(SERVER, pending as usize);
        self.registry.histogram(keys::WAL_GROUP_SIZE).record(batch);
        acked += self.reap_server_acked()?;
        Ok(acked)
    }

    /// Aborts: the client undoes from its buffered records; compensation
    /// records are shipped only if part of the transaction had already
    /// been shipped (eviction-forced WAL writes).
    pub fn abort(&mut self, txn: TxnId) -> Result<()> {
        let node = txn.node;
        let ops: Vec<(PageId, Psn, PageOp)> = {
            let c = self.client(node)?;
            let t = c.txns.get(&txn).ok_or(Error::NoSuchTxn(txn))?;
            if t.committed || t.submitted {
                return Err(Error::NoSuchTxn(txn));
            }
            t.ops.clone()
        };
        let mut clrs: Vec<(PageId, Psn, PageOp)> = Vec::new();
        for (pid, _psn, op) in ops.iter().rev() {
            // Page must be present to undo; re-fetch if evicted.
            if !self.client(node)?.buffer.contains(*pid) {
                self.fetch_page(node, *pid)?;
            }
            let c = self.client(node)?;
            let page = c.buffer.get_mut(*pid).expect("fetched");
            let inv = op.inverse();
            let psn_before = page.psn();
            inv.apply_redo(page)?;
            page.bump_psn();
            c.buffer.mark_dirty(*pid);
            clrs.push((*pid, psn_before, inv));
        }
        let shipped_any = {
            let c = self.client(node)?;
            c.txns.get(&txn).expect("checked").shipped > 0
        };
        if shipped_any {
            // The server saw part of this transaction: it must also see
            // the compensation and the abort.
            let mut bytes = 0usize;
            let mut prev = {
                let c = self.client(node)?;
                c.txns.get(&txn).expect("checked").server_last_lsn
            };
            let mut recs = Vec::new();
            for (pid, psn_before, op) in &clrs {
                recs.push(LogRecord {
                    txn,
                    prev_lsn: prev,
                    payload: LogPayload::Clr {
                        pid: *pid,
                        psn_before: *psn_before,
                        op: op.clone(),
                        undo_next: Lsn::ZERO,
                    },
                });
                prev = Lsn::ZERO; // chains fixed below at append time
            }
            for r in &recs {
                bytes += r.encode().len();
            }
            self.net
                .send(node, SERVER, MsgKind::LogShip, bytes + CTRL)?;
            let mut prev = {
                let c = self.client(node)?;
                c.txns.get(&txn).expect("checked").server_last_lsn
            };
            for mut r in recs {
                r.prev_lsn = prev;
                prev = self.log.append(&r)?;
            }
            let lsn = self.log.append(&LogRecord {
                txn,
                prev_lsn: prev,
                payload: LogPayload::Abort,
            })?;
            let c = self.client(node)?;
            c.txns.get_mut(&txn).expect("checked").server_last_lsn = lsn;
        }
        let c = self.client(node)?;
        let t = c.txns.get_mut(&txn).expect("checked");
        t.aborted = true;
        c.local.release_all(txn);
        c.aborts += 1;
        self.registry.counter(keys::TXN_ABORTS).bump();
        Ok(())
    }

    /// Ships the unshipped log records of `txn` to the server (appends
    /// them to the server log; does not force).
    fn ship_pending(&mut self, node: NodeId, txn: TxnId) -> Result<()> {
        let (records, bytes) = {
            let c = self.client(node)?;
            let t = c.txns.get_mut(&txn).ok_or(Error::NoSuchTxn(txn))?;
            if t.aborted {
                return Err(Error::TxnAborted(txn));
            }
            let mut records: Vec<LogRecord> = Vec::new();
            if !t.begun_at_server {
                records.push(LogRecord {
                    txn,
                    prev_lsn: Lsn::ZERO,
                    payload: LogPayload::Begin,
                });
            }
            for (pid, psn_before, op) in &t.ops[t.shipped..] {
                records.push(LogRecord {
                    txn,
                    prev_lsn: Lsn::ZERO,
                    payload: LogPayload::Update {
                        pid: *pid,
                        psn_before: *psn_before,
                        op: op.clone(),
                    },
                });
            }
            if records.is_empty() {
                return Ok(());
            }
            let bytes: usize = records.iter().map(|r| r.encode().len()).sum();
            t.shipped = t.ops.len();
            t.begun_at_server = true;
            (records, bytes)
        };
        self.net
            .send(node, SERVER, MsgKind::LogShip, bytes + CTRL)?;
        let mut prev = {
            let c = self.client(node)?;
            c.txns.get(&txn).expect("checked").server_last_lsn
        };
        for mut r in records {
            r.prev_lsn = prev;
            prev = self.log.append(&r)?;
            if let LogPayload::Update {
                pid, psn_before, ..
            } = r.payload
            {
                if !self.sdpt.contains(pid) {
                    self.sdpt.insert(DptEntry::new(pid, psn_before, prev));
                }
                self.sdpt.on_update(pid, psn_before.next(), prev);
            }
        }
        let c = self.client(node)?;
        c.txns.get_mut(&txn).expect("checked").server_last_lsn = prev;
        Ok(())
    }

    /// Ships every unshipped record at `node` touching `pid` — the WAL
    /// rule before a dirty page leaves the client cache.
    fn wal_ship_for_page(&mut self, node: NodeId, pid: PageId) -> Result<()> {
        let txns: Vec<TxnId> = {
            let c = self.client(node)?;
            c.txns
                .values()
                .filter(|t| {
                    !t.committed
                        && !t.aborted
                        && t.ops[t.shipped..].iter().any(|(p, _, _)| *p == pid)
                })
                .map(|t| t.id)
                .collect()
        };
        let shipped_any = !txns.is_empty();
        for t in txns {
            self.ship_pending(node, t)?;
        }
        if shipped_any {
            // Records shipped ahead of a page write must be durable
            // before the page can hit the disk; force now.
            let pending = self.log.end_lsn().0 - self.log.flushed_lsn().0;
            if pending > 0 {
                self.log.force_all()?;
                self.net.disk_io(SERVER, pending as usize);
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Locking + page shipping (same callback protocol as cblog-core)
    // ------------------------------------------------------------------

    fn ensure_access(&mut self, txn: TxnId, pid: PageId, mode: LockMode) -> Result<()> {
        let node = txn.node;
        {
            let c = self.client(node)?;
            let conflicts = c.local.conflicts(txn, pid, mode);
            if !conflicts.is_empty() {
                return Err(Error::WouldBlock {
                    txn,
                    holders: conflicts,
                });
            }
        }
        if !self.client(node)?.cached.covers(pid, mode) {
            self.net.send(node, SERVER, MsgKind::LockRequest, CTRL)?;
            loop {
                match self.glocks.request(pid, node, mode) {
                    GlobalRequestOutcome::Granted => break,
                    GlobalRequestOutcome::NeedsCallbacks(victims) => {
                        for (victim, action) in victims {
                            self.run_callback(txn, pid, victim, action)?;
                        }
                    }
                }
            }
            self.client(node)?.cached.grant(pid, mode);
            self.net.send(SERVER, node, MsgKind::LockGrant, CTRL)?;
        }
        {
            let c = self.client(node)?;
            match c.local.request(txn, pid, mode) {
                LocalRequestOutcome::Granted => {}
                LocalRequestOutcome::Blocked(holders) => {
                    // Another local transaction slipped in while this
                    // request waited on the server; retry later.
                    return Err(Error::WouldBlock { txn, holders });
                }
            }
        }
        if !self.client(node)?.buffer.contains(pid) {
            self.fetch_page(node, pid)?;
        }
        Ok(())
    }

    fn run_callback(
        &mut self,
        waiter: TxnId,
        pid: PageId,
        victim: NodeId,
        action: CallbackAction,
    ) -> Result<()> {
        let v = victim.0 as usize - 1;
        if self.clients[v].crashed {
            return Err(Error::WouldBlock {
                txn: waiter,
                holders: Vec::new(),
            });
        }
        self.net.send(SERVER, victim, MsgKind::Callback, CTRL)?;
        let blocking: Vec<TxnId> = self.clients[v]
            .local
            .holders(pid)
            .into_iter()
            .filter(|(_, m)| match action {
                CallbackAction::Release => true,
                CallbackAction::Demote => *m == LockMode::Exclusive,
            })
            .map(|(t, _)| t)
            .collect();
        if !blocking.is_empty() {
            return Err(Error::WouldBlock {
                txn: waiter,
                holders: blocking,
            });
        }
        match action {
            CallbackAction::Demote => {
                self.clients[v].cached.demote(pid);
            }
            CallbackAction::Release => {
                self.clients[v].cached.release(pid);
            }
        }
        let had = self.clients[v].buffer.contains(pid);
        let dirty = self.clients[v].buffer.is_dirty(pid).unwrap_or(false);
        if had && dirty {
            self.wal_ship_for_page(victim, pid)?;
            let copy = self.clients[v].buffer.peek(pid).expect("had").clone();
            self.net
                .send(victim, SERVER, MsgKind::CallbackAck, self.page_bytes())?;
            self.server_absorb_page(copy)?;
            self.clients[v].buffer.mark_clean(pid);
        } else {
            self.net.send(victim, SERVER, MsgKind::CallbackAck, CTRL)?;
        }
        if action == CallbackAction::Release && had {
            self.clients[v].buffer.remove(pid);
        }
        self.glocks.callback_applied(pid, victim, action);
        Ok(())
    }

    fn server_absorb_page(&mut self, page: Page) -> Result<()> {
        if let Some(ev) = self.sbuffer.insert(page, true)? {
            if ev.dirty {
                self.db.write_page(&ev.page)?;
                self.db.sync()?;
                self.net.disk_io(SERVER, self.cfg.page_size);
                self.sdpt.remove(ev.page.id());
            }
        }
        Ok(())
    }

    fn fetch_page(&mut self, node: NodeId, pid: PageId) -> Result<()> {
        let page = match self.sbuffer.peek(pid) {
            Some(p) => p.clone(),
            None => {
                let p = self.db.read_page(pid.index)?;
                self.net.disk_io(SERVER, self.cfg.page_size);
                p
            }
        };
        self.net
            .send(SERVER, node, MsgKind::PageShip, self.page_bytes())?;
        let v = node.0 as usize - 1;
        if let Some(ev) = self.clients[v].buffer.insert(page, false)? {
            if ev.dirty {
                let pid2 = ev.page.id();
                self.wal_ship_for_page(node, pid2)?;
                self.net
                    .send(node, SERVER, MsgKind::ReplacePage, self.page_bytes())?;
                self.server_absorb_page(ev.page)?;
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Server checkpoint (contacts every client — paper §3.1)
    // ------------------------------------------------------------------

    /// Server-coordinated checkpoint: a synchronous round to every
    /// connected client collecting dirty-page information, then the
    /// checkpoint records and a log force.
    pub fn checkpoint(&mut self) -> Result<Lsn> {
        let mut dpt = self.sdpt.entries();
        for ci in 0..self.clients.len() {
            let id = self.clients[ci].id;
            if self.clients[ci].crashed {
                continue;
            }
            self.net.send(SERVER, id, MsgKind::CheckpointSync, CTRL)?;
            let dirty = self.clients[ci].buffer.dirty_ids();
            self.net
                .send(id, SERVER, MsgKind::CheckpointSync, CTRL + dirty.len() * 16)?;
            for pid in dirty {
                if !dpt.iter().any(|e| e.pid == pid) {
                    let psn = self.clients[ci].buffer.peek(pid).expect("dirty").psn();
                    dpt.push(DptEntry::new(pid, psn, self.log.end_lsn()));
                }
            }
        }
        let sys = TxnId::new(SERVER, 0);
        let begin = self.log.append(&LogRecord {
            txn: sys,
            prev_lsn: Lsn::ZERO,
            payload: LogPayload::CheckpointBegin,
        })?;
        let active: Vec<(TxnId, Lsn)> = self
            .clients
            .iter()
            .flat_map(|c| c.txns.values())
            .filter(|t| !t.committed && !t.aborted && t.begun_at_server)
            .map(|t| (t.id, t.server_last_lsn))
            .collect();
        let end = self.log.append(&LogRecord {
            txn: sys,
            prev_lsn: begin,
            payload: LogPayload::CheckpointEnd(CheckpointBody {
                dpt,
                active_txns: active,
            }),
        })?;
        let pending = self.log.end_lsn().0 - self.log.flushed_lsn().0;
        self.log.force(end)?;
        self.net.disk_io(SERVER, pending as usize);
        self.log.write_master(begin)?;
        Ok(begin)
    }

    // ------------------------------------------------------------------
    // Client crash recovery — handled by the server (paper §3.1)
    // ------------------------------------------------------------------

    /// Crashes client `node`.
    pub fn crash_client(&mut self, node: NodeId) {
        let v = node.0 as usize - 1;
        self.clients[v].buffer.clear();
        self.clients[v].cached.clear();
        self.clients[v].local.clear();
        self.clients[v].txns.clear();
        self.clients[v].crashed = true;
        self.net.mark_crashed(node);
    }

    /// Server-side recovery of a crashed client: committed updates are
    /// replayed from the server log; partially-shipped loser
    /// transactions are undone; the client's locks are released.
    /// Returns `(records_replayed, bytes_scanned)`.
    pub fn recover_client(&mut self, node: NodeId) -> Result<(u64, u64)> {
        let v = node.0 as usize - 1;
        // Locks: release shared, inspect exclusive (fences).
        let (_shared, exclusive) = self.glocks.drop_shared_retain_exclusive(node);
        // Scan the server log to find the client's transactions and the
        // records for fenced pages.
        let start = {
            let c = self.log.last_checkpoint();
            if c.is_zero() {
                self.log.base_lsn()
            } else {
                c
            }
        };
        let mut committed: HashMap<TxnId, bool> = HashMap::new();
        let mut page_recs: Vec<(PageId, Psn, PageOp)> = Vec::new();
        let mut loser_ops: HashMap<TxnId, Vec<(PageId, Psn, PageOp)>> = HashMap::new();
        let mut pos = start;
        let end = self.log.end_lsn();
        let bytes_scanned = end.0 - start.0;
        while pos < end {
            let (rec, next) = self.log.read_record(pos)?;
            if rec.txn.node == node {
                match &rec.payload {
                    LogPayload::Commit => {
                        committed.insert(rec.txn, true);
                    }
                    LogPayload::Abort => {
                        loser_ops.remove(&rec.txn);
                    }
                    LogPayload::Update {
                        pid,
                        psn_before,
                        op,
                    } => {
                        if exclusive.contains(pid) {
                            page_recs.push((*pid, *psn_before, op.clone()));
                        }
                        loser_ops
                            .entry(rec.txn)
                            .or_default()
                            .push((*pid, *psn_before, op.clone()));
                    }
                    LogPayload::Clr {
                        pid,
                        psn_before,
                        op,
                        ..
                    } if exclusive.contains(pid) => {
                        page_recs.push((*pid, *psn_before, op.clone()));
                    }
                    _ => {}
                }
            } else if let LogPayload::Update {
                pid,
                psn_before,
                op,
            }
            | LogPayload::Clr {
                pid,
                psn_before,
                op,
                ..
            } = &rec.payload
            {
                if exclusive.contains(pid) {
                    page_recs.push((*pid, *psn_before, op.clone()));
                }
            }
            pos = next;
        }
        for (t, _) in committed.iter() {
            loser_ops.remove(t);
        }
        // Rebuild fenced pages: PSN-filtered redo of everything logged.
        let mut replayed = 0u64;
        for pid in &exclusive {
            let mut page = match self.sbuffer.peek(*pid) {
                Some(p) => p.clone(),
                None => {
                    let p = self.db.read_page(pid.index)?;
                    self.net.disk_io(SERVER, self.cfg.page_size);
                    p
                }
            };
            for (p, psn_before, op) in &page_recs {
                if p == pid && *psn_before == page.psn() {
                    op.apply_redo(&mut page)?;
                    page.set_psn(psn_before.next());
                    replayed += 1;
                }
            }
            // Undo loser updates to this page (reverse order), logging
            // CLRs at the server.
            let mut clrs = Vec::new();
            for ops in loser_ops.values() {
                for (p, _, op) in ops.iter().rev() {
                    if p == pid {
                        let inv = op.inverse();
                        let psn_before = page.psn();
                        inv.apply_redo(&mut page)?;
                        page.set_psn(psn_before.next());
                        clrs.push((*pid, psn_before, inv));
                        replayed += 1;
                    }
                }
            }
            for (p, psn_before, op) in clrs {
                self.log.append(&LogRecord {
                    txn: TxnId::new(node, 0),
                    prev_lsn: Lsn::ZERO,
                    payload: LogPayload::Clr {
                        pid: p,
                        psn_before,
                        op,
                        undo_next: Lsn::ZERO,
                    },
                })?;
            }
            self.sdpt.ensure(*pid, page.psn(), self.log.end_lsn());
            self.server_absorb_page(page)?;
            // The fence can drop now.
            self.glocks.release(*pid, node);
        }
        let pending = self.log.end_lsn().0 - self.log.flushed_lsn().0;
        if pending > 0 {
            self.log.force_all()?;
            self.net.disk_io(SERVER, pending as usize);
        }
        self.clients[v].crashed = false;
        self.net.mark_up(node);
        Ok((replayed, bytes_scanned))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys(clients: usize) -> ServerCluster {
        ServerCluster::new(ServerClientConfig {
            clients,
            pages: 8,
            page_size: 512,
            client_buffer_frames: 8,
            server_buffer_frames: 32,
            cost: CostModel::unit(),
            group_commit: GroupCommitPolicy::Immediate,
        })
        .unwrap()
    }

    fn pid(i: u32) -> PageId {
        PageId::new(SERVER, i)
    }

    #[test]
    fn commit_costs_messages_and_server_force() {
        let mut s = sys(1);
        let c1 = NodeId(1);
        let t = s.begin(c1).unwrap();
        s.write_u64(t, pid(0), 0, 7).unwrap();
        let stats0 = s.network().stats();
        let forces0 = s.server_log().forces();
        s.commit(t).unwrap();
        let d = s.network().stats().since(&stats0);
        assert_eq!(d.count(MsgKind::LogShip), 1);
        assert_eq!(d.count(MsgKind::CommitRequest), 1);
        assert_eq!(d.count(MsgKind::CommitAck), 1);
        assert_eq!(s.server_log().forces(), forces0 + 1);
    }

    #[test]
    fn values_round_trip_between_clients() {
        let mut s = sys(2);
        let t = s.begin(NodeId(1)).unwrap();
        s.write_u64(t, pid(0), 0, 5).unwrap();
        s.commit(t).unwrap();
        let t2 = s.begin(NodeId(2)).unwrap();
        assert_eq!(s.read_u64(t2, pid(0), 0).unwrap(), 5);
        s.commit(t2).unwrap();
    }

    #[test]
    fn abort_without_shipping_is_local() {
        let mut s = sys(1);
        let t0 = s.begin(NodeId(1)).unwrap();
        s.write_u64(t0, pid(0), 0, 1).unwrap();
        s.commit(t0).unwrap();
        let recs0 = s.server_log().records_appended();
        let t = s.begin(NodeId(1)).unwrap();
        s.write_u64(t, pid(0), 0, 99).unwrap();
        s.abort(t).unwrap();
        assert_eq!(
            s.server_log().records_appended(),
            recs0,
            "nothing shipped, nothing logged"
        );
        let t2 = s.begin(NodeId(1)).unwrap();
        assert_eq!(s.read_u64(t2, pid(0), 0).unwrap(), 1);
        s.commit(t2).unwrap();
    }

    #[test]
    fn server_checkpoint_contacts_all_clients() {
        let mut s = sys(3);
        let stats0 = s.network().stats();
        s.checkpoint().unwrap();
        let d = s.network().stats().since(&stats0);
        assert_eq!(d.count(MsgKind::CheckpointSync), 6, "round trip per client");
    }

    #[test]
    fn client_crash_recovers_committed_updates_server_side() {
        let mut s = sys(2);
        let t = s.begin(NodeId(1)).unwrap();
        s.write_u64(t, pid(0), 0, 42).unwrap();
        s.commit(t).unwrap();
        // Page image only in client 1's cache; client crashes.
        s.crash_client(NodeId(1));
        let (replayed, scanned) = s.recover_client(NodeId(1)).unwrap();
        assert!(replayed >= 1);
        assert!(scanned > 0);
        let t2 = s.begin(NodeId(2)).unwrap();
        assert_eq!(s.read_u64(t2, pid(0), 0).unwrap(), 42);
        s.commit(t2).unwrap();
    }

    #[test]
    fn client_crash_discards_unshipped_uncommitted_updates() {
        let mut s = sys(2);
        let t0 = s.begin(NodeId(1)).unwrap();
        s.write_u64(t0, pid(0), 0, 10).unwrap();
        s.commit(t0).unwrap();
        let t1 = s.begin(NodeId(1)).unwrap();
        s.write_u64(t1, pid(0), 0, 999).unwrap();
        s.crash_client(NodeId(1));
        s.recover_client(NodeId(1)).unwrap();
        let t2 = s.begin(NodeId(2)).unwrap();
        assert_eq!(s.read_u64(t2, pid(0), 0).unwrap(), 10);
        s.commit(t2).unwrap();
    }

    #[test]
    fn shipped_loser_is_undone_server_side() {
        // Tiny client cache: the dirty page of an uncommitted txn is
        // evicted, which WAL-ships its records to the server. The
        // client then crashes; the server must undo those records.
        let mut s = ServerCluster::new(ServerClientConfig {
            clients: 2,
            pages: 8,
            page_size: 512,
            client_buffer_frames: 2,
            server_buffer_frames: 32,
            cost: CostModel::unit(),
            group_commit: GroupCommitPolicy::Immediate,
        })
        .unwrap();
        let t0 = s.begin(NodeId(1)).unwrap();
        s.write_u64(t0, pid(0), 0, 10).unwrap();
        s.commit(t0).unwrap();
        let t1 = s.begin(NodeId(1)).unwrap();
        s.write_u64(t1, pid(0), 0, 666).unwrap();
        // Touch other pages so pid(0) evicts (ships records + page).
        for i in 1..4 {
            s.read_u64(t1, pid(i), 0).unwrap();
        }
        assert!(
            s.server_log().records_appended() > 3,
            "loser records reached the server via the WAL rule"
        );
        s.crash_client(NodeId(1));
        let (replayed, _) = s.recover_client(NodeId(1)).unwrap();
        assert!(replayed >= 1);
        let t2 = s.begin(NodeId(2)).unwrap();
        assert_eq!(
            s.read_u64(t2, pid(0), 0).unwrap(),
            10,
            "shipped-but-uncommitted update undone by the server"
        );
        s.commit(t2).unwrap();
    }

    #[test]
    fn callback_ships_page_through_server() {
        let mut s = sys(2);
        let t = s.begin(NodeId(1)).unwrap();
        s.write_u64(t, pid(0), 0, 3).unwrap();
        s.commit(t).unwrap();
        let stats0 = s.network().stats();
        let t2 = s.begin(NodeId(2)).unwrap();
        s.write_u64(t2, pid(0), 0, 4).unwrap();
        s.commit(t2).unwrap();
        let d = s.network().stats().since(&stats0);
        assert!(d.count(MsgKind::Callback) >= 1);
        // WAL shipping happened when the dirty page moved: client 1's
        // records were already at the server (commit), so only page
        // traffic here.
        let t3 = s.begin(NodeId(1)).unwrap();
        assert_eq!(s.read_u64(t3, pid(0), 0).unwrap(), 4);
        s.commit(t3).unwrap();
    }

    #[test]
    fn server_group_commit_batches_commits_across_clients() {
        let mut s = ServerCluster::new(ServerClientConfig {
            clients: 3,
            pages: 8,
            page_size: 512,
            client_buffer_frames: 8,
            server_buffer_frames: 32,
            cost: CostModel::unit(),
            group_commit: GroupCommitPolicy::Window {
                window_us: 1_000_000,
                max_batch: 64,
            },
        })
        .unwrap();
        let mut txns = Vec::new();
        for cid in 1..=3u32 {
            let t = s.begin(NodeId(cid)).unwrap();
            s.write_u64(t, pid(cid - 1), 0, 7).unwrap();
            s.commit_submit(t).unwrap();
            txns.push(t);
        }
        let forces0 = s.server_log().forces();
        let acks0 = s.network().stats();
        for t in &txns {
            assert!(!s.poll_committed(*t).unwrap(), "window still open");
        }
        assert!(s.pump_commits().unwrap());
        assert_eq!(
            s.server_log().forces(),
            forces0 + 1,
            "one server force covers the whole cross-client batch"
        );
        let d = s.network().stats().since(&acks0);
        assert_eq!(d.count(MsgKind::CommitAck), 3, "every commit acked");
        for t in &txns {
            assert!(s.poll_committed(*t).unwrap());
        }
    }

    #[test]
    fn adaptive_server_commit_acks_only_after_the_covering_force() {
        let mut s = ServerCluster::new(ServerClientConfig {
            clients: 2,
            pages: 8,
            page_size: 512,
            client_buffer_frames: 8,
            server_buffer_frames: 32,
            cost: CostModel::unit(),
            group_commit: GroupCommitPolicy::Adaptive {
                min_window_us: 100,
                max_window_us: 1_000_000,
                target_batch: 8,
            },
        })
        .unwrap();
        let t = s.begin(NodeId(1)).unwrap();
        s.write_u64(t, pid(0), 0, 1).unwrap();
        let syncs0 = s.server_log().store_syncs_counter().get();
        s.commit_submit(t).unwrap();
        assert!(
            !s.poll_committed(t).unwrap(),
            "no ack before the covering force"
        );
        assert_eq!(
            s.server_log().store_syncs_counter().get(),
            syncs0,
            "nothing hit the device yet"
        );
        while !s.poll_committed(t).unwrap() {
            s.pump_commits().unwrap();
        }
        assert!(s.server_log().store_syncs_counter().get() > syncs0);
        // The synchronous wrapper still works under Adaptive.
        let t2 = s.begin(NodeId(2)).unwrap();
        s.write_u64(t2, pid(1), 0, 2).unwrap();
        s.commit(t2).unwrap();
        assert_eq!(s.commits_of(NodeId(2)), 1);
    }

    #[test]
    fn all_log_forces_happen_at_the_server() {
        let mut s = sys(3);
        for round in 0..5u64 {
            for cid in 1..=3u32 {
                let t = s.begin(NodeId(cid)).unwrap();
                s.write_u64(t, pid(cid - 1), 0, round).unwrap();
                s.commit(t).unwrap();
            }
        }
        // 15 commits => at least 15 server forces; every disk I/O in
        // the run is charged to node 0.
        assert!(s.server_log().forces() >= 15);
        assert!(s.network().disk_ios_of(SERVER) >= 15);
        for cid in 1..=3u32 {
            assert_eq!(s.network().disk_ios_of(NodeId(cid)), 0);
        }
    }
}
