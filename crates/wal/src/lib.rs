//! Write-ahead logging for client-based logging nodes.
//!
//! Every node — owner or not — has a **private local log** (paper §1.1).
//! All log records for updates performed by the node's transactions are
//! written here, *including updates to pages owned by remote nodes*.
//! Logs are never shipped, merged, or compared across nodes; the only
//! cross-node ordering artifact is the PSN stored inside each update
//! record.
//!
//! Recovery follows ARIES (redo-undo, WAL, fuzzy checkpoints,
//! compensation log records with undo-next pointers), with the paper's
//! PSN-based redo test (`page.psn == record.psn_before`) substituted for
//! the LSN-on-page test so that records from *different* nodes' logs
//! replay in the correct global order without any log merging.

pub mod dpt;
pub mod manager;
pub mod record;
pub mod store;

pub use dpt::{DirtyPageTable, DptEntry};
pub use manager::{LogManager, LogScan};
pub use record::{CheckpointBody, LogPayload, LogRecord, PageOp};
pub use store::{FileLogStore, LogStore, MemLogStore};
