//! The dirty page table (DPT), maintained exactly as paper §2.2 and
//! §2.5 prescribe.
//!
//! A node's DPT has an entry for every page the node has modified whose
//! updates may not yet be reflected in the disk version of the database
//! — including pages owned by *remote* nodes. The entry records:
//!
//! * `PSN` — the page's PSN when the entry was created (first update /
//!   X-lock grant),
//! * `CurrPSN` — the page's PSN after its most recent local update,
//! * `RedoLSN` — the LSN of the earliest local log record that may need
//!   to be redone for the page.
//!
//! Entries are added when the node obtains an exclusive lock (with
//! RedoLSN conservatively set to the current end of the log) and
//! removed when:
//!
//! * an *owned* page is forced to the local disk, or
//! * a flush acknowledgment arrives from the owner of a *remote* page
//!   and the page has not been updated again since it was last replaced
//!   from the cache.
//!
//! For the §2.5 log-space protocol, the entry also remembers the local
//! end-of-log LSN at the moment the page was last replaced from the
//! cache: on flush-ack, if the page *was* re-updated, RedoLSN advances
//! to that remembered LSN instead of the entry being dropped.

use cblog_common::{Decoder, Encoder, Lsn, NodeId, PageId, Psn, Result};
use std::collections::HashMap;

/// One DPT entry (paper §2.2 fields plus §2.5 bookkeeping).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DptEntry {
    /// The page.
    pub pid: PageId,
    /// Page PSN when the entry was created.
    pub psn_first: Psn,
    /// Page PSN after the most recent local update.
    pub curr_psn: Psn,
    /// Earliest local log record that may need redo for this page.
    pub redo_lsn: Lsn,
    /// Local end-of-log when the page was last replaced from the cache
    /// (None if never replaced since entry creation).
    pub replaced_at_lsn: Option<Lsn>,
    /// Has the page been updated locally since the last replacement?
    pub updated_since_replace: bool,
}

impl DptEntry {
    /// Fresh entry created at X-lock grant / first update time.
    pub fn new(pid: PageId, psn: Psn, end_of_log: Lsn) -> Self {
        DptEntry {
            pid,
            psn_first: psn,
            curr_psn: psn,
            redo_lsn: end_of_log,
            replaced_at_lsn: None,
            updated_since_replace: true,
        }
    }

    /// Serializes the entry (checkpoint bodies, recovery messages).
    pub fn encode(&self, e: &mut Encoder) {
        e.put_page(self.pid);
        e.put_psn(self.psn_first);
        e.put_psn(self.curr_psn);
        e.put_lsn(self.redo_lsn);
        match self.replaced_at_lsn {
            Some(l) => {
                e.put_u8(1);
                e.put_lsn(l);
            }
            None => e.put_u8(0),
        }
        e.put_u8(self.updated_since_replace as u8);
    }

    /// Inverse of [`DptEntry::encode`].
    pub fn decode(d: &mut Decoder<'_>) -> Result<Self> {
        let pid = d.get_page()?;
        let psn_first = d.get_psn()?;
        let curr_psn = d.get_psn()?;
        let redo_lsn = d.get_lsn()?;
        let replaced_at_lsn = if d.get_u8()? != 0 {
            Some(d.get_lsn()?)
        } else {
            None
        };
        let updated_since_replace = d.get_u8()? != 0;
        Ok(DptEntry {
            pid,
            psn_first,
            curr_psn,
            redo_lsn,
            replaced_at_lsn,
            updated_since_replace,
        })
    }
}

/// A node's dirty page table.
#[derive(Clone, Debug, Default)]
pub struct DirtyPageTable {
    entries: HashMap<PageId, DptEntry>,
}

impl DirtyPageTable {
    /// Empty table.
    pub fn new() -> Self {
        DirtyPageTable::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entry for `pid`, if any.
    pub fn get(&self, pid: PageId) -> Option<&DptEntry> {
        self.entries.get(&pid)
    }

    /// True if `pid` has an entry.
    pub fn contains(&self, pid: PageId) -> bool {
        self.entries.contains_key(&pid)
    }

    /// Adds an entry if absent (X-lock grant path, §2.2). `psn` is the
    /// page's current PSN; `end_of_log` the conservative RedoLSN.
    pub fn ensure(&mut self, pid: PageId, psn: Psn, end_of_log: Lsn) -> &mut DptEntry {
        self.entries
            .entry(pid)
            .or_insert_with(|| DptEntry::new(pid, psn, end_of_log))
    }

    /// Records a local update: CurrPSN becomes the PSN *after* the
    /// update; creates the entry if needed (a cached X lock lets a node
    /// update a page long after the lock-grant-time entry was dropped
    /// by a flush-ack).
    pub fn on_update(&mut self, pid: PageId, psn_after: Psn, rec_lsn: Lsn) {
        let e = self
            .entries
            .entry(pid)
            .or_insert_with(|| DptEntry::new(pid, Psn(psn_after.0.saturating_sub(1)), rec_lsn));
        e.curr_psn = psn_after;
        e.updated_since_replace = true;
    }

    /// Records that the page was replaced from the local cache and sent
    /// away; remembers the end-of-log LSN for the §2.5 protocol.
    pub fn on_replace(&mut self, pid: PageId, end_of_log: Lsn) {
        if let Some(e) = self.entries.get_mut(&pid) {
            e.replaced_at_lsn = Some(end_of_log);
            e.updated_since_replace = false;
        }
    }

    /// Handles a flush acknowledgment from the owner of a remote page:
    /// drops the entry if the page was not updated again after its last
    /// replacement; otherwise advances RedoLSN to the remembered
    /// end-of-log (§2.5). Returns true if the entry was dropped.
    pub fn on_flush_ack(&mut self, pid: PageId) -> bool {
        match self.entries.get_mut(&pid) {
            Some(e) if !e.updated_since_replace => {
                self.entries.remove(&pid);
                true
            }
            Some(e) => {
                if let Some(l) = e.replaced_at_lsn {
                    e.redo_lsn = Lsn(e.redo_lsn.0.max(l.0));
                }
                false
            }
            None => false,
        }
    }

    /// Removes the entry for an *owned* page forced to the local disk.
    pub fn remove(&mut self, pid: PageId) -> Option<DptEntry> {
        self.entries.remove(&pid)
    }

    /// Inserts a pre-built entry (restart analysis, checkpoint replay).
    pub fn insert(&mut self, e: DptEntry) {
        self.entries.insert(e.pid, e);
    }

    /// Clears the table (node crash loses it; restart rebuilds).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Minimum RedoLSN across all entries — the point below which the
    /// local log can be truncated (§2.5).
    pub fn min_redo_lsn(&self) -> Option<Lsn> {
        self.entries.values().map(|e| e.redo_lsn).min()
    }

    /// The entry with the minimum RedoLSN (the §2.5 protocol replaces
    /// this page first when log space runs short).
    pub fn min_redo_entry(&self) -> Option<&DptEntry> {
        self.entries.values().min_by_key(|e| (e.redo_lsn, e.pid))
    }

    /// All entries, sorted by page id (deterministic iteration).
    pub fn entries(&self) -> Vec<DptEntry> {
        let mut v: Vec<DptEntry> = self.entries.values().copied().collect();
        v.sort_by_key(|e| e.pid);
        v
    }

    /// Entries for pages owned by `owner` (recovery information
    /// requests, §2.3.1/§2.4).
    pub fn entries_for_owner(&self, owner: NodeId) -> Vec<DptEntry> {
        let mut v: Vec<DptEntry> = self
            .entries
            .values()
            .filter(|e| e.pid.owner == owner)
            .copied()
            .collect();
        v.sort_by_key(|e| e.pid);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(i: u32) -> PageId {
        PageId::new(NodeId(2), i)
    }

    #[test]
    fn ensure_is_idempotent_and_conservative() {
        let mut dpt = DirtyPageTable::new();
        dpt.ensure(pid(1), Psn(10), Lsn(100));
        dpt.ensure(pid(1), Psn(99), Lsn(999)); // no effect
        let e = dpt.get(pid(1)).unwrap();
        assert_eq!(e.psn_first, Psn(10));
        assert_eq!(e.curr_psn, Psn(10));
        assert_eq!(e.redo_lsn, Lsn(100));
    }

    #[test]
    fn update_tracks_curr_psn() {
        let mut dpt = DirtyPageTable::new();
        dpt.ensure(pid(1), Psn(10), Lsn(100));
        dpt.on_update(pid(1), Psn(11), Lsn(120));
        dpt.on_update(pid(1), Psn(12), Lsn(140));
        let e = dpt.get(pid(1)).unwrap();
        assert_eq!(e.curr_psn, Psn(12));
        assert_eq!(e.redo_lsn, Lsn(100), "RedoLSN stays at entry creation");
    }

    #[test]
    fn update_without_entry_recreates_one() {
        // A cached X lock allows updates long after a flush-ack dropped
        // the entry; the update itself must re-create it.
        let mut dpt = DirtyPageTable::new();
        dpt.on_update(pid(3), Psn(21), Lsn(500));
        let e = dpt.get(pid(3)).unwrap();
        assert_eq!(e.curr_psn, Psn(21));
        assert_eq!(e.redo_lsn, Lsn(500));
    }

    #[test]
    fn flush_ack_drops_entry_when_not_redirtied() {
        let mut dpt = DirtyPageTable::new();
        dpt.ensure(pid(1), Psn(10), Lsn(100));
        dpt.on_update(pid(1), Psn(11), Lsn(100));
        dpt.on_replace(pid(1), Lsn(200));
        assert!(dpt.on_flush_ack(pid(1)), "entry should drop");
        assert!(!dpt.contains(pid(1)));
    }

    #[test]
    fn flush_ack_advances_redo_lsn_when_redirtied() {
        let mut dpt = DirtyPageTable::new();
        dpt.ensure(pid(1), Psn(10), Lsn(100));
        dpt.on_update(pid(1), Psn(11), Lsn(100));
        dpt.on_replace(pid(1), Lsn(200));
        // Page comes back and is updated again before the owner's
        // flush-ack arrives.
        dpt.on_update(pid(1), Psn(12), Lsn(250));
        assert!(!dpt.on_flush_ack(pid(1)), "entry must survive");
        let e = dpt.get(pid(1)).unwrap();
        assert_eq!(
            e.redo_lsn,
            Lsn(200),
            "RedoLSN advances to remembered end-of-log"
        );
        assert_eq!(e.curr_psn, Psn(12));
    }

    #[test]
    fn flush_ack_for_unknown_page_is_noop() {
        let mut dpt = DirtyPageTable::new();
        assert!(!dpt.on_flush_ack(pid(9)));
    }

    #[test]
    fn min_redo_lsn_and_entry() {
        let mut dpt = DirtyPageTable::new();
        assert_eq!(dpt.min_redo_lsn(), None);
        dpt.ensure(pid(1), Psn(1), Lsn(300));
        dpt.ensure(pid(2), Psn(1), Lsn(100));
        dpt.ensure(pid(3), Psn(1), Lsn(200));
        assert_eq!(dpt.min_redo_lsn(), Some(Lsn(100)));
        assert_eq!(dpt.min_redo_entry().unwrap().pid, pid(2));
    }

    #[test]
    fn entries_for_owner_filters_and_sorts() {
        let mut dpt = DirtyPageTable::new();
        let remote = PageId::new(NodeId(7), 0);
        dpt.ensure(pid(2), Psn(1), Lsn(1));
        dpt.ensure(remote, Psn(1), Lsn(2));
        dpt.ensure(pid(1), Psn(1), Lsn(3));
        let own = dpt.entries_for_owner(NodeId(2));
        assert_eq!(own.len(), 2);
        assert_eq!(own[0].pid, pid(1));
        assert_eq!(own[1].pid, pid(2));
        assert_eq!(dpt.entries_for_owner(NodeId(7)).len(), 1);
        assert_eq!(dpt.entries().len(), 3);
    }

    #[test]
    fn entry_encode_decode_round_trips() {
        let mut e = Encoder::new();
        let ent = DptEntry {
            pid: pid(4),
            psn_first: Psn(5),
            curr_psn: Psn(9),
            redo_lsn: Lsn(77),
            replaced_at_lsn: Some(Lsn(88)),
            updated_since_replace: true,
        };
        ent.encode(&mut e);
        let v = e.into_vec();
        let mut d = Decoder::new(&v);
        assert_eq!(DptEntry::decode(&mut d).unwrap(), ent);

        let mut e2 = Encoder::new();
        let ent2 = DptEntry::new(pid(1), Psn(3), Lsn(10));
        ent2.encode(&mut e2);
        let v2 = e2.into_vec();
        let mut d2 = Decoder::new(&v2);
        assert_eq!(DptEntry::decode(&mut d2).unwrap(), ent2);
    }
}
