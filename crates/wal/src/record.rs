//! Log record model and serialization.
//!
//! Record framing on disk:
//!
//! ```text
//! 0   4  total length (header + body)
//! 4   4  crc32 over body
//! 8   .. body: txn id, prev_lsn, payload tag, payload fields
//! ```
//!
//! Every update-describing record (Update, Clr) carries the page id and
//! the PSN the page had *just before* the update (paper §2.1). That PSN
//! is the sole cross-node ordering token used by recovery.

use crate::dpt::DptEntry;
use cblog_common::{Decoder, Encoder, Error, Lsn, PageId, Psn, Result, TxnId};
use cblog_storage::{Page, SlottedPage};

/// A page mutation, loggable physically or logically.
///
/// Each operation knows how to redo itself and how to produce its
/// inverse (for undo / CLR generation). Redo and undo application do
/// not touch the PSN — the caller owns the PSN discipline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PageOp {
    /// Physical byte-range overwrite within the page body.
    WriteRange {
        /// Byte offset within the page body.
        off: u32,
        /// Before-image (undo).
        before: Vec<u8>,
        /// After-image (redo).
        after: Vec<u8>,
    },
    /// Logical record insertion into a slotted page.
    Insert {
        /// Slot the record was placed in.
        slot: u16,
        /// Record payload.
        data: Vec<u8>,
    },
    /// Logical record deletion from a slotted page.
    Delete {
        /// Slot the record was removed from.
        slot: u16,
        /// The deleted record (undo needs it).
        old: Vec<u8>,
    },
    /// Logical in-place record replacement.
    UpdateRec {
        /// Slot updated.
        slot: u16,
        /// Previous payload.
        old: Vec<u8>,
        /// New payload.
        new: Vec<u8>,
    },
}

impl PageOp {
    /// Applies the forward (redo) effect to `page`.
    pub fn apply_redo(&self, page: &mut Page) -> Result<()> {
        match self {
            PageOp::WriteRange { off, after, .. } => page.write_range(*off as usize, after),
            PageOp::Insert { slot, data } => SlottedPage::new(page).insert_at(*slot, data),
            PageOp::Delete { slot, .. } => SlottedPage::new(page).delete(*slot).map(|_| ()),
            PageOp::UpdateRec { slot, new, .. } => {
                SlottedPage::new(page).update(*slot, new).map(|_| ())
            }
        }
    }

    /// Applies the backward (undo) effect to `page`.
    pub fn apply_undo(&self, page: &mut Page) -> Result<()> {
        self.inverse().apply_redo(page)
    }

    /// The inverse operation — what a CLR logs as its redo.
    pub fn inverse(&self) -> PageOp {
        match self {
            PageOp::WriteRange { off, before, after } => PageOp::WriteRange {
                off: *off,
                before: after.clone(),
                after: before.clone(),
            },
            PageOp::Insert { slot, data } => PageOp::Delete {
                slot: *slot,
                old: data.clone(),
            },
            PageOp::Delete { slot, old } => PageOp::Insert {
                slot: *slot,
                data: old.clone(),
            },
            PageOp::UpdateRec { slot, old, new } => PageOp::UpdateRec {
                slot: *slot,
                old: new.clone(),
                new: old.clone(),
            },
        }
    }

    /// True for logical (record-level) operations.
    pub fn is_logical(&self) -> bool {
        !matches!(self, PageOp::WriteRange { .. })
    }

    fn encode(&self, e: &mut Encoder) {
        match self {
            PageOp::WriteRange { off, before, after } => {
                e.put_u8(0);
                e.put_u32(*off);
                e.put_bytes(before);
                e.put_bytes(after);
            }
            PageOp::Insert { slot, data } => {
                e.put_u8(1);
                e.put_u16(*slot);
                e.put_bytes(data);
            }
            PageOp::Delete { slot, old } => {
                e.put_u8(2);
                e.put_u16(*slot);
                e.put_bytes(old);
            }
            PageOp::UpdateRec { slot, old, new } => {
                e.put_u8(3);
                e.put_u16(*slot);
                e.put_bytes(old);
                e.put_bytes(new);
            }
        }
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self> {
        match d.get_u8()? {
            0 => Ok(PageOp::WriteRange {
                off: d.get_u32()?,
                before: d.get_bytes()?.to_vec(),
                after: d.get_bytes()?.to_vec(),
            }),
            1 => Ok(PageOp::Insert {
                slot: d.get_u16()?,
                data: d.get_bytes()?.to_vec(),
            }),
            2 => Ok(PageOp::Delete {
                slot: d.get_u16()?,
                old: d.get_bytes()?.to_vec(),
            }),
            3 => Ok(PageOp::UpdateRec {
                slot: d.get_u16()?,
                old: d.get_bytes()?.to_vec(),
                new: d.get_bytes()?.to_vec(),
            }),
            t => Err(Error::Corrupt(format!("bad page op tag {t}"))),
        }
    }
}

/// Body of a fuzzy checkpoint-end record: the node's DPT and the
/// transactions active at checkpoint time with their last LSNs.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct CheckpointBody {
    /// Snapshot of the dirty page table.
    pub dpt: Vec<DptEntry>,
    /// Active transactions and their most recent log record.
    pub active_txns: Vec<(TxnId, Lsn)>,
}

/// The record variants.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LogPayload {
    /// Transaction start.
    Begin,
    /// A page update by an active transaction.
    Update {
        /// Updated page.
        pid: PageId,
        /// Page PSN just before this update.
        psn_before: Psn,
        /// The operation.
        op: PageOp,
    },
    /// Compensation record written while undoing.
    Clr {
        /// Updated (compensated) page.
        pid: PageId,
        /// Page PSN just before the compensation update.
        psn_before: Psn,
        /// The compensation operation (redo-only).
        op: PageOp,
        /// Next record of this transaction to undo (skips already
        /// compensated work on repeated rollbacks).
        undo_next: Lsn,
    },
    /// Transaction committed (force point).
    Commit,
    /// Transaction rollback completed.
    Abort,
    /// Fuzzy checkpoint started.
    CheckpointBegin,
    /// Fuzzy checkpoint finished; body snapshotted during the fuzz.
    CheckpointEnd(CheckpointBody),
    /// Page allocation in the local database.
    AllocPage {
        /// Allocated page.
        pid: PageId,
        /// Kind tag (storage::PageKind encoding).
        kind: u8,
    },
    /// Page deallocation in the local database.
    FreePage {
        /// Freed page.
        pid: PageId,
        /// PSN at deallocation (raises the space-map floor).
        final_psn: Psn,
    },
}

impl LogPayload {
    fn tag(&self) -> u8 {
        match self {
            LogPayload::Begin => 0,
            LogPayload::Update { .. } => 1,
            LogPayload::Clr { .. } => 2,
            LogPayload::Commit => 3,
            LogPayload::Abort => 4,
            LogPayload::CheckpointBegin => 5,
            LogPayload::CheckpointEnd(_) => 6,
            LogPayload::AllocPage { .. } => 7,
            LogPayload::FreePage { .. } => 8,
        }
    }
}

/// One record in a node's local log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LogRecord {
    /// The transaction this record belongs to (checkpoints use a
    /// reserved txn id of (node, 0)).
    pub txn: TxnId,
    /// Previous record of the same transaction (backward chain), or
    /// [`Lsn::ZERO`].
    pub prev_lsn: Lsn,
    /// The payload.
    pub payload: LogPayload,
}

impl LogRecord {
    /// The page this record updates, if it is an Update/Clr.
    pub fn page(&self) -> Option<PageId> {
        match &self.payload {
            LogPayload::Update { pid, .. } | LogPayload::Clr { pid, .. } => Some(*pid),
            _ => None,
        }
    }

    /// The PSN-before of an Update/Clr record.
    pub fn psn_before(&self) -> Option<Psn> {
        match &self.payload {
            LogPayload::Update { psn_before, .. } | LogPayload::Clr { psn_before, .. } => {
                Some(*psn_before)
            }
            _ => None,
        }
    }

    /// The operation of an Update/Clr record.
    pub fn op(&self) -> Option<&PageOp> {
        match &self.payload {
            LogPayload::Update { op, .. } | LogPayload::Clr { op, .. } => Some(op),
            _ => None,
        }
    }

    /// Serializes the record with framing (length + crc).
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Encoder::with_capacity(64);
        body.put_txn(self.txn);
        body.put_lsn(self.prev_lsn);
        body.put_u8(self.payload.tag());
        match &self.payload {
            LogPayload::Begin
            | LogPayload::Commit
            | LogPayload::Abort
            | LogPayload::CheckpointBegin => {}
            LogPayload::Update {
                pid,
                psn_before,
                op,
            } => {
                body.put_page(*pid);
                body.put_psn(*psn_before);
                op.encode(&mut body);
            }
            LogPayload::Clr {
                pid,
                psn_before,
                op,
                undo_next,
            } => {
                body.put_page(*pid);
                body.put_psn(*psn_before);
                body.put_lsn(*undo_next);
                op.encode(&mut body);
            }
            LogPayload::CheckpointEnd(b) => {
                body.put_u32(b.dpt.len() as u32);
                for e in &b.dpt {
                    e.encode(&mut body);
                }
                body.put_u32(b.active_txns.len() as u32);
                for (t, l) in &b.active_txns {
                    body.put_txn(*t);
                    body.put_lsn(*l);
                }
            }
            LogPayload::AllocPage { pid, kind } => {
                body.put_page(*pid);
                body.put_u8(*kind);
            }
            LogPayload::FreePage { pid, final_psn } => {
                body.put_page(*pid);
                body.put_psn(*final_psn);
            }
        }
        let body = body.into_vec();
        let mut out = Encoder::with_capacity(body.len() + 8);
        out.put_u32((body.len() + 8) as u32);
        out.put_u32(cblog_common::crc32(&body));
        let mut v = out.into_vec();
        v.extend_from_slice(&body);
        v
    }

    /// Decodes one framed record from the front of `buf`, returning the
    /// record and the number of bytes consumed.
    pub fn decode(buf: &[u8]) -> Result<(LogRecord, usize)> {
        if buf.len() < 8 {
            return Err(Error::Corrupt("truncated log record frame".into()));
        }
        let total = u32::from_le_bytes(buf[0..4].try_into().unwrap()) as usize;
        if total < 8 || total > buf.len() {
            return Err(Error::Corrupt(format!(
                "log record length {total} exceeds available {}",
                buf.len()
            )));
        }
        let crc = u32::from_le_bytes(buf[4..8].try_into().unwrap());
        let body = &buf[8..total];
        if cblog_common::crc32(body) != crc {
            return Err(Error::Corrupt("log record crc mismatch".into()));
        }
        let mut d = Decoder::new(body);
        let txn = d.get_txn()?;
        let prev_lsn = d.get_lsn()?;
        let payload = match d.get_u8()? {
            0 => LogPayload::Begin,
            1 => LogPayload::Update {
                pid: d.get_page()?,
                psn_before: d.get_psn()?,
                op: PageOp::decode(&mut d)?,
            },
            2 => LogPayload::Clr {
                pid: d.get_page()?,
                psn_before: d.get_psn()?,
                undo_next: d.get_lsn()?,
                op: PageOp::decode(&mut d)?,
            },
            3 => LogPayload::Commit,
            4 => LogPayload::Abort,
            5 => LogPayload::CheckpointBegin,
            6 => {
                let n = d.get_u32()? as usize;
                let mut dpt = Vec::with_capacity(n);
                for _ in 0..n {
                    dpt.push(DptEntry::decode(&mut d)?);
                }
                let m = d.get_u32()? as usize;
                let mut active_txns = Vec::with_capacity(m);
                for _ in 0..m {
                    let t = d.get_txn()?;
                    let l = d.get_lsn()?;
                    active_txns.push((t, l));
                }
                LogPayload::CheckpointEnd(CheckpointBody { dpt, active_txns })
            }
            7 => LogPayload::AllocPage {
                pid: d.get_page()?,
                kind: d.get_u8()?,
            },
            8 => LogPayload::FreePage {
                pid: d.get_page()?,
                final_psn: d.get_psn()?,
            },
            t => return Err(Error::Corrupt(format!("bad log payload tag {t}"))),
        };
        Ok((
            LogRecord {
                txn,
                prev_lsn,
                payload,
            },
            total,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cblog_common::NodeId;
    use cblog_storage::PageKind;

    fn pid() -> PageId {
        PageId::new(NodeId(2), 5)
    }

    fn txn() -> TxnId {
        TxnId::new(NodeId(1), 3)
    }

    fn round_trip(r: LogRecord) {
        let bytes = r.encode();
        let (back, consumed) = LogRecord::decode(&bytes).unwrap();
        assert_eq!(consumed, bytes.len());
        assert_eq!(back, r);
    }

    #[test]
    fn all_payloads_round_trip() {
        round_trip(LogRecord {
            txn: txn(),
            prev_lsn: Lsn::ZERO,
            payload: LogPayload::Begin,
        });
        round_trip(LogRecord {
            txn: txn(),
            prev_lsn: Lsn(10),
            payload: LogPayload::Update {
                pid: pid(),
                psn_before: Psn(7),
                op: PageOp::WriteRange {
                    off: 16,
                    before: vec![0; 8],
                    after: vec![1; 8],
                },
            },
        });
        round_trip(LogRecord {
            txn: txn(),
            prev_lsn: Lsn(20),
            payload: LogPayload::Clr {
                pid: pid(),
                psn_before: Psn(9),
                op: PageOp::Insert {
                    slot: 2,
                    data: b"rec".to_vec(),
                },
                undo_next: Lsn(5),
            },
        });
        round_trip(LogRecord {
            txn: txn(),
            prev_lsn: Lsn(30),
            payload: LogPayload::Commit,
        });
        round_trip(LogRecord {
            txn: txn(),
            prev_lsn: Lsn(31),
            payload: LogPayload::Abort,
        });
        round_trip(LogRecord {
            txn: txn(),
            prev_lsn: Lsn::ZERO,
            payload: LogPayload::CheckpointBegin,
        });
        round_trip(LogRecord {
            txn: txn(),
            prev_lsn: Lsn::ZERO,
            payload: LogPayload::CheckpointEnd(CheckpointBody {
                dpt: vec![DptEntry::new(pid(), Psn(3), Lsn(44))],
                active_txns: vec![(txn(), Lsn(40))],
            }),
        });
        round_trip(LogRecord {
            txn: txn(),
            prev_lsn: Lsn::ZERO,
            payload: LogPayload::AllocPage {
                pid: pid(),
                kind: 1,
            },
        });
        round_trip(LogRecord {
            txn: txn(),
            prev_lsn: Lsn::ZERO,
            payload: LogPayload::FreePage {
                pid: pid(),
                final_psn: Psn(12),
            },
        });
    }

    #[test]
    fn corruption_detected() {
        let r = LogRecord {
            txn: txn(),
            prev_lsn: Lsn(10),
            payload: LogPayload::Commit,
        };
        let mut bytes = r.encode();
        let n = bytes.len();
        bytes[n - 1] ^= 0xFF;
        assert!(LogRecord::decode(&bytes).is_err());
        assert!(LogRecord::decode(&bytes[..4]).is_err());
    }

    #[test]
    fn write_range_redo_undo_are_inverses() {
        let mut page = Page::new(pid(), PageKind::Raw, Psn(0), 256);
        page.write_range(16, &[9; 8]).unwrap();
        let op = PageOp::WriteRange {
            off: 16,
            before: vec![9; 8],
            after: vec![1; 8],
        };
        op.apply_redo(&mut page).unwrap();
        assert_eq!(page.read_range(16, 8).unwrap(), &[1; 8]);
        op.apply_undo(&mut page).unwrap();
        assert_eq!(page.read_range(16, 8).unwrap(), &[9; 8]);
        assert!(!op.is_logical());
    }

    #[test]
    fn logical_ops_redo_undo_are_inverses() {
        let mut page = Page::new(pid(), PageKind::Slotted, Psn(0), 512);
        let slot = SlottedPage::new(&mut page).insert(b"original").unwrap();

        let upd = PageOp::UpdateRec {
            slot,
            old: b"original".to_vec(),
            new: b"changed".to_vec(),
        };
        upd.apply_redo(&mut page).unwrap();
        assert_eq!(SlottedPage::new(&mut page).get(slot).unwrap(), b"changed");
        upd.apply_undo(&mut page).unwrap();
        assert_eq!(SlottedPage::new(&mut page).get(slot).unwrap(), b"original");

        let del = PageOp::Delete {
            slot,
            old: b"original".to_vec(),
        };
        del.apply_redo(&mut page).unwrap();
        assert!(!SlottedPage::new(&mut page).is_live(slot));
        del.apply_undo(&mut page).unwrap();
        assert_eq!(SlottedPage::new(&mut page).get(slot).unwrap(), b"original");
        assert!(del.is_logical());
    }

    #[test]
    fn inverse_of_inverse_is_identity() {
        let op = PageOp::UpdateRec {
            slot: 3,
            old: b"a".to_vec(),
            new: b"b".to_vec(),
        };
        assert_eq!(op.inverse().inverse(), op);
        let op = PageOp::Insert {
            slot: 1,
            data: b"x".to_vec(),
        };
        assert_eq!(op.inverse().inverse(), op);
    }

    #[test]
    fn accessors() {
        let r = LogRecord {
            txn: txn(),
            prev_lsn: Lsn(1),
            payload: LogPayload::Update {
                pid: pid(),
                psn_before: Psn(4),
                op: PageOp::WriteRange {
                    off: 0,
                    before: vec![],
                    after: vec![],
                },
            },
        };
        assert_eq!(r.page(), Some(pid()));
        assert_eq!(r.psn_before(), Some(Psn(4)));
        assert!(r.op().is_some());
        let c = LogRecord {
            txn: txn(),
            prev_lsn: Lsn(1),
            payload: LogPayload::Commit,
        };
        assert_eq!(c.page(), None);
        assert_eq!(c.psn_before(), None);
        assert!(c.op().is_none());
    }
}
