//! Byte-oriented backing stores for a node's local log.
//!
//! The log manager appends framed records; the store persists bytes and
//! a small side "master record" holding the restart anchor (last
//! checkpoint LSN and truncation point). Both an in-memory store (fast,
//! deterministic, counted) and a file-backed store are provided.
//!
//! Crash semantics: bytes appended but not yet [`LogStore::sync`]ed are
//! lost by [`LogStore::crash`]. The log manager only writes to the
//! store at force time, so in practice crashes drop the manager's tail
//! buffer plus any unsynced store bytes.

use cblog_common::{Counter, Error, Result};
use std::fs::{File, OpenOptions};
use std::io::{IoSlice, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Append-oriented durable byte store with a master record side-slot.
///
/// `Send` is a supertrait so a `Box<dyn LogStore>` (and therefore the
/// `LogManager` and `Node` built on it) can move into a worker thread
/// of the threaded runtime, where each node owns its file-backed WAL.
pub trait LogStore: Send {
    /// Durable + appended (possibly unsynced) length in bytes.
    fn len(&self) -> u64;

    /// True if nothing has ever been appended.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends bytes at the current end.
    fn append(&mut self, bytes: &[u8]) -> Result<()>;

    /// Appends a batch of buffers at the current end as one logical
    /// write (group commit: the coalesced tail goes down in a single
    /// operation followed by a single [`LogStore::sync`]). The default
    /// implementation loops over [`LogStore::append`]; stores backed by
    /// real I/O should override it with a vectored write.
    fn append_vectored(&mut self, bufs: &[&[u8]]) -> Result<()> {
        for b in bufs {
            self.append(b)?;
        }
        Ok(())
    }

    /// Reads `buf.len()` bytes at absolute offset `pos`.
    fn read_at(&mut self, pos: u64, buf: &mut [u8]) -> Result<()>;

    /// Makes all appended bytes durable.
    fn sync(&mut self) -> Result<()>;

    /// Byte length the store is *known* to have been synced at — the
    /// position of the last [`LogStore::sync`], clamped by
    /// [`LogStore::truncate_to`]. Unlike the durable length this is
    /// **not** advanced by a torn write landing on the platter
    /// ([`LogStore::crash_with_partial_tail`]), so every byte below it
    /// is a checksum-valid record prefix and restart repair may begin
    /// its scan here. `None` when the store cannot tell (a freshly
    /// reopened file store: its on-disk tail may predate this
    /// process), in which case repair falls back to the master-record
    /// anchor.
    fn synced_len(&self) -> Option<u64>;

    /// Atomically replaces the master record.
    fn write_master(&mut self, bytes: &[u8]) -> Result<()>;

    /// Reads the master record (empty vec if never written).
    fn read_master(&mut self) -> Result<Vec<u8>>;

    /// Simulates a crash: discards appended-but-unsynced bytes. The
    /// master record is always written synchronously and survives.
    fn crash(&mut self);

    /// Simulates a crash that interrupts a write mid-flight: as
    /// [`LogStore::crash`], but `partial` bytes of the interrupted
    /// append physically landed on the device first and will be seen by
    /// restart. The landed bytes count as durable (they are on the
    /// platter) without counting as a sync.
    fn crash_with_partial_tail(&mut self, partial: &[u8]);

    /// Discards every byte at or beyond `len` (both appended and
    /// durable) — restart uses this to cut a torn tail back to the last
    /// checksum-valid record boundary. Growing the store is not
    /// possible; `len` past the end is a no-op.
    fn truncate_to(&mut self, len: u64);

    /// Counter of sync operations (log forces hitting the device).
    fn syncs(&self) -> &Counter;

    /// Counter of bytes appended.
    fn bytes_appended(&self) -> &Counter;

    /// Wall-clock histogram of individual [`LogStore::sync`] calls,
    /// µs — one sample per force hitting the device, so group-commit
    /// batching gains show up per force and not only as forces/commit.
    /// `None` for stores with no real sync to time (the in-memory
    /// store: recording wall time there would leak nondeterminism into
    /// byte-identical sim exports).
    fn fsync_hist(&self) -> Option<&cblog_common::Histogram> {
        None
    }
}

/// In-memory log store.
#[derive(Debug, Default)]
pub struct MemLogStore {
    data: Vec<u8>,
    durable_len: u64,
    synced_len: u64,
    master: Vec<u8>,
    syncs: Counter,
    bytes: Counter,
}

impl MemLogStore {
    /// New empty store.
    pub fn new() -> Self {
        MemLogStore::default()
    }
}

impl LogStore for MemLogStore {
    fn len(&self) -> u64 {
        self.data.len() as u64
    }

    fn append(&mut self, bytes: &[u8]) -> Result<()> {
        self.data.extend_from_slice(bytes);
        self.bytes.add(bytes.len() as u64);
        Ok(())
    }

    fn read_at(&mut self, pos: u64, buf: &mut [u8]) -> Result<()> {
        let end = pos as usize + buf.len();
        if end > self.data.len() {
            return Err(Error::Corrupt(format!(
                "log read past end: {pos}+{} > {}",
                buf.len(),
                self.data.len()
            )));
        }
        buf.copy_from_slice(&self.data[pos as usize..end]);
        Ok(())
    }

    fn sync(&mut self) -> Result<()> {
        self.durable_len = self.data.len() as u64;
        self.synced_len = self.durable_len;
        self.syncs.bump();
        Ok(())
    }

    fn synced_len(&self) -> Option<u64> {
        Some(self.synced_len)
    }

    fn write_master(&mut self, bytes: &[u8]) -> Result<()> {
        self.master = bytes.to_vec();
        Ok(())
    }

    fn read_master(&mut self) -> Result<Vec<u8>> {
        Ok(self.master.clone())
    }

    fn crash(&mut self) {
        self.data.truncate(self.durable_len as usize);
    }

    fn crash_with_partial_tail(&mut self, partial: &[u8]) {
        self.crash();
        self.data.extend_from_slice(partial);
        self.durable_len = self.data.len() as u64;
    }

    fn truncate_to(&mut self, len: u64) {
        if len < self.data.len() as u64 {
            self.data.truncate(len as usize);
        }
        self.durable_len = self.durable_len.min(self.data.len() as u64).min(len);
        self.synced_len = self.synced_len.min(self.durable_len);
    }

    fn syncs(&self) -> &Counter {
        &self.syncs
    }

    fn bytes_appended(&self) -> &Counter {
        &self.bytes
    }
}

/// File-backed log store (`<path>` data file + `<path>.master`).
#[derive(Debug)]
pub struct FileLogStore {
    file: File,
    master_path: PathBuf,
    len: u64,
    durable_len: u64,
    /// `None` until the first in-process sync: the reopened file's
    /// tail cannot be distinguished from a torn write.
    synced_len: Option<u64>,
    syncs: Counter,
    bytes: Counter,
    fsync_us: cblog_common::Histogram,
}

impl FileLogStore {
    /// Opens (creating if absent) the log at `path`.
    pub fn open(path: &Path) -> Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let len = file.metadata()?.len();
        let mut master_path = path.as_os_str().to_owned();
        master_path.push(".master");
        Ok(FileLogStore {
            file,
            master_path: PathBuf::from(master_path),
            len,
            durable_len: len,
            synced_len: None,
            syncs: Counter::new(),
            bytes: Counter::new(),
            fsync_us: cblog_common::Histogram::new(),
        })
    }
}

impl LogStore for FileLogStore {
    fn len(&self) -> u64 {
        self.len
    }

    fn append(&mut self, bytes: &[u8]) -> Result<()> {
        self.file.seek(SeekFrom::Start(self.len))?;
        self.file.write_all(bytes)?;
        self.len += bytes.len() as u64;
        self.bytes.add(bytes.len() as u64);
        Ok(())
    }

    fn append_vectored(&mut self, bufs: &[&[u8]]) -> Result<()> {
        let total: u64 = bufs.iter().map(|b| b.len() as u64).sum();
        if total == 0 {
            return Ok(());
        }
        self.file.seek(SeekFrom::Start(self.len))?;
        let bufs: Vec<&[u8]> = bufs.iter().filter(|b| !b.is_empty()).copied().collect();
        // write_vectored may write a prefix; rebuild the slice list past
        // what landed and retry until the whole batch is down.
        let mut written = 0u64;
        while written < total {
            let mut skip = written as usize;
            let slices: Vec<IoSlice<'_>> = bufs
                .iter()
                .filter_map(|b| {
                    if skip >= b.len() {
                        skip -= b.len();
                        None
                    } else {
                        let s = &b[skip..];
                        skip = 0;
                        Some(IoSlice::new(s))
                    }
                })
                .collect();
            let n = self.file.write_vectored(&slices)?;
            if n == 0 {
                return Err(Error::Io(std::io::ErrorKind::WriteZero.into()));
            }
            written += n as u64;
        }
        self.len += total;
        self.bytes.add(total);
        Ok(())
    }

    fn read_at(&mut self, pos: u64, buf: &mut [u8]) -> Result<()> {
        if pos + buf.len() as u64 > self.len {
            return Err(Error::Corrupt("log read past end".into()));
        }
        self.file.seek(SeekFrom::Start(pos))?;
        self.file.read_exact(buf)?;
        Ok(())
    }

    fn sync(&mut self) -> Result<()> {
        let t = std::time::Instant::now();
        self.file.sync_data()?;
        self.fsync_us.record(t.elapsed().as_micros() as u64);
        self.durable_len = self.len;
        self.synced_len = Some(self.len);
        self.syncs.bump();
        Ok(())
    }

    fn synced_len(&self) -> Option<u64> {
        self.synced_len
    }

    fn write_master(&mut self, bytes: &[u8]) -> Result<()> {
        // Write-then-rename for atomicity.
        let tmp = self.master_path.with_extension("master.tmp");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(bytes)?;
            f.sync_data()?;
        }
        std::fs::rename(&tmp, &self.master_path)?;
        Ok(())
    }

    fn read_master(&mut self) -> Result<Vec<u8>> {
        match std::fs::read(&self.master_path) {
            Ok(v) => Ok(v),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Vec::new()),
            Err(e) => Err(e.into()),
        }
    }

    fn crash(&mut self) {
        let _ = self.file.set_len(self.durable_len);
        self.len = self.durable_len;
    }

    fn crash_with_partial_tail(&mut self, partial: &[u8]) {
        self.crash();
        if !partial.is_empty() {
            let r = self
                .file
                .seek(SeekFrom::Start(self.len))
                .and_then(|_| self.file.write_all(partial));
            if r.is_ok() {
                self.len += partial.len() as u64;
            }
        }
        self.durable_len = self.len;
    }

    fn truncate_to(&mut self, len: u64) {
        if len < self.len {
            let _ = self.file.set_len(len);
            self.len = len;
        }
        self.durable_len = self.durable_len.min(self.len);
        self.synced_len = self.synced_len.map(|s| s.min(self.durable_len));
    }

    fn syncs(&self) -> &Counter {
        &self.syncs
    }

    fn bytes_appended(&self) -> &Counter {
        &self.bytes
    }

    fn fsync_hist(&self) -> Option<&cblog_common::Histogram> {
        Some(&self.fsync_us)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(s: &mut dyn LogStore) {
        assert!(s.is_empty());
        s.append(b"hello ").unwrap();
        s.append(b"world").unwrap();
        assert_eq!(s.len(), 11);
        let mut buf = [0u8; 5];
        s.read_at(6, &mut buf).unwrap();
        assert_eq!(&buf, b"world");
        assert!(s.read_at(8, &mut [0u8; 5]).is_err());
        s.sync().unwrap();
        assert_eq!(s.synced_len(), Some(11));
        s.append(b" lost").unwrap();
        assert_eq!(s.synced_len(), Some(11), "append alone does not sync");
        s.crash();
        assert_eq!(s.len(), 11, "unsynced tail dropped");
        s.write_master(b"anchor").unwrap();
        assert_eq!(s.read_master().unwrap(), b"anchor");
        s.write_master(b"anchor2").unwrap();
        assert_eq!(s.read_master().unwrap(), b"anchor2");
        assert_eq!(s.syncs().get(), 1);
        assert_eq!(s.bytes_appended().get(), 16);
    }

    #[test]
    fn mem_store() {
        let mut s = MemLogStore::new();
        exercise(&mut s);
    }

    #[test]
    fn file_store() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!(
            "cblog-log-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let master = {
            let mut m = path.as_os_str().to_owned();
            m.push(".master");
            PathBuf::from(m)
        };
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&master);
        {
            let mut s = FileLogStore::open(&path).unwrap();
            exercise(&mut s);
        }
        {
            // Reopen: synced bytes and master survive.
            let mut s = FileLogStore::open(&path).unwrap();
            assert_eq!(s.len(), 11);
            assert_eq!(s.read_master().unwrap(), b"anchor2");
        }
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&master);
    }

    #[test]
    fn master_missing_reads_empty() {
        let mut s = MemLogStore::new();
        assert_eq!(s.read_master().unwrap(), Vec::<u8>::new());
    }

    fn exercise_vectored(s: &mut dyn LogStore) {
        s.append_vectored(&[b"abc", b"", b"defg"]).unwrap();
        assert_eq!(s.len(), 7);
        let mut buf = [0u8; 7];
        s.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"abcdefg");
        s.sync().unwrap();
        s.append_vectored(&[]).unwrap();
        assert_eq!(s.len(), 7, "empty batch is a no-op");
        s.append(b"!").unwrap();
        s.crash();
        assert_eq!(s.len(), 7, "unsynced single append dropped");
        assert_eq!(s.bytes_appended().get(), 8);
    }

    #[test]
    fn mem_store_vectored() {
        let mut s = MemLogStore::new();
        exercise_vectored(&mut s);
    }

    fn exercise_torn(s: &mut dyn LogStore) {
        s.append(b"durable!").unwrap();
        s.sync().unwrap();
        s.append(b"in-flight-batch").unwrap();
        // Crash mid-write: the first 4 bytes of the batch landed.
        s.crash_with_partial_tail(b"in-f");
        assert_eq!(s.len(), 12, "durable prefix + torn fragment");
        assert_eq!(
            s.synced_len(),
            Some(8),
            "torn landed bytes are durable but not *synced*: repair must scan them"
        );
        let mut buf = [0u8; 12];
        s.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"durable!in-f");
        // The torn fragment survives a further plain crash: it is on
        // the platter, not in a volatile buffer.
        s.crash();
        assert_eq!(s.len(), 12);
        // Restart cuts the tail back to the valid boundary.
        s.truncate_to(8);
        assert_eq!(s.len(), 8);
        s.truncate_to(100); // past end: no-op
        assert_eq!(s.len(), 8);
        // The store still appends normally afterwards.
        s.append(b"more").unwrap();
        s.sync().unwrap();
        assert_eq!(s.len(), 12);
    }

    #[test]
    fn mem_store_torn_tail() {
        let mut s = MemLogStore::new();
        exercise_torn(&mut s);
    }

    #[test]
    fn file_store_torn_tail() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!(
            "cblog-log-torn-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let master = {
            let mut m = path.as_os_str().to_owned();
            m.push(".master");
            PathBuf::from(m)
        };
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&master);
        {
            let mut s = FileLogStore::open(&path).unwrap();
            exercise_torn(&mut s);
        }
        {
            // Reopen: the repaired, re-appended log is what restart sees.
            let mut s = FileLogStore::open(&path).unwrap();
            assert_eq!(s.len(), 12);
            let mut buf = [0u8; 12];
            s.read_at(0, &mut buf).unwrap();
            assert_eq!(&buf, b"durable!more");
        }
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&master);
    }

    #[test]
    fn file_store_vectored_is_one_write_per_batch() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!(
            "cblog-log-vec-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let master = {
            let mut m = path.as_os_str().to_owned();
            m.push(".master");
            PathBuf::from(m)
        };
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&master);
        {
            let mut s = FileLogStore::open(&path).unwrap();
            exercise_vectored(&mut s);
        }
        {
            let mut s = FileLogStore::open(&path).unwrap();
            assert_eq!(s.len(), 7);
            let mut buf = [0u8; 7];
            s.read_at(0, &mut buf).unwrap();
            assert_eq!(&buf, b"abcdefg");
        }
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&master);
    }

    #[test]
    fn fsync_histogram_counts_file_syncs_only() {
        // The in-memory store must expose no wall-clock histogram —
        // that is what keeps sim exports byte-deterministic.
        assert!(MemLogStore::new().fsync_hist().is_none());

        let dir = std::env::temp_dir();
        let path = dir.join(format!(
            "cblog-log-fsync-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let master = {
            let mut m = path.as_os_str().to_owned();
            m.push(".master");
            PathBuf::from(m)
        };
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&master);
        {
            let mut s = FileLogStore::open(&path).unwrap();
            s.append(b"payload").unwrap();
            s.sync().unwrap();
            s.append(b"more").unwrap();
            s.sync().unwrap();
            let h = s.fsync_hist().expect("file store times its syncs");
            assert_eq!(h.count(), 2, "one sample per sync");
            assert_eq!(h.count(), s.syncs().get());
        }
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&master);
    }
}
