//! The per-node log manager.
//!
//! * `LSN` = byte address of a record in the local log. The file begins
//!   with an 8-byte preamble so the first real record has a non-zero
//!   LSN ([`cblog_common::Lsn::ZERO`] stays free as the "no record"
//!   sentinel).
//! * Records accumulate in an in-memory tail buffer; [`LogManager::force`]
//!   writes and syncs the tail. The WAL protocol (force before a dirty
//!   page leaves the cache; force at commit) is enforced by the node,
//!   which is the only caller.
//! * Log space is bounded when constructed `with_capacity`: the live
//!   window is `[base_lsn, end_lsn)` and appends that would overflow it
//!   fail with [`cblog_common::Error::LogFull`], triggering the §2.5
//!   space-management protocol. [`LogManager::truncate`] advances
//!   `base_lsn` once the minimum RedoLSN moves forward.
//! * The master record anchors restart: it stores the LSN of the last
//!   complete checkpoint and the truncation point.

use crate::record::LogRecord;
use crate::store::LogStore;
use cblog_common::{Counter, Decoder, Encoder, Error, Fnv1a, Lsn, NodeId, Result};

const PREAMBLE: &[u8; 8] = b"CBLOG\0\0\0";
const MASTER_MAGIC: u32 = 0x4D53_5452;

/// Restart anchor stored in the master record.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct MasterRecord {
    /// LSN of the begin-checkpoint record of the last complete
    /// checkpoint ([`Lsn::ZERO`] if none yet).
    pub last_checkpoint: Lsn,
    /// Truncation point: no record below this LSN is needed.
    pub base_lsn: Lsn,
}

/// A node's local write-ahead log.
pub struct LogManager {
    node: NodeId,
    store: Box<dyn LogStore>,
    /// Records appended but not yet written to the store, one encoded
    /// buffer per record. Keeping record boundaries lets a force hand
    /// the whole batch to [`LogStore::append_vectored`] as one write +
    /// one sync (group commit) without re-copying into a flat buffer.
    tail: Vec<Vec<u8>>,
    /// LSN of the first byte of `tail` (== durable end of the store).
    tail_start: Lsn,
    /// Next LSN to be assigned.
    end_lsn: Lsn,
    /// Everything below this is durable.
    flushed_lsn: Lsn,
    /// Logical truncation point (space below is reclaimable).
    base_lsn: Lsn,
    /// Bounded log size in bytes, if any.
    capacity: Option<u64>,
    master: MasterRecord,
    records: Counter,
    forces: Counter,
    /// Bytes rescanned by [`LogManager::repair_tail`] (cumulative).
    /// The scan starts at the last synced boundary, so this stays
    /// O(torn tail) per restart — a test hook for that guarantee.
    repair_scanned: Counter,
}

impl std::fmt::Debug for LogManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "LogManager(node={} end={} flushed={} base={} cap={:?})",
            self.node, self.end_lsn, self.flushed_lsn, self.base_lsn, self.capacity
        )
    }
}

impl LogManager {
    /// Creates a log manager over `store`. If the store already holds a
    /// log (restart), positions at its durable end and loads the master
    /// record; otherwise writes the preamble.
    pub fn new(node: NodeId, mut store: Box<dyn LogStore>) -> Result<Self> {
        let master = Self::load_master(&mut *store)?;
        if store.is_empty() {
            store.append(PREAMBLE)?;
            store.sync()?;
        } else {
            let mut p = [0u8; 8];
            store.read_at(0, &mut p)?;
            if &p != PREAMBLE {
                return Err(Error::Corrupt("bad log preamble".into()));
            }
        }
        let end = Lsn(store.len());
        Ok(LogManager {
            node,
            store,
            tail: Vec::new(),
            tail_start: end,
            end_lsn: end,
            flushed_lsn: end,
            base_lsn: if master.base_lsn.is_zero() {
                Lsn(PREAMBLE.len() as u64)
            } else {
                master.base_lsn
            },
            capacity: None,
            master,
            records: Counter::new(),
            forces: Counter::new(),
            repair_scanned: Counter::new(),
        })
    }

    /// As [`LogManager::new`] but with a bounded log of `capacity`
    /// bytes (the live window `[base_lsn, end_lsn)` may not exceed it).
    pub fn with_capacity(node: NodeId, store: Box<dyn LogStore>, capacity: u64) -> Result<Self> {
        let mut lm = Self::new(node, store)?;
        lm.capacity = Some(capacity);
        Ok(lm)
    }

    fn load_master(store: &mut dyn LogStore) -> Result<MasterRecord> {
        let bytes = store.read_master()?;
        if bytes.is_empty() {
            return Ok(MasterRecord::default());
        }
        let mut d = Decoder::new(&bytes);
        if d.get_u32()? != MASTER_MAGIC {
            return Err(Error::Corrupt("bad master record".into()));
        }
        Ok(MasterRecord {
            last_checkpoint: d.get_lsn()?,
            base_lsn: d.get_lsn()?,
        })
    }

    /// The owning node.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Next LSN to be assigned (current end of log). This is the value
    /// the paper's DPT maintenance uses as the conservative RedoLSN.
    pub fn end_lsn(&self) -> Lsn {
        self.end_lsn
    }

    /// Durable prefix end.
    pub fn flushed_lsn(&self) -> Lsn {
        self.flushed_lsn
    }

    /// True iff every record up to `lsn` is durable — the WAL-rule
    /// predicate a page write or dirty-page transfer must satisfy for
    /// the log records covering the page (PSN edges ≤ the page's PSN).
    pub fn covers(&self, lsn: Lsn) -> bool {
        self.flushed_lsn >= lsn
    }

    /// True iff the log has no volatile tail at all (`force_all` has
    /// nothing to do) — the conservative WAL-rule check used when a
    /// dirty page leaves the node.
    pub fn fully_forced(&self) -> bool {
        self.flushed_lsn >= self.end_lsn
    }

    /// Truncation point.
    pub fn base_lsn(&self) -> Lsn {
        self.base_lsn
    }

    /// Bytes in the live window.
    pub fn used_space(&self) -> u64 {
        self.end_lsn.0 - self.base_lsn.0
    }

    /// Remaining space before [`Error::LogFull`], if bounded.
    pub fn available_space(&self) -> Option<u64> {
        self.capacity.map(|c| c.saturating_sub(self.used_space()))
    }

    /// Number of records appended since construction.
    pub fn records_appended(&self) -> u64 {
        self.records.get()
    }

    /// Number of forces (device syncs) issued.
    pub fn forces(&self) -> u64 {
        self.forces.get()
    }

    /// Bytes appended to the durable store (excludes unflushed tail).
    pub fn bytes_written(&self) -> u64 {
        self.store.bytes_appended().get()
    }

    /// Shared handle to the record-append counter, for registration in
    /// a metrics registry.
    pub fn records_counter(&self) -> &Counter {
        &self.records
    }

    /// Shared handle to the force counter.
    pub fn forces_counter(&self) -> &Counter {
        &self.forces
    }

    /// Shared handle to the underlying store's sync counter.
    pub fn store_syncs_counter(&self) -> &Counter {
        self.store.syncs()
    }

    /// Shared handle to the underlying store's appended-bytes counter.
    pub fn bytes_appended_counter(&self) -> &Counter {
        self.store.bytes_appended()
    }

    /// Shared handle to the repair-scan byte counter (bytes rescanned
    /// by [`LogManager::repair_tail`], cumulatively).
    pub fn repair_scanned_counter(&self) -> &Counter {
        &self.repair_scanned
    }

    /// Shared handle to the store's per-fsync wall-clock histogram
    /// (`None` for stores with no real sync to time — see
    /// [`LogStore::fsync_hist`]).
    pub fn fsync_histogram(&self) -> Option<&cblog_common::Histogram> {
        self.store.fsync_hist()
    }

    /// Last complete checkpoint anchor.
    pub fn last_checkpoint(&self) -> Lsn {
        self.master.last_checkpoint
    }

    /// Appends a record, returning its LSN. Fails with
    /// [`Error::LogFull`] if a bounded log's live window would
    /// overflow — the caller then runs the §2.5 space protocol and
    /// retries.
    pub fn append(&mut self, rec: &LogRecord) -> Result<Lsn> {
        let bytes = rec.encode();
        if let Some(cap) = self.capacity {
            if self.used_space() + bytes.len() as u64 > cap {
                return Err(Error::LogFull(self.node));
            }
        }
        let lsn = self.end_lsn;
        let len = bytes.len() as u64;
        self.tail.push(bytes);
        self.end_lsn = self.end_lsn.advance(len);
        self.records.bump();
        Ok(lsn)
    }

    /// Bytes sitting in the unflushed tail.
    pub fn tail_bytes(&self) -> u64 {
        self.end_lsn.0 - self.tail_start.0
    }

    /// Encoded byte length of each unforced tail record, oldest first
    /// (sums to [`LogManager::tail_bytes`]).
    pub fn tail_record_sizes(&self) -> Vec<u64> {
        self.tail.iter().map(|b| b.len() as u64).collect()
    }

    /// The distinct `landed` arguments to
    /// [`LogManager::simulate_crash_torn`] worth exploring: every
    /// record boundary in the unforced tail, plus every byte offset
    /// within the final record. A tear mid-record truncates back to
    /// that record's start boundary on repair, so any position not
    /// listed converges to the same durable state as a listed one —
    /// the list enumerates the tear space exhaustively up to that
    /// equivalence, while the per-byte coverage of the last record
    /// still drives the repair scan through every partial-header,
    /// partial-body and CRC-mismatch length of a torn final record.
    pub fn torn_landing_points(&self) -> Vec<u64> {
        let sizes = self.tail_record_sizes();
        let mut out = vec![0u64];
        let mut at = 0u64;
        for (i, s) in sizes.iter().enumerate() {
            if i + 1 == sizes.len() {
                for b in 1..=*s {
                    out.push(at + b);
                }
            } else {
                at += s;
                out.push(at);
            }
        }
        out
    }

    /// The record-boundary subset of
    /// [`LogManager::torn_landing_points`]: 0, each whole-record
    /// prefix, and the full tail. Multi-victim crash products use this
    /// coarser grid — per-byte positions inside a record converge to
    /// the preceding boundary after repair anyway (the equivalence the
    /// model checker's state-hash dedup independently verifies).
    pub fn torn_record_boundaries(&self) -> Vec<u64> {
        let mut out = vec![0u64];
        let mut at = 0u64;
        for s in self.tail_record_sizes() {
            at += s;
            out.push(at);
        }
        out
    }

    /// Forces the log so the record whose LSN is `upto` (and everything
    /// before it) is durable. No-op if already durable. The whole tail
    /// — however many records accumulated since the last force — goes
    /// down as one vectored write followed by one sync, so a batch of
    /// commit records costs a single device operation.
    pub fn force(&mut self, upto: Lsn) -> Result<()> {
        if self.tail.is_empty() || upto < self.flushed_lsn {
            return Ok(());
        }
        let bufs: Vec<&[u8]> = self.tail.iter().map(|b| b.as_slice()).collect();
        self.store.append_vectored(&bufs)?;
        self.store.sync()?;
        self.tail.clear();
        self.tail_start = self.end_lsn;
        self.flushed_lsn = self.end_lsn;
        self.forces.bump();
        Ok(())
    }

    /// Forces everything.
    pub fn force_all(&mut self) -> Result<()> {
        self.force(self.end_lsn)
    }

    /// Advances the truncation point (never backwards).
    pub fn truncate(&mut self, upto: Lsn) {
        if upto > self.base_lsn {
            self.base_lsn = Lsn(upto.0.min(self.end_lsn.0));
        }
    }

    /// Reads the record at `lsn`, returning it and the LSN of the next
    /// record. Reads from the unflushed tail transparently.
    pub fn read_record(&mut self, lsn: Lsn) -> Result<(LogRecord, Lsn)> {
        if lsn < self.base_lsn {
            return Err(Error::Protocol(format!(
                "read below truncation point: {lsn} < {}",
                self.base_lsn
            )));
        }
        if lsn >= self.end_lsn {
            return Err(Error::Protocol(format!(
                "read past end of log: {lsn} >= {}",
                self.end_lsn
            )));
        }
        if lsn >= self.tail_start {
            let mut off = (lsn.0 - self.tail_start.0) as usize;
            for chunk in &self.tail {
                if off < chunk.len() {
                    let (rec, n) = LogRecord::decode(&chunk[off..])?;
                    return Ok((rec, lsn.advance(n as u64)));
                }
                off -= chunk.len();
            }
            return Err(Error::Corrupt(format!("tail read out of range at {lsn}")));
        }
        // A store-resident record's 8-byte header must lie wholly below
        // the durable boundary. A stale LSN within 8 bytes of a
        // torn-tail truncation point would otherwise short-read the
        // store; every genuine record has total ≥ 8, so rejecting here
        // loses nothing.
        if lsn.0 + 8 > self.tail_start.0 {
            return Err(Error::Corrupt(format!(
                "record header at {lsn} crosses the durable boundary {}",
                self.tail_start
            )));
        }
        let mut header = [0u8; 8];
        self.store.read_at(lsn.0, &mut header)?;
        let total = u32::from_le_bytes(header[0..4].try_into().unwrap()) as usize;
        if total < 8 || lsn.0 + total as u64 > self.tail_start.0 {
            return Err(Error::Corrupt(format!(
                "bad record length {total} at {lsn}"
            )));
        }
        let mut buf = vec![0u8; total];
        self.store.read_at(lsn.0, &mut buf)?;
        let (rec, n) = LogRecord::decode(&buf)?;
        Ok((rec, lsn.advance(n as u64)))
    }

    /// Iterates records from `from` to the end of the log (including
    /// the unflushed tail).
    pub fn scan(&mut self, from: Lsn) -> LogScan<'_> {
        LogScan {
            lm: self,
            next: from,
        }
    }

    /// Records a completed checkpoint in the master record (durably).
    pub fn write_master(&mut self, last_checkpoint: Lsn) -> Result<()> {
        self.master.last_checkpoint = last_checkpoint;
        self.master.base_lsn = self.base_lsn;
        let mut e = Encoder::with_capacity(20);
        e.put_u32(MASTER_MAGIC);
        e.put_lsn(self.master.last_checkpoint);
        e.put_lsn(self.master.base_lsn);
        self.store.write_master(e.as_slice())
    }

    /// Simulates a node crash: the tail buffer and any unsynced store
    /// bytes vanish; durable state is what restart will see.
    /// Folds the durable (on-device) log state into `h`: the store's
    /// landed bytes plus the master record. The volatile tail is
    /// excluded — this hashes exactly what a crash at this instant
    /// would preserve, which is what the model checker fingerprints to
    /// prune crash branches that converge on the same durable state.
    pub fn durable_hash(&mut self, h: &mut Fnv1a) -> Result<()> {
        let len = self.store.len();
        h.write_u64(len);
        let mut pos = 0u64;
        let mut buf = [0u8; 4096];
        while pos < len {
            let n = (len - pos).min(buf.len() as u64) as usize;
            self.store.read_at(pos, &mut buf[..n])?;
            h.write(&buf[..n]);
            pos += n as u64;
        }
        h.write(&self.store.read_master()?);
        Ok(())
    }

    pub fn simulate_crash(&mut self) {
        self.tail.clear();
        self.store.crash();
        let end = Lsn(self.store.len());
        self.end_lsn = end;
        self.flushed_lsn = end;
        self.tail_start = end;
    }

    /// Simulates a crash that tears an in-flight log write: the first
    /// `landed` bytes of the in-memory tail physically reached the
    /// device before the crash (with the last landed byte flipped if
    /// `corrupt`); the rest of the tail is lost. The surviving fragment
    /// is whatever the interrupted write left behind — restart calls
    /// [`LogManager::repair_tail`] to cut the log back to the last
    /// checksum-valid record boundary before scanning.
    pub fn simulate_crash_torn(&mut self, landed: u64, corrupt: bool) {
        let landed = landed.min(self.tail_bytes());
        let mut partial: Vec<u8> = Vec::with_capacity(landed as usize);
        for chunk in &self.tail {
            if partial.len() as u64 >= landed {
                break;
            }
            let want = (landed as usize - partial.len()).min(chunk.len());
            partial.extend_from_slice(&chunk[..want]);
        }
        if corrupt {
            if let Some(last) = partial.last_mut() {
                *last ^= 0xFF;
            }
        }
        self.tail.clear();
        self.store.crash_with_partial_tail(&partial);
        let end = Lsn(self.store.len());
        self.end_lsn = end;
        self.flushed_lsn = end;
        self.tail_start = end;
    }

    /// Validates the log's tail after a crash: scans forward from the
    /// last synced boundary checking record framing and checksums, and
    /// cuts the store back to the end of the last valid record. Returns
    /// the number of torn bytes discarded — 0 on a clean log.
    /// Idempotent; a torn tail is discarded here and never replayed.
    ///
    /// Every byte below the store's synced boundary went down inside a
    /// completed `sync` of whole records, so only the bytes a torn
    /// write landed past it need rescanning: restart cost is O(torn
    /// tail), not O(live log). A store that cannot report its synced
    /// boundary (a freshly reopened file) falls back to the master
    /// record's checkpoint anchor — durable and record-aligned — then
    /// to the truncation point.
    pub fn repair_tail(&mut self) -> Result<u64> {
        debug_assert!(self.tail.is_empty(), "repair runs on a post-crash log");
        let len = self.store.len();
        let mut pos = self
            .store
            .synced_len()
            .unwrap_or(self.master.last_checkpoint.0)
            .max(self.base_lsn.0)
            .min(len);
        self.repair_scanned.add(len - pos);
        while pos + 8 <= len {
            let mut header = [0u8; 8];
            self.store.read_at(pos, &mut header)?;
            let total = u32::from_le_bytes(header[0..4].try_into().unwrap()) as u64;
            if total < 8 || pos + total > len {
                break;
            }
            let mut buf = vec![0u8; total as usize];
            self.store.read_at(pos, &mut buf)?;
            if LogRecord::decode(&buf).is_err() {
                break;
            }
            pos += total;
        }
        let torn = len - pos;
        if torn > 0 {
            self.store.truncate_to(pos);
            let end = Lsn(pos);
            self.end_lsn = end;
            self.flushed_lsn = end;
            self.tail_start = end;
        }
        Ok(torn)
    }
}

/// Forward scan over log records.
pub struct LogScan<'a> {
    lm: &'a mut LogManager,
    next: Lsn,
}

impl Iterator for LogScan<'_> {
    type Item = Result<(Lsn, LogRecord)>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.next >= self.lm.end_lsn {
            return None;
        }
        let lsn = self.next;
        match self.lm.read_record(lsn) {
            Ok((rec, next)) => {
                self.next = next;
                Some(Ok((lsn, rec)))
            }
            Err(e) => {
                self.next = self.lm.end_lsn; // stop after error
                Some(Err(e))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{LogPayload, PageOp};
    use crate::store::MemLogStore;
    use cblog_common::{PageId, Psn, TxnId};

    fn lm() -> LogManager {
        LogManager::new(NodeId(1), Box::new(MemLogStore::new())).unwrap()
    }

    fn rec(seq: u64, prev: Lsn) -> LogRecord {
        LogRecord {
            txn: TxnId::new(NodeId(1), seq),
            prev_lsn: prev,
            payload: LogPayload::Update {
                pid: PageId::new(NodeId(1), 0),
                psn_before: Psn(seq),
                op: PageOp::WriteRange {
                    off: 0,
                    before: vec![0; 8],
                    after: seq.to_le_bytes().to_vec(),
                },
            },
        }
    }

    #[test]
    fn append_assigns_increasing_lsns_past_preamble() {
        let mut lm = lm();
        let a = lm.append(&rec(1, Lsn::ZERO)).unwrap();
        let b = lm.append(&rec(2, a)).unwrap();
        assert_eq!(a, Lsn(8), "first record after preamble");
        assert!(b > a);
        assert_eq!(lm.records_appended(), 2);
    }

    #[test]
    fn read_back_from_tail_and_store() {
        let mut lm = lm();
        let a = lm.append(&rec(1, Lsn::ZERO)).unwrap();
        let b = lm.append(&rec(2, a)).unwrap();
        // Unflushed: reads come from the tail.
        let (r1, next) = lm.read_record(a).unwrap();
        assert_eq!(r1, rec(1, Lsn::ZERO));
        assert_eq!(next, b);
        lm.force_all().unwrap();
        let c = lm.append(&rec(3, b)).unwrap();
        // Mixed: a,b from store; c from tail.
        assert_eq!(lm.read_record(a).unwrap().0, rec(1, Lsn::ZERO));
        assert_eq!(lm.read_record(b).unwrap().0, rec(2, a));
        assert_eq!(lm.read_record(c).unwrap().0, rec(3, b));
    }

    #[test]
    fn scan_yields_all_records_in_order() {
        let mut lm = lm();
        let mut prev = Lsn::ZERO;
        let mut lsns = Vec::new();
        for i in 1..=5 {
            prev = lm.append(&rec(i, prev)).unwrap();
            lsns.push(prev);
        }
        lm.force(lsns[2]).unwrap();
        let got: Vec<Lsn> = lm.scan(Lsn(8)).map(|r| r.unwrap().0).collect();
        assert_eq!(got, lsns);
    }

    #[test]
    fn force_is_idempotent_and_counted() {
        let mut lm = lm();
        let a = lm.append(&rec(1, Lsn::ZERO)).unwrap();
        lm.force(a).unwrap();
        lm.force(a).unwrap();
        assert_eq!(lm.forces(), 1);
        assert_eq!(lm.flushed_lsn(), lm.end_lsn());
    }

    #[test]
    fn one_force_covers_a_batch_of_records() {
        let mut lm = lm();
        let mut prev = Lsn::ZERO;
        let mut lsns = Vec::new();
        for i in 1..=4 {
            prev = lm.append(&rec(i, prev)).unwrap();
            lsns.push(prev);
        }
        let syncs0 = lm.store_syncs_counter().get();
        assert_eq!(lm.tail_bytes(), lm.end_lsn().0 - lsns[0].0);
        // One force makes the whole batch durable: one sync, one force.
        lm.force(lsns[1]).unwrap();
        assert_eq!(lm.forces(), 1);
        assert_eq!(lm.store_syncs_counter().get(), syncs0 + 1);
        assert_eq!(lm.flushed_lsn(), lm.end_lsn());
        assert_eq!(lm.tail_bytes(), 0);
        // Every record in the batch reads back from the store.
        for (i, l) in lsns.iter().enumerate() {
            assert_eq!(
                lm.read_record(*l).unwrap().0.txn,
                TxnId::new(NodeId(1), i as u64 + 1)
            );
        }
    }

    #[test]
    fn crash_drops_unforced_tail() {
        let mut lm = lm();
        let a = lm.append(&rec(1, Lsn::ZERO)).unwrap();
        lm.force_all().unwrap();
        let b = lm.append(&rec(2, a)).unwrap();
        assert!(lm.read_record(b).is_ok());
        lm.simulate_crash();
        assert_eq!(lm.end_lsn(), b, "end rewinds to durable prefix");
        assert!(lm.read_record(b).is_err());
        assert_eq!(lm.read_record(a).unwrap().0, rec(1, Lsn::ZERO));
    }

    #[test]
    fn torn_crash_keeps_valid_prefix_and_repair_discards_the_rest() {
        // Tear at every byte offset of a 3-record unsynced batch: after
        // repair, exactly the records fully (and validly) landed
        // survive; everything else is discarded, never replayed.
        let mut probe = lm();
        let mut prev = Lsn::ZERO;
        let mut sizes = Vec::new();
        for i in 1..=3 {
            let l = probe.append(&rec(i, prev)).unwrap();
            sizes.push(probe.end_lsn().0 - l.0);
            prev = l;
        }
        let batch: u64 = sizes.iter().sum();
        for landed in 0..=batch {
            for corrupt in [false, true] {
                let mut lm = lm();
                let base = lm.end_lsn();
                let mut prev = Lsn::ZERO;
                for i in 1..=3 {
                    prev = lm.append(&rec(i, prev)).unwrap();
                }
                lm.simulate_crash_torn(landed, corrupt);
                let torn = lm.repair_tail().unwrap();
                // How many whole records does the (possibly corrupted)
                // landed prefix cover?
                let mut valid = 0u64;
                let mut acc = 0u64;
                for s in &sizes {
                    if acc + s < landed || (acc + s == landed && !corrupt) {
                        acc += s;
                        valid += 1;
                    } else {
                        break;
                    }
                }
                assert_eq!(
                    lm.end_lsn().0 - base.0,
                    acc,
                    "landed={landed} corrupt={corrupt}: exact valid prefix survives"
                );
                assert_eq!(torn, landed - acc, "exact torn suffix discarded");
                // The survivors read back intact; the log appends again.
                let mut n = 0u64;
                for r in lm.scan(base) {
                    r.unwrap();
                    n += 1;
                }
                assert_eq!(n, valid);
                assert!(lm.append(&rec(9, Lsn::ZERO)).is_ok());
            }
        }
    }

    #[test]
    fn repair_scan_is_bounded_by_the_torn_tail_not_the_log() {
        // A long history of forced batches, then a small torn tail: the
        // restart scan must cover only the bytes landed past the last
        // sync, not the whole live window.
        let mut lm = lm();
        let mut prev = Lsn::ZERO;
        for i in 1..=100 {
            prev = lm.append(&rec(i, prev)).unwrap();
            lm.force_all().unwrap();
        }
        let synced = lm.flushed_lsn().0;
        assert!(synced > 4_000, "plenty of history below the boundary");
        // One unsynced record, torn mid-write.
        lm.append(&rec(101, prev)).unwrap();
        let pending = lm.end_lsn().0 - synced;
        let landed = pending / 2;
        lm.simulate_crash_torn(landed, true);
        let scanned0 = lm.repair_scanned_counter().get();
        let torn = lm.repair_tail().unwrap();
        assert_eq!(torn, landed, "whole fragment discarded");
        let scanned = lm.repair_scanned_counter().get() - scanned0;
        assert_eq!(scanned, landed, "scan covers exactly the landed fragment");
        assert!(scanned < synced, "O(torn tail), not O(log)");
        // A second repair on the now-clean log rescans nothing.
        let torn = lm.repair_tail().unwrap();
        assert_eq!(torn, 0);
        assert_eq!(
            lm.repair_scanned_counter().get() - scanned0,
            landed,
            "idempotent repair adds no scan work"
        );
    }

    #[test]
    fn repair_still_discards_torn_records_that_survive_below_store_end() {
        // The fragment contains whole valid records followed by a torn
        // one: the scan starting at the synced boundary must keep the
        // valid prefix and discard only the genuinely torn suffix.
        let mut lm = lm();
        let a = lm.append(&rec(1, Lsn::ZERO)).unwrap();
        lm.force_all().unwrap();
        let b = lm.append(&rec(2, a)).unwrap();
        let c = lm.append(&rec(3, b)).unwrap();
        let second = c.0 - b.0;
        let tail = lm.end_lsn().0 - b.0;
        // Record 2 fully lands, record 3 half-lands.
        let landed = second + (tail - second) / 2;
        lm.simulate_crash_torn(landed, false);
        let torn = lm.repair_tail().unwrap();
        assert_eq!(torn, landed - second);
        assert_eq!(lm.end_lsn(), c, "record 2 survives");
        assert_eq!(lm.read_record(b).unwrap().0, rec(2, a));
    }

    #[test]
    fn reads_near_the_durable_boundary_fail_gracefully() {
        // A record LSN within 8 bytes of `tail_start` (as a stale
        // pointer can produce after a torn-tail truncation) must return
        // Corrupt from every byte offset — never short-read or panic.
        let mut lm = lm();
        let a = lm.append(&rec(1, Lsn::ZERO)).unwrap();
        lm.append(&rec(2, a)).unwrap();
        lm.force_all().unwrap();
        let end = lm.end_lsn().0;
        for off in 1..=8 {
            match lm.read_record(Lsn(end - off)) {
                Err(Error::Corrupt(_)) => {}
                other => panic!("offset {off} below boundary: {other:?}"),
            }
        }
        // The same sweep against a truncated torn tail: the boundary
        // moved back, stale LSNs beyond it must still fail cleanly.
        lm.append(&rec(3, Lsn::ZERO)).unwrap();
        let pending = lm.end_lsn().0 - lm.flushed_lsn().0;
        lm.simulate_crash_torn(pending / 2, true);
        lm.repair_tail().unwrap();
        let end = lm.end_lsn().0;
        for off in 1..=8 {
            match lm.read_record(Lsn(end - off)) {
                Err(Error::Corrupt(_)) => {}
                other => panic!("offset {off} after repair: {other:?}"),
            }
        }
    }

    #[test]
    fn repair_tail_is_noop_on_clean_log() {
        let mut lm = lm();
        let a = lm.append(&rec(1, Lsn::ZERO)).unwrap();
        lm.force_all().unwrap();
        lm.simulate_crash();
        assert_eq!(lm.repair_tail().unwrap(), 0);
        assert_eq!(lm.read_record(a).unwrap().0, rec(1, Lsn::ZERO));
    }

    #[test]
    fn bounded_log_reports_full_then_recovers_after_truncate() {
        let mut lm =
            LogManager::with_capacity(NodeId(1), Box::new(MemLogStore::new()), 200).unwrap();
        let mut prev = Lsn::ZERO;
        let mut appended = 0;
        loop {
            match lm.append(&rec(appended + 1, prev)) {
                Ok(l) => {
                    prev = l;
                    appended += 1;
                }
                Err(Error::LogFull(n)) => {
                    assert_eq!(n, NodeId(1));
                    break;
                }
                Err(e) => panic!("unexpected {e}"),
            }
            assert!(appended < 100, "capacity must bind");
        }
        assert!(appended >= 1);
        // Truncating frees logical space.
        lm.truncate(lm.end_lsn());
        assert!(lm.append(&rec(99, prev)).is_ok());
    }

    #[test]
    fn truncate_never_regresses() {
        let mut lm = lm();
        let a = lm.append(&rec(1, Lsn::ZERO)).unwrap();
        let b = lm.append(&rec(2, a)).unwrap();
        lm.truncate(b);
        lm.truncate(a); // ignored
        assert_eq!(lm.base_lsn(), b);
        assert!(lm.read_record(a).is_err(), "below truncation point");
    }

    #[test]
    fn master_record_round_trips_through_restart() {
        let mut store = Box::new(MemLogStore::new());
        // First life.
        let ckpt;
        {
            let mut lm = LogManager::new(NodeId(1), store).unwrap();
            let a = lm.append(&rec(1, Lsn::ZERO)).unwrap();
            ckpt = a;
            lm.force_all().unwrap();
            lm.write_master(ckpt).unwrap();
            lm.simulate_crash();
            // Reclaim the store for the "restart".
            store = Box::new(MemLogStore::new());
            // (MemLogStore cannot be moved out of lm; rebuild a real
            // restart scenario below with a fresh manager over the same
            // data via FileLogStore in the integration tests. Here we
            // at least verify master round-trip by re-reading.)
            assert_eq!(lm.last_checkpoint(), ckpt);
        }
        let lm2 = LogManager::new(NodeId(1), store).unwrap();
        assert_eq!(lm2.last_checkpoint(), Lsn::ZERO);
    }

    #[test]
    fn scan_from_middle() {
        let mut lm = lm();
        let a = lm.append(&rec(1, Lsn::ZERO)).unwrap();
        let b = lm.append(&rec(2, a)).unwrap();
        let c = lm.append(&rec(3, b)).unwrap();
        let got: Vec<Lsn> = lm.scan(b).map(|r| r.unwrap().0).collect();
        assert_eq!(got, vec![b, c]);
    }

    #[test]
    fn reads_outside_the_log_are_rejected() {
        let mut lm = lm();
        let a = lm.append(&rec(1, Lsn::ZERO)).unwrap();
        // Past the end.
        assert!(lm.read_record(lm.end_lsn()).is_err());
        // Mid-record offset decodes garbage and is caught by the crc.
        assert!(lm.read_record(a.advance(4)).is_err());
        // Below the preamble.
        lm.truncate(a);
        assert!(lm.read_record(Lsn(0)).is_err());
    }

    #[test]
    fn scan_from_end_is_empty() {
        let mut lm = lm();
        lm.append(&rec(1, Lsn::ZERO)).unwrap();
        let end = lm.end_lsn();
        assert_eq!(lm.scan(end).count(), 0);
    }

    #[test]
    fn end_lsn_is_conservative_redo_lsn_source() {
        let mut lm = lm();
        let end0 = lm.end_lsn();
        let a = lm.append(&rec(1, Lsn::ZERO)).unwrap();
        assert_eq!(a, end0, "record lands exactly at prior end-of-log");
    }

    /// A store that cannot report its synced boundary — the freshly
    /// reopened file case — so [`LogManager::repair_tail`] must fall
    /// back to the master record's checkpoint anchor and rescan the
    /// forced suffix it can no longer trust blindly.
    struct OpaqueSyncStore(MemLogStore);

    impl LogStore for OpaqueSyncStore {
        fn len(&self) -> u64 {
            self.0.len()
        }
        fn append(&mut self, bytes: &[u8]) -> Result<()> {
            self.0.append(bytes)
        }
        fn read_at(&mut self, pos: u64, buf: &mut [u8]) -> Result<()> {
            self.0.read_at(pos, buf)
        }
        fn sync(&mut self) -> Result<()> {
            self.0.sync()
        }
        fn synced_len(&self) -> Option<u64> {
            None
        }
        fn write_master(&mut self, bytes: &[u8]) -> Result<()> {
            self.0.write_master(bytes)
        }
        fn read_master(&mut self) -> Result<Vec<u8>> {
            self.0.read_master()
        }
        fn crash(&mut self) {
            self.0.crash()
        }
        fn crash_with_partial_tail(&mut self, partial: &[u8]) {
            self.0.crash_with_partial_tail(partial)
        }
        fn truncate_to(&mut self, len: u64) {
            self.0.truncate_to(len)
        }
        fn syncs(&self) -> &Counter {
            self.0.syncs()
        }
        fn bytes_appended(&self) -> &Counter {
            self.0.bytes_appended()
        }
    }

    /// Per-byte torn-tail sweep over the checkpoint-anchor fallback
    /// path: with no synced boundary available the repair scan starts
    /// at the anchor, revalidates the forced records above it, and
    /// must (a) never cut below the forced boundary, (b) always land
    /// on a record boundary — exactly the landed prefix for a clean
    /// tear on a boundary (including `landed == 0`, the tear exactly
    /// on the durable end), one record back when the boundary byte is
    /// corrupted.
    #[test]
    fn repair_fallback_per_byte_sweep_over_anchor_boundary() {
        let build = || {
            let mut lm =
                LogManager::new(NodeId(1), Box::new(OpaqueSyncStore(MemLogStore::new()))).unwrap();
            // Anchored history: two records forced, master points at
            // the second (the checkpoint stand-in), two more forced
            // past the anchor, two left pending in the tail.
            let a = lm.append(&rec(1, Lsn::ZERO)).unwrap();
            let ckpt = lm.append(&rec(2, a)).unwrap();
            lm.force_all().unwrap();
            lm.write_master(ckpt).unwrap();
            let c = lm.append(&rec(3, ckpt)).unwrap();
            let d = lm.append(&rec(4, c)).unwrap();
            lm.force_all().unwrap();
            let e = lm.append(&rec(5, d)).unwrap();
            lm.append(&rec(6, e)).unwrap();
            lm
        };
        let probe = build();
        let forced_end = probe.flushed_lsn().0;
        let sizes = probe.tail_record_sizes();
        assert_eq!(sizes.len(), 2);
        let pending = probe.tail_bytes();
        for landed in 0..=pending {
            for corrupt in [false, true] {
                let mut lm = build();
                lm.simulate_crash_torn(landed, corrupt);
                lm.repair_tail().unwrap();
                let end = lm.end_lsn().0;
                assert!(
                    end >= forced_end,
                    "landed={landed} corrupt={corrupt}: repair cut below \
                     the forced boundary ({end} < {forced_end})"
                );
                let boundary_at = |n: u64| forced_end + sizes.iter().take(n as usize).sum::<u64>();
                let whole = if landed >= sizes[0] + sizes[1] {
                    2
                } else if landed >= sizes[0] {
                    1
                } else {
                    0
                };
                let on_boundary = landed == boundary_at(whole) - forced_end;
                let want = if corrupt && landed > 0 {
                    // The corrupted byte invalidates the record it
                    // lands in — even when the tear is otherwise
                    // boundary-aligned.
                    boundary_at(whole.saturating_sub(on_boundary as u64))
                } else {
                    boundary_at(whole)
                };
                assert_eq!(
                    end, want,
                    "landed={landed} corrupt={corrupt}: repair landed off-boundary"
                );
                // Everything kept is readable from the anchor down.
                let kept: Vec<_> = lm.scan(Lsn(8)).collect::<Result<_>>().unwrap();
                assert!(kept.len() >= 4, "landed={landed}: forced records lost");
            }
        }
    }
}
