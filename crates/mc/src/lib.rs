//! Exhaustive crash-point model checker for client-based-logging
//! recovery.
//!
//! The checker enumerates — not samples — the product of every fault
//! dimension the simulator can express over a tiny cluster and a short
//! scripted workload:
//!
//! * **Crash points**: after every committed-transaction prefix of the
//!   workload (`k = 0..=commits`), over every configured victim set
//!   (client, owner, or both at once).
//! * **Torn tails**: every distinct landing point of each victim's
//!   unforced log tail ([`cblog_core::Cluster::torn_landing_points`]),
//!   with and without a corrupted final sector. Single-victim sets
//!   sweep per-byte over the final record; multi-victim products use
//!   the record-boundary grid (per-byte positions converge to the
//!   preceding boundary after repair — an equivalence the state-hash
//!   dedup below independently verifies).
//! * **Recovery interruptions**: a second crash after every
//!   [`RecoveryPhase`] boundary, optionally composed with another torn
//!   tail at the interrupt, then a re-run to completion.
//! * **Message schedules**: every single-step [`FaultScript`] —
//!   drop / duplicate / delay / reorder of the i-th message — over a
//!   bounded window of the recovery message sequence.
//!
//! Every branch replays the scripted workload from scratch on the
//! deterministic simulator, crashes, recovers, and is checked three
//! ways: the [`Oracle`] re-reads every acked commit (durability +
//! page-image equality), the tracing watchdog audits the event stream
//! ([`cblog_core::Cluster::trace_check`]), and the in-flight loser
//! writes must not resurface.
//!
//! **Pruning.** Recovery is a deterministic function of the durable
//! state left by the crash plus the volatile state of the surviving
//! nodes. Within one `(k, evict, victims)` cell the survivors' state
//! is fixed, so two tears whose post-repair durable fingerprints
//! ([`cblog_core::Cluster::durable_state_hash`]) collide cannot
//! diverge later — the checker repairs the tails (idempotent; exactly
//! what recovery would do first), hashes, and skips the whole interrupt
//! × schedule sub-tree of any converged tear.
//!
//! **Shrinking.** A violating branch is greedily minimized — drop
//! schedule steps, clear interrupts, untear, drop victims, shorten the
//! committed prefix — re-running the checker on each candidate until no
//! single simplification still fails. Both the original and the shrunk
//! branch print as replayable specs (see [`Branch::spec`] /
//! [`Branch::parse`]).

use std::collections::BTreeSet;
use std::fmt::Write as _;

use cblog_common::{CostModel, Error, NodeId, PageId, RecoveryPhase};
use cblog_core::{
    recovery, Cluster, ClusterConfig, FaultAction, FaultPlan, FaultScript, GroupCommitPolicy,
    RecoveryOptions,
};
use cblog_sim::Oracle;

/// The explored space: scenario shape plus enumeration bounds.
#[derive(Clone, Debug)]
pub struct Config {
    /// Cluster size; node 0 owns every page, nodes 1.. are clients.
    pub nodes: u32,
    /// Pages owned by node 0.
    pub pages: u32,
    /// Length of the scripted committed workload (crash points are
    /// enumerated after every prefix of it).
    pub commits: usize,
    /// Victim sets to crash, e.g. `[[1], [0], [0, 1]]`.
    pub victim_sets: Vec<Vec<u32>>,
    /// Whether to enumerate the variant where each client victim's
    /// in-flight dirty page is evicted to the owner before the crash
    /// (the page-replacement path that makes loser updates live only
    /// in the owner's buffer).
    pub evict_variants: Vec<bool>,
    /// Enumerate a second crash after every recovery phase.
    pub interrupts: bool,
    /// Compose the interrupting crash with a torn tail.
    pub interrupt_tears: bool,
    /// Message-schedule window: single-step scripts target the first
    /// `sched_window` messages of recovery.
    pub sched_window: u64,
    /// Actions enumerated per scheduled message.
    pub sched_actions: Vec<FaultAction>,
    /// Deliberately skip the undo phase — the planted bug the
    /// must-fail self-test proves the checker catches.
    pub sabotage: bool,
    /// Hard cap on simulator runs; exceeding it flags the report as
    /// truncated instead of looping forever.
    pub max_runs: u64,
    /// How many violating branches to keep (and shrink).
    pub max_counterexamples: usize,
}

impl Config {
    /// The bounded budget CI explores on every run: 3 nodes, 2 pages,
    /// short workload, all three victim sets, interrupts and a small
    /// schedule window. A few thousand branches, well under a minute.
    pub fn ci() -> Config {
        Config {
            nodes: 3,
            pages: 2,
            commits: 2,
            victim_sets: vec![vec![1], vec![0], vec![0, 1]],
            evict_variants: vec![false, true],
            interrupts: true,
            interrupt_tears: true,
            sched_window: 4,
            sched_actions: FaultAction::ALL.to_vec(),
            sabotage: false,
            max_runs: 200_000,
            max_counterexamples: 5,
        }
    }

    /// The planted-bug space [`must_fail_self_test`] explores with
    /// recovery deliberately sabotaged (undo skipped): small, but wide
    /// enough that full-tail tears and evicted dirty pages both carry
    /// a loser update past the crash.
    pub fn sabotaged() -> Config {
        Config {
            nodes: 2,
            pages: 2,
            commits: 1,
            victim_sets: vec![vec![1]],
            evict_variants: vec![false, true],
            interrupts: false,
            interrupt_tears: false,
            sched_window: 0,
            sched_actions: Vec::new(),
            sabotage: true,
            max_runs: 10_000,
            max_counterexamples: 1,
        }
    }

    /// The full acceptance space: a 2-node cluster over 2 pages with
    /// the complete per-byte torn-tail sweep, every victim set, every
    /// interrupt composition, and a wider schedule window.
    pub fn full() -> Config {
        Config {
            nodes: 2,
            pages: 2,
            commits: 3,
            victim_sets: vec![vec![1], vec![0], vec![0, 1]],
            evict_variants: vec![false, true],
            interrupts: true,
            interrupt_tears: true,
            sched_window: 8,
            sched_actions: FaultAction::ALL.to_vec(),
            sabotage: false,
            max_runs: 2_000_000,
            max_counterexamples: 5,
        }
    }
}

/// One fully-determined branch of the exploration: everything needed
/// to replay a run bit-for-bit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Branch {
    /// Committed-workload prefix length before the crash.
    pub crash_k: usize,
    /// Client victims evict their in-flight dirty page to the owner
    /// before crashing.
    pub evict: bool,
    /// The nodes that crash, in order.
    pub victims: Vec<u32>,
    /// Per-victim torn-write `(landed, corrupt)`, parallel to
    /// `victims`. `(0, false)` is a clean crash (whole tail lost).
    pub tears: Vec<(u64, bool)>,
    /// Crash recovery again after this phase, then re-run it.
    pub interrupt: Option<RecoveryPhase>,
    /// The interrupting crash also tears (full tail landed, corrupt).
    pub interrupt_tear: bool,
    /// Scripted message faults, as absolute `(sequence, action)`.
    pub schedule: Vec<(u64, FaultAction)>,
}

fn action_name(a: FaultAction) -> &'static str {
    match a {
        FaultAction::Drop => "drop",
        FaultAction::Duplicate => "dup",
        FaultAction::Delay => "delay",
        FaultAction::Reorder => "reorder",
    }
}

fn action_parse(s: &str) -> Result<FaultAction, String> {
    FaultAction::ALL
        .into_iter()
        .find(|a| action_name(*a) == s)
        .ok_or_else(|| format!("unknown fault action {s:?}"))
}

fn phase_parse(s: &str) -> Result<RecoveryPhase, String> {
    RecoveryPhase::ALL
        .into_iter()
        .find(|p| p.to_string() == s)
        .ok_or_else(|| format!("unknown recovery phase {s:?}"))
}

impl Branch {
    /// The replayable one-line spec: feed it back through
    /// [`Branch::parse`] (the checker binary's `--replay`) to re-run
    /// exactly this branch.
    pub fn spec(&self) -> String {
        let mut s = format!("k={} evict={}", self.crash_k, self.evict as u8);
        write!(
            s,
            " victims={}",
            self.victims
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join(",")
        )
        .unwrap();
        write!(
            s,
            " tears={}",
            self.tears
                .iter()
                .map(|(l, c)| format!("{l}{}", if *c { "c" } else { "" }))
                .collect::<Vec<_>>()
                .join(",")
        )
        .unwrap();
        match self.interrupt {
            Some(p) => write!(s, " int={p} inttear={}", self.interrupt_tear as u8).unwrap(),
            None => s.push_str(" int=- inttear=0"),
        }
        if self.schedule.is_empty() {
            s.push_str(" sched=-");
        } else {
            write!(
                s,
                " sched={}",
                self.schedule
                    .iter()
                    .map(|(i, a)| format!("{i}:{}", action_name(*a)))
                    .collect::<Vec<_>>()
                    .join(",")
            )
            .unwrap();
        }
        s
    }

    /// Parses a [`Branch::spec`] string.
    pub fn parse(spec: &str) -> Result<Branch, String> {
        let mut b = Branch {
            crash_k: 0,
            evict: false,
            victims: Vec::new(),
            tears: Vec::new(),
            interrupt: None,
            interrupt_tear: false,
            schedule: Vec::new(),
        };
        for tok in spec.split_whitespace() {
            let (key, val) = tok
                .split_once('=')
                .ok_or_else(|| format!("bad token {tok:?}"))?;
            match key {
                "k" => b.crash_k = val.parse().map_err(|e| format!("k: {e}"))?,
                "evict" => b.evict = val == "1",
                "victims" => {
                    for v in val.split(',').filter(|v| !v.is_empty()) {
                        b.victims
                            .push(v.parse().map_err(|e| format!("victims: {e}"))?);
                    }
                }
                "tears" => {
                    for t in val.split(',').filter(|t| !t.is_empty()) {
                        let (num, corrupt) = match t.strip_suffix('c') {
                            Some(n) => (n, true),
                            None => (t, false),
                        };
                        let landed = num.parse().map_err(|e| format!("tears: {e}"))?;
                        b.tears.push((landed, corrupt));
                    }
                }
                "int" => {
                    b.interrupt = if val == "-" {
                        None
                    } else {
                        Some(phase_parse(val)?)
                    }
                }
                "inttear" => b.interrupt_tear = val == "1",
                "sched" => {
                    if val != "-" {
                        for step in val.split(',') {
                            let (i, a) = step
                                .split_once(':')
                                .ok_or_else(|| format!("bad sched step {step:?}"))?;
                            b.schedule.push((
                                i.parse().map_err(|e| format!("sched: {e}"))?,
                                action_parse(a)?,
                            ));
                        }
                    }
                }
                _ => return Err(format!("unknown key {key:?}")),
            }
        }
        if b.victims.is_empty() {
            return Err("spec names no victims".into());
        }
        if b.tears.len() != b.victims.len() {
            return Err(format!(
                "{} victims but {} tears",
                b.victims.len(),
                b.tears.len()
            ));
        }
        Ok(b)
    }
}

/// A violating branch, as found and as shrunk.
#[derive(Clone, Debug)]
pub struct Counterexample {
    /// The branch the explorer tripped on.
    pub branch: Branch,
    /// What check failed on it.
    pub error: String,
    /// The greedy-minimal branch that still fails.
    pub shrunk: Branch,
    /// What check fails on the shrunk branch.
    pub shrunk_error: String,
}

/// Exploration totals.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Branches actually run on the simulator.
    pub explored: u64,
    /// Tear branches skipped because their post-repair durable
    /// fingerprint matched an already-explored branch of the same
    /// crash cell (each prune skips that branch's whole interrupt ×
    /// schedule sub-tree).
    pub pruned: u64,
    /// Distinct post-crash durable states seen.
    pub distinct_states: u64,
    /// Total violating branches (all counted, even past the
    /// counterexample cap).
    pub violations: u64,
    /// Up to `max_counterexamples` shrunk counterexamples.
    pub counterexamples: Vec<Counterexample>,
    /// The `max_runs` cap fired before the space was exhausted.
    pub truncated: bool,
}

struct Built {
    c: Cluster,
    oracle: Oracle,
}

fn owner_page(cfg: &Config, i: usize) -> PageId {
    PageId::new(NodeId(0), i as u32 % cfg.pages)
}

/// The page a victim's in-flight transaction writes: distinct per
/// victim *position* so victim sets up to `pages` wide never
/// self-conflict.
fn inflight_page(cfg: &Config, victim_pos: usize) -> PageId {
    PageId::new(NodeId(0), victim_pos as u32 % cfg.pages)
}

const INFLIGHT_SLOT: usize = 3;

fn sim_err(what: &str, e: Error) -> String {
    format!("{what}: {e}")
}

/// Replays the scripted workload to the branch's crash point: `k`
/// committed transactions round-robined over the clients and pages,
/// then one in-flight (uncommitted, unforced) transaction per victim
/// that overwrites a committed slot and stamps a marker slot.
fn build_workload(cfg: &Config, b: &Branch) -> Result<Built, String> {
    if cfg.nodes < 2 {
        return Err("scenario needs at least one client node".into());
    }
    let mut owned = vec![0u32; cfg.nodes as usize];
    owned[0] = cfg.pages;
    let mut c = Cluster::new(
        ClusterConfig::builder()
            .owned_pages(owned)
            .page_size(1024)
            .buffer_frames(16)
            .default_owned_pages(0)
            .cost(CostModel::unit())
            .group_commit(GroupCommitPolicy::Immediate)
            .faults(FaultPlan::default().with_script(FaultScript::new(b.schedule.clone())))
            .tracing(true)
            .build(),
    )
    .map_err(|e| sim_err("cluster build", e))?;
    let mut oracle = Oracle::new();
    for i in 0..b.crash_k.min(cfg.commits) {
        let client = NodeId(1 + (i as u32 % (cfg.nodes - 1)));
        let pid = owner_page(cfg, i);
        let v = 100 + i as u64;
        let t = c.begin(client).map_err(|e| sim_err("begin", e))?;
        c.write_u64(t, pid, 0, v).map_err(|e| sim_err("write", e))?;
        oracle.stage(i as u64, pid, 0, v);
        c.commit(t).map_err(|e| sim_err("commit", e))?;
        oracle.commit(i as u64);
    }
    for (pos, &v) in b.victims.iter().enumerate() {
        let pid = inflight_page(cfg, pos);
        let t = c
            .begin(NodeId(v))
            .map_err(|e| sim_err("in-flight begin", e))?;
        c.write_u64(t, pid, 0, 9000 + v as u64)
            .map_err(|e| sim_err("in-flight overwrite", e))?;
        c.write_u64(t, pid, INFLIGHT_SLOT, 9500 + v as u64)
            .map_err(|e| sim_err("in-flight marker", e))?;
        if b.evict && v != 0 {
            c.evict_page(NodeId(v), pid)
                .map_err(|e| sim_err("evict", e))?;
        }
    }
    Ok(Built { c, oracle })
}

fn crash_victims(b: &Branch, bu: &mut Built) {
    for (&v, &(landed, corrupt)) in b.victims.iter().zip(&b.tears) {
        bu.c.crash_torn(NodeId(v), landed, corrupt);
    }
}

/// Runs the branch's recovery (with interruption and re-run if the
/// branch says so) and applies all three checks. `Err` is a violation.
fn recover_and_check(cfg: &Config, b: &Branch, bu: &mut Built) -> Result<(), String> {
    let victims: Vec<NodeId> = b.victims.iter().map(|&v| NodeId(v)).collect();
    let base_opts = || {
        let o = RecoveryOptions::nodes(&victims);
        if cfg.sabotage {
            o.sabotage_skip_undo()
        } else {
            o
        }
    };
    if let Some(phase) = b.interrupt {
        let mut opts = base_opts().crash_after(phase);
        if b.interrupt_tear {
            opts = opts.crash_after_tear(u64::MAX, true);
        }
        match recovery::recover(&mut bu.c, &opts) {
            Err(Error::RecoveryInterrupted(p)) if p == phase => {}
            Err(e) => return Err(format!("interrupted recovery failed oddly: {e}")),
            Ok(_) => return Err(format!("crash_after({phase}) did not interrupt")),
        }
    }
    recovery::recover(&mut bu.c, &base_opts()).map_err(|e| format!("recovery failed: {e}"))?;
    // Check 1: no in-flight loser write survives recovery. (Runs
    // before the oracle pass so the common loser-resurface violation
    // fails on a one-line error instead of a flight-recorder dump.)
    let reader = NodeId(cfg.nodes - 1);
    let t = bu.c.begin(reader).map_err(|e| sim_err("check begin", e))?;
    for (pos, &v) in b.victims.iter().enumerate() {
        let pid = inflight_page(cfg, pos);
        let got =
            bu.c.read_u64(t, pid, INFLIGHT_SLOT)
                .map_err(|e| sim_err("check read", e))?;
        if got != 0 {
            return Err(format!(
                "loser marker resurfaced: node {v} wrote {} to {pid:?} slot {INFLIGHT_SLOT} \
                 uncommitted, read back {got}",
                9500 + v as u64
            ));
        }
        let want = bu.oracle.expect(pid, 0).unwrap_or(0);
        let got =
            bu.c.read_u64(t, pid, 0)
                .map_err(|e| sim_err("check read", e))?;
        if got != want {
            return Err(format!(
                "loser overwrite survived: {pid:?} slot 0 is {got}, committed state says {want}"
            ));
        }
    }
    bu.c.commit(t).map_err(|e| sim_err("check commit", e))?;
    // Check 2: every acked commit is durable and reads back exactly.
    // Quiet variant: the shrinker re-runs failing branches many times,
    // and a flight-recorder dump per run would swamp the output.
    bu.oracle
        .verify_quiet(&mut bu.c, reader)
        .map_err(|e| format!("oracle: {e}"))?;
    // Check 3: the tracing watchdog audits the whole event stream.
    bu.c.trace_check().map_err(|e| format!("watchdog: {e}"))?;
    Ok(())
}

/// Replays one branch from scratch. `Err` is a violation (or a
/// malformed branch).
pub fn run_branch(cfg: &Config, b: &Branch) -> Result<(), String> {
    let mut bu = build_workload(cfg, b)?;
    crash_victims(b, &mut bu);
    recover_and_check(cfg, b, &mut bu)
}

fn record_violation(cfg: &Config, rep: &mut Report, b: &Branch, err: String) {
    rep.violations += 1;
    if rep.counterexamples.len() < cfg.max_counterexamples {
        let shrunk = shrink(cfg, b);
        let shrunk_error = run_branch(cfg, &shrunk).err().unwrap_or_default();
        rep.counterexamples.push(Counterexample {
            branch: b.clone(),
            error: err,
            shrunk,
            shrunk_error,
        });
    }
}

/// The per-victim tear grids for one crash cell: the first victim of a
/// single-victim set sweeps per-byte over its final record; wider sets
/// use the record-boundary grid throughout. Corrupting a zero-byte
/// landing is a no-op, so `(0, true)` is not enumerated.
fn tear_grids(probe: &Cluster, victims: &[u32]) -> Vec<Vec<(u64, bool)>> {
    victims
        .iter()
        .map(|&v| {
            let points = if victims.len() == 1 {
                probe.torn_landing_points(NodeId(v))
            } else {
                probe.torn_record_boundaries(NodeId(v))
            };
            let mut grid = Vec::with_capacity(points.len() * 2);
            for p in points {
                grid.push((p, false));
                if p > 0 {
                    grid.push((p, true));
                }
            }
            grid
        })
        .collect()
}

fn cartesian(grids: &[Vec<(u64, bool)>]) -> Vec<Vec<(u64, bool)>> {
    let mut out: Vec<Vec<(u64, bool)>> = vec![Vec::new()];
    for grid in grids {
        let mut next = Vec::with_capacity(out.len() * grid.len());
        for prefix in &out {
            for &cell in grid {
                let mut row = prefix.clone();
                row.push(cell);
                next.push(row);
            }
        }
        out = next;
    }
    out
}

/// Exhaustively explores the configured space. The only `Err` is a
/// malformed scenario; violations come back inside the report.
pub fn explore(cfg: &Config) -> Result<Report, String> {
    let mut rep = Report::default();
    // Prune key: crash cell (fixes the survivors' volatile state) +
    // post-repair durable fingerprint (fixes everything else recovery
    // can observe).
    let mut seen: BTreeSet<(usize, bool, Vec<u32>, u64)> = BTreeSet::new();
    'outer: for k in 0..=cfg.commits {
        for &evict in &cfg.evict_variants {
            for victims in &cfg.victim_sets {
                let base = Branch {
                    crash_k: k,
                    evict,
                    victims: victims.clone(),
                    tears: vec![(0, false); victims.len()],
                    interrupt: None,
                    interrupt_tear: false,
                    schedule: Vec::new(),
                };
                // One probe run to size the tear grids (deterministic,
                // so the grid is identical on every replay).
                let probe = build_workload(cfg, &base)?;
                let grids = tear_grids(&probe.c, victims);
                drop(probe);
                for tears in cartesian(&grids) {
                    if rep.explored >= cfg.max_runs {
                        rep.truncated = true;
                        break 'outer;
                    }
                    let mut b = base.clone();
                    b.tears = tears;
                    // Run to the crash, repair, fingerprint: converged
                    // tears skip their whole sub-tree.
                    let mut bu = build_workload(cfg, &b)?;
                    crash_victims(&b, &mut bu);
                    let ids: Vec<NodeId> = b.victims.iter().map(|&v| NodeId(v)).collect();
                    bu.c.repair_tails(&ids)
                        .map_err(|e| sim_err("tail repair", e))?;
                    let h =
                        bu.c.durable_state_hash()
                            .map_err(|e| sim_err("state hash", e))?;
                    if !seen.insert((k, evict, victims.clone(), h)) {
                        rep.pruned += 1;
                        continue;
                    }
                    rep.distinct_states += 1;
                    // The fingerprinted run doubles as the branch's
                    // base run (repair is idempotent), and its message
                    // counter anchors the schedule window.
                    let m0 = bu.c.network().script_msgs_seen();
                    rep.explored += 1;
                    if let Err(e) = recover_and_check(cfg, &b, &mut bu) {
                        record_violation(cfg, &mut rep, &b, e);
                    }
                    let m1 = bu.c.network().script_msgs_seen();
                    drop(bu);
                    if cfg.interrupts {
                        for phase in RecoveryPhase::ALL {
                            for itear in [false, true] {
                                if itear && !cfg.interrupt_tears {
                                    continue;
                                }
                                let mut ib = b.clone();
                                ib.interrupt = Some(phase);
                                ib.interrupt_tear = itear;
                                rep.explored += 1;
                                if let Err(e) = run_branch(cfg, &ib) {
                                    record_violation(cfg, &mut rep, &ib, e);
                                }
                            }
                        }
                    }
                    let window = cfg.sched_window.min(m1.saturating_sub(m0));
                    for i in 0..window {
                        for &a in &cfg.sched_actions {
                            let mut sb = b.clone();
                            sb.schedule = vec![(m0 + i, a)];
                            rep.explored += 1;
                            if let Err(e) = run_branch(cfg, &sb) {
                                record_violation(cfg, &mut rep, &sb, e);
                            }
                        }
                    }
                }
            }
        }
    }
    Ok(rep)
}

/// Simpler-first single-step simplifications of a branch.
fn shrink_candidates(b: &Branch) -> Vec<Branch> {
    let mut out = Vec::new();
    for i in 0..b.schedule.len() {
        let mut c = b.clone();
        c.schedule.remove(i);
        out.push(c);
    }
    if b.interrupt_tear {
        let mut c = b.clone();
        c.interrupt_tear = false;
        out.push(c);
    }
    if b.interrupt.is_some() {
        let mut c = b.clone();
        c.interrupt = None;
        c.interrupt_tear = false;
        out.push(c);
    }
    for i in 0..b.tears.len() {
        if b.tears[i].1 {
            let mut c = b.clone();
            c.tears[i].1 = false;
            out.push(c);
        }
        if b.tears[i].0 > 0 {
            let mut c = b.clone();
            c.tears[i].0 = 0;
            c.tears[i].1 = false;
            out.push(c);
        }
    }
    if b.victims.len() > 1 {
        for i in 0..b.victims.len() {
            let mut c = b.clone();
            c.victims.remove(i);
            c.tears.remove(i);
            out.push(c);
        }
    }
    if b.evict {
        let mut c = b.clone();
        c.evict = false;
        out.push(c);
    }
    if b.crash_k > 0 {
        let mut c = b.clone();
        c.crash_k = 0;
        out.push(c);
        let mut c = b.clone();
        c.crash_k -= 1;
        out.push(c);
    }
    out
}

/// Greedily minimizes a failing branch: keeps applying the first
/// single-step simplification that still fails until none does. Every
/// candidate strictly shrinks a well-founded measure, so this
/// terminates; the result is 1-minimal (no single simplification of it
/// reproduces the violation).
pub fn shrink(cfg: &Config, b: &Branch) -> Branch {
    let mut best = b.clone();
    if run_branch(cfg, &best).is_ok() {
        return best;
    }
    loop {
        let mut improved = false;
        for cand in shrink_candidates(&best) {
            if run_branch(cfg, &cand).is_err() {
                best = cand;
                improved = true;
                break;
            }
        }
        if !improved {
            return best;
        }
    }
}

/// Proves the checker can fail — the guard against a vacuous green
/// run. Explores [`Config::sabotaged`] (recovery with the undo phase
/// skipped) and demands that violations surface, that the kept
/// counterexample shrinks to a schedule-free, interrupt-free branch,
/// that the shrunk branch still reproduces, and that the shrinker
/// strips deliberately-added noise (an interrupt and a scripted
/// duplicate) back off a violating branch. `Ok` carries the summary;
/// `Err` means the checker would miss a real recovery bug.
pub fn must_fail_self_test() -> Result<String, String> {
    let cfg = Config::sabotaged();
    let rep = explore(&cfg)?;
    if rep.violations == 0 {
        return Err(format!(
            "sabotaged recovery (undo skipped) passed the checker over {} branches",
            rep.explored
        ));
    }
    let cx = rep
        .counterexamples
        .first()
        .ok_or("violations counted but no counterexample kept")?;
    if !cx.shrunk.schedule.is_empty() || cx.shrunk.interrupt.is_some() {
        return Err(format!(
            "shrinker left a non-minimal counterexample: {}",
            cx.shrunk.spec()
        ));
    }
    if run_branch(&cfg, &cx.shrunk).is_ok() {
        return Err(format!(
            "shrunk counterexample no longer reproduces: {}",
            cx.shrunk.spec()
        ));
    }
    let mut noisy = cx.shrunk.clone();
    noisy.interrupt = Some(RecoveryPhase::Analysis);
    noisy.schedule = vec![(0, FaultAction::Duplicate)];
    if run_branch(&cfg, &noisy).is_err() {
        let s = shrink(&cfg, &noisy);
        if !s.schedule.is_empty() || s.interrupt.is_some() {
            return Err(format!(
                "shrinker failed to strip planted noise: {}",
                s.spec()
            ));
        }
    }
    Ok(format!(
        "planted undo-skip caught: {} violations in {} branches; shrunk to `{}` ({})",
        rep.violations,
        rep.explored,
        cx.shrunk.spec(),
        cx.shrunk_error
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn branch_spec_roundtrips() {
        let b = Branch {
            crash_k: 2,
            evict: true,
            victims: vec![0, 1],
            tears: vec![(34, true), (0, false)],
            interrupt: Some(RecoveryPhase::Undo),
            interrupt_tear: true,
            schedule: vec![(12, FaultAction::Drop), (13, FaultAction::Duplicate)],
        };
        let spec = b.spec();
        assert_eq!(Branch::parse(&spec).unwrap(), b);
        let plain = Branch {
            interrupt: None,
            interrupt_tear: false,
            schedule: Vec::new(),
            ..b
        };
        assert_eq!(Branch::parse(&plain.spec()).unwrap(), plain);
    }

    #[test]
    fn spec_parse_rejects_malformed() {
        assert!(Branch::parse("k=1").is_err());
        assert!(Branch::parse("victims=1 tears=3,4").is_err());
        assert!(Branch::parse("victims=1 tears=3 int=NoSuchPhase").is_err());
        assert!(Branch::parse("victims=1 tears=3 sched=7:melt").is_err());
    }
}
