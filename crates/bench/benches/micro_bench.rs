//! Micro-benchmarks of the substrate (DESIGN.md §4: m1–m6): log
//! append/force batching, buffer pool, lock tables, PSN-filtered
//! replay, DPT maintenance, and the B+-tree access method.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use cblog_common::{Lsn, NodeId, PageId, Psn, TxnId};
use cblog_locks::{GlobalLockTable, LocalLockTable, LockMode};
use cblog_storage::{BufferPool, Page, PageKind};
use cblog_wal::{DirtyPageTable, LogManager, LogPayload, LogRecord, MemLogStore, PageOp};

fn update_record(seq: u64, prev: Lsn) -> LogRecord {
    LogRecord {
        txn: TxnId::new(NodeId(1), seq),
        prev_lsn: prev,
        payload: LogPayload::Update {
            pid: PageId::new(NodeId(1), (seq % 64) as u32),
            psn_before: Psn(seq),
            op: PageOp::WriteRange {
                off: ((seq % 100) * 8) as u32,
                before: seq.to_le_bytes().to_vec(),
                after: (seq + 1).to_le_bytes().to_vec(),
            },
        },
    }
}

fn m1_log_append(c: &mut Criterion) {
    let mut g = c.benchmark_group("m1_log_append");
    g.throughput(Throughput::Elements(1000));
    g.bench_function("append_1000_then_force", |b| {
        b.iter(|| {
            let mut lm = LogManager::new(NodeId(1), Box::new(MemLogStore::new())).unwrap();
            let mut prev = Lsn::ZERO;
            for i in 0..1000 {
                prev = lm.append(&update_record(i, prev)).unwrap();
            }
            lm.force_all().unwrap();
            black_box(lm.end_lsn())
        })
    });
    g.bench_function("append_1000_force_each", |b| {
        b.iter(|| {
            let mut lm = LogManager::new(NodeId(1), Box::new(MemLogStore::new())).unwrap();
            let mut prev = Lsn::ZERO;
            for i in 0..1000 {
                prev = lm.append(&update_record(i, prev)).unwrap();
                lm.force(prev).unwrap();
            }
            black_box(lm.forces())
        })
    });
    g.finish();
}

fn m2_buffer_pool(c: &mut Criterion) {
    let mut g = c.benchmark_group("m2_buffer_pool");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("hit_heavy_lookup", |b| {
        let mut bp = BufferPool::new(128);
        for i in 0..128u32 {
            bp.insert(
                Page::new(PageId::new(NodeId(1), i), PageKind::Raw, Psn(1), 1024),
                false,
            )
            .unwrap();
        }
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..10_000u32 {
                if bp.get(PageId::new(NodeId(1), i % 128)).is_some() {
                    acc += 1;
                }
            }
            black_box(acc)
        })
    });
    g.bench_function("evict_heavy_insert", |b| {
        b.iter(|| {
            let mut bp = BufferPool::new(64);
            for i in 0..10_000u32 {
                bp.insert(
                    Page::new(PageId::new(NodeId(1), i), PageKind::Raw, Psn(1), 1024),
                    i % 3 == 0,
                )
                .unwrap();
            }
            black_box(bp.len())
        })
    });
    g.finish();
}

fn m3_lock_tables(c: &mut Criterion) {
    let mut g = c.benchmark_group("m3_lock_tables");
    g.throughput(Throughput::Elements(1000));
    g.bench_function("local_grant_release_cycle", |b| {
        b.iter(|| {
            let mut lt = LocalLockTable::new();
            for i in 0..1000u64 {
                let t = TxnId::new(NodeId(1), i);
                let p = PageId::new(NodeId(0), (i % 32) as u32);
                let _ = lt.request(t, p, LockMode::Exclusive);
                lt.release_all(t);
            }
            black_box(lt.grant_count())
        })
    });
    g.bench_function("global_callback_cycle", |b| {
        b.iter(|| {
            let mut gt = GlobalLockTable::new();
            let p = PageId::new(NodeId(0), 0);
            for i in 0..1000u32 {
                let a = NodeId(1 + (i % 4));
                match gt.request(p, a, LockMode::Exclusive) {
                    cblog_locks::GlobalRequestOutcome::Granted => {}
                    cblog_locks::GlobalRequestOutcome::NeedsCallbacks(cbs) => {
                        for (v, act) in cbs {
                            gt.callback_applied(p, v, act);
                        }
                        let _ = gt.request(p, a, LockMode::Exclusive);
                    }
                }
            }
            black_box(gt.grant_count())
        })
    });
    g.finish();
}

fn m4_psn_replay(c: &mut Criterion) {
    // Replay filtering: a page with 1000 logged updates rebuilt from
    // PSN 1.
    let mut lm = LogManager::new(NodeId(1), Box::new(MemLogStore::new())).unwrap();
    let pid = PageId::new(NodeId(1), 0);
    let mut prev = Lsn::ZERO;
    for i in 0..1000u64 {
        prev = lm
            .append(&LogRecord {
                txn: TxnId::new(NodeId(1), 1),
                prev_lsn: prev,
                payload: LogPayload::Update {
                    pid,
                    psn_before: Psn(1 + i),
                    op: PageOp::WriteRange {
                        off: ((i % 100) * 8) as u32,
                        before: i.to_le_bytes().to_vec(),
                        after: (i + 1).to_le_bytes().to_vec(),
                    },
                },
            })
            .unwrap();
    }
    lm.force_all().unwrap();
    let mut g = c.benchmark_group("m4_psn_replay");
    g.throughput(Throughput::Elements(1000));
    g.bench_function("scan_and_apply_1000", |b| {
        b.iter(|| {
            let mut page = Page::new(pid, PageKind::Raw, Psn(1), 1024);
            let mut pos = Lsn(8);
            let end = lm.end_lsn();
            let mut applied = 0u64;
            while pos < end {
                let (rec, next) = lm.read_record(pos).unwrap();
                if rec.page() == Some(pid) && rec.psn_before() == Some(page.psn()) {
                    rec.op().unwrap().apply_redo(&mut page).unwrap();
                    page.set_psn(rec.psn_before().unwrap().next());
                    applied += 1;
                }
                pos = next;
            }
            black_box(applied)
        })
    });
    g.finish();
}

fn m5_dpt(c: &mut Criterion) {
    let mut g = c.benchmark_group("m5_dpt");
    g.throughput(Throughput::Elements(1000));
    g.bench_function("update_replace_ack_cycle", |b| {
        b.iter(|| {
            let mut dpt = DirtyPageTable::new();
            for i in 0..1000u64 {
                let pid = PageId::new(NodeId(0), (i % 64) as u32);
                dpt.ensure(pid, Psn(i), Lsn(i * 10));
                dpt.on_update(pid, Psn(i + 1), Lsn(i * 10));
                if i % 3 == 0 {
                    dpt.on_replace(pid, Lsn(i * 10 + 5));
                    dpt.on_flush_ack(pid);
                }
            }
            black_box(dpt.min_redo_lsn())
        })
    });
    g.finish();
}

fn m6_btree(c: &mut Criterion) {
    use cblog_access::BTree;
    use cblog_common::CostModel;
    use cblog_core::{Cluster, ClusterConfig, NodeConfig};

    let mut g = c.benchmark_group("m6_btree");
    g.sample_size(20);
    g.throughput(Throughput::Elements(500));
    g.bench_function("insert_500_then_probe", |b| {
        b.iter(|| {
            let mut cl = Cluster::new(ClusterConfig {
                node_count: 2,
                owned_pages: vec![24, 0],
                default_node: NodeConfig {
                    page_size: 2048,
                    buffer_frames: 48,
                    owned_pages: 0,
                    log_capacity: None,
                },
                cost: CostModel::unit(),
                force_on_transfer: false,
            })
            .unwrap();
            let pages: Vec<PageId> =
                (0..24).map(|i| PageId::new(NodeId(0), i)).collect();
            for p in &pages {
                cl.format_slotted(*p).unwrap();
            }
            let t = cl.begin(NodeId(1)).unwrap();
            let tree = BTree::create(&mut cl, t, pages, 16).unwrap();
            for k in 0..500u64 {
                tree.insert(&mut cl, t, k.wrapping_mul(2654435761) % 10000, k).unwrap();
            }
            let mut hits = 0u64;
            for k in 0..500u64 {
                if tree
                    .get(&mut cl, t, k.wrapping_mul(2654435761) % 10000)
                    .unwrap()
                    .is_some()
                {
                    hits += 1;
                }
            }
            cl.commit(t).unwrap();
            black_box(hits)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    m1_log_append,
    m2_buffer_pool,
    m3_lock_tables,
    m4_psn_replay,
    m5_dpt,
    m6_btree
);
criterion_main!(benches);
