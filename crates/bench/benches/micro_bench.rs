//! Micro-benchmarks of the substrate (DESIGN.md §4: m1–m6): log
//! append/force batching, buffer pool, lock tables, PSN-filtered
//! replay, DPT maintenance, and the B+-tree access method.
//!
//! Plain `harness = false` timers (the build has no crates.io access,
//! so no criterion): each case runs a warmup round then reports
//! mean wall-clock per iteration over a fixed iteration count.

use std::hint::black_box;
use std::time::Instant;

use cblog_common::{Lsn, NodeId, PageId, Psn, TxnId};
use cblog_locks::{GlobalLockTable, LocalLockTable, LockMode};
use cblog_storage::{BufferPool, Page, PageKind};
use cblog_wal::{DirtyPageTable, LogManager, LogPayload, LogRecord, MemLogStore, PageOp};

fn bench<F: FnMut() -> u64>(name: &str, iters: u32, mut f: F) {
    let mut sink = 0u64;
    // Warmup.
    for _ in 0..iters.div_ceil(4).max(1) {
        sink = sink.wrapping_add(black_box(f()));
    }
    let start = Instant::now();
    for _ in 0..iters {
        sink = sink.wrapping_add(black_box(f()));
    }
    let total = start.elapsed();
    let per = total.as_nanos() / iters as u128;
    println!("{name:<40} {per:>12} ns/iter   ({iters} iters, sink {sink})");
}

fn update_record(seq: u64, prev: Lsn) -> LogRecord {
    LogRecord {
        txn: TxnId::new(NodeId(1), seq),
        prev_lsn: prev,
        payload: LogPayload::Update {
            pid: PageId::new(NodeId(1), (seq % 64) as u32),
            psn_before: Psn(seq),
            op: PageOp::WriteRange {
                off: ((seq % 100) * 8) as u32,
                before: seq.to_le_bytes().to_vec(),
                after: (seq + 1).to_le_bytes().to_vec(),
            },
        },
    }
}

fn m1_log_append() {
    bench("m1/append_1000_then_force", 50, || {
        let mut lm = LogManager::new(NodeId(1), Box::new(MemLogStore::new())).unwrap();
        let mut prev = Lsn::ZERO;
        for i in 0..1000 {
            prev = lm.append(&update_record(i, prev)).unwrap();
        }
        lm.force_all().unwrap();
        lm.end_lsn().0
    });
    bench("m1/append_1000_force_each", 50, || {
        let mut lm = LogManager::new(NodeId(1), Box::new(MemLogStore::new())).unwrap();
        let mut prev = Lsn::ZERO;
        for i in 0..1000 {
            prev = lm.append(&update_record(i, prev)).unwrap();
            lm.force(prev).unwrap();
        }
        lm.forces()
    });
}

fn m2_buffer_pool() {
    let mut bp = BufferPool::new(128);
    for i in 0..128u32 {
        bp.insert(
            Page::new(PageId::new(NodeId(1), i), PageKind::Raw, Psn(1), 1024),
            false,
        )
        .unwrap();
    }
    bench("m2/hit_heavy_lookup_10k", 100, || {
        let mut acc = 0u64;
        for i in 0..10_000u32 {
            if bp.get(PageId::new(NodeId(1), i % 128)).is_some() {
                acc += 1;
            }
        }
        acc
    });
    bench("m2/evict_heavy_insert_10k", 20, || {
        let mut bp = BufferPool::new(64);
        for i in 0..10_000u32 {
            bp.insert(
                Page::new(PageId::new(NodeId(1), i), PageKind::Raw, Psn(1), 1024),
                i % 3 == 0,
            )
            .unwrap();
        }
        bp.len() as u64
    });
}

fn m3_lock_tables() {
    bench("m3/local_grant_release_cycle_1k", 100, || {
        let mut lt = LocalLockTable::new();
        for i in 0..1000u64 {
            let t = TxnId::new(NodeId(1), i);
            let p = PageId::new(NodeId(0), (i % 32) as u32);
            let _ = lt.request(t, p, LockMode::Exclusive);
            lt.release_all(t);
        }
        lt.grant_count() as u64
    });
    bench("m3/global_callback_cycle_1k", 100, || {
        let mut gt = GlobalLockTable::new();
        let p = PageId::new(NodeId(0), 0);
        for i in 0..1000u32 {
            let a = NodeId(1 + (i % 4));
            match gt.request(p, a, LockMode::Exclusive) {
                cblog_locks::GlobalRequestOutcome::Granted => {}
                cblog_locks::GlobalRequestOutcome::NeedsCallbacks(cbs) => {
                    for (v, act) in cbs {
                        gt.callback_applied(p, v, act);
                    }
                    let _ = gt.request(p, a, LockMode::Exclusive);
                }
            }
        }
        gt.grant_count() as u64
    });
}

fn m4_psn_replay() {
    // Replay filtering: a page with 1000 logged updates rebuilt from
    // PSN 1.
    let mut lm = LogManager::new(NodeId(1), Box::new(MemLogStore::new())).unwrap();
    let pid = PageId::new(NodeId(1), 0);
    let mut prev = Lsn::ZERO;
    for i in 0..1000u64 {
        prev = lm
            .append(&LogRecord {
                txn: TxnId::new(NodeId(1), 1),
                prev_lsn: prev,
                payload: LogPayload::Update {
                    pid,
                    psn_before: Psn(1 + i),
                    op: PageOp::WriteRange {
                        off: ((i % 100) * 8) as u32,
                        before: i.to_le_bytes().to_vec(),
                        after: (i + 1).to_le_bytes().to_vec(),
                    },
                },
            })
            .unwrap();
    }
    lm.force_all().unwrap();
    bench("m4/scan_and_apply_1000", 50, || {
        let mut page = Page::new(pid, PageKind::Raw, Psn(1), 1024);
        let mut pos = Lsn(8);
        let end = lm.end_lsn();
        let mut applied = 0u64;
        while pos < end {
            let (rec, next) = lm.read_record(pos).unwrap();
            if rec.page() == Some(pid) && rec.psn_before() == Some(page.psn()) {
                rec.op().unwrap().apply_redo(&mut page).unwrap();
                page.set_psn(rec.psn_before().unwrap().next());
                applied += 1;
            }
            pos = next;
        }
        applied
    });
}

fn m5_dpt() {
    bench("m5/update_replace_ack_cycle_1k", 100, || {
        let mut dpt = DirtyPageTable::new();
        for i in 0..1000u64 {
            let pid = PageId::new(NodeId(0), (i % 64) as u32);
            dpt.ensure(pid, Psn(i), Lsn(i * 10));
            dpt.on_update(pid, Psn(i + 1), Lsn(i * 10));
            if i % 3 == 0 {
                dpt.on_replace(pid, Lsn(i * 10 + 5));
                dpt.on_flush_ack(pid);
            }
        }
        dpt.min_redo_lsn().map(|l| l.0).unwrap_or(0)
    });
}

fn m6_btree() {
    use cblog_access::BTree;
    use cblog_common::CostModel;
    use cblog_core::{Cluster, ClusterConfig};

    bench("m6/insert_500_then_probe", 10, || {
        let mut cl = Cluster::new(
            ClusterConfig::builder()
                .owned_pages(vec![24, 0])
                .page_size(2048)
                .buffer_frames(48)
                .default_owned_pages(0)
                .cost(CostModel::unit())
                .build(),
        )
        .unwrap();
        let pages: Vec<PageId> = (0..24).map(|i| PageId::new(NodeId(0), i)).collect();
        for p in &pages {
            cl.format_slotted(*p).unwrap();
        }
        let t = cl.begin(NodeId(1)).unwrap();
        let tree = BTree::create(&mut cl, t, pages, 16).unwrap();
        for k in 0..500u64 {
            tree.insert(&mut cl, t, k.wrapping_mul(2654435761) % 10000, k)
                .unwrap();
        }
        let mut hits = 0u64;
        for k in 0..500u64 {
            if tree
                .get(&mut cl, t, k.wrapping_mul(2654435761) % 10000)
                .unwrap()
                .is_some()
            {
                hits += 1;
            }
        }
        cl.commit(t).unwrap();
        hits
    });
}

fn main() {
    m1_log_append();
    m2_buffer_pool();
    m3_lock_tables();
    m4_psn_replay();
    m5_dpt();
    m6_btree();
}
