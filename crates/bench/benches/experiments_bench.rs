//! Criterion benches, one per experiment table (DESIGN.md §4). Each
//! bench times a representative configuration of the experiment; the
//! full sweeps/tables come from `cargo run -p cblog-bench --bin
//! experiments`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cblog_sim::experiments::{
    a1_ckpt_interval, e1_commit_cost, e2_scalability, e3_log_volume, e4_page_transfer,
    e5_single_crash, e6_multi_crash, e7_checkpoint, e8_log_space, e9_rollback,
    t1_protocol_ops,
};

fn bench_t1(c: &mut Criterion) {
    c.bench_function("t1_protocol_ops", |b| {
        b.iter(|| black_box(t1_protocol_ops::run()))
    });
}

fn bench_e1(c: &mut Criterion) {
    c.bench_function("e1_commit_cost_sweep", |b| {
        b.iter(|| black_box(e1_commit_cost::run()))
    });
}

fn bench_e2(c: &mut Criterion) {
    let mut g = c.benchmark_group("e2_scalability");
    g.sample_size(20);
    g.bench_function("cbl_8_clients", |b| {
        b.iter(|| black_box(e2_scalability::run_one(8, true)))
    });
    g.bench_function("csa_8_clients", |b| {
        b.iter(|| black_box(e2_scalability::run_one(8, false)))
    });
    g.finish();
}

fn bench_e3(c: &mut Criterion) {
    let mut g = c.benchmark_group("e3_log_volume");
    g.sample_size(10);
    g.bench_function("sweep", |b| b.iter(|| black_box(e3_log_volume::run())));
    g.finish();
}

fn bench_e4(c: &mut Criterion) {
    let mut g = c.benchmark_group("e4_page_transfer");
    g.bench_function("cbl_4_sharers", |b| {
        b.iter(|| black_box(e4_page_transfer::run_one(4, false)))
    });
    g.bench_function("force_on_transfer_4_sharers", |b| {
        b.iter(|| black_box(e4_page_transfer::run_one(4, true)))
    });
    g.finish();
}

fn bench_e5(c: &mut Criterion) {
    let mut g = c.benchmark_group("e5_single_crash");
    g.sample_size(20);
    g.bench_function("recover_8_dirty_pages", |b| {
        b.iter(|| black_box(e5_single_crash::run_one(8)))
    });
    g.finish();
}

fn bench_e6(c: &mut Criterion) {
    let mut g = c.benchmark_group("e6_multi_crash");
    g.sample_size(20);
    g.bench_function("recover_owner_and_client", |b| {
        b.iter(|| {
            black_box(e6_multi_crash::run_one(&[
                cblog_common::NodeId(0),
                cblog_common::NodeId(2),
            ]))
        })
    });
    g.finish();
}

fn bench_e7(c: &mut Criterion) {
    c.bench_function("e7_checkpoint_sweep", |b| {
        b.iter(|| black_box(e7_checkpoint::run()))
    });
}

fn bench_e8(c: &mut Criterion) {
    let mut g = c.benchmark_group("e8_log_space");
    g.sample_size(20);
    g.bench_function("bounded_8k_log", |b| {
        b.iter(|| black_box(e8_log_space::run_one(8192)))
    });
    g.finish();
}

fn bench_e9(c: &mut Criterion) {
    let mut g = c.benchmark_group("e9_rollback");
    g.sample_size(20);
    g.bench_function("abort_30pct_small_cache", |b| {
        b.iter(|| black_box(e9_rollback::run_one(0.3, 2)))
    });
    g.finish();
}

fn bench_a1(c: &mut Criterion) {
    let mut g = c.benchmark_group("a1_ckpt_interval");
    g.sample_size(10);
    g.bench_function("maintain_every_25", |b| {
        b.iter(|| black_box(a1_ckpt_interval::run_one(25)))
    });
    g.finish();
}

criterion_group!(
    benches, bench_t1, bench_e1, bench_e2, bench_e3, bench_e4, bench_e5, bench_e6, bench_e7,
    bench_e8, bench_e9, bench_a1
);
criterion_main!(benches);
