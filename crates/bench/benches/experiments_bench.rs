//! Experiment benches, one per experiment table (DESIGN.md §4). Each
//! case times a representative configuration of the experiment; the
//! full sweeps/tables come from `cargo run -p cblog-bench --bin
//! experiments`.
//!
//! Plain `harness = false` timers (the build has no crates.io access,
//! so no criterion).

use std::hint::black_box;
use std::time::Instant;

use cblog_sim::experiments::{
    a1_ckpt_interval, e1_commit_cost, e2_scalability, e3_log_volume, e4_page_transfer,
    e5_single_crash, e6_multi_crash, e7_checkpoint, e8_log_space, e9_rollback, t1_protocol_ops,
};

fn bench<T, F: FnMut() -> T>(name: &str, iters: u32, mut f: F) {
    black_box(f()); // warmup
    let start = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    let per = start.elapsed().as_micros() / iters as u128;
    println!("{name:<40} {per:>12} us/iter   ({iters} iters)");
}

fn main() {
    bench("t1_protocol_ops", 10, t1_protocol_ops::run);
    bench("e1_commit_cost_sweep", 5, e1_commit_cost::run);
    bench("e2_scalability/cbl_8_clients", 5, || {
        e2_scalability::run_one(8, true)
    });
    bench("e2_scalability/csa_8_clients", 5, || {
        e2_scalability::run_one(8, false)
    });
    bench("e3_log_volume/sweep", 3, e3_log_volume::run);
    bench("e4_page_transfer/cbl_4_sharers", 5, || {
        e4_page_transfer::run_one(4, false)
    });
    bench("e4_page_transfer/force_on_transfer", 5, || {
        e4_page_transfer::run_one(4, true)
    });
    bench("e5_single_crash/recover_8_dirty", 5, || {
        e5_single_crash::run_one(8)
    });
    bench("e6_multi_crash/owner_and_client", 5, || {
        e6_multi_crash::run_one(&[cblog_common::NodeId(0), cblog_common::NodeId(2)])
    });
    bench("e7_checkpoint_sweep", 3, e7_checkpoint::run);
    bench("e8_log_space/bounded_8k_log", 5, || {
        e8_log_space::run_one(8192)
    });
    bench("e9_rollback/abort_30pct_small_cache", 5, || {
        e9_rollback::run_one(0.3, 2)
    });
    bench("a1_ckpt_interval/maintain_every_25", 3, || {
        a1_ckpt_interval::run_one(25)
    });
}
