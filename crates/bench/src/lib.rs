//! Benchmark-harness crate: hosts the `experiments` binary (prints
//! every E/T table from DESIGN.md §4), the Criterion benches, the
//! runnable examples and the cross-crate integration tests.
//!
//! The actual experiment logic lives in [`cblog_sim::experiments`];
//! this crate only packages entry points.

pub use cblog_sim::experiments;
pub use cblog_sim::report::Table;

/// Renders all experiment tables to one report string.
pub fn full_report() -> String {
    let mut out = String::new();
    out.push_str("# Client-based logging — experiment report\n\n");
    for t in experiments::run_all() {
        out.push_str(&t.render());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn report_contains_every_experiment() {
        let r = super::full_report();
        for needle in [
            "T1", "E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "A1",
        ] {
            assert!(r.contains(needle), "missing {needle}");
        }
    }
}
