//! Dumps causal traces from the traced scenario runs. Usage:
//!
//! ```text
//! cargo run --release -p cblog-bench --bin tracedump -- \
//!     [--scenario e5|e6|e7] [--page P0.3] [--json]
//! ```
//!
//! Default mode prints the trace summary (span counts, watchdog
//! verdict) and the PSN lineage of `--page` — or of the busiest page
//! when no page is given. `--json` instead emits the whole span store
//! as Chrome trace-event JSON on stdout, loadable in `chrome://tracing`
//! or Perfetto. The scenario fails (exit 1, lineage slice on stderr)
//! if the invariant watchdog flagged any span.

use cblog_common::{NodeId, PageId};
use cblog_sim::tracedump::{run_scenario, summary, SCENARIOS};

/// Parses `P<owner>.<index>` (the `PageId` display form; the leading
/// `P` is optional).
fn parse_page(s: &str) -> Option<PageId> {
    let s = s.strip_prefix('P').unwrap_or(s);
    let (owner, index) = s.split_once('.')?;
    Some(PageId::new(
        NodeId(owner.parse().ok()?),
        index.parse().ok()?,
    ))
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let arg_after = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
    };
    let scenario = arg_after("--scenario").map_or("e5", |s| s.as_str());
    let json = args.iter().any(|a| a == "--json");
    let page = match arg_after("--page") {
        Some(s) => match parse_page(s) {
            Some(p) => Some(p),
            None => {
                eprintln!("bad --page {s:?}: expected P<owner>.<index>, e.g. P0.3");
                std::process::exit(2);
            }
        },
        None => None,
    };
    let cluster = match run_scenario(scenario) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("scenario {scenario:?} failed (known: {SCENARIOS:?}):\n{e}");
            std::process::exit(1);
        }
    };
    let tracer = cluster.tracer();
    if json {
        println!("{}", tracer.chrome_trace_json());
        return;
    }
    println!("scenario {scenario}: {}", summary(&cluster));
    match page.or_else(|| tracer.busiest_page()) {
        Some(pid) => print!("{}", tracer.render_lineage(pid)),
        None => println!("(no page-scoped spans recorded)"),
    }
}
