//! Prints every experiment table (T1, E1–E11, A1). Usage:
//!
//! ```text
//! cargo run --release -p cblog-bench --bin experiments [--csv | --json] [--only PATTERN]
//! ```
//!
//! `--json` emits one JSON array of table objects (`{"title",
//! "headers", "rows"}`), suitable for scripted post-processing.
//! `--only PATTERN` keeps only tables whose title contains `PATTERN`
//! (case-insensitive), e.g. `--only E1b` for the group-commit sweep.

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let csv = args.iter().any(|a| a == "--csv");
    let json = args.iter().any(|a| a == "--json");
    let only: Option<String> = args
        .iter()
        .position(|a| a == "--only")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.to_lowercase());
    let mut tables = cblog_bench::experiments::run_all();
    if let Some(pat) = &only {
        tables.retain(|t| t.title().to_lowercase().contains(pat));
        if tables.is_empty() {
            eprintln!("no experiment table matches --only {pat}");
            std::process::exit(1);
        }
    }
    if json {
        print!("[");
        for (i, table) in tables.iter().enumerate() {
            if i > 0 {
                print!(",");
            }
            println!();
            print!("{}", table.to_json());
        }
        println!("\n]");
        return;
    }
    for table in tables {
        if csv {
            print!("{}", table.to_csv());
        } else {
            print!("{}", table.render());
        }
        println!();
    }
}
