//! Prints every experiment table (T1, E1–E11, A1). Usage:
//!
//! ```text
//! cargo run --release -p cblog-bench --bin experiments [--csv | --json]
//! ```
//!
//! `--json` emits one JSON array of table objects (`{"title",
//! "headers", "rows"}`), suitable for scripted post-processing.

fn main() {
    let csv = std::env::args().any(|a| a == "--csv");
    let json = std::env::args().any(|a| a == "--json");
    let tables = cblog_bench::experiments::run_all();
    if json {
        print!("[");
        for (i, table) in tables.iter().enumerate() {
            if i > 0 {
                print!(",");
            }
            println!();
            print!("{}", table.to_json());
        }
        println!("\n]");
        return;
    }
    for table in tables {
        if csv {
            print!("{}", table.to_csv());
        } else {
            print!("{}", table.render());
        }
        println!();
    }
}
