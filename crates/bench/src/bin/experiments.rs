//! Prints every experiment table (T1, E1–E9). Usage:
//!
//! ```text
//! cargo run --release -p cblog-bench --bin experiments [--csv]
//! ```

fn main() {
    let csv = std::env::args().any(|a| a == "--csv");
    for table in cblog_bench::experiments::run_all() {
        if csv {
            print!("{}", table.to_csv());
        } else {
            print!("{}", table.render());
        }
        println!();
    }
}
