//! Prints every experiment table (T1, E1–E11, A1). Usage:
//!
//! ```text
//! cargo run --release -p cblog-bench --bin experiments -- \
//!     [--csv | --json] [--only NAME|PATTERN] [--list] \
//!     [--check-baselines FILE]
//! ```
//!
//! `--json` emits one JSON array of table objects (`{"title",
//! "headers", "rows"}`), suitable for scripted post-processing.
//! `--only` takes either a registry short name (exact, e.g. `e1b` —
//! see `--list`; only that experiment runs) or a case-insensitive
//! title substring (the whole suite runs, then filters).
//! `--list` prints the registry: one `name  title` line per
//! experiment, without running anything expensive beyond the t1 probe.
//! `--check-baselines FILE` runs the perf-regression gate against the
//! pinned numbers in FILE (see `BASELINES.json` at the repo root) and
//! exits nonzero if any value leaves its tolerance band.

use cblog_bench::experiments::{run_all, run_named, REGISTRY};
use cblog_sim::baseline;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let csv = args.iter().any(|a| a == "--csv");
    let json = args.iter().any(|a| a == "--json");
    let arg_after = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
    };
    if args.iter().any(|a| a == "--list") {
        for (name, desc, _) in REGISTRY {
            println!("{name:<5} {desc}");
        }
        return;
    }
    if let Some(path) = arg_after("--check-baselines") {
        let doc = match std::fs::read_to_string(path) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("cannot read baselines file {path:?}: {e}");
                std::process::exit(2);
            }
        };
        match baseline::check(&doc) {
            Ok(outcomes) => {
                print!("{}", baseline::render(&outcomes));
                if outcomes.iter().any(|o| !o.ok) {
                    eprintln!("perf-regression gate FAILED");
                    std::process::exit(1);
                }
                return;
            }
            Err(e) => {
                eprintln!("baseline check error: {e}");
                std::process::exit(2);
            }
        }
    }
    let only: Option<String> = arg_after("--only").map(|s| s.to_lowercase());
    let tables = match &only {
        // Exact registry name: run just that experiment.
        Some(name) if REGISTRY.iter().any(|(n, _, _)| n == name) => {
            vec![run_named(name).expect("name checked against registry")]
        }
        // Otherwise: run the suite and filter by title substring.
        Some(pat) => {
            let mut ts = run_all();
            ts.retain(|t| t.title().to_lowercase().contains(pat));
            if ts.is_empty() {
                eprintln!("no experiment table matches --only {pat} (try --list)");
                std::process::exit(1);
            }
            ts
        }
        None => run_all(),
    };
    if json {
        print!("[");
        for (i, table) in tables.iter().enumerate() {
            if i > 0 {
                print!(",");
            }
            println!();
            print!("{}", table.to_json());
        }
        println!("\n]");
        return;
    }
    for table in tables {
        if csv {
            print!("{}", table.to_csv());
        } else {
            print!("{}", table.render());
        }
        println!();
    }
}
