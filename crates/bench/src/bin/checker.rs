//! Exhaustive crash-point model checker for recovery. Usage:
//!
//! ```text
//! cargo run --release -p cblog-bench --bin checker -- \
//!     [--ci | --full] [--self-test] [--replay SPEC] [--sabotage]
//! ```
//!
//! Default (`--ci`) explores the bounded CI budget: every crash point
//! × victim set × torn-tail landing × recovery interruption × one-step
//! message schedule of a 3-node scenario, pruning converged branches
//! by durable-state fingerprint. `--full` explores the 2-node ×
//! 2-page per-byte acceptance space. Prints
//! `checker: explored=… pruned=… distinct=… violations=…` and exits
//! nonzero if any branch violates a recovery invariant (each violation
//! prints as a replayable spec for `--replay`).
//!
//! `--self-test` instead proves the harness can fail: it plants an
//! undo-skipping bug in recovery and demands the checker catch it and
//! shrink it to a minimal counterexample. `--sabotage` plants the same
//! bug in a normal exploration — useful for watching the shrinker
//! work.

use std::process::ExitCode;
use std::time::Instant;

use cblog_mc::{explore, must_fail_self_test, run_branch, Branch, Config};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let arg_after = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
    };
    let has = |flag: &str| args.iter().any(|a| a == flag);

    if has("--self-test") {
        return match must_fail_self_test() {
            Ok(summary) => {
                println!("checker self-test: {summary}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("checker self-test FAILED: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let mut cfg = if has("--full") {
        Config::full()
    } else {
        Config::ci()
    };
    if has("--sabotage") {
        cfg.sabotage = true;
    }

    if let Some(spec) = arg_after("--replay") {
        let branch = match Branch::parse(spec) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("checker: bad --replay spec: {e}");
                return ExitCode::from(2);
            }
        };
        return match run_branch(&cfg, &branch) {
            Ok(()) => {
                println!("checker: replay clean: {}", branch.spec());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("checker: replay violates: {e}");
                eprintln!("checker: branch {}", branch.spec());
                ExitCode::FAILURE
            }
        };
    }

    let t0 = Instant::now();
    let rep = match explore(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("checker: scenario error: {e}");
            return ExitCode::from(2);
        }
    };
    println!(
        "checker: explored={} pruned={} distinct={} violations={} truncated={} in {:.1}s",
        rep.explored,
        rep.pruned,
        rep.distinct_states,
        rep.violations,
        rep.truncated,
        t0.elapsed().as_secs_f64()
    );
    for cx in &rep.counterexamples {
        eprintln!("checker: VIOLATION {}", cx.error);
        eprintln!("checker:   branch {}", cx.branch.spec());
        eprintln!(
            "checker:   shrunk {}  ({})",
            cx.shrunk.spec(),
            cx.shrunk_error
        );
    }
    if rep.truncated {
        eprintln!(
            "checker: space truncated at max_runs={} — shrink the config or raise the cap",
            cfg.max_runs
        );
        return ExitCode::FAILURE;
    }
    if rep.violations > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
