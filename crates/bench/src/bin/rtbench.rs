//! Wall-clock benchmark of the threaded runtime: sweeps MPL ×
//! group-commit policy on OS-thread nodes with file-backed WALs and
//! reports real commits/sec and commit-latency percentiles.
//!
//! ```text
//! cargo run --release -p cblog-bench --bin rtbench -- \
//!     [--txns N] [--ops N] [--mpl 1,2,4] [--quick] \
//!     [--wal-dir DIR] [--out FILE.json] \
//!     [--recovery] [--trace-overhead]
//! ```
//!
//! Each cell runs a fresh two-node [`ThreadCluster`]: every node hosts
//! MPL concurrent transaction streams, each stream writing its own
//! private pages, so the commit path is exactly the paper's — one
//! local log force (a real `fdatasync`), zero messages. `commit_msgs`
//! in the export is the *measured* mesh traffic of the cell, so any
//! commit-path message would be visible, not assumed away.
//!
//! The export (`BENCH_rt_threads.json` by default) carries the same
//! `experiment`/`nodes`/`folded` skeleton as the simulator's telemetry
//! exports — `obsreport --input` renders it into the usual HTML report
//! — plus a `cells` array with one row per (MPL, policy) combination.
//! Commit-latency percentiles come in two flavors per cell:
//! `p50_exact_us`/`p99_exact_us` are exact recorded values from the
//! runtime's sample reservoir, while `p50_hist_us`/`p99_hist_us` are
//! the log-bucketed histogram bounds (same export shape as the
//! simulator), kept side by side so bucket-resolution error is
//! visible. Wall-clock numbers are machine-dependent and deliberately
//! excluded from the BASELINES.json perf gate, which only checks
//! deterministic simulator counters.
//!
//! `--trace-overhead` measures what the always-on span tracing costs:
//! each cell runs twice on identical plans — tracing off, then on —
//! asserts the commit tallies and final page images are bit-identical
//! (observability must not change execution), and reports the
//! wall-clock delta as `overhead_pct` in
//! `BENCH_rt_trace_overhead.json`.

use cblog_common::NodeId;
use cblog_core::{
    GroupCommitPolicy, PlanOp, RecoveryOptions, ReplayMode, Runtime, TxnPlan, WaveTiming,
};
use cblog_rt::{RtNodeStats, ThreadCluster, ThreadClusterConfig, WalBacking};
use std::fmt::Write as _;
use std::path::PathBuf;

const NODES: usize = 2;

struct Cell {
    mpl: usize,
    policy: &'static str,
    commits: u64,
    commits_per_sec: f64,
    /// Exact recorded percentiles from the commit-latency reservoir.
    p50_exact_us: u64,
    p99_exact_us: u64,
    /// Log-bucketed histogram bounds for the same distribution.
    p50_hist_us: u64,
    p99_hist_us: u64,
    forces: u64,
    forces_per_commit: f64,
    commit_msgs: u64,
    wall_us: u64,
    spans: u64,
}

fn policy_for(name: &str, mpl: usize) -> GroupCommitPolicy {
    match name {
        "immediate" => GroupCommitPolicy::Immediate,
        "window" => GroupCommitPolicy::Window {
            window_us: 500,
            max_batch: mpl,
        },
        "adaptive" => GroupCommitPolicy::Adaptive {
            min_window_us: 50,
            max_window_us: 2_000,
            target_batch: mpl,
        },
        other => panic!("unknown policy {other}"),
    }
}

/// Plans for one cell: NODES nodes × `mpl` lanes × `txns` transactions,
/// each lane confined to its own two pages — stream-private write sets
/// keep the commit path message-free and the run verifiable.
fn plans_for(mpl: usize, txns: usize, ops: usize) -> Vec<TxnPlan> {
    let mut plans = Vec::new();
    for node in 0..NODES as u32 {
        for lane in 0..mpl {
            for t in 0..txns as u64 {
                let ops = (0..ops as u64)
                    .map(|o| PlanOp::Write {
                        pid: cblog_common::PageId::new(
                            cblog_common::NodeId(node),
                            (2 * lane + (o % 2) as usize) as u32,
                        ),
                        slot: ((t + o) % 8) as usize,
                        value: t * 1_000 + o,
                    })
                    .collect();
                plans.push(TxnPlan {
                    client: cblog_common::NodeId(node),
                    stream: lane,
                    ops,
                    abort: false,
                });
            }
        }
    }
    plans
}

fn run_cell(
    mpl: usize,
    policy_name: &'static str,
    txns: usize,
    ops: usize,
    wal_dir: &std::path::Path,
) -> (Cell, Vec<RtNodeStats>) {
    let dir = wal_dir.join(format!("{policy_name}-mpl{mpl}"));
    let _ = std::fs::remove_dir_all(&dir);
    let mut tc = ThreadCluster::new(ThreadClusterConfig {
        owned_pages: vec![2 * mpl as u32; NODES],
        buffer_frames: 4 * mpl + 16,
        group_commit: policy_for(policy_name, mpl),
        wal: WalBacking::Dir(dir.clone()),
        ..ThreadClusterConfig::default()
    })
    .expect("cluster construction");
    let plans = plans_for(mpl, txns, ops);
    let report = tc.run(&plans).expect("benchmark run");
    let stats = tc.last_stats().expect("run stats");
    let node_stats = tc.last_node_stats().to_vec();
    let hist = tc.latency().snapshot();
    let _ = std::fs::remove_dir_all(&dir);
    assert_eq!(
        report.committed,
        (NODES * mpl * txns) as u64,
        "every planned transaction must commit"
    );
    let cell = Cell {
        mpl,
        policy: policy_name,
        commits: report.committed,
        commits_per_sec: report.committed as f64 * 1e6 / stats.wall_us.max(1) as f64,
        p50_exact_us: stats.p50_us,
        p99_exact_us: stats.p99_us,
        p50_hist_us: hist.percentile(0.50),
        p99_hist_us: hist.percentile(0.99),
        forces: stats.forces,
        forces_per_commit: stats.forces as f64 / report.committed.max(1) as f64,
        // Measured mesh traffic: the workload is all-local, so any
        // message here would be a commit-path leak.
        commit_msgs: stats.msgs,
        wall_us: stats.wall_us,
        spans: stats.spans,
    };
    (cell, node_stats)
}

fn export_json(cells: &[Cell], nodes: &[RtNodeStats], total_us: u64) -> String {
    let mut out = String::new();
    // The per-node split is the worker's own measured buckets (DESIGN
    // §14): disk + cpu + net + replay == busy exactly, lock_wait beside.
    let _ = write!(
        out,
        "{{\"experiment\":\"rt_threads\",\"now_us\":{total_us},{},\"telemetry\":null,\"cells\":[",
        cblog_rt::profile_fragment("rt_threads", nodes)
    );
    for (i, c) in cells.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"mpl\":{},\"policy\":\"{}\",\"commits\":{},\"commits_per_sec\":{:.1},\"p50_exact_us\":{},\"p99_exact_us\":{},\"p50_hist_us\":{},\"p99_hist_us\":{},\"forces\":{},\"forces_per_commit\":{:.4},\"commit_msgs\":{},\"wall_us\":{},\"spans\":{}}}",
            c.mpl,
            c.policy,
            c.commits,
            c.commits_per_sec,
            c.p50_exact_us,
            c.p99_exact_us,
            c.p50_hist_us,
            c.p99_hist_us,
            c.forces,
            c.forces_per_commit,
            c.commit_msgs,
            c.wall_us,
            c.spans
        );
    }
    out.push_str("]}");
    out
}

// ----------------------------------------------------------------------
// Tracing overhead (--trace-overhead): off vs. on, identical plans
// ----------------------------------------------------------------------

struct OverheadCell {
    mpl: usize,
    policy: &'static str,
    commits: u64,
    wall_off_us: u64,
    wall_on_us: u64,
    overhead_pct: f64,
    spans: u64,
}

/// Runs one (MPL, policy) cell with `tracing` set as given and returns
/// the run stats plus every page image, for bit-exactness comparison.
fn run_traced(
    mpl: usize,
    policy_name: &'static str,
    plans: &[TxnPlan],
    tracing: bool,
    wal_dir: &std::path::Path,
) -> (
    cblog_core::RunReport,
    cblog_rt::RtRunStats,
    Vec<Vec<u8>>,
    Vec<RtNodeStats>,
) {
    let dir = wal_dir.join(format!("ovh-{policy_name}-mpl{mpl}-{tracing}"));
    let _ = std::fs::remove_dir_all(&dir);
    let mut tc = ThreadCluster::new(ThreadClusterConfig {
        owned_pages: vec![2 * mpl as u32; NODES],
        buffer_frames: 4 * mpl + 16,
        group_commit: policy_for(policy_name, mpl),
        wal: WalBacking::Dir(dir.clone()),
        tracing,
        ..ThreadClusterConfig::default()
    })
    .expect("cluster construction");
    let report = tc.run(plans).expect("benchmark run");
    let stats = tc.last_stats().expect("run stats");
    let nodes = tc.last_node_stats().to_vec();
    let mut images = Vec::new();
    for node in 0..NODES as u32 {
        for idx in 0..2 * mpl as u32 {
            let pid = cblog_common::PageId::new(cblog_common::NodeId(node), idx);
            images.push(tc.page_image(pid).expect("page image"));
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
    (report, stats, images, nodes)
}

/// One overhead measurement: the same plans, tracing off then on. The
/// traced run must produce the same tallies and the same bytes on
/// every page — observability is read-only — and its wall-clock delta
/// is the price of the spans.
fn run_overhead_cell(
    mpl: usize,
    policy_name: &'static str,
    txns: usize,
    ops: usize,
    wal_dir: &std::path::Path,
) -> (OverheadCell, Vec<RtNodeStats>) {
    let plans = plans_for(mpl, txns, ops);
    let (off_report, off_stats, off_images, _) =
        run_traced(mpl, policy_name, &plans, false, wal_dir);
    let (on_report, on_stats, on_images, on_nodes) =
        run_traced(mpl, policy_name, &plans, true, wal_dir);
    assert_eq!(
        off_report, on_report,
        "tracing must not change the run's tallies"
    );
    assert_eq!(
        off_images, on_images,
        "tracing must not change a single page byte"
    );
    assert_eq!(off_stats.spans, 0, "tracing off records no spans");
    let overhead_pct = (on_stats.wall_us as f64 - off_stats.wall_us as f64) * 100.0
        / off_stats.wall_us.max(1) as f64;
    let cell = OverheadCell {
        mpl,
        policy: policy_name,
        commits: on_report.committed,
        wall_off_us: off_stats.wall_us,
        wall_on_us: on_stats.wall_us,
        overhead_pct,
        spans: on_stats.spans,
    };
    (cell, on_nodes)
}

fn export_overhead_json(cells: &[OverheadCell], nodes: &[RtNodeStats], total_us: u64) -> String {
    // Same skeleton as the main export so `obsreport --input` renders
    // it; nodes/folded describe the *traced* run of the last cell.
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"experiment\":\"rt_trace_overhead\",\"now_us\":{total_us},{},\"telemetry\":null,\"cells\":[",
        cblog_rt::profile_fragment("rt_trace_overhead", nodes)
    );
    for (i, c) in cells.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"mpl\":{},\"policy\":\"{}\",\"commits\":{},\"wall_off_us\":{},\"wall_on_us\":{},\"overhead_pct\":{:.2},\"spans\":{}}}",
            c.mpl, c.policy, c.commits, c.wall_off_us, c.wall_on_us, c.overhead_pct, c.spans
        );
    }
    out.push_str("]}");
    out
}

fn run_overhead_bench(
    mpls: &[usize],
    txns: usize,
    ops: usize,
    wal_dir: &std::path::Path,
    out_path: &str,
) {
    println!(
        "{:>4} {:>10} {:>9} {:>12} {:>12} {:>9} {:>8}",
        "mpl", "policy", "commits", "wall_off_us", "wall_on_us", "ovhd_pct", "spans"
    );
    let mut cells = Vec::new();
    let mut last_nodes: Vec<RtNodeStats> = Vec::new();
    let mut total_us = 0u64;
    for &mpl in mpls {
        for policy in ["immediate", "window", "adaptive"] {
            let (cell, nodes) = run_overhead_cell(mpl, policy, txns, ops, wal_dir);
            println!(
                "{:>4} {:>10} {:>9} {:>12} {:>12} {:>9.2} {:>8}",
                cell.mpl,
                cell.policy,
                cell.commits,
                cell.wall_off_us,
                cell.wall_on_us,
                cell.overhead_pct,
                cell.spans
            );
            total_us += cell.wall_off_us + cell.wall_on_us;
            cells.push(cell);
            last_nodes = nodes;
        }
    }
    let json = export_overhead_json(&cells, &last_nodes, total_us);
    if let Err(e) = std::fs::write(out_path, &json) {
        eprintln!("rtbench: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path}");
}

// ----------------------------------------------------------------------
// Recovery benchmark (--recovery): wall-clock parallel replay
// ----------------------------------------------------------------------

/// Lanes of the recovery workload; each lane dirties its own slice of
/// the owner's pages, so every page's redo chain is independent.
const REC_LANES: usize = 8;

struct RecCell {
    workers: usize,
    pages: usize,
    waves: usize,
    crit_path_psns: u64,
    /// Sum of per-unit redo times — the serial cost of the waves.
    apply_serial_us: u64,
    /// Sum of per-wave makespans — what the workers actually took.
    apply_makespan_us: u64,
    replay_us: u64,
    total_us: u64,
}

/// One crash/recovery measurement on a fresh [`ThreadCluster`]:
/// `rounds` committed update rounds per page, crash the owner, recover
/// with `workers` replay threads (`0` = the paper's serial protocol).
fn run_recovery_cell(
    workers: usize,
    pages: u32,
    rounds: usize,
    wal_dir: &std::path::Path,
) -> RecCell {
    let dir = wal_dir.join(format!("recovery-w{workers}"));
    let _ = std::fs::remove_dir_all(&dir);
    let mut tc = ThreadCluster::new(ThreadClusterConfig {
        owned_pages: vec![pages],
        buffer_frames: pages as usize + 16,
        group_commit: GroupCommitPolicy::Window {
            window_us: 200,
            max_batch: REC_LANES,
        },
        wal: WalBacking::Dir(dir.clone()),
        ..ThreadClusterConfig::default()
    })
    .expect("cluster construction");
    let per_lane = (pages as usize).div_ceil(REC_LANES);
    let mut plans = Vec::new();
    for lane in 0..REC_LANES {
        for t in 0..(rounds * per_lane) as u64 {
            let page = lane * per_lane + (t as usize % per_lane);
            if page >= pages as usize {
                continue;
            }
            let ops = (0..8u64)
                .map(|o| PlanOp::Write {
                    pid: cblog_common::PageId::new(NodeId(0), page as u32),
                    slot: (o % 8) as usize,
                    value: t * 1_000 + o,
                })
                .collect();
            plans.push(TxnPlan {
                client: NodeId(0),
                stream: lane,
                ops,
                abort: false,
            });
        }
    }
    tc.run(&plans).expect("recovery workload");
    tc.crash(NodeId(0)).expect("crash");
    let mode = if workers == 0 {
        ReplayMode::Serial
    } else {
        ReplayMode::Parallel { workers }
    };
    let rep = tc
        .recover(&RecoveryOptions::single(NodeId(0)).replay(mode))
        .expect("recovery");
    let _ = std::fs::remove_dir_all(&dir);
    let (serial, makespan) = rep
        .timings
        .replay_waves()
        .iter()
        .fold((0u64, 0u64), |(s, m), w: &WaveTiming| {
            (s + w.serial_us, m + w.makespan_us)
        });
    RecCell {
        workers,
        pages: rep.pages_recovered,
        waves: rep.replay_waves,
        crit_path_psns: rep.critical_path_psns,
        apply_serial_us: serial,
        apply_makespan_us: makespan,
        replay_us: rep.timings.replay_us(),
        total_us: rep.timings.total_us(),
    }
}

fn export_recovery_json(cells: &[RecCell]) -> String {
    let mut out = String::new();
    out.push_str("{\"experiment\":\"rt_recovery\",\"cells\":[");
    for (i, c) in cells.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let speedup = c.apply_serial_us as f64 / c.apply_makespan_us.max(1) as f64;
        let _ = write!(
            out,
            "{{\"workers\":{},\"pages\":{},\"waves\":{},\"crit_path_psns\":{},\"apply_serial_us\":{},\"apply_makespan_us\":{},\"apply_speedup\":{:.2},\"replay_us\":{},\"total_us\":{}}}",
            c.workers,
            c.pages,
            c.waves,
            c.crit_path_psns,
            c.apply_serial_us,
            c.apply_makespan_us,
            speedup,
            c.replay_us,
            c.total_us
        );
    }
    out.push_str("]}");
    out
}

fn run_recovery_bench(pages: u32, rounds: usize, wal_dir: &std::path::Path, out_path: &str) {
    println!(
        "{:>7} {:>6} {:>6} {:>10} {:>12} {:>14} {:>8} {:>10} {:>10}",
        "workers",
        "pages",
        "waves",
        "crit_psns",
        "apply_ser_us",
        "apply_mksp_us",
        "speedup",
        "replay_us",
        "total_us"
    );
    let mut cells = Vec::new();
    for workers in [0usize, 1, 2, 4, 8] {
        let c = run_recovery_cell(workers, pages, rounds, wal_dir);
        let speedup = c.apply_serial_us as f64 / c.apply_makespan_us.max(1) as f64;
        println!(
            "{:>7} {:>6} {:>6} {:>10} {:>12} {:>14} {:>8.2} {:>10} {:>10}",
            if c.workers == 0 {
                "serial".to_string()
            } else {
                c.workers.to_string()
            },
            c.pages,
            c.waves,
            c.crit_path_psns,
            c.apply_serial_us,
            c.apply_makespan_us,
            speedup,
            c.replay_us,
            c.total_us
        );
        cells.push(c);
    }
    let json = export_recovery_json(&cells);
    if let Err(e) = std::fs::write(out_path, &json) {
        eprintln!("rtbench: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path}");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let arg_after = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
    };
    let quick = args.iter().any(|a| a == "--quick");
    let txns: usize = arg_after("--txns")
        .map(|s| s.parse().expect("--txns N"))
        .unwrap_or(if quick { 8 } else { 64 });
    let ops: usize = arg_after("--ops")
        .map(|s| s.parse().expect("--ops N"))
        .unwrap_or(4);
    let mpls: Vec<usize> = match arg_after("--mpl") {
        Some(csv) => csv
            .split(',')
            .map(|s| s.trim().parse().expect("--mpl 1,2,4"))
            .collect(),
        None if quick => vec![1, 4],
        None => vec![1, 2, 4, 8, 16, 32],
    };
    let wal_dir = arg_after("--wal-dir")
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            std::env::temp_dir().join(format!("cblog-rtbench-{}", std::process::id()))
        });
    let recovery = args.iter().any(|a| a == "--recovery");
    let trace_overhead = args.iter().any(|a| a == "--trace-overhead");
    let out_path = arg_after("--out").cloned().unwrap_or_else(|| {
        if recovery {
            "BENCH_rt_recovery.json".into()
        } else if trace_overhead {
            "BENCH_rt_trace_overhead.json".into()
        } else {
            "BENCH_rt_threads.json".into()
        }
    });

    if trace_overhead {
        run_overhead_bench(&mpls, txns, ops, &wal_dir, &out_path);
        let _ = std::fs::remove_dir_all(&wal_dir);
        return;
    }

    if recovery {
        // Wall-clock parallel replay: crash one owner with many
        // independently-dirtied pages, recover at 1..8 workers.
        let pages: u32 = arg_after("--pages")
            .map(|s| s.parse().expect("--pages N"))
            .unwrap_or(if quick { 16 } else { 64 });
        // Deep per-page chains: redo work per page must dwarf the
        // per-wave thread-spawn cost for the parallelism to show.
        let rounds = if quick { 4 } else { 512.max(txns) };
        run_recovery_bench(pages, rounds, &wal_dir, &out_path);
        let _ = std::fs::remove_dir_all(&wal_dir);
        return;
    }

    let mut cells = Vec::new();
    let mut last_nodes: Vec<RtNodeStats> = Vec::new();
    let mut total_us = 0u64;
    println!(
        "{:>4} {:>10} {:>9} {:>12} {:>8} {:>8} {:>8} {:>10} {:>6}",
        "mpl", "policy", "commits", "commits/s", "p50_us", "p99_us", "forces", "forces/cmt", "msgs"
    );
    for &mpl in &mpls {
        for policy in ["immediate", "window", "adaptive"] {
            let (cell, nodes) = run_cell(mpl, policy, txns, ops, &wal_dir);
            println!(
                "{:>4} {:>10} {:>9} {:>12.1} {:>8} {:>8} {:>8} {:>10.4} {:>6}",
                cell.mpl,
                cell.policy,
                cell.commits,
                cell.commits_per_sec,
                cell.p50_exact_us,
                cell.p99_exact_us,
                cell.forces,
                cell.forces_per_commit,
                cell.commit_msgs
            );
            total_us += cell.wall_us;
            cells.push(cell);
            last_nodes = nodes;
        }
    }
    let _ = std::fs::remove_dir_all(&wal_dir);

    let json = export_json(&cells, &last_nodes, total_us);
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("rtbench: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path}");
}
