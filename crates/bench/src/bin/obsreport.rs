//! Renders resource-time telemetry as a self-contained HTML report
//! (inline SVG only — no scripts, no external references). Usage:
//!
//! ```text
//! cargo run --release -p cblog-bench --bin obsreport -- \
//!     [--scenario e1|e2|e5 | --input FILE.json] \
//!     [--json | --folded] [--out FILE]
//! ```
//!
//! `--scenario` re-runs the named telemetry scenario (an experiment
//! shape with interval sampling on) and renders it; `--input` renders
//! a previously saved JSON export instead — the renderer works from
//! the JSON alone. `--json` prints the raw export, `--folded` prints
//! the flamegraph.pl-compatible folded stack (pipe into
//! `flamegraph.pl` for an SVG flame graph of simulated time). The
//! default output is the HTML report, to stdout or `--out`.

use cblog_common::jsonv;
use cblog_sim::telemetry::{render_html, run_scenario, SCENARIOS};

fn fail(msg: &str) -> ! {
    eprintln!("obsreport: {msg}");
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let arg_after = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
    };
    let json_mode = args.iter().any(|a| a == "--json");
    let folded_mode = args.iter().any(|a| a == "--folded");
    let json = match (arg_after("--input"), arg_after("--scenario")) {
        (Some(path), _) => match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => fail(&format!("cannot read {path:?}: {e}")),
        },
        (None, scenario) => {
            let name = scenario.map_or("e1", |s| s.as_str());
            match run_scenario(name) {
                Ok(s) => s,
                Err(e) => fail(&format!("scenario failed (known: {SCENARIOS:?}): {e}")),
            }
        }
    };
    let out = if json_mode {
        json
    } else {
        let doc = match jsonv::parse(&json) {
            Ok(d) => d,
            Err(e) => fail(&format!("telemetry JSON does not parse: {e}")),
        };
        if folded_mode {
            match doc.get("folded").and_then(|v| v.as_arr()) {
                Some(lines) => {
                    let mut s = String::new();
                    for l in lines {
                        if let Some(l) = l.as_str() {
                            s.push_str(l);
                            s.push('\n');
                        }
                    }
                    s
                }
                None => fail("export has no \"folded\" array"),
            }
        } else {
            match render_html(&doc) {
                Ok(h) => h,
                Err(e) => fail(&e),
            }
        }
    };
    match arg_after("--out") {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &out) {
                fail(&format!("cannot write {path:?}: {e}"));
            }
        }
        None => print!("{out}"),
    }
}
