//! Renders resource-time telemetry as a self-contained HTML report
//! (inline SVG only — no scripts, no external references). Usage:
//!
//! ```text
//! cargo run --release -p cblog-bench --bin obsreport -- \
//!     [--scenario e1|e2|e5 | --input FILE.json | --compare] \
//!     [--json | --folded] [--out FILE]
//! ```
//!
//! `--scenario` re-runs the named telemetry scenario (an experiment
//! shape with interval sampling on) and renders it; `--input` renders
//! a previously saved JSON export instead — the renderer works from
//! the JSON alone. `--json` prints the raw export, `--folded` prints
//! the flamegraph.pl-compatible folded stack (pipe into
//! `flamegraph.pl` for an SVG flame graph of simulated time). The
//! default output is the HTML report, to stdout or `--out`.
//!
//! `--compare` runs the *same seeded plan list* through both engines —
//! the deterministic simulator and the threaded runtime — and renders
//! their per-node resource profiles side by side: simulated-µs bucket
//! shares next to measured wall-clock bucket shares, same taxonomy,
//! one page. The commit tallies of the two runs are cross-checked
//! before rendering, so the page always describes equivalent
//! executions.

use cblog_common::{jsonv, NodeId, PageId};
use cblog_core::{Cluster, ClusterConfig, GroupCommitPolicy, PlanOp, Runtime, TxnPlan};
use cblog_rt::{profile_fragment, ThreadCluster, ThreadClusterConfig};
use cblog_sim::telemetry::{render_compare_html, render_html, run_scenario, SCENARIOS};
use cblog_sim::workload::{self, Op, WorkloadConfig};

fn fail(msg: &str) -> ! {
    eprintln!("obsreport: {msg}");
    std::process::exit(1);
}

/// Runs one seeded workload on both engines and returns their JSON
/// exports `(sim, rt)`. Two nodes write their private partitions
/// (the paper's commit path), then read a few of each other's pages
/// so the Net bucket is populated on both sides.
fn run_compare() -> (String, String) {
    const OWNED: [u32; 2] = [8, 8];
    let policy = GroupCommitPolicy::Window {
        window_us: 300,
        max_batch: 8,
    };
    let cfg = WorkloadConfig {
        seed: 42,
        txns_per_client: 40,
        ops_per_txn: 6,
        write_ratio: 0.8,
        abort_prob: 0.0,
        slots_per_page: 8,
        ..WorkloadConfig::default()
    };
    let clients = [NodeId(0), NodeId(1)];
    let all: Vec<PageId> = (0..2)
        .flat_map(|o| workload::owned_pages(NodeId(o), OWNED[o as usize]))
        .collect();
    let specs = workload::generate(
        &cfg,
        &clients,
        &all,
        Some(&|c: NodeId| workload::owned_pages(c, 8)),
    );
    let mut plans: Vec<TxnPlan> = specs
        .iter()
        .map(|s| TxnPlan {
            client: s.client,
            stream: 0,
            ops: s
                .ops
                .iter()
                .map(|op| match *op {
                    Op::Read { pid, slot } => PlanOp::Read { pid, slot },
                    Op::Write { pid, slot, value } => PlanOp::Write { pid, slot, value },
                })
                .collect(),
            abort: s.user_abort,
        })
        .collect();
    // Cross-node read-only tails: page ships on both engines. One
    // page per transaction — a single S lock cannot deadlock against
    // the owner's writer stream.
    for n in 0..2u32 {
        for i in 0..4 {
            plans.push(TxnPlan {
                client: NodeId(n),
                stream: 0,
                ops: vec![PlanOp::Read {
                    pid: PageId::new(NodeId(1 - n), i),
                    slot: 0,
                }],
                abort: false,
            });
        }
    }

    let mut sim = match Cluster::new(
        ClusterConfig::builder()
            .owned_pages(OWNED.to_vec())
            .group_commit(policy)
            .build(),
    ) {
        Ok(c) => c,
        Err(e) => fail(&format!("sim cluster: {e}")),
    };
    let sim_report = match Runtime::run(&mut sim, &plans) {
        Ok(r) => r,
        Err(e) => fail(&format!("sim run: {e}")),
    };
    let sim_json = cblog_sim::telemetry::export_json("compare_sim", &sim);

    // File-backed WAL so the rt disk bucket is a real fdatasync, like
    // the simulated force the sim profile charges.
    let dir = std::env::temp_dir().join(format!("cblog-obscompare-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut rt = match ThreadCluster::new(ThreadClusterConfig {
        owned_pages: OWNED.to_vec(),
        group_commit: policy,
        wal: cblog_rt::WalBacking::Dir(dir.clone()),
        ..ThreadClusterConfig::default()
    }) {
        Ok(c) => c,
        Err(e) => fail(&format!("rt cluster: {e}")),
    };
    let rt_report = match Runtime::run(&mut rt, &plans) {
        Ok(r) => r,
        Err(e) => fail(&format!("rt run: {e}")),
    };
    let _ = std::fs::remove_dir_all(&dir);
    if sim_report.committed != rt_report.committed {
        fail(&format!(
            "engines diverged: sim committed {}, rt committed {}",
            sim_report.committed, rt_report.committed
        ));
    }
    let wall = rt.last_stats().map_or(0, |s| s.wall_us);
    let rt_json = format!(
        "{{\"experiment\":\"compare_rt\",\"now_us\":{wall},{},\"telemetry\":null}}",
        profile_fragment("compare_rt", rt.last_node_stats())
    );
    (sim_json, rt_json)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let arg_after = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
    };
    let json_mode = args.iter().any(|a| a == "--json");
    let folded_mode = args.iter().any(|a| a == "--folded");
    let write_out = |out: &str| match arg_after("--out") {
        Some(path) => {
            if let Err(e) = std::fs::write(path, out) {
                fail(&format!("cannot write {path:?}: {e}"));
            }
        }
        None => print!("{out}"),
    };

    if args.iter().any(|a| a == "--compare") {
        let (sim_json, rt_json) = run_compare();
        if json_mode {
            write_out(&format!("{{\"sim\":{sim_json},\"rt\":{rt_json}}}"));
            return;
        }
        let sim_doc = jsonv::parse(&sim_json)
            .unwrap_or_else(|e| fail(&format!("sim export does not parse: {e}")));
        let rt_doc = jsonv::parse(&rt_json)
            .unwrap_or_else(|e| fail(&format!("rt export does not parse: {e}")));
        match render_compare_html(&sim_doc, &rt_doc) {
            Ok(h) => write_out(&h),
            Err(e) => fail(&e),
        }
        return;
    }

    let json = match (arg_after("--input"), arg_after("--scenario")) {
        (Some(path), _) => match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => fail(&format!("cannot read {path:?}: {e}")),
        },
        (None, scenario) => {
            let name = scenario.map_or("e1", |s| s.as_str());
            match run_scenario(name) {
                Ok(s) => s,
                Err(e) => fail(&format!("scenario failed (known: {SCENARIOS:?}): {e}")),
            }
        }
    };
    let out = if json_mode {
        json
    } else {
        let doc = match jsonv::parse(&json) {
            Ok(d) => d,
            Err(e) => fail(&format!("telemetry JSON does not parse: {e}")),
        };
        if folded_mode {
            match doc.get("folded").and_then(|v| v.as_arr()) {
                Some(lines) => {
                    let mut s = String::new();
                    for l in lines {
                        if let Some(l) = l.as_str() {
                            s.push_str(l);
                            s.push('\n');
                        }
                    }
                    s
                }
                None => fail("export has no \"folded\" array"),
            }
        } else {
            match render_html(&doc) {
                Ok(h) => h,
                Err(e) => fail(&e),
            }
        }
    };
    write_out(&out);
}
