//! Simulated time and the experiment cost model.
//!
//! The 1996 paper's performance arguments are about *counts*: messages
//! exchanged, log records shipped, pages forced to disk, log bytes
//! scanned during recovery. The simulator counts all of those exactly;
//! the cost model here merely converts counts into a simulated elapsed
//! time so experiments can also report latency/throughput-shaped results
//! with an explicit, configurable hardware flavour.

use crate::ids::NodeId;

/// Simulated time in microseconds.
pub type SimTime = u64;

/// Converts protocol events into simulated elapsed time.
///
/// Defaults are flavoured after mid-1990s commodity hardware (10 Mb/s
/// switched Ethernet, ~10 ms average disk access), which is the setting
/// the paper argues in. Every experiment either sweeps these or reports
/// the underlying counts, which are model-free.
#[derive(Clone, Debug)]
pub struct CostModel {
    /// Fixed per-message latency (send+receive software overhead), µs.
    pub msg_fixed_us: u64,
    /// Per-KiB wire cost, µs (10 Mb/s ≈ 800 µs/KiB; we default to a
    /// faster 100 Mb/s-class 80 µs/KiB to avoid drowning every effect in
    /// wire time).
    pub wire_us_per_kib: u64,
    /// Fixed per-I/O disk latency (seek + rotation), µs.
    pub io_fixed_us: u64,
    /// Per-KiB disk transfer cost, µs.
    pub disk_us_per_kib: u64,
    /// CPU cost charged to a node for handling one message, µs.
    pub handle_us: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            msg_fixed_us: 500,
            wire_us_per_kib: 80,
            io_fixed_us: 10_000,
            disk_us_per_kib: 350,
            handle_us: 100,
        }
    }
}

impl CostModel {
    /// A model where only message counts matter (unit costs); useful in
    /// tests asserting exact accounting.
    pub fn unit() -> Self {
        CostModel {
            msg_fixed_us: 1,
            wire_us_per_kib: 0,
            io_fixed_us: 1,
            disk_us_per_kib: 0,
            handle_us: 0,
        }
    }

    /// Simulated cost of a message carrying `bytes` payload bytes.
    pub fn message_cost(&self, bytes: usize) -> SimTime {
        self.msg_fixed_us + (bytes as u64 * self.wire_us_per_kib) / 1024
    }

    /// Simulated cost of one disk I/O of `bytes` bytes.
    pub fn io_cost(&self, bytes: usize) -> SimTime {
        self.io_fixed_us + (bytes as u64 * self.disk_us_per_kib) / 1024
    }
}

/// Resource bucket for per-node simulated-time attribution (the
/// profiler dimension of DESIGN §11).
///
/// Every microsecond of per-node service time lands in exactly one
/// bucket, so a node's bucket row is a partition of its busy time;
/// [`Bucket::LockWait`] is the one exception — blocked time is not
/// service time, so it accumulates beside `busy`, not inside it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Bucket {
    /// Synchronous disk work: log forces, page reads/writes.
    Disk,
    /// Plain CPU work (record generation, replay application, …).
    Cpu,
    /// Message handling (send/receive software path).
    Net,
    /// Time a transaction spent blocked on a conflicting lock.
    LockWait,
    /// Work performed on behalf of crash recovery (any resource).
    Replay,
}

/// Number of [`Bucket`] variants.
pub const BUCKETS: usize = 5;

impl Bucket {
    /// Every bucket, in display order.
    pub const ALL: [Bucket; BUCKETS] = [
        Bucket::Disk,
        Bucket::Cpu,
        Bucket::Net,
        Bucket::LockWait,
        Bucket::Replay,
    ];

    /// Stable label used in metric keys, folded stacks and reports.
    pub fn label(self) -> &'static str {
        match self {
            Bucket::Disk => "disk",
            Bucket::Cpu => "cpu",
            Bucket::Net => "net",
            Bucket::LockWait => "lock_wait",
            Bucket::Replay => "replay",
        }
    }

    fn index(self) -> usize {
        match self {
            Bucket::Disk => 0,
            Bucket::Cpu => 1,
            Bucket::Net => 2,
            Bucket::LockWait => 3,
            Bucket::Replay => 4,
        }
    }
}

/// Simulated clock with per-node busy-time accounting.
///
/// `busy[n]` accumulates the service time node `n` spent handling
/// messages and performing disk I/O. A centralized design (e.g. server
/// logging à la ARIES/CSA) concentrates busy time on the server; the
/// sustainable system throughput is bounded by the busiest resource,
/// which is how the scalability experiment (E2) quantifies the paper's
/// "dependencies on server resources are reduced considerably" claim.
///
/// Alongside `busy`, each charge is attributed to a [`Bucket`], so
/// `profile(n)` decomposes a node's busy time into disk / CPU / net /
/// replay (plus lock-wait, which is tracked but never part of `busy`).
#[derive(Clone, Debug, Default)]
pub struct SimClock {
    now: SimTime,
    busy: Vec<SimTime>,
    buckets: Vec<[SimTime; BUCKETS]>,
}

impl SimClock {
    /// New clock at time zero tracking `nodes` nodes.
    pub fn new(nodes: usize) -> Self {
        SimClock {
            now: 0,
            busy: vec![0; nodes],
            buckets: vec![[0; BUCKETS]; nodes],
        }
    }

    /// Current simulated time, µs.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advances global time by `dt` µs.
    pub fn advance(&mut self, dt: SimTime) {
        self.now += dt;
    }

    /// Charges `dt` µs of service time to `node` (also advances time).
    /// Attributed to [`Bucket::Cpu`]; use [`SimClock::charge_as`] for
    /// an explicit bucket.
    pub fn charge(&mut self, node: NodeId, dt: SimTime) {
        self.charge_as(node, Bucket::Cpu, dt);
    }

    /// Charges `dt` µs of service time to `node` under `bucket` (also
    /// advances time).
    pub fn charge_as(&mut self, node: NodeId, bucket: Bucket, dt: SimTime) {
        self.now += dt;
        if let Some(b) = self.busy.get_mut(node.0 as usize) {
            *b += dt;
            self.buckets[node.0 as usize][bucket.index()] += dt;
        }
    }

    /// Charges service time to `node` without advancing global time
    /// (work overlapped with other activity). Attributed to
    /// [`Bucket::Cpu`]; see [`SimClock::charge_overlapped_as`].
    pub fn charge_overlapped(&mut self, node: NodeId, dt: SimTime) {
        self.charge_overlapped_as(node, Bucket::Cpu, dt);
    }

    /// As [`SimClock::charge_overlapped`] with an explicit bucket.
    pub fn charge_overlapped_as(&mut self, node: NodeId, bucket: Bucket, dt: SimTime) {
        if let Some(b) = self.busy.get_mut(node.0 as usize) {
            *b += dt;
            self.buckets[node.0 as usize][bucket.index()] += dt;
        }
    }

    /// Records `dt` µs `node` spent blocked on a lock. Blocked time is
    /// not service time: it lands in [`Bucket::LockWait`] only, never
    /// in `busy`.
    pub fn charge_wait(&mut self, node: NodeId, dt: SimTime) {
        if let Some(b) = self.buckets.get_mut(node.0 as usize) {
            b[Bucket::LockWait.index()] += dt;
        }
    }

    /// Busy time accumulated by `node`, µs.
    pub fn busy(&self, node: NodeId) -> SimTime {
        self.busy.get(node.0 as usize).copied().unwrap_or(0)
    }

    /// Time attributed to `bucket` on `node`, µs.
    pub fn bucket_us(&self, node: NodeId, bucket: Bucket) -> SimTime {
        self.buckets
            .get(node.0 as usize)
            .map(|b| b[bucket.index()])
            .unwrap_or(0)
    }

    /// The full per-bucket profile of `node`, in [`Bucket::ALL`] order.
    /// All buckets except lock-wait sum to exactly `busy(node)`.
    pub fn profile(&self, node: NodeId) -> [SimTime; BUCKETS] {
        self.buckets
            .get(node.0 as usize)
            .copied()
            .unwrap_or([0; BUCKETS])
    }

    /// Busy time of the busiest node — the bottleneck resource.
    pub fn max_busy(&self) -> SimTime {
        self.busy.iter().copied().max().unwrap_or(0)
    }

    /// Node with the most accumulated service time.
    pub fn bottleneck(&self) -> Option<NodeId> {
        self.busy
            .iter()
            .enumerate()
            .max_by_key(|(_, b)| **b)
            .map(|(i, _)| NodeId(i as u32))
    }

    /// Resets time and busy accounting (e.g. after warmup).
    pub fn reset(&mut self) {
        self.now = 0;
        for b in &mut self.busy {
            *b = 0;
        }
        for b in &mut self.buckets {
            *b = [0; BUCKETS];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_model_costs_scale_with_bytes() {
        let m = CostModel::default();
        assert!(m.message_cost(8192) > m.message_cost(64));
        assert!(m.io_cost(8192) > m.io_cost(0));
        assert_eq!(m.io_cost(0), m.io_fixed_us);
    }

    #[test]
    fn unit_model_counts_events() {
        let m = CostModel::unit();
        assert_eq!(m.message_cost(1 << 20), 1);
        assert_eq!(m.io_cost(1 << 20), 1);
    }

    #[test]
    fn clock_accumulates_and_finds_bottleneck() {
        let mut c = SimClock::new(3);
        c.charge(NodeId(0), 5);
        c.charge(NodeId(1), 20);
        c.charge(NodeId(1), 5);
        c.charge_overlapped(NodeId(2), 100);
        assert_eq!(c.now(), 30);
        assert_eq!(c.busy(NodeId(0)), 5);
        assert_eq!(c.busy(NodeId(1)), 25);
        assert_eq!(c.busy(NodeId(2)), 100);
        assert_eq!(c.max_busy(), 100);
        assert_eq!(c.bottleneck(), Some(NodeId(2)));
        c.reset();
        assert_eq!(c.now(), 0);
        assert_eq!(c.max_busy(), 0);
    }

    #[test]
    fn charging_unknown_node_is_ignored() {
        let mut c = SimClock::new(1);
        c.charge(NodeId(9), 7);
        assert_eq!(c.now(), 7);
        assert_eq!(c.busy(NodeId(9)), 0);
        assert_eq!(c.profile(NodeId(9)), [0; BUCKETS]);
    }

    #[test]
    fn buckets_partition_busy_time() {
        let mut c = SimClock::new(2);
        c.charge_as(NodeId(0), Bucket::Disk, 10);
        c.charge_overlapped_as(NodeId(0), Bucket::Net, 3);
        c.charge(NodeId(0), 4); // defaults to Cpu
        c.charge_overlapped_as(NodeId(1), Bucket::Replay, 8);
        c.charge_wait(NodeId(0), 100);
        for n in [NodeId(0), NodeId(1)] {
            let p = c.profile(n);
            let service: SimTime = Bucket::ALL
                .iter()
                .filter(|b| **b != Bucket::LockWait)
                .map(|b| p[b.index()])
                .sum();
            assert_eq!(service, c.busy(n), "buckets partition busy for {n:?}");
        }
        assert_eq!(c.bucket_us(NodeId(0), Bucket::Disk), 10);
        assert_eq!(c.bucket_us(NodeId(0), Bucket::Cpu), 4);
        assert_eq!(c.bucket_us(NodeId(0), Bucket::LockWait), 100);
        assert_eq!(c.busy(NodeId(0)), 17, "lock-wait never counts as busy");
        assert_eq!(c.bucket_us(NodeId(1), Bucket::Replay), 8);
        c.reset();
        assert_eq!(c.profile(NodeId(0)), [0; BUCKETS]);
    }

    #[test]
    fn bucket_labels_are_stable() {
        let labels: Vec<&str> = Bucket::ALL.iter().map(|b| b.label()).collect();
        assert_eq!(labels, vec!["disk", "cpu", "net", "lock_wait", "replay"]);
    }
}
