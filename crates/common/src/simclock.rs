//! Simulated time and the experiment cost model.
//!
//! The 1996 paper's performance arguments are about *counts*: messages
//! exchanged, log records shipped, pages forced to disk, log bytes
//! scanned during recovery. The simulator counts all of those exactly;
//! the cost model here merely converts counts into a simulated elapsed
//! time so experiments can also report latency/throughput-shaped results
//! with an explicit, configurable hardware flavour.

use crate::ids::NodeId;

/// Simulated time in microseconds.
pub type SimTime = u64;

/// Converts protocol events into simulated elapsed time.
///
/// Defaults are flavoured after mid-1990s commodity hardware (10 Mb/s
/// switched Ethernet, ~10 ms average disk access), which is the setting
/// the paper argues in. Every experiment either sweeps these or reports
/// the underlying counts, which are model-free.
#[derive(Clone, Debug)]
pub struct CostModel {
    /// Fixed per-message latency (send+receive software overhead), µs.
    pub msg_fixed_us: u64,
    /// Per-KiB wire cost, µs (10 Mb/s ≈ 800 µs/KiB; we default to a
    /// faster 100 Mb/s-class 80 µs/KiB to avoid drowning every effect in
    /// wire time).
    pub wire_us_per_kib: u64,
    /// Fixed per-I/O disk latency (seek + rotation), µs.
    pub io_fixed_us: u64,
    /// Per-KiB disk transfer cost, µs.
    pub disk_us_per_kib: u64,
    /// CPU cost charged to a node for handling one message, µs.
    pub handle_us: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            msg_fixed_us: 500,
            wire_us_per_kib: 80,
            io_fixed_us: 10_000,
            disk_us_per_kib: 350,
            handle_us: 100,
        }
    }
}

impl CostModel {
    /// A model where only message counts matter (unit costs); useful in
    /// tests asserting exact accounting.
    pub fn unit() -> Self {
        CostModel {
            msg_fixed_us: 1,
            wire_us_per_kib: 0,
            io_fixed_us: 1,
            disk_us_per_kib: 0,
            handle_us: 0,
        }
    }

    /// Simulated cost of a message carrying `bytes` payload bytes.
    pub fn message_cost(&self, bytes: usize) -> SimTime {
        self.msg_fixed_us + (bytes as u64 * self.wire_us_per_kib) / 1024
    }

    /// Simulated cost of one disk I/O of `bytes` bytes.
    pub fn io_cost(&self, bytes: usize) -> SimTime {
        self.io_fixed_us + (bytes as u64 * self.disk_us_per_kib) / 1024
    }
}

/// Simulated clock with per-node busy-time accounting.
///
/// `busy[n]` accumulates the service time node `n` spent handling
/// messages and performing disk I/O. A centralized design (e.g. server
/// logging à la ARIES/CSA) concentrates busy time on the server; the
/// sustainable system throughput is bounded by the busiest resource,
/// which is how the scalability experiment (E2) quantifies the paper's
/// "dependencies on server resources are reduced considerably" claim.
#[derive(Clone, Debug, Default)]
pub struct SimClock {
    now: SimTime,
    busy: Vec<SimTime>,
}

impl SimClock {
    /// New clock at time zero tracking `nodes` nodes.
    pub fn new(nodes: usize) -> Self {
        SimClock {
            now: 0,
            busy: vec![0; nodes],
        }
    }

    /// Current simulated time, µs.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advances global time by `dt` µs.
    pub fn advance(&mut self, dt: SimTime) {
        self.now += dt;
    }

    /// Charges `dt` µs of service time to `node` (also advances time).
    pub fn charge(&mut self, node: NodeId, dt: SimTime) {
        self.now += dt;
        if let Some(b) = self.busy.get_mut(node.0 as usize) {
            *b += dt;
        }
    }

    /// Charges service time to `node` without advancing global time
    /// (work overlapped with other activity).
    pub fn charge_overlapped(&mut self, node: NodeId, dt: SimTime) {
        if let Some(b) = self.busy.get_mut(node.0 as usize) {
            *b += dt;
        }
    }

    /// Busy time accumulated by `node`, µs.
    pub fn busy(&self, node: NodeId) -> SimTime {
        self.busy.get(node.0 as usize).copied().unwrap_or(0)
    }

    /// Busy time of the busiest node — the bottleneck resource.
    pub fn max_busy(&self) -> SimTime {
        self.busy.iter().copied().max().unwrap_or(0)
    }

    /// Node with the most accumulated service time.
    pub fn bottleneck(&self) -> Option<NodeId> {
        self.busy
            .iter()
            .enumerate()
            .max_by_key(|(_, b)| **b)
            .map(|(i, _)| NodeId(i as u32))
    }

    /// Resets time and busy accounting (e.g. after warmup).
    pub fn reset(&mut self) {
        self.now = 0;
        for b in &mut self.busy {
            *b = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_model_costs_scale_with_bytes() {
        let m = CostModel::default();
        assert!(m.message_cost(8192) > m.message_cost(64));
        assert!(m.io_cost(8192) > m.io_cost(0));
        assert_eq!(m.io_cost(0), m.io_fixed_us);
    }

    #[test]
    fn unit_model_counts_events() {
        let m = CostModel::unit();
        assert_eq!(m.message_cost(1 << 20), 1);
        assert_eq!(m.io_cost(1 << 20), 1);
    }

    #[test]
    fn clock_accumulates_and_finds_bottleneck() {
        let mut c = SimClock::new(3);
        c.charge(NodeId(0), 5);
        c.charge(NodeId(1), 20);
        c.charge(NodeId(1), 5);
        c.charge_overlapped(NodeId(2), 100);
        assert_eq!(c.now(), 30);
        assert_eq!(c.busy(NodeId(0)), 5);
        assert_eq!(c.busy(NodeId(1)), 25);
        assert_eq!(c.busy(NodeId(2)), 100);
        assert_eq!(c.max_busy(), 100);
        assert_eq!(c.bottleneck(), Some(NodeId(2)));
        c.reset();
        assert_eq!(c.now(), 0);
        assert_eq!(c.max_busy(), 0);
    }

    #[test]
    fn charging_unknown_node_is_ignored() {
        let mut c = SimClock::new(1);
        c.charge(NodeId(9), 7);
        assert_eq!(c.now(), 7);
        assert_eq!(c.busy(NodeId(9)), 0);
    }
}
