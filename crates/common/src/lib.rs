//! Common foundation types for the client-based logging system.
//!
//! This crate defines the identifier types shared by every subsystem
//! (nodes, pages, transactions, log sequence numbers, page sequence
//! numbers), the error type, a small binary codec with checksumming used
//! by both the page store and the write-ahead log, and the simulated
//! clock / cost model that powers the deterministic distributed
//! experiments.
//!
//! The identifier discipline follows the ICDE 1996 paper "Client-Based
//! Logging for High Performance Distributed Architectures":
//!
//! * [`Psn`] — *page sequence number*, incremented by one on every update
//!   to a page and stored both in the page header and in every log record
//!   describing an update to the page. PSNs give a total order of updates
//!   to a single page across *all* nodes without any clock
//!   synchronization (page-level X locks serialize updates).
//! * [`Lsn`] — *log sequence number*, the byte address of a record in one
//!   node's **local** log. LSNs are never compared across nodes; each log
//!   is private and logs are never merged.

pub mod codec;
pub mod error;
pub mod ids;
pub mod jsonv;
pub mod metrics;
pub mod obs;
pub mod rng;
pub mod simclock;
pub mod span;
pub mod stats;
pub mod trace;

pub use codec::{crc32, Decoder, Encoder, Fnv1a};
pub use error::{Error, Result};
pub use ids::{Lsn, NodeId, PageId, Psn, Rid, TxnId};
pub use jsonv::JsonValue;
pub use obs::{
    Gauge, Histogram, HistogramSnapshot, MetricValue, Registry, Reservoir, Sampler, SeriesRing,
    Snapshot,
};
pub use rng::Rng;
pub use simclock::{Bucket, CostModel, SimClock, SimTime, BUCKETS};
pub use span::{Span, SpanBuf, SpanCtx, SpanId, SpanKind, Tracer, TransferWhy, TreeOp, Violation};
pub use stats::Counter;
pub use trace::{FlightRecorder, RecoveryPhase, TraceEvent, TraceRecord};
