//! Observability: a per-node metrics registry with counters, gauges
//! and sim-time histograms, plus snapshot/diff/JSON export.
//!
//! The paper's claims are quantitative (one local log force per
//! commit, bounded replay shuttling, no log merging), so every
//! subsystem registers its counters here under a stable
//! `subsystem/metric` name; the cluster prefixes each node's entries
//! with `n<id>/` so a full snapshot is addressable as
//! `node/subsystem/metric` (e.g. `n1/wal/forces`).
//!
//! Like [`Counter`](crate::Counter), all handles are cheap clones
//! sharing interior state — gauges via `Arc<AtomicI64>`, histograms
//! and the registry via `Arc<Mutex<_>>` — so one instrumentation layer
//! serves both the single-threaded simulator and the OS-thread-per-node
//! runtime, whose workers record into the same handles concurrently
//! (see `common::stats` for the full contract).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use crate::simclock::SimTime;
use crate::stats::Counter;

/// Locks `m`, recovering the data from a poisoned mutex: metrics must
/// stay readable after a worker thread panics mid-record (a counter
/// bump or histogram sample is never left half-written — the inner
/// state is valid even if the panicking thread abandoned the guard).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Number of histogram buckets: bucket 0 holds the value 0, bucket
/// `i` (1..=64) holds values whose bit length is `i`, i.e. the range
/// `[2^(i-1), 2^i - 1]`. Bucket 64 is the overflow bucket for values
/// `>= 2^63`.
pub const HIST_BUCKETS: usize = 65;

fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

fn bucket_upper(i: usize) -> u64 {
    match i {
        0 => 0,
        64 => u64::MAX,
        _ => (1u64 << i) - 1,
    }
}

fn bucket_lower(i: usize) -> u64 {
    match i {
        0 => 0,
        _ => 1u64 << (i - 1),
    }
}

/// A shared, cheaply-clonable signed gauge (current value, not rate).
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    inner: Arc<AtomicI64>,
}

impl Gauge {
    /// New gauge at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Sets the current value.
    pub fn set(&self, v: i64) {
        self.inner.store(v, Ordering::Relaxed);
    }

    /// Adds `d` (may be negative).
    pub fn add(&self, d: i64) {
        self.inner.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.inner.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistInner {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; HIST_BUCKETS],
}

impl Default for HistInner {
    fn default() -> Self {
        HistInner {
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
            buckets: [0; HIST_BUCKETS],
        }
    }
}

/// A shared sim-time histogram with fixed logarithmic bucketing.
///
/// Values are `u64` (typically µs of simulated time). Percentiles are
/// estimated from the bucket boundaries; exact `min`/`max` are kept so
/// single-sample and tail queries stay exact.
#[derive(Clone, Debug, Default)]
pub struct Histogram {
    inner: Arc<Mutex<HistInner>>,
}

impl Histogram {
    /// New empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        let mut h = lock(&self.inner);
        if h.count == 0 || v < h.min {
            h.min = v;
        }
        if v > h.max {
            h.max = v;
        }
        h.count += 1;
        h.sum = h.sum.saturating_add(v);
        h.buckets[bucket_of(v)] += 1;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        lock(&self.inner).count
    }

    /// Immutable copy of the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let h = lock(&self.inner);
        HistogramSnapshot {
            count: h.count,
            sum: h.sum,
            min: h.min,
            max: h.max,
            buckets: h.buckets,
        }
    }

    /// Clears all samples.
    pub fn reset(&self) {
        *lock(&self.inner) = HistInner::default();
    }
}

/// Point-in-time copy of a [`Histogram`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples (saturating).
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Per-bucket sample counts (see [`HIST_BUCKETS`]).
    pub buckets: [u64; HIST_BUCKETS],
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
            buckets: [0; HIST_BUCKETS],
        }
    }
}

impl HistogramSnapshot {
    /// Estimated value at quantile `q` in `[0, 1]`: the upper bound of
    /// the bucket containing the rank-`ceil(q·count)` sample, clamped
    /// to the exact `[min, max]` range. Returns 0 when empty.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return bucket_upper(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median estimate.
    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    /// 95th percentile estimate.
    pub fn p95(&self) -> u64 {
        self.percentile(0.95)
    }

    /// 99th percentile estimate.
    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }

    /// Mean of all samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Samples recorded since an `earlier` snapshot of the same
    /// histogram (mirrors `NetStats::since`). `min`/`max` of the delta
    /// are re-derived from its occupied bucket boundaries, so they are
    /// bucket-resolution approximations rather than exact values.
    pub fn since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut out = HistogramSnapshot {
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            min: 0,
            max: 0,
            buckets: [0; HIST_BUCKETS],
        };
        for i in 0..HIST_BUCKETS {
            out.buckets[i] = self.buckets[i].saturating_sub(earlier.buckets[i]);
        }
        if out.count > 0 {
            let lo = out.buckets.iter().position(|&c| c > 0).unwrap_or(0);
            let hi = HIST_BUCKETS - 1 - out.buckets.iter().rev().position(|&c| c > 0).unwrap_or(0);
            out.min = bucket_lower(lo).max(earlier.min.min(self.min));
            out.max = bucket_upper(hi).min(self.max);
        }
        out
    }
}

#[derive(Debug)]
struct ReservoirInner {
    samples: Vec<u64>,
    seen: u64,
    rng: crate::rng::Rng,
}

/// Fixed-capacity uniform sample of a value stream (Vitter's
/// algorithm R), for *exact* percentiles where the log-2
/// [`Histogram`] only gives bucket upper bounds.
///
/// While `seen ≤ capacity` every recorded value is held and
/// [`percentile`](Reservoir::percentile) is exact
/// ([`is_exact`](Reservoir::is_exact) reports which regime applies);
/// past capacity each value replaces a uniformly random held sample,
/// so percentiles degrade to an unbiased estimate instead of a bucket
/// bound. Replacement draws from the in-repo deterministic [`Rng`]
/// seeded at construction: identical value streams always produce
/// identical samples. Thread-safe the same way `Histogram` is (one
/// mutexed cell behind an `Arc`).
///
/// [`Rng`]: crate::rng::Rng
#[derive(Clone, Debug)]
pub struct Reservoir {
    inner: Arc<Mutex<ReservoirInner>>,
    cap: usize,
}

impl Reservoir {
    /// New empty reservoir holding up to `capacity` samples (clamped
    /// to at least 1).
    pub fn new(capacity: usize) -> Self {
        Reservoir {
            inner: Arc::new(Mutex::new(ReservoirInner {
                samples: Vec::new(),
                seen: 0,
                rng: crate::rng::Rng::seed_from_u64(0x05EE_D0B5_u64 ^ capacity as u64),
            })),
            cap: capacity.max(1),
        }
    }

    /// Records one value.
    pub fn record(&self, v: u64) {
        let mut r = lock(&self.inner);
        r.seen += 1;
        if r.samples.len() < self.cap {
            r.samples.push(v);
        } else {
            let seen = r.seen;
            let j = r.rng.gen_range(0..seen) as usize;
            if j < self.cap {
                r.samples[j] = v;
            }
        }
    }

    /// Total values recorded (held + replaced).
    pub fn count(&self) -> u64 {
        lock(&self.inner).seen
    }

    /// True while every recorded value is still held, i.e. while
    /// percentiles are exact rather than sampled estimates.
    pub fn is_exact(&self) -> bool {
        let r = lock(&self.inner);
        r.seen <= self.cap as u64
    }

    /// Value at quantile `q` in `[0, 1]`: the rank-`ceil(q·n)` held
    /// sample (0 when empty). Exact whenever
    /// [`is_exact`](Reservoir::is_exact) holds.
    pub fn percentile(&self, q: f64) -> u64 {
        let r = lock(&self.inner);
        if r.samples.is_empty() {
            return 0;
        }
        let mut sorted = r.samples.clone();
        sorted.sort_unstable();
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }
}

/// One exported metric value.
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    /// Monotone event count.
    Counter(u64),
    /// Current signed level.
    Gauge(i64),
    /// Distribution summary (boxed: ~70× larger than the scalars).
    Histogram(Box<HistogramSnapshot>),
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
}

/// A named collection of metrics for one node (or one shared
/// facility like the network).
///
/// Handles returned by [`counter`](Registry::counter) etc. are cheap
/// clones; hot paths keep the handle instead of re-resolving the name.
/// Existing `Counter`s (e.g. the WAL manager's) can be registered
/// as-is via [`register_counter`](Registry::register_counter) — the
/// registry then observes the very cells the subsystem bumps.
///
/// The registry lock only guards the name → handle maps; recording
/// into a resolved handle touches that metric's own cell, so hot-path
/// bumps from different threads never contend on the registry itself.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    inner: Arc<Mutex<RegistryInner>>,
}

impl Registry {
    /// New empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Returns (creating if absent) the counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        lock(&self.inner)
            .counters
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Registers an existing counter handle under `name` (replacing
    /// any previous registration).
    pub fn register_counter(&self, name: &str, c: &Counter) {
        lock(&self.inner)
            .counters
            .insert(name.to_string(), c.clone());
    }

    /// Returns (creating if absent) the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        lock(&self.inner)
            .gauges
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Returns (creating if absent) the histogram `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        lock(&self.inner)
            .histograms
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Registers an existing histogram handle under `name` (replacing
    /// any previous registration) — the same sharing discipline as
    /// [`register_counter`](Registry::register_counter), used e.g. to
    /// surface the WAL store's fsync timings.
    pub fn register_histogram(&self, name: &str, h: &Histogram) {
        lock(&self.inner)
            .histograms
            .insert(name.to_string(), h.clone());
    }

    /// Point-in-time copy of every metric.
    pub fn snapshot(&self) -> Snapshot {
        let r = lock(&self.inner);
        let mut entries = BTreeMap::new();
        for (k, c) in &r.counters {
            entries.insert(k.clone(), MetricValue::Counter(c.get()));
        }
        for (k, g) in &r.gauges {
            entries.insert(k.clone(), MetricValue::Gauge(g.get()));
        }
        for (k, h) in &r.histograms {
            entries.insert(k.clone(), MetricValue::Histogram(Box::new(h.snapshot())));
        }
        Snapshot { entries }
    }

    /// Resets every metric to its empty state (e.g. after warmup).
    pub fn reset(&self) {
        let r = lock(&self.inner);
        for c in r.counters.values() {
            c.reset();
        }
        for g in r.gauges.values() {
            g.set(0);
        }
        for h in r.histograms.values() {
            h.reset();
        }
    }
}

/// Immutable point-in-time view of a [`Registry`] (possibly merged
/// across nodes), with diff and JSON export.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// Metric name → value, sorted by name.
    pub entries: BTreeMap<String, MetricValue>,
}

impl Snapshot {
    /// Looks up one metric.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries.get(name)
    }

    /// Counter value (0 if absent or not a counter).
    pub fn counter(&self, name: &str) -> u64 {
        match self.entries.get(name) {
            Some(MetricValue::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// Gauge value (0 if absent or not a gauge).
    pub fn gauge(&self, name: &str) -> i64 {
        match self.entries.get(name) {
            Some(MetricValue::Gauge(v)) => *v,
            _ => 0,
        }
    }

    /// Histogram summary, if `name` is a histogram.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        match self.entries.get(name) {
            Some(MetricValue::Histogram(h)) => Some(h.as_ref()),
            _ => None,
        }
    }

    /// Absorbs every entry of `other` with `prefix` prepended to its
    /// name — how a cluster-wide snapshot is assembled from per-node
    /// registries (`n0/`, `n1/`, …).
    pub fn merge_prefixed(&mut self, prefix: &str, other: Snapshot) {
        for (k, v) in other.entries {
            self.entries.insert(format!("{prefix}{k}"), v);
        }
    }

    /// Change since an `earlier` snapshot (mirrors `NetStats::since`):
    /// counters and histograms subtract; gauges keep their current
    /// value (a level has no meaningful delta). Entries absent from
    /// `earlier` are treated as zero/empty.
    pub fn since(&self, earlier: &Snapshot) -> Snapshot {
        let mut entries = BTreeMap::new();
        for (k, v) in &self.entries {
            let dv = match (v, earlier.entries.get(k)) {
                (MetricValue::Counter(now), Some(MetricValue::Counter(then))) => {
                    MetricValue::Counter(now.saturating_sub(*then))
                }
                (MetricValue::Histogram(now), Some(MetricValue::Histogram(then))) => {
                    MetricValue::Histogram(Box::new(now.since(then)))
                }
                _ => v.clone(),
            };
            entries.insert(k.clone(), dv);
        }
        Snapshot { entries }
    }

    /// Serializes to a JSON object. Counters and gauges become
    /// numbers; histograms become objects with `count`, `sum`, `min`,
    /// `max`, `mean`, `p50`, `p95`, `p99`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let mut first = true;
        for (k, v) in &self.entries {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\"{}\":", json_escape(k)));
            match v {
                MetricValue::Counter(c) => out.push_str(&c.to_string()),
                MetricValue::Gauge(g) => out.push_str(&g.to_string()),
                MetricValue::Histogram(h) => {
                    out.push_str(&format!(
                        "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{:.1},\"p50\":{},\"p95\":{},\"p99\":{}}}",
                        h.count,
                        h.sum,
                        h.min,
                        h.max,
                        h.mean(),
                        h.p50(),
                        h.p95(),
                        h.p99()
                    ));
                }
            }
        }
        out.push('}');
        out
    }
}

/// Fixed-capacity ring of `(interval_end_us, value)` samples for one
/// metric — the storage behind a [`Sampler`] timeline. When full, the
/// oldest sample is overwritten and `dropped` counts the loss.
#[derive(Clone, Debug)]
pub struct SeriesRing {
    cap: usize,
    buf: Vec<(SimTime, i64)>,
    write: usize,
    dropped: u64,
}

impl SeriesRing {
    /// New empty ring keeping the most recent `capacity` samples
    /// (clamped to at least 1).
    pub fn new(capacity: usize) -> Self {
        SeriesRing {
            cap: capacity.max(1),
            buf: Vec::new(),
            write: 0,
            dropped: 0,
        }
    }

    /// Appends one sample, evicting the oldest when full.
    pub fn push(&mut self, t: SimTime, v: i64) {
        if self.buf.len() < self.cap {
            self.buf.push((t, v));
        } else {
            self.buf[self.write] = (t, v);
            self.write = (self.write + 1) % self.cap;
            self.dropped += 1;
        }
    }

    /// Retained samples, oldest first (order preserved across
    /// wrap-around).
    pub fn samples(&self) -> Vec<(SimTime, i64)> {
        if self.buf.len() < self.cap {
            self.buf.clone()
        } else {
            let mut out = Vec::with_capacity(self.cap);
            out.extend_from_slice(&self.buf[self.write..]);
            out.extend_from_slice(&self.buf[..self.write]);
            out
        }
    }

    /// Samples currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no sample was ever pushed.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Samples lost to wrap-around.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }
}

/// Interval sampler: turns registry snapshots into per-metric
/// timelines (DESIGN §11).
///
/// Feed it the current merged [`Snapshot`] whenever simulated time may
/// have crossed an interval boundary; for every boundary crossed it
/// appends one sample per metric to that metric's [`SeriesRing`] —
/// counters and histograms as per-interval deltas (the whole delta
/// lands in the first interval of a multi-interval jump, zeros after),
/// gauges as their current level. Everything is integer arithmetic
/// over `BTreeMap`s, so same-seed runs export byte-identical JSON.
#[derive(Clone, Debug)]
pub struct Sampler {
    interval_us: SimTime,
    cap: usize,
    next_boundary: SimTime,
    prev: Snapshot,
    skipped: u64,
    series: BTreeMap<String, SeriesRing>,
}

impl Sampler {
    /// New sampler emitting one sample per metric every `interval_us`
    /// of simulated time (clamped to at least 1), each timeline
    /// keeping the most recent `capacity` samples.
    pub fn new(interval_us: SimTime, capacity: usize) -> Self {
        let interval_us = interval_us.max(1);
        Sampler {
            interval_us,
            cap: capacity.max(1),
            next_boundary: interval_us,
            prev: Snapshot::default(),
            skipped: 0,
            series: BTreeMap::new(),
        }
    }

    /// The sampling interval, µs.
    pub fn interval_us(&self) -> SimTime {
        self.interval_us
    }

    /// Samples once per interval boundary crossed up to `now`. A jump
    /// over more boundaries than one ring can hold fast-forwards past
    /// the surplus (those samples would be overwritten anyway) and
    /// counts them in [`Sampler::skipped`].
    pub fn sample(&mut self, now: SimTime, snap: &Snapshot) {
        if now < self.next_boundary {
            return;
        }
        let crossings = (now - self.next_boundary) / self.interval_us + 1;
        let skip = crossings.saturating_sub(self.cap as u64);
        self.next_boundary += skip * self.interval_us;
        self.skipped += skip;
        let delta = snap.since(&self.prev);
        let mut first = true;
        while now >= self.next_boundary {
            let t = self.next_boundary;
            for (k, v) in &delta.entries {
                let val = match v {
                    MetricValue::Counter(c) => {
                        if first {
                            *c as i64
                        } else {
                            0
                        }
                    }
                    MetricValue::Gauge(g) => *g,
                    MetricValue::Histogram(h) => {
                        if first {
                            h.count as i64
                        } else {
                            0
                        }
                    }
                };
                self.series
                    .entry(k.clone())
                    .or_insert_with(|| SeriesRing::new(self.cap))
                    .push(t, val);
            }
            first = false;
            self.next_boundary += self.interval_us;
        }
        self.prev = snap.clone();
    }

    /// The timeline of one metric, if it ever appeared in a snapshot.
    pub fn series(&self, name: &str) -> Option<&SeriesRing> {
        self.series.get(name)
    }

    /// Every metric with a timeline, sorted by name.
    pub fn names(&self) -> Vec<&str> {
        self.series.keys().map(|s| s.as_str()).collect()
    }

    /// Interval boundaries fast-forwarded past (idle jumps longer than
    /// a full ring).
    pub fn skipped(&self) -> u64 {
        self.skipped
    }

    /// Discards all timelines and restarts from time zero.
    pub fn reset(&mut self) {
        self.next_boundary = self.interval_us;
        self.prev = Snapshot::default();
        self.skipped = 0;
        self.series.clear();
    }

    /// Deterministic JSON export:
    /// `{"interval_us":…,"series":{"name":{"dropped":…,"samples":[[t,v],…]},…}}`.
    /// `BTreeMap` iteration order makes same-seed exports
    /// byte-identical.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"interval_us\":{},\"series\":{{",
            self.interval_us
        ));
        let mut first = true;
        for (k, ring) in &self.series {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\"{}\":{{\"dropped\":{},\"samples\":[",
                json_escape(k),
                ring.dropped()
            ));
            for (i, (t, v)) in ring.samples().iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("[{t},{v}]"));
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }
}

/// Escapes a string for inclusion in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        let s = h.snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.p50(), 0);
        assert_eq!(s.p99(), 0);
        assert_eq!(s.max, 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn single_sample_percentiles_are_exact() {
        let h = Histogram::new();
        h.record(1234);
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert_eq!(s.min, 1234);
        assert_eq!(s.max, 1234);
        // Bucket upper bound is clamped to the exact max.
        assert_eq!(s.p50(), 1234);
        assert_eq!(s.p95(), 1234);
        assert_eq!(s.p99(), 1234);
    }

    #[test]
    fn zero_sample_goes_to_bucket_zero() {
        let h = Histogram::new();
        h.record(0);
        let s = h.snapshot();
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.p50(), 0);
    }

    #[test]
    fn overflow_bucket_holds_huge_values() {
        let h = Histogram::new();
        h.record(u64::MAX);
        h.record(1u64 << 63);
        let s = h.snapshot();
        assert_eq!(s.buckets[HIST_BUCKETS - 1], 2);
        assert_eq!(s.max, u64::MAX);
        assert_eq!(s.p99(), u64::MAX);
    }

    #[test]
    fn percentiles_are_monotone_and_bucket_accurate() {
        let h = Histogram::new();
        // 90 fast samples, 10 slow ones.
        for _ in 0..90 {
            h.record(100);
        }
        for _ in 0..10 {
            h.record(10_000);
        }
        let s = h.snapshot();
        let (p50, p95, p99) = (s.p50(), s.p95(), s.p99());
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
        // p50 falls in 100's bucket [64,127]; p95/p99 in 10_000's
        // bucket [8192,16383], clamped by max.
        assert!((64..=127).contains(&p50), "p50 {p50}");
        assert!((8192..=10_000).contains(&p99), "p99 {p99}");
    }

    #[test]
    fn histogram_since_mirrors_netstats_since() {
        let h = Histogram::new();
        h.record(10);
        h.record(20);
        let before = h.snapshot();
        h.record(5000);
        let delta = h.snapshot().since(&before);
        assert_eq!(delta.count, 1);
        assert_eq!(delta.sum, 5000);
        // The only delta sample lives in 5000's bucket.
        assert_eq!(delta.buckets[bucket_of(5000)], 1);
        assert!(delta.min >= 4096 && delta.max <= 5000);
    }

    #[test]
    fn histogram_reset_clears_samples() {
        let h = Histogram::new();
        h.record(7);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.snapshot().p50(), 0);
    }

    #[test]
    fn registry_round_trips_counters_gauges_histograms() {
        let r = Registry::new();
        r.counter("wal/forces").add(3);
        r.gauge("buf/dirty").set(-2);
        r.histogram("wal/force_us").record(1000);
        // Re-resolving a name yields the same underlying metric.
        assert_eq!(r.counter("wal/forces").get(), 3);
        let s = r.snapshot();
        assert_eq!(s.counter("wal/forces"), 3);
        assert_eq!(s.gauge("buf/dirty"), -2);
        assert_eq!(s.histogram("wal/force_us").unwrap().count, 1);
        assert!(s.get("missing").is_none());
    }

    #[test]
    fn register_existing_counter_shares_cells() {
        let r = Registry::new();
        let c = Counter::new();
        r.register_counter("db/reads", &c);
        c.add(5);
        assert_eq!(r.snapshot().counter("db/reads"), 5);
    }

    #[test]
    fn snapshot_since_subtracts_counters_keeps_gauges() {
        let r = Registry::new();
        let c = r.counter("x/events");
        let g = r.gauge("x/level");
        c.add(10);
        g.set(4);
        let before = r.snapshot();
        c.add(7);
        g.set(9);
        let d = r.snapshot().since(&before);
        assert_eq!(d.counter("x/events"), 7);
        assert_eq!(d.gauge("x/level"), 9, "gauges report current level");
    }

    #[test]
    fn registry_reset_zeroes_everything() {
        let r = Registry::new();
        r.counter("a").add(2);
        r.gauge("b").set(5);
        r.histogram("c").record(9);
        r.reset();
        let s = r.snapshot();
        assert_eq!(s.counter("a"), 0);
        assert_eq!(s.gauge("b"), 0);
        assert_eq!(s.histogram("c").unwrap().count, 0);
    }

    #[test]
    fn merge_prefixed_namespaces_nodes() {
        let r0 = Registry::new();
        r0.counter("wal/forces").add(1);
        let r1 = Registry::new();
        r1.counter("wal/forces").add(2);
        let mut all = Snapshot::default();
        all.merge_prefixed("n0/", r0.snapshot());
        all.merge_prefixed("n1/", r1.snapshot());
        assert_eq!(all.counter("n0/wal/forces"), 1);
        assert_eq!(all.counter("n1/wal/forces"), 2);
    }

    #[test]
    fn series_ring_wraps_at_capacity() {
        let mut r = SeriesRing::new(4);
        for i in 0..10u64 {
            r.push(i * 100, i as i64);
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.capacity(), 4);
        assert_eq!(r.dropped(), 6);
        let s = r.samples();
        assert_eq!(
            s,
            vec![(600, 6), (700, 7), (800, 8), (900, 9)],
            "oldest evicted, order kept across wrap-around"
        );
    }

    #[test]
    fn sampler_emits_one_sample_per_boundary() {
        let reg = Registry::new();
        let c = reg.counter("txn/commits");
        let g = reg.gauge("wal/pending_commits");
        let mut s = Sampler::new(1_000, 16);
        c.add(3);
        g.set(2);
        s.sample(999, &reg.snapshot());
        assert!(s.series("txn/commits").is_none(), "no boundary crossed yet");
        s.sample(1_000, &reg.snapshot());
        c.add(5);
        g.set(7);
        s.sample(2_500, &reg.snapshot());
        let commits = s.series("txn/commits").unwrap().samples();
        assert_eq!(commits, vec![(1_000, 3), (2_000, 5)], "per-interval deltas");
        let depth = s.series("wal/pending_commits").unwrap().samples();
        assert_eq!(depth, vec![(1_000, 2), (2_000, 7)], "gauges report levels");
    }

    #[test]
    fn sampler_attributes_jump_delta_to_first_interval() {
        let reg = Registry::new();
        let c = reg.counter("x/events");
        let mut s = Sampler::new(100, 16);
        c.add(9);
        // One call jumps over three boundaries: delta lands in the
        // first crossed interval, zeros after.
        s.sample(350, &reg.snapshot());
        assert_eq!(
            s.series("x/events").unwrap().samples(),
            vec![(100, 9), (200, 0), (300, 0)]
        );
        assert_eq!(s.skipped(), 0);
    }

    #[test]
    fn sampler_fast_forwards_past_full_ring_jumps() {
        let reg = Registry::new();
        reg.counter("x/events").add(1);
        let mut s = Sampler::new(10, 4);
        // 100 boundaries crossed but only 4 fit: the surplus is
        // skipped, not looped over.
        s.sample(1_000, &reg.snapshot());
        let ring = s.series("x/events").unwrap();
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.dropped(), 0, "skipped boundaries never hit the ring");
        assert_eq!(s.skipped(), 96);
        let last = *ring.samples().last().unwrap();
        assert_eq!(last.0, 1_000);
    }

    #[test]
    fn sampler_json_is_deterministic() {
        let run = || {
            let reg = Registry::new();
            let c = reg.counter("txn/commits");
            let mut s = Sampler::new(1_000, 8);
            for i in 1..=20u64 {
                c.add(i % 3);
                s.sample(i * 700, &reg.snapshot());
            }
            s.to_json()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same inputs export byte-identical JSON");
        assert!(a.starts_with("{\"interval_us\":1000,\"series\":{"));
        assert!(a.contains("\"txn/commits\":{\"dropped\":"));
    }

    #[test]
    fn sampler_reset_restarts_from_zero() {
        let reg = Registry::new();
        reg.counter("x/events").add(4);
        let mut s = Sampler::new(100, 8);
        s.sample(250, &reg.snapshot());
        assert!(s.series("x/events").is_some());
        s.reset();
        assert!(s.series("x/events").is_none());
        assert_eq!(s.skipped(), 0);
        s.sample(100, &reg.snapshot());
        // Counter total re-appears as the first interval's delta.
        assert_eq!(s.series("x/events").unwrap().samples(), vec![(100, 4)]);
    }

    #[test]
    fn concurrent_increments_through_one_registry_are_not_lost() {
        let r = Registry::new();
        let threads = 8u64;
        let per_thread = 5_000u64;
        std::thread::scope(|s| {
            for t in 0..threads {
                let r = r.clone();
                s.spawn(move || {
                    // Resolve handles inside the thread: name lookup
                    // races against other threads creating the same
                    // entries, which must converge on one shared cell.
                    let c = r.counter("rt/commits");
                    let g = r.gauge("rt/pending");
                    let h = r.histogram("rt/latency_us");
                    for i in 0..per_thread {
                        c.bump();
                        g.add(1);
                        g.add(-1);
                        h.record(t * per_thread + i);
                    }
                });
            }
        });
        let s = r.snapshot();
        assert_eq!(s.counter("rt/commits"), threads * per_thread);
        assert_eq!(s.gauge("rt/pending"), 0);
        let h = s.histogram("rt/latency_us").unwrap();
        assert_eq!(h.count, threads * per_thread);
        assert_eq!(h.max, threads * per_thread - 1);
        assert_eq!(h.buckets.iter().sum::<u64>(), h.count);
    }

    #[test]
    fn json_export_is_well_formed() {
        let r = Registry::new();
        r.counter("n0/wal/forces").add(2);
        r.gauge("n0/buf/dirty").set(1);
        r.histogram("n0/wal/force_us").record(500);
        let j = r.snapshot().to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"n0/wal/forces\":2"));
        assert!(j.contains("\"p99\":500"));
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn registered_histogram_shares_the_cell() {
        let r = Registry::new();
        let h = Histogram::new();
        r.register_histogram("wal/fsync_us", &h);
        h.record(123);
        let s = r.snapshot();
        assert_eq!(s.histogram("wal/fsync_us").unwrap().count, 1);
        assert_eq!(s.histogram("wal/fsync_us").unwrap().max, 123);
    }

    #[test]
    fn reservoir_percentiles_are_exact_under_capacity() {
        let r = Reservoir::new(1000);
        // 1..=100 shuffled by stride; exact ranks regardless of order.
        for i in 0..100u64 {
            r.record((i * 37) % 100 + 1);
        }
        assert!(r.is_exact());
        assert_eq!(r.count(), 100);
        assert_eq!(r.percentile(0.50), 50);
        assert_eq!(r.percentile(0.99), 99);
        assert_eq!(r.percentile(1.0), 100);
        assert_eq!(r.percentile(0.0), 1, "rank clamps to the first sample");
        // Compare against the log-2 histogram's bucket-bound answer to
        // pin *why* the reservoir exists: 50 lands in bucket [32,63],
        // whose upper bound is 63, not 50.
        let h = Histogram::new();
        for i in 1..=100u64 {
            h.record(i);
        }
        assert_eq!(h.snapshot().p50(), 63);
    }

    #[test]
    fn reservoir_past_capacity_estimates_deterministically() {
        let mk = || {
            let r = Reservoir::new(64);
            for i in 1..=10_000u64 {
                r.record(i);
            }
            r
        };
        let a = mk();
        assert!(!a.is_exact());
        assert_eq!(a.count(), 10_000);
        let p50 = a.percentile(0.50);
        assert!((1..=10_000).contains(&p50));
        // Same stream → same samples → same estimate.
        assert_eq!(p50, mk().percentile(0.50));
        // Empty reservoir is defined.
        assert_eq!(Reservoir::new(8).percentile(0.5), 0);
    }

    #[test]
    fn reservoir_is_thread_safe() {
        let r = Reservoir::new(4096);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let r = &r;
                s.spawn(move || {
                    for i in 0..256u64 {
                        r.record(t * 256 + i + 1);
                    }
                });
            }
        });
        assert_eq!(r.count(), 1024);
        assert!(r.is_exact());
        assert_eq!(r.percentile(1.0), 1024);
    }
}
