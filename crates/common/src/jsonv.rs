//! A minimal JSON reader for the observability tooling.
//!
//! The workspace writes JSON by hand (`Snapshot::to_json`,
//! `Table::to_json`, `Sampler::to_json`) but until the perf-regression
//! gate nothing ever read it back. This module is the missing half: a
//! small recursive-descent parser into a [`JsonValue`] tree, enough
//! for `BASELINES.json` and the `obsreport` renderer. No dependencies,
//! no streaming, no serde — inputs are the workspace's own exports
//! (plus hand-maintained baseline files), all well under a megabyte.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`; the workspace only writes integers
    /// and short decimals, well inside `f64`'s exact range).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member `key` of an object (None for other variants).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Element `i` of an array (None for other variants).
    pub fn idx(&self, i: usize) -> Option<&JsonValue> {
        match self {
            JsonValue::Arr(items) => items.get(i),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload truncated to `i64`, if this is a number.
    pub fn as_i64(&self) -> Option<i64> {
        self.as_f64().map(|n| n as i64)
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object members, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(members) => Some(members),
            _ => None,
        }
    }
}

/// Parses `input` as a single JSON document.
///
/// Errors carry the byte offset of the offending character so a bad
/// hand-edit of `BASELINES.json` points at itself.
pub fn parse(input: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        format!("json parse error at byte {}: {}", self.pos, msg)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            members.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs: the workspace never
                            // writes them, but accept them anyway.
                            let ch = if (0xd800..0xdc00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let c = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
                                    char::from_u32(c)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(ch.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(b) if b < 0x20 => return Err(self.err("raw control byte in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xc0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        s.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| self.err("bad number"))
    }
}

/// Re-serializes a [`JsonValue`] compactly — used by tests to check
/// round-trips and by tools that tweak a parsed document.
pub fn to_string(v: &JsonValue) -> String {
    let mut out = String::new();
    write_value(v, &mut out);
    out
}

fn write_value(v: &JsonValue, out: &mut String) {
    match v {
        JsonValue::Null => out.push_str("null"),
        JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        JsonValue::Num(n) => {
            if n.fract() == 0.0 && n.abs() < 9e15 {
                let _ = write!(out, "{}", *n as i64);
            } else {
                let _ = write!(out, "{n}");
            }
        }
        JsonValue::Str(s) => {
            let _ = write!(out, "\"{}\"", crate::obs::json_escape(s));
        }
        JsonValue::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        JsonValue::Obj(members) => {
            out.push('{');
            for (i, (k, item)) in members.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\":", crate::obs::json_escape(k));
                write_value(item, out);
            }
            out.push('}');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse(" -12.5e1 ").unwrap(), JsonValue::Num(-125.0));
        assert_eq!(
            parse("\"a\\n\\\"b\\u0041\"").unwrap(),
            JsonValue::Str("a\n\"bA".into())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a":[1,2,{"b":null}],"c":{"d":"e"}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().idx(1).unwrap().as_f64(), Some(2.0));
        assert_eq!(
            v.get("a").unwrap().idx(2).unwrap().get("b"),
            Some(&JsonValue::Null)
        );
        assert_eq!(v.get("c").unwrap().get("d").unwrap().as_str(), Some("e"));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["{", "[1,", "{\"a\" 1}", "tru", "\"unterminated", "1 2", ""] {
            let e = parse(bad).unwrap_err();
            assert!(e.contains("json parse error"), "{bad}: {e}");
        }
    }

    #[test]
    fn reads_the_workspace_writers() {
        // Snapshot::to_json output.
        let reg = crate::obs::Registry::new();
        reg.counter("n0/wal/forces").add(2);
        reg.histogram("n0/wal/force_us").record(500);
        let v = parse(&reg.snapshot().to_json()).unwrap();
        assert_eq!(v.get("n0/wal/forces").unwrap().as_i64(), Some(2));
        assert_eq!(
            v.get("n0/wal/force_us")
                .unwrap()
                .get("count")
                .unwrap()
                .as_i64(),
            Some(1)
        );
        // Sampler::to_json output.
        let mut s = crate::obs::Sampler::new(100, 8);
        reg.counter("n0/wal/forces").add(1);
        s.sample(150, &reg.snapshot());
        let v = parse(&s.to_json()).unwrap();
        assert_eq!(v.get("interval_us").unwrap().as_i64(), Some(100));
        let ring = v.get("series").unwrap().get("n0/wal/forces").unwrap();
        assert_eq!(
            ring.get("samples")
                .unwrap()
                .idx(0)
                .unwrap()
                .idx(0)
                .unwrap()
                .as_i64(),
            Some(100)
        );
    }

    #[test]
    fn round_trips_via_to_string() {
        let doc = r#"{"a":[1,-2.5,"x\"y"],"b":{"c":true,"d":null}}"#;
        let v = parse(doc).unwrap();
        assert_eq!(to_string(&v), doc);
        assert_eq!(parse(&to_string(&v)).unwrap(), v);
    }

    #[test]
    fn unicode_survives() {
        let v = parse("\"héllo → wörld\"").unwrap();
        assert_eq!(v.as_str(), Some("héllo → wörld"));
        let pair = parse("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(pair.as_str(), Some("😀"));
    }
}
