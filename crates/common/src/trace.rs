//! Flight recorder: a bounded per-node ring of structured trace
//! events with sim-timestamps.
//!
//! The ring keeps the most recent `capacity` events; older events are
//! overwritten. When an invariant or oracle check fails, the rings are
//! dumped so recovery-protocol bugs come with the recent protocol
//! history attached instead of just a final-state mismatch.
//!
//! Handles are cheap `Arc` clones sharing one `Mutex`-guarded ring, so
//! a recorder can travel with its node into a worker thread of the
//! threaded runtime (see `common::stats` for the thread-safety
//! contract shared by all observability primitives).

use std::fmt;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Locks `m`, recovering from poisoning: the recorder must stay
/// dumpable after a worker thread panics (that is exactly when the
/// event history matters most).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

use crate::ids::{NodeId, PageId, TxnId};
use crate::obs::Gauge;
use crate::simclock::SimTime;

/// The phases of distributed restart (paper §2.3), in execution order.
///
/// Recovery code, phase-timing reports and trace events all share this
/// enum; the only place a phase has a string name is
/// [`RecoveryPhase::label`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RecoveryPhase {
    /// Local ARIES analysis pass over each crashed node's log.
    Analysis,
    /// Cache-inventory + DPT exchange with every operational node.
    InfoExchange,
    /// Rebuild of the crashed owners' global lock tables (§2.3.3).
    LockRebuild,
    /// Determine the recovery set: which pages need replay, and from
    /// whose logs (§2.3.4).
    RecoverySets,
    /// Fence pages under recovery with owner-side exclusive locks.
    RecoveryLocks,
    /// Gather NodePSNLists from the involved nodes.
    PsnLists,
    /// PSN-ordered replay, shuttling each page between involved nodes.
    Replay,
    /// Roll back loser transactions.
    Undo,
    /// Recovery-complete broadcast and final bookkeeping.
    Done,
}

impl RecoveryPhase {
    /// Every phase, in execution order.
    pub const ALL: [RecoveryPhase; 9] = [
        RecoveryPhase::Analysis,
        RecoveryPhase::InfoExchange,
        RecoveryPhase::LockRebuild,
        RecoveryPhase::RecoverySets,
        RecoveryPhase::RecoveryLocks,
        RecoveryPhase::PsnLists,
        RecoveryPhase::Replay,
        RecoveryPhase::Undo,
        RecoveryPhase::Done,
    ];

    /// Short report/trace label.
    pub fn label(self) -> &'static str {
        match self {
            RecoveryPhase::Analysis => "analysis",
            RecoveryPhase::InfoExchange => "info_exchange",
            RecoveryPhase::LockRebuild => "lock_rebuild",
            RecoveryPhase::RecoverySets => "recovery_sets",
            RecoveryPhase::RecoveryLocks => "recovery_locks",
            RecoveryPhase::PsnLists => "psn_lists",
            RecoveryPhase::Replay => "replay",
            RecoveryPhase::Undo => "undo",
            RecoveryPhase::Done => "done",
        }
    }
}

impl fmt::Display for RecoveryPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A structured event on a node's timeline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// Transaction started.
    TxnBegin {
        /// The transaction.
        txn: TxnId,
    },
    /// Transaction committed (after its local log force).
    TxnCommit {
        /// The transaction.
        txn: TxnId,
    },
    /// Transaction aborted (user abort, deadlock victim, or loser).
    TxnAbort {
        /// The transaction.
        txn: TxnId,
    },
    /// Local log forced to disk.
    LogForce {
        /// Bytes made durable by this force.
        bytes: u64,
        /// Simulated duration of the force, µs.
        us: SimTime,
    },
    /// Page image moved between nodes (ship, replace, or recovery
    /// shuttle hop).
    PageTransfer {
        /// The page.
        pid: PageId,
        /// Sending node.
        from: NodeId,
        /// Receiving node.
        to: NodeId,
    },
    /// A lock request blocked on a conflicting holder.
    LockWait {
        /// The waiting transaction.
        txn: TxnId,
        /// The contested page.
        pid: PageId,
    },
    /// A deadlock was broken by aborting `victim`.
    Deadlock {
        /// The aborted transaction.
        victim: TxnId,
    },
    /// One log force acknowledged a batch of force-pending commits
    /// (group commit).
    GroupCommit {
        /// Transactions acknowledged by this force.
        txns: u64,
        /// Log bytes made durable by the shared force.
        bytes: u64,
    },
    /// This node crashed (volatile state lost).
    Crash,
    /// One recovery phase finished on this node's behalf.
    RecoveryPhase {
        /// The phase that completed.
        phase: RecoveryPhase,
        /// Simulated duration of the phase, µs.
        us: SimTime,
    },
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::TxnBegin { txn } => write!(f, "txn-begin {txn}"),
            TraceEvent::TxnCommit { txn } => write!(f, "txn-commit {txn}"),
            TraceEvent::TxnAbort { txn } => write!(f, "txn-abort {txn}"),
            TraceEvent::LogForce { bytes, us } => write!(f, "log-force {bytes}B {us}us"),
            TraceEvent::PageTransfer { pid, from, to } => {
                write!(f, "page-transfer {pid} {from}->{to}")
            }
            TraceEvent::GroupCommit { txns, bytes } => {
                write!(f, "group-commit {txns}txns {bytes}B")
            }
            TraceEvent::LockWait { txn, pid } => write!(f, "lock-wait {txn} on {pid}"),
            TraceEvent::Deadlock { victim } => write!(f, "deadlock victim {victim}"),
            TraceEvent::Crash => write!(f, "crash"),
            TraceEvent::RecoveryPhase { phase, us } => {
                write!(f, "recovery-phase {phase} {us}us")
            }
        }
    }
}

/// One recorded event: global sequence number, sim-timestamp, event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    /// Monotone per-recorder sequence number (never reused).
    pub seq: u64,
    /// Simulated time at which the event was recorded, µs.
    pub at: SimTime,
    /// The event.
    pub event: TraceEvent,
}

#[derive(Debug)]
struct RingInner {
    cap: usize,
    next_seq: u64,
    buf: Vec<TraceRecord>,
    write: usize,
    dropped_gauge: Option<Gauge>,
}

/// Bounded ring of [`TraceRecord`]s; cheap-clone shared handle.
#[derive(Clone, Debug)]
pub struct FlightRecorder {
    inner: Arc<Mutex<RingInner>>,
}

impl FlightRecorder {
    /// New recorder keeping the most recent `capacity` events
    /// (`capacity` is clamped to at least 1).
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            inner: Arc::new(Mutex::new(RingInner {
                cap: capacity.max(1),
                next_seq: 0,
                buf: Vec::new(),
                write: 0,
                dropped_gauge: None,
            })),
        }
    }

    /// Mirrors the running drop count (events lost to ring wraparound)
    /// into `gauge` — how a registry surfaces `trace/dropped_events`
    /// without polling the recorder.
    pub fn set_dropped_gauge(&self, gauge: Gauge) {
        gauge.set(self.dropped() as i64);
        lock(&self.inner).dropped_gauge = Some(gauge);
    }

    /// Appends an event at sim-time `at`, evicting the oldest if full.
    pub fn record(&self, at: SimTime, event: TraceEvent) {
        let mut r = lock(&self.inner);
        let seq = r.next_seq;
        r.next_seq += 1;
        let rec = TraceRecord { seq, at, event };
        if r.buf.len() < r.cap {
            r.buf.push(rec);
        } else {
            let w = r.write;
            r.buf[w] = rec;
            r.write = (w + 1) % r.cap;
            if let Some(g) = &r.dropped_gauge {
                g.add(1);
            }
        }
    }

    /// Events currently retained, oldest first (sequence order is
    /// preserved across wraparound).
    pub fn events(&self) -> Vec<TraceRecord> {
        let r = lock(&self.inner);
        if r.buf.len() < r.cap {
            r.buf.clone()
        } else {
            let mut out = Vec::with_capacity(r.cap);
            out.extend_from_slice(&r.buf[r.write..]);
            out.extend_from_slice(&r.buf[..r.write]);
            out
        }
    }

    /// Total events ever recorded (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        lock(&self.inner).next_seq
    }

    /// Events lost to wraparound.
    pub fn dropped(&self) -> u64 {
        let r = lock(&self.inner);
        r.next_seq - r.buf.len() as u64
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        lock(&self.inner).cap
    }

    /// Discards all retained events (sequence numbers keep counting).
    pub fn clear(&self) {
        let mut r = lock(&self.inner);
        r.buf.clear();
        r.write = 0;
    }

    /// Human-readable dump, one line per event, oldest first.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let dropped = self.dropped();
        if dropped > 0 {
            out.push_str(&format!("  … {dropped} older events dropped\n"));
        }
        for ev in self.events() {
            out.push_str(&format!(
                "  [{:>10}us #{:<5}] {}\n",
                ev.at, ev.seq, ev.event
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn txn(i: u64) -> TxnId {
        TxnId::new(NodeId(1), i)
    }

    #[test]
    fn retains_in_order_below_capacity() {
        let r = FlightRecorder::new(8);
        for i in 0..5 {
            r.record(i * 10, TraceEvent::TxnBegin { txn: txn(i) });
        }
        let evs = r.events();
        assert_eq!(evs.len(), 5);
        assert_eq!(r.dropped(), 0);
        for (i, e) in evs.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
            assert_eq!(e.at, i as u64 * 10);
        }
    }

    #[test]
    fn wraparound_keeps_newest_in_sequence_order() {
        let r = FlightRecorder::new(4);
        for i in 0..10 {
            r.record(i, TraceEvent::TxnBegin { txn: txn(i) });
        }
        let evs = r.events();
        assert_eq!(evs.len(), 4);
        assert_eq!(r.recorded(), 10);
        assert_eq!(r.dropped(), 6);
        let seqs: Vec<u64> = evs.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9], "oldest dropped, order kept");
    }

    #[test]
    fn wraparound_order_survives_partial_laps() {
        let r = FlightRecorder::new(3);
        for i in 0..4 {
            // One past capacity: write index sits mid-ring.
            r.record(i, TraceEvent::Crash);
        }
        let seqs: Vec<u64> = r.events().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![1, 2, 3]);
    }

    #[test]
    fn clear_empties_but_keeps_counting() {
        let r = FlightRecorder::new(4);
        r.record(1, TraceEvent::Crash);
        r.clear();
        assert!(r.events().is_empty());
        r.record(2, TraceEvent::Crash);
        assert_eq!(r.events()[0].seq, 1, "sequence numbers continue");
    }

    #[test]
    fn render_mentions_drops_and_events() {
        let r = FlightRecorder::new(2);
        for i in 0..3 {
            r.record(i, TraceEvent::LogForce { bytes: 64, us: 5 });
        }
        let s = r.render();
        assert!(s.contains("1 older events dropped"), "{s}");
        assert!(s.contains("log-force 64B 5us"), "{s}");
    }

    #[test]
    fn wraparound_drives_the_dropped_gauge() {
        let r = FlightRecorder::new(3);
        let g = Gauge::new();
        r.set_dropped_gauge(g.clone());
        for i in 0..3 {
            r.record(i, TraceEvent::Crash);
        }
        assert_eq!(g.get(), 0, "no wraparound below capacity");
        for i in 3..8 {
            r.record(i, TraceEvent::Crash);
        }
        assert_eq!(g.get(), 5, "one gauge bump per evicted event");
        assert_eq!(r.dropped(), 5, "gauge mirrors dropped()");
        // Hooking up a gauge after drops happened seeds the backlog.
        let late = Gauge::new();
        r.set_dropped_gauge(late.clone());
        assert_eq!(late.get(), 5);
        r.record(8, TraceEvent::Crash);
        assert_eq!(late.get(), 6);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let r = FlightRecorder::new(0);
        r.record(1, TraceEvent::Crash);
        r.record(2, TraceEvent::Crash);
        assert_eq!(r.capacity(), 1);
        assert_eq!(r.events().len(), 1);
        assert_eq!(r.events()[0].seq, 1);
    }
}
