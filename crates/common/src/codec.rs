//! Minimal binary codec used by the page store and the write-ahead log.
//!
//! Little-endian, length-prefixed, with a CRC32 helper for torn-write
//! detection. We deliberately avoid serde here: page and log layouts are
//! explicit on-disk formats whose byte layout is part of the system's
//! contract (and must stay stable for restart recovery to read old logs).

use crate::error::{Error, Result};
use crate::ids::{Lsn, NodeId, PageId, Psn, TxnId};

/// Appends primitive values to a byte buffer.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// New empty encoder.
    pub fn new() -> Self {
        Encoder { buf: Vec::new() }
    }

    /// New encoder with preallocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Encoder {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the encoder, returning the buffer.
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }

    /// Borrow the bytes written so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Writes a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a little-endian u16.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian u32.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian u64.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a length-prefixed (u32) byte slice.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    /// Writes a node id.
    pub fn put_node(&mut self, v: NodeId) {
        self.put_u32(v.0);
    }

    /// Writes a page id (packed u64).
    pub fn put_page(&mut self, v: PageId) {
        self.put_u64(v.to_u64());
    }

    /// Writes a transaction id.
    pub fn put_txn(&mut self, v: TxnId) {
        self.put_u32(v.node.0);
        self.put_u64(v.seq);
    }

    /// Writes an LSN.
    pub fn put_lsn(&mut self, v: Lsn) {
        self.put_u64(v.0);
    }

    /// Writes a PSN.
    pub fn put_psn(&mut self, v: Psn) {
        self.put_u64(v.0);
    }
}

/// Reads primitive values back from a byte slice.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Decoder over `buf` starting at offset 0.
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder { buf, pos: 0 }
    }

    /// Current read offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(Error::Corrupt(format!(
                "decode underrun: need {n} bytes, have {}",
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a single byte.
    pub fn get_u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian u16.
    pub fn get_u16(&mut self) -> Result<u16> {
        let s = self.take(2)?;
        Ok(u16::from_le_bytes([s[0], s[1]]))
    }

    /// Reads a little-endian u32.
    pub fn get_u32(&mut self) -> Result<u32> {
        let s = self.take(4)?;
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    /// Reads a little-endian u64.
    pub fn get_u64(&mut self) -> Result<u64> {
        let s = self.take(8)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(s);
        Ok(u64::from_le_bytes(b))
    }

    /// Reads a length-prefixed byte slice.
    pub fn get_bytes(&mut self) -> Result<&'a [u8]> {
        let n = self.get_u32()? as usize;
        self.take(n)
    }

    /// Reads a node id.
    pub fn get_node(&mut self) -> Result<NodeId> {
        Ok(NodeId(self.get_u32()?))
    }

    /// Reads a page id.
    pub fn get_page(&mut self) -> Result<PageId> {
        Ok(PageId::from_u64(self.get_u64()?))
    }

    /// Reads a transaction id.
    pub fn get_txn(&mut self) -> Result<TxnId> {
        let node = NodeId(self.get_u32()?);
        let seq = self.get_u64()?;
        Ok(TxnId { node, seq })
    }

    /// Reads an LSN.
    pub fn get_lsn(&mut self) -> Result<Lsn> {
        Ok(Lsn(self.get_u64()?))
    }

    /// Reads a PSN.
    pub fn get_psn(&mut self) -> Result<Psn> {
        Ok(Psn(self.get_u64()?))
    }
}

/// Incremental FNV-1a (64-bit) hasher.
///
/// Used by the model checker to fingerprint durable state so
/// convergent crash branches can be pruned; not a cryptographic hash.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }
}

impl Fnv1a {
    /// The offset-basis state.
    pub fn new() -> Self {
        Fnv1a::default()
    }

    /// Folds `data` into the state.
    pub fn write(&mut self, data: &[u8]) {
        for &b in data {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Folds a u64 (little-endian) into the state.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// The current digest.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// CRC-32 (IEEE 802.3 polynomial, reflected), table-driven.
///
/// Used to detect torn page writes and truncated log records.
pub fn crc32(data: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *e = c;
        }
        t
    });
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_primitives() {
        let mut e = Encoder::new();
        e.put_u8(7);
        e.put_u16(0xBEEF);
        e.put_u32(0xDEAD_BEEF);
        e.put_u64(0x0123_4567_89AB_CDEF);
        e.put_bytes(b"hello");
        let v = e.into_vec();
        let mut d = Decoder::new(&v);
        assert_eq!(d.get_u8().unwrap(), 7);
        assert_eq!(d.get_u16().unwrap(), 0xBEEF);
        assert_eq!(d.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(d.get_u64().unwrap(), 0x0123_4567_89AB_CDEF);
        assert_eq!(d.get_bytes().unwrap(), b"hello");
        assert_eq!(d.remaining(), 0);
    }

    #[test]
    fn round_trip_ids() {
        let mut e = Encoder::new();
        let pid = PageId::new(NodeId(9), 77);
        let tid = TxnId::new(NodeId(3), 12345);
        e.put_node(NodeId(9));
        e.put_page(pid);
        e.put_txn(tid);
        e.put_lsn(Lsn(42));
        e.put_psn(Psn(43));
        let v = e.into_vec();
        let mut d = Decoder::new(&v);
        assert_eq!(d.get_node().unwrap(), NodeId(9));
        assert_eq!(d.get_page().unwrap(), pid);
        assert_eq!(d.get_txn().unwrap(), tid);
        assert_eq!(d.get_lsn().unwrap(), Lsn(42));
        assert_eq!(d.get_psn().unwrap(), Psn(43));
    }

    #[test]
    fn underrun_is_corrupt_not_panic() {
        let mut d = Decoder::new(&[1, 2]);
        assert!(matches!(d.get_u64(), Err(Error::Corrupt(_))));
    }

    #[test]
    fn bytes_with_bogus_length_is_corrupt() {
        let mut e = Encoder::new();
        e.put_u32(1000); // claims 1000 bytes follow
        let v = e.into_vec();
        let mut d = Decoder::new(&v);
        assert!(matches!(d.get_bytes(), Err(Error::Corrupt(_))));
    }

    #[test]
    fn crc32_known_vector() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn crc32_detects_single_bit_flip() {
        let mut data = b"the quick brown fox".to_vec();
        let c0 = crc32(&data);
        data[3] ^= 0x40;
        assert_ne!(crc32(&data), c0);
    }
}
