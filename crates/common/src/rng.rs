//! Small deterministic PRNG for workload generation and tests.
//!
//! The build environment has no crates.io access, so the workspace
//! carries its own generator instead of depending on `rand`. This is
//! xoshiro256++ (Blackman & Vigna) seeded through splitmix64 — fast,
//! well-distributed, and reproducible: identical seeds produce
//! identical streams on every platform. Not cryptographic.

/// Deterministic xoshiro256++ generator.
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// New generator from `seed`; identical seeds give identical streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        Rng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[lo, hi)`; panics if the range is empty.
    pub fn gen_range(&mut self, r: std::ops::Range<u64>) -> u64 {
        assert!(r.start < r.end, "empty range");
        let span = r.end - r.start;
        // Multiply-shift rejection (Lemire) keeps the draw unbiased.
        let threshold = span.wrapping_neg() % span;
        loop {
            let m = (self.next_u64() as u128).wrapping_mul(span as u128);
            if (m as u64) >= threshold {
                return r.start + (m >> 64) as u64;
            }
        }
    }

    /// Uniform index in `[lo, hi)` for slice addressing.
    pub fn gen_range_usize(&mut self, r: std::ops::Range<usize>) -> usize {
        self.gen_range(r.start as u64..r.end as u64) as usize
    }

    /// True with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        self.next_f64() < p
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.gen_range_usize(0..i + 1);
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_seeds_identical_streams() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds_and_cover() {
        let mut r = Rng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.gen_range(5..15);
            assert!((5..15).contains(&v));
            seen[(v - 5) as usize] = true;
        }
        assert!(seen.iter().all(|s| *s), "all values reached");
    }

    #[test]
    fn bool_probability_roughly_respected() {
        let mut r = Rng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = Rng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements almost surely move");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
