//! Unified error type for the whole workspace.

use crate::ids::{NodeId, PageId, TxnId};
use crate::trace::RecoveryPhase;
use std::fmt;

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors surfaced by the storage manager, log manager, lock manager and
/// the distributed protocols.
#[derive(Debug)]
pub enum Error {
    /// Underlying I/O failure (file-backed storage / log).
    Io(std::io::Error),
    /// A page, log record or file image failed validation.
    Corrupt(String),
    /// The requested page does not exist in the owner's database.
    NoSuchPage(PageId),
    /// The transaction id is unknown or already terminated.
    NoSuchTxn(TxnId),
    /// A lock request cannot be granted right now; the caller should
    /// retry after other transactions make progress. Deterministic
    /// simulations surface blocking explicitly instead of parking a
    /// thread.
    WouldBlock {
        /// Transaction that could not be granted.
        txn: TxnId,
        /// Transactions currently standing in the way.
        holders: Vec<TxnId>,
    },
    /// The deadlock detector chose this transaction as a victim.
    Deadlock(TxnId),
    /// Operation attempted on a transaction that has been aborted.
    TxnAborted(TxnId),
    /// The target node is crashed / unreachable.
    NodeDown(NodeId),
    /// The page's owner is crashed, so lock/data requests for it must
    /// stall until the owner recovers (paper §2.3).
    OwnerDown {
        /// The crashed owner.
        owner: NodeId,
        /// The page whose request stalled.
        page: PageId,
    },
    /// The node's log is out of space and the space-management protocol
    /// (§2.5) could not reclaim enough; the operation should be retried
    /// after forced flushes complete.
    LogFull(NodeId),
    /// The fault injector dropped a message in flight; the sender may
    /// retry (the network accounted the lost copy).
    MsgLost {
        /// Sending node.
        from: NodeId,
        /// Intended receiver.
        to: NodeId,
    },
    /// A retried send exhausted its bounded retry budget — the link is
    /// treated as failed rather than livelocking.
    RetriesExhausted {
        /// Sending node.
        from: NodeId,
        /// Intended receiver.
        to: NodeId,
        /// Attempts made (initial send + retries).
        attempts: u32,
    },
    /// An injected crash interrupted recovery after the named phase;
    /// the crashed nodes are down again and recovery must be restarted
    /// from scratch (it is idempotent).
    RecoveryInterrupted(RecoveryPhase),
    /// A protocol invariant was violated (bug or misuse).
    Protocol(String),
    /// Invalid argument / unsupported parameter.
    Invalid(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io(e) => write!(f, "i/o error: {e}"),
            Error::Corrupt(m) => write!(f, "corruption detected: {m}"),
            Error::NoSuchPage(p) => write!(f, "no such page: {p}"),
            Error::NoSuchTxn(t) => write!(f, "no such transaction: {t}"),
            Error::WouldBlock { txn, holders } => {
                write!(f, "{txn} would block on {holders:?}")
            }
            Error::Deadlock(t) => write!(f, "{t} aborted as deadlock victim"),
            Error::TxnAborted(t) => write!(f, "{t} is aborted"),
            Error::NodeDown(n) => write!(f, "node {n} is down"),
            Error::OwnerDown { owner, page } => {
                write!(f, "owner {owner} of {page} is down; request stalled")
            }
            Error::LogFull(n) => write!(f, "log full on node {n}"),
            Error::MsgLost { from, to } => {
                write!(f, "message {from}->{to} lost in flight")
            }
            Error::RetriesExhausted { from, to, attempts } => {
                write!(f, "send {from}->{to} failed after {attempts} attempts")
            }
            Error::RecoveryInterrupted(p) => {
                write!(f, "recovery crashed after phase {p}")
            }
            Error::Protocol(m) => write!(f, "protocol violation: {m}"),
            Error::Invalid(m) => write!(f, "invalid argument: {m}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

impl Error {
    /// True if the error is transient blocking (retry later) rather than
    /// a hard failure. A lost message is transient — the send can be
    /// repeated; an exhausted retry budget is not.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            Error::WouldBlock { .. }
                | Error::OwnerDown { .. }
                | Error::LogFull(_)
                | Error::MsgLost { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transient_classification() {
        let wb = Error::WouldBlock {
            txn: TxnId::new(NodeId(1), 1),
            holders: vec![],
        };
        assert!(wb.is_transient());
        assert!(Error::OwnerDown {
            owner: NodeId(1),
            page: PageId::new(NodeId(1), 0),
        }
        .is_transient());
        assert!(Error::LogFull(NodeId(1)).is_transient());
        assert!(Error::MsgLost {
            from: NodeId(0),
            to: NodeId(1),
        }
        .is_transient());
        assert!(!Error::RetriesExhausted {
            from: NodeId(0),
            to: NodeId(1),
            attempts: 17,
        }
        .is_transient());
        assert!(!Error::RecoveryInterrupted(RecoveryPhase::Replay).is_transient());
        assert!(!Error::Deadlock(TxnId::new(NodeId(1), 1)).is_transient());
        assert!(!Error::Corrupt("x".into()).is_transient());
    }

    #[test]
    fn io_error_conversion_preserves_source() {
        let e: Error = std::io::Error::other("boom").into();
        assert!(matches!(e, Error::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
        assert!(e.to_string().contains("boom"));
    }

    #[test]
    fn display_mentions_ids() {
        let e = Error::OwnerDown {
            owner: NodeId(3),
            page: PageId::new(NodeId(3), 9),
        };
        let s = e.to_string();
        assert!(s.contains("N3") && s.contains("P3.9"));
    }
}
