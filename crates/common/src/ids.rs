//! Identifier newtypes used throughout the system.

use std::fmt;

/// Identifies a processing node in the distributed system.
///
/// Nodes that have databases attached to them are *owner nodes* with
/// respect to the pages stored in those databases (paper Figure 1). Any
/// node with a local log can run transactions and participate in
/// recovery.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}", self.0)
    }
}

/// Globally unique page identifier.
///
/// Ownership is encoded in the identifier: every database page lives in
/// the database attached to exactly one owner node, mirroring the
/// shared-nothing / client-server partitioning the paper assumes. The
/// `index` is the page's slot within the owner's database file.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId {
    /// The node whose database holds this page.
    pub owner: NodeId,
    /// Index of the page within the owner's database.
    pub index: u32,
}

impl PageId {
    /// Creates a page id for `index` within `owner`'s database.
    pub const fn new(owner: NodeId, index: u32) -> Self {
        PageId { owner, index }
    }

    /// Packs the id into a `u64` (owner in the high 32 bits).
    pub const fn to_u64(self) -> u64 {
        ((self.owner.0 as u64) << 32) | self.index as u64
    }

    /// Inverse of [`PageId::to_u64`].
    pub const fn from_u64(v: u64) -> Self {
        PageId {
            owner: NodeId((v >> 32) as u32),
            index: v as u32,
        }
    }
}

impl fmt::Debug for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}.{}", self.owner.0, self.index)
    }
}

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}.{}", self.owner.0, self.index)
    }
}

/// Globally unique transaction identifier.
///
/// Transactions execute in their entirety on the node where they start
/// (paper §2.1), so a (node, local sequence) pair is unique without any
/// coordination.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TxnId {
    /// Node on which the transaction runs.
    pub node: NodeId,
    /// Node-local transaction sequence number (starts at 1).
    pub seq: u64,
}

impl TxnId {
    /// Creates a transaction id.
    pub const fn new(node: NodeId, seq: u64) -> Self {
        TxnId { node, seq }
    }
}

impl fmt::Debug for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}.{}", self.node.0, self.seq)
    }
}

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}.{}", self.node.0, self.seq)
    }
}

/// Log sequence number: the byte address of a log record within one
/// node's local log file.
///
/// LSNs from different nodes are **never** compared — every log is
/// private to its node and logs are never merged (paper §1.1).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Lsn(pub u64);

impl Lsn {
    /// The zero LSN, used as "no record" / start-of-log sentinel.
    pub const ZERO: Lsn = Lsn(0);

    /// Returns true if this is the "no record" sentinel.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Byte offset advanced by `n`.
    pub fn advance(self, n: u64) -> Lsn {
        Lsn(self.0 + n)
    }
}

impl fmt::Debug for Lsn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

impl fmt::Display for Lsn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// Page sequence number: incremented by one every time the page is
/// updated (including compensation updates during rollback).
///
/// The PSN stored in a log record is the PSN the page had *just before*
/// the update described by the record (paper §2.1), so redo applies a
/// record iff `page.psn == record.psn_before`, and the order of updates
/// to a page across nodes is exactly ascending PSN order (§2.3.4).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Psn(pub u64);

impl Psn {
    /// PSN zero (pages start at a spacemap-assigned base, see storage).
    pub const ZERO: Psn = Psn(0);

    /// The PSN after one more update.
    pub fn next(self) -> Psn {
        Psn(self.0 + 1)
    }
}

impl fmt::Debug for Psn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

impl fmt::Display for Psn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

/// Record identifier within a slotted page: (page, slot number).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Rid {
    /// Page holding the record.
    pub page: PageId,
    /// Slot number within the page.
    pub slot: u16,
}

impl Rid {
    /// Creates a record id.
    pub const fn new(page: PageId, slot: u16) -> Self {
        Rid { page, slot }
    }
}

impl fmt::Display for Rid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.page, self.slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_id_round_trips_through_u64() {
        let pid = PageId::new(NodeId(7), 123_456);
        assert_eq!(PageId::from_u64(pid.to_u64()), pid);
    }

    #[test]
    fn page_id_u64_is_order_preserving_within_owner() {
        let a = PageId::new(NodeId(1), 5);
        let b = PageId::new(NodeId(1), 9);
        assert!(a.to_u64() < b.to_u64());
        assert!(a < b);
    }

    #[test]
    fn lsn_advance_and_sentinel() {
        assert!(Lsn::ZERO.is_zero());
        let l = Lsn(10).advance(32);
        assert_eq!(l, Lsn(42));
        assert!(!l.is_zero());
    }

    #[test]
    fn psn_next_increments() {
        assert_eq!(Psn(41).next(), Psn(42));
    }

    #[test]
    fn display_formats() {
        assert_eq!(NodeId(3).to_string(), "N3");
        assert_eq!(PageId::new(NodeId(1), 2).to_string(), "P1.2");
        assert_eq!(TxnId::new(NodeId(1), 2).to_string(), "T1.2");
        assert_eq!(Lsn(5).to_string(), "L5");
        assert_eq!(Psn(6).to_string(), "S6");
        assert_eq!(Rid::new(PageId::new(NodeId(1), 2), 3).to_string(), "P1.2#3");
    }

    #[test]
    fn txn_id_ordering_is_node_then_seq() {
        let a = TxnId::new(NodeId(1), 9);
        let b = TxnId::new(NodeId(2), 1);
        assert!(a < b);
    }
}
