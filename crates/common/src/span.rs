//! Causal cross-node tracing: spans with cluster-unique ids and causal
//! parents, per-page PSN lineage, an online invariant watchdog, and
//! Chrome trace-event export.
//!
//! The paper's correctness argument is a *cross-node* total order: every
//! update to a page bumps its PSN under an exclusive lock, so the update
//! history of one page is totally ordered across all nodes even though
//! each node logs privately (LSNs are never compared across nodes).
//! Node-local observability (`obs`, `trace`) cannot check that order —
//! it sees one node's slice of it. The [`Tracer`] is the cluster-wide
//! instrument: every traced unit (transaction, page transfer, recovery
//! phase, per-page replay hop, protocol message) becomes a [`Span`] with
//! a cluster-unique [`SpanId`] and a causal parent, and cross-node edges
//! are carried explicitly in message headers (`cblog_net::MsgHeader`)
//! instead of being inferred after the fact.
//!
//! Three consumers sit on the span stream:
//!
//! * **PSN lineage** ([`Tracer::lineage`]): for any page, the totally
//!   ordered update / transfer / replay history across all nodes.
//! * **Invariant watchdog** (online, inside [`Tracer::emit`]): checks
//!   the paper's invariants as spans arrive — PSNs strictly increasing
//!   per page, the WAL rule on page writes and transfers, zero log
//!   records crossing the network, replay visiting PSNs in global
//!   order — and [`Tracer::check`] fails loudly with the offending
//!   lineage slice.
//! * **Chrome trace export** ([`Tracer::chrome_trace_json`]): the whole
//!   span store as trace-event JSON loadable in `chrome://tracing` /
//!   Perfetto, one process lane per node.
//!
//! Tracing is an observer: it never charges the simulated clock and
//! draws no randomness, so enabling it cannot change a run's outcome,
//! and same-seed runs produce byte-identical exports. A disabled
//! [`Tracer`] is a `None` behind the handle — emission is a single
//! branch, which is what keeps the tracing-off overhead unmeasurable.
//!
//! # Two tiers: online `Tracer` (sim) and buffered [`SpanBuf`] (threads)
//!
//! The `Tracer` keeps `Rc<RefCell<_>>` internals and stays
//! single-threaded on purpose: its value is the *deterministic* causal
//! order of spans, which only the simulator's serialized schedule
//! provides — span ids come from one shared monotone counter and the
//! watchdog asserts global orderings online, as spans arrive.
//!
//! The threaded runtime gets the same span vocabulary through
//! [`SpanBuf`]: a plain-data, `Send` per-thread buffer whose ids are
//! namespaced by worker index (`(worker+1) << 48 | seq`), so threads
//! allocate without coordination and causal parents still cross thread
//! boundaries via the usual [`SpanCtx`] wire format. At join the
//! buffers are merged deterministically ([`SpanBuf::merge`]: ascending
//! worker order, local emission order preserved, ids rewritten to a
//! single monotone sequence) and the merged trace is replayed through a
//! fresh `Tracer` — watchdog included — on one thread. The merge order
//! is sound for every invariant the watchdog checks because each of
//! them is per-page, and a page is only ever updated/replayed by its
//! owner's thread: per-page span order inside one buffer *is* the true
//! order, and concatenation preserves it.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

use crate::ids::{Lsn, NodeId, PageId, Psn, TxnId};
use crate::obs::json_escape;
use crate::simclock::SimTime;
use crate::trace::RecoveryPhase;

/// Cluster-unique span identifier. The simulator allocates ids from
/// one shared monotone counter, so allocation order is deterministic;
/// threaded workers allocate from disjoint per-worker namespaces
/// ([`SpanBuf`]) that are rewritten into one monotone sequence when the
/// buffers are merged. Either way two live spans never share an id.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The absent span (no parent / tracing disabled).
    pub const NONE: SpanId = SpanId(0);

    /// True for [`SpanId::NONE`].
    pub fn is_none(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for SpanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_none() {
            f.write_str("-")
        } else {
            write!(f, "S{}", self.0)
        }
    }
}

/// Causal context propagated with an operation: the operation's own
/// span and that span's parent. This is the payload of a message
/// header (`cblog_net::MsgHeader` wraps one), so the receiving side of
/// a cross-node edge knows exactly which span caused the message.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SpanCtx {
    /// The span the current operation runs under.
    pub span: SpanId,
    /// That span's causal parent.
    pub parent: SpanId,
}

impl SpanCtx {
    /// The empty context (tracing disabled / no active span).
    pub const NONE: SpanCtx = SpanCtx {
        span: SpanId::NONE,
        parent: SpanId::NONE,
    };

    /// Context for a root span.
    pub fn root(span: SpanId) -> SpanCtx {
        SpanCtx {
            span,
            parent: SpanId::NONE,
        }
    }

    /// Context for `span` caused by `parent`.
    pub fn child(span: SpanId, parent: SpanId) -> SpanCtx {
        SpanCtx { span, parent }
    }
}

/// Why a page image crossed the network.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TransferWhy {
    /// Owner → requester ship on a page fetch.
    Ship,
    /// Holder → requester ship answering an exclusive callback.
    Callback,
    /// Dirty remote page replaced from a cache back to its owner.
    Replace,
    /// Recovery replay shuttle hop (§2.4).
    Recovery,
}

impl TransferWhy {
    /// Short label for lineage lines and trace export.
    pub fn label(self) -> &'static str {
        match self {
            TransferWhy::Ship => "ship",
            TransferWhy::Callback => "callback",
            TransferWhy::Replace => "replace",
            TransferWhy::Recovery => "recovery",
        }
    }
}

/// B+-tree structural operation (the `access` crate's traced units).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TreeOp {
    /// Root-to-leaf descent.
    Traverse,
    /// Leaf split (new page allocated, separator posted).
    Split,
    /// Leaf merge (an emptied leaf folded out of its parent, its
    /// record freed).
    Merge,
}

impl TreeOp {
    /// Short label for lineage lines and trace export.
    pub fn label(self) -> &'static str {
        match self {
            TreeOp::Traverse => "traverse",
            TreeOp::Split => "split",
            TreeOp::Merge => "merge",
        }
    }
}

/// What a span records: the traced unit or causal edge.
#[derive(Clone, Debug, PartialEq)]
pub enum SpanKind {
    /// A transaction's lifetime on its home node (begin → outcome).
    Txn {
        /// The transaction.
        txn: TxnId,
        /// True if it committed, false if it aborted.
        committed: bool,
    },
    /// One transaction's commit pipeline (submit → durable → acked).
    Commit {
        /// The committing transaction.
        txn: TxnId,
    },
    /// One log force acknowledging a batch of commits (group commit).
    GroupForce {
        /// The forcing node.
        node: NodeId,
        /// Commit records covered by this force.
        txns: u64,
        /// Log bytes made durable.
        bytes: u64,
    },
    /// One logged update: the page's PSN edge `psn → psn+1`.
    Update {
        /// The updated page.
        pid: PageId,
        /// The updating transaction.
        txn: TxnId,
        /// PSN *before* the update (the edge is `psn → psn.next()`).
        psn: Psn,
        /// LSN of the log record in the updater's local log.
        lsn: Lsn,
        /// True for a compensation (undo) update.
        clr: bool,
    },
    /// A page image crossing the network.
    Transfer {
        /// The page.
        pid: PageId,
        /// Sending node.
        from: NodeId,
        /// Receiving node.
        to: NodeId,
        /// The page's PSN at ship time.
        psn: Psn,
        /// Why the page moved.
        why: TransferWhy,
        /// WAL rule at the sender: true iff every local log record was
        /// forced before a *dirty* image left the node (always true for
        /// clean images).
        wal_ok: bool,
    },
    /// A global lock granted by an owner to a remote transaction.
    LockGrant {
        /// The locked page.
        pid: PageId,
        /// The granting owner node.
        owner: NodeId,
        /// The requesting node.
        to: NodeId,
        /// The requesting transaction.
        txn: TxnId,
    },
    /// An owned page image written to the owner's disk.
    PageWrite {
        /// The page.
        pid: PageId,
        /// The writing owner node.
        node: NodeId,
        /// The PSN of the written image.
        psn: Psn,
        /// WAL rule: true iff the owner's own covering records were
        /// forced before the write.
        wal_ok: bool,
    },
    /// A node crashed (volatile state lost).
    Crash {
        /// The crashed node.
        node: NodeId,
    },
    /// A whole recovery pass (paper §2.3/§2.4).
    Recovery {
        /// How many nodes restarted in this pass.
        nodes: u32,
    },
    /// One recovery phase completed on a crashed node's behalf.
    Phase {
        /// The recovering node.
        node: NodeId,
        /// The completed phase.
        phase: RecoveryPhase,
    },
    /// One per-page replay hop: `node` applied its own log records to
    /// the page while it held the replay shuttle (§2.4).
    ReplayHop {
        /// The page under recovery.
        pid: PageId,
        /// The node whose log was replayed.
        node: NodeId,
        /// Page PSN when the hop began.
        from_psn: Psn,
        /// Page PSN when the hop ended.
        to_psn: Psn,
        /// Log records applied during the hop.
        applied: u64,
    },
    /// A protocol message (the cross-node causal edge, recorded from
    /// its `MsgHeader` by the transport).
    Msg {
        /// Message kind label (`MsgKind::label`).
        kind: &'static str,
        /// Sending node.
        from: NodeId,
        /// Receiving node.
        to: NodeId,
        /// Accounted payload bytes (header included).
        bytes: u64,
        /// True iff the payload carries log records — the paper's
        /// design never does; baselines do.
        carries_log: bool,
    },
    /// A B+-tree structural operation (`access` crate).
    Tree {
        /// The operation.
        op: TreeOp,
        /// The transaction driving it.
        txn: TxnId,
    },
    /// §2.5 log-space reclamation: a node discarded the prefix of its
    /// local log below `upto`. The protocol may only reclaim records
    /// already covered by the master checkpoint, so `upto` past
    /// `anchor` is a violation the watchdog flags.
    LogTruncate {
        /// The reclaiming node.
        node: NodeId,
        /// New start of the retained log (everything below is gone).
        upto: Lsn,
        /// The master-record checkpoint anchor at reclamation time.
        anchor: Lsn,
    },
}

impl SpanKind {
    /// The page this span is about, if any — the lineage filter.
    pub fn page(&self) -> Option<PageId> {
        match self {
            SpanKind::Update { pid, .. }
            | SpanKind::Transfer { pid, .. }
            | SpanKind::LockGrant { pid, .. }
            | SpanKind::PageWrite { pid, .. }
            | SpanKind::ReplayHop { pid, .. } => Some(*pid),
            _ => None,
        }
    }

    /// Short category name (Chrome trace `cat`, lane naming).
    pub fn category(&self) -> &'static str {
        match self {
            SpanKind::Txn { .. } => "txn",
            SpanKind::Commit { .. } => "commit",
            SpanKind::GroupForce { .. } => "force",
            SpanKind::Update { .. } => "update",
            SpanKind::Transfer { .. } => "transfer",
            SpanKind::LockGrant { .. } => "lock",
            SpanKind::PageWrite { .. } => "write",
            SpanKind::Crash { .. } => "crash",
            SpanKind::Recovery { .. } => "recovery",
            SpanKind::Phase { .. } => "recovery",
            SpanKind::ReplayHop { .. } => "replay",
            SpanKind::Msg { .. } => "msg",
            SpanKind::Tree { .. } => "tree",
            SpanKind::LogTruncate { .. } => "wal",
        }
    }
}

impl fmt::Display for SpanKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpanKind::Txn { txn, committed } => {
                write!(
                    f,
                    "txn {txn} {}",
                    if *committed { "commit" } else { "abort" }
                )
            }
            SpanKind::Commit { txn } => write!(f, "commit-pipeline {txn}"),
            SpanKind::GroupForce { node, txns, bytes } => {
                write!(f, "group-force {node} {txns}txns {bytes}B")
            }
            SpanKind::Update {
                pid,
                txn,
                psn,
                lsn,
                clr,
            } => write!(
                f,
                "{} {pid} psn {}→{} {lsn} by {txn}",
                if *clr { "undo" } else { "update" },
                psn.0,
                psn.0 + 1
            ),
            SpanKind::Transfer {
                pid,
                from,
                to,
                psn,
                why,
                wal_ok,
            } => write!(
                f,
                "{} {pid} {from}→{to} @psn {}{}",
                why.label(),
                psn.0,
                if *wal_ok { "" } else { " WAL-VIOLATION" }
            ),
            SpanKind::LockGrant {
                pid,
                owner,
                to,
                txn,
            } => {
                write!(f, "lock-grant {pid} {owner}→{to} for {txn}")
            }
            SpanKind::PageWrite {
                pid,
                node,
                psn,
                wal_ok,
            } => write!(
                f,
                "disk-write {pid} on {node} @psn {}{}",
                psn.0,
                if *wal_ok { "" } else { " WAL-VIOLATION" }
            ),
            SpanKind::Crash { node } => write!(f, "crash {node}"),
            SpanKind::Recovery { nodes } => write!(f, "recovery {nodes} node(s)"),
            SpanKind::Phase { node, phase } => write!(f, "phase {phase} for {node}"),
            SpanKind::ReplayHop {
                pid,
                node,
                from_psn,
                to_psn,
                applied,
            } => write!(
                f,
                "replay-hop {pid} on {node} psn {}→{} ({applied} applied)",
                from_psn.0, to_psn.0
            ),
            SpanKind::Msg {
                kind,
                from,
                to,
                bytes,
                ..
            } => {
                write!(f, "msg {kind} {from}→{to} {bytes}B")
            }
            SpanKind::Tree { op, txn } => write!(f, "btree-{} by {txn}", op.label()),
            SpanKind::LogTruncate { node, upto, anchor } => {
                write!(f, "log-truncate {node} upto {upto} (anchor {anchor})")
            }
        }
    }
}

/// One traced unit: id, causal parent, emitting node, sim-time
/// interval, payload.
#[derive(Clone, Debug, PartialEq)]
pub struct Span {
    /// Cluster-unique id.
    pub id: SpanId,
    /// Causal parent ([`SpanId::NONE`] for roots).
    pub parent: SpanId,
    /// The node the span is attributed to.
    pub node: NodeId,
    /// Start sim-time, µs.
    pub start: SimTime,
    /// Duration, µs (0 for point events).
    pub dur: SimTime,
    /// The payload.
    pub kind: SpanKind,
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>10}us {} {}←{}] {}",
            self.start, self.node, self.id, self.parent, self.kind
        )
    }
}

/// One invariant violation detected by the watchdog.
#[derive(Clone, Debug, PartialEq)]
pub struct Violation {
    /// The span that violated the invariant.
    pub span: SpanId,
    /// The page involved, if page-scoped (drives the lineage slice).
    pub pid: Option<PageId>,
    /// Human-readable description.
    pub what: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.span, self.what)
    }
}

/// Online watchdog state: per-page PSN frontiers and the violations
/// found so far. Fed by [`Tracer::emit`]; a crash clears the frontiers
/// because PSNs above the durable coverage are legitimately regenerated
/// by post-recovery execution.
#[derive(Default)]
struct Watchdog {
    /// Highest PSN each page has reached via update/replay edges.
    hi_psn: BTreeMap<PageId, Psn>,
    /// Last PSN each page was replayed to (replay-order check).
    replay_hi: BTreeMap<PageId, Psn>,
    violations: Vec<Violation>,
}

impl Watchdog {
    fn observe(&mut self, span: &Span) {
        match &span.kind {
            SpanKind::Update { pid, psn, .. } => {
                let after = psn.next();
                if let Some(&hi) = self.hi_psn.get(pid) {
                    if after <= hi {
                        self.violations.push(Violation {
                            span: span.id,
                            pid: Some(*pid),
                            what: format!(
                                "PSN not strictly increasing on {pid}: update edge {}→{} \
                                 but page already reached psn {}",
                                psn.0, after.0, hi.0
                            ),
                        });
                    }
                }
                let e = self.hi_psn.entry(*pid).or_insert(after);
                *e = (*e).max(after);
            }
            SpanKind::ReplayHop {
                pid,
                from_psn,
                to_psn,
                ..
            } => {
                if to_psn < from_psn {
                    self.violations.push(Violation {
                        span: span.id,
                        pid: Some(*pid),
                        what: format!(
                            "replay hop moved {pid} backwards: psn {}→{}",
                            from_psn.0, to_psn.0
                        ),
                    });
                }
                if let Some(&r) = self.replay_hi.get(pid) {
                    if *from_psn < r {
                        self.violations.push(Violation {
                            span: span.id,
                            pid: Some(*pid),
                            what: format!(
                                "replay out of global PSN order on {pid}: hop starts at \
                                 psn {} after page was already replayed to psn {}",
                                from_psn.0, r.0
                            ),
                        });
                    }
                }
                let e = self.replay_hi.entry(*pid).or_insert(*to_psn);
                *e = (*e).max(*to_psn);
                let h = self.hi_psn.entry(*pid).or_insert(*to_psn);
                *h = (*h).max(*to_psn);
            }
            // Spans whose flags are clean fall through to the catch-all:
            // the watchdog only acts on the violating shapes.
            SpanKind::Transfer {
                pid,
                from,
                to,
                wal_ok: false,
                why,
                ..
            } => {
                self.violations.push(Violation {
                    span: span.id,
                    pid: Some(*pid),
                    what: format!(
                        "WAL rule violated: dirty {pid} left {from} for {to} ({}) \
                         with unforced covering log records",
                        why.label()
                    ),
                });
            }
            SpanKind::PageWrite {
                pid,
                node,
                wal_ok: false,
                ..
            } => {
                self.violations.push(Violation {
                    span: span.id,
                    pid: Some(*pid),
                    what: format!(
                        "WAL rule violated: {pid} written to disk on {node} with \
                         unforced covering log records"
                    ),
                });
            }
            SpanKind::Msg {
                kind,
                from,
                to,
                carries_log: true,
                ..
            } => {
                self.violations.push(Violation {
                    span: span.id,
                    pid: None,
                    what: format!(
                        "log records crossed the network: {kind} {from}→{to} \
                         (the paper's design ships none)"
                    ),
                });
            }
            SpanKind::LogTruncate { node, upto, anchor } if upto > anchor => {
                self.violations.push(Violation {
                    span: span.id,
                    pid: None,
                    what: format!(
                        "log-space protocol violated: {node} reclaimed its log up to \
                         {upto}, past the master checkpoint anchor {anchor} — records \
                         newer than the checkpoint were discarded"
                    ),
                });
            }
            SpanKind::Crash { .. } => {
                // Unforced updates above the durable coverage died with
                // the volatile state; recovery rebuilds a lower PSN and
                // execution legitimately re-walks those numbers.
                self.hi_psn.clear();
                self.replay_hi.clear();
            }
            _ => {}
        }
    }
}

struct TracerInner {
    next_id: u64,
    spans: Vec<Span>,
    cap: usize,
    dropped: u64,
    watchdog: Watchdog,
}

/// Shared handle to the cluster-wide span store (cheap `Rc` clone; the
/// simulator is single-threaded). A disabled tracer holds no store at
/// all, so the emission fast-path with tracing off is one `Option`
/// check.
///
/// The store is bounded: the first `capacity` spans are kept and later
/// ones counted in [`Tracer::dropped`] — keeping the *head* preserves
/// lineage from the start of a run, and the watchdog still observes
/// every span (it runs before the capacity check).
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Rc<RefCell<TracerInner>>>,
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.inner {
            None => f.write_str("Tracer(disabled)"),
            Some(i) => write!(f, "Tracer({} spans)", i.borrow().spans.len()),
        }
    }
}

/// Default bound on retained spans.
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 20;

impl Tracer {
    /// A disabled tracer: allocation returns [`SpanId::NONE`], emission
    /// is a no-op.
    pub fn disabled() -> Tracer {
        Tracer { inner: None }
    }

    /// An enabled tracer retaining up to `capacity` spans (clamped to
    /// at least 1), watchdog on.
    pub fn new(capacity: usize) -> Tracer {
        Tracer {
            inner: Some(Rc::new(RefCell::new(TracerInner {
                next_id: 0,
                spans: Vec::new(),
                cap: capacity.max(1),
                dropped: 0,
                watchdog: Watchdog::default(),
            }))),
        }
    }

    /// Is this tracer recording?
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Allocates the next cluster-unique span id ([`SpanId::NONE`] when
    /// disabled).
    pub fn alloc(&self) -> SpanId {
        match &self.inner {
            None => SpanId::NONE,
            Some(i) => {
                let mut t = i.borrow_mut();
                t.next_id += 1;
                SpanId(t.next_id)
            }
        }
    }

    /// Records a completed span. The watchdog observes it even when the
    /// bounded store is full.
    pub fn emit(&self, span: Span) {
        let Some(i) = &self.inner else { return };
        let mut t = i.borrow_mut();
        t.watchdog.observe(&span);
        if t.spans.len() < t.cap {
            t.spans.push(span);
        } else {
            t.dropped += 1;
        }
    }

    /// Allocates an id and records a zero-duration span in one call;
    /// returns the id (NONE when disabled).
    pub fn point(&self, at: SimTime, node: NodeId, parent: SpanId, kind: SpanKind) -> SpanId {
        let id = self.alloc();
        if !id.is_none() {
            self.emit(Span {
                id,
                parent,
                node,
                start: at,
                dur: 0,
                kind,
            });
        }
        id
    }

    /// Number of spans retained.
    pub fn len(&self) -> usize {
        self.inner.as_ref().map_or(0, |i| i.borrow().spans.len())
    }

    /// True when nothing has been recorded (or tracing is disabled).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Spans emitted past the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.borrow().dropped)
    }

    /// A copy of every retained span, in emission order.
    pub fn spans(&self) -> Vec<Span> {
        self.inner
            .as_ref()
            .map_or_else(Vec::new, |i| i.borrow().spans.clone())
    }

    /// Violations the watchdog has found so far.
    pub fn violations(&self) -> Vec<Violation> {
        self.inner
            .as_ref()
            .map_or_else(Vec::new, |i| i.borrow().watchdog.violations.clone())
    }

    /// The page with the most page-scoped spans (lineage default).
    pub fn busiest_page(&self) -> Option<PageId> {
        let Some(i) = &self.inner else { return None };
        let mut counts: BTreeMap<PageId, usize> = BTreeMap::new();
        for s in &i.borrow().spans {
            if let Some(pid) = s.kind.page() {
                *counts.entry(pid).or_default() += 1;
            }
        }
        counts
            .into_iter()
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.to_u64().cmp(&a.0.to_u64())))
            .map(|(pid, _)| pid)
    }

    /// The PSN lineage of `pid`: every page-scoped span mentioning it
    /// plus the crash markers that punctuate its history, in emission
    /// (= causal) order.
    pub fn lineage(&self, pid: PageId) -> Vec<Span> {
        let Some(i) = &self.inner else {
            return Vec::new();
        };
        i.borrow()
            .spans
            .iter()
            .filter(|s| s.kind.page() == Some(pid) || matches!(s.kind, SpanKind::Crash { .. }))
            .cloned()
            .collect()
    }

    /// Human-readable lineage dump for `pid`, one line per span.
    pub fn render_lineage(&self, pid: PageId) -> String {
        let mut out = format!("PSN lineage of {pid}:\n");
        let lin = self.lineage(pid);
        if lin.is_empty() {
            out.push_str("  (no spans recorded)\n");
        }
        for s in lin {
            out.push_str(&format!("  {s}\n"));
        }
        out
    }

    /// Passes iff the watchdog saw no violation; otherwise returns an
    /// error message listing every violation with the offending page's
    /// lineage slice (the last few spans up to the violation).
    pub fn check(&self) -> std::result::Result<(), String> {
        let violations = self.violations();
        if violations.is_empty() {
            return Ok(());
        }
        let mut msg = format!("trace watchdog: {} violation(s)\n", violations.len());
        for v in &violations {
            msg.push_str(&format!("- {v}\n"));
            if let Some(pid) = v.pid {
                let lin = self.lineage(pid);
                // The slice that *leads to* the violation, not the
                // whole history: everything up to the offending span,
                // truncated to the last 12 entries.
                let upto: Vec<&Span> = lin.iter().take_while(|s| s.id <= v.span).collect();
                let tail = upto.len().saturating_sub(12);
                if tail > 0 {
                    msg.push_str(&format!("    … {tail} earlier span(s)\n"));
                }
                for s in &upto[tail..] {
                    msg.push_str(&format!("    {s}\n"));
                }
            }
        }
        Err(msg)
    }

    /// Exports every retained span as Chrome trace-event JSON (the
    /// "JSON object format": `{"traceEvents": [...]}`), loadable in
    /// `chrome://tracing` and Perfetto. Nodes become processes; span
    /// categories become named thread lanes; cross-node transfers and
    /// messages additionally emit flow-event pairs so the causal edge
    /// is drawn as an arrow.
    pub fn chrome_trace_json(&self) -> String {
        let spans = self.spans();
        let mut events: Vec<String> = Vec::new();
        // Lane metadata: one process per node, one named lane per
        // category present on that node.
        let mut lanes: BTreeMap<(u32, usize), &'static str> = BTreeMap::new();
        for s in &spans {
            let cat = s.kind.category();
            lanes.insert((s.node.0, lane_of(cat)), cat);
            if let SpanKind::Transfer { to, .. } | SpanKind::Msg { to, .. } = &s.kind {
                lanes.insert((to.0, lane_of(s.kind.category())), cat);
            }
        }
        let mut seen_procs = std::collections::BTreeSet::new();
        for ((node, lane), cat) in &lanes {
            if seen_procs.insert(*node) {
                events.push(format!(
                    "{{\"ph\":\"M\",\"pid\":{node},\"tid\":0,\"name\":\"process_name\",\
                     \"args\":{{\"name\":\"node {node}\"}}}}"
                ));
            }
            events.push(format!(
                "{{\"ph\":\"M\",\"pid\":{node},\"tid\":{lane},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"{}\"}}}}",
                json_escape(cat)
            ));
        }
        for s in &spans {
            let lane = lane_of(s.kind.category());
            events.push(format!(
                "{{\"ph\":\"X\",\"pid\":{},\"tid\":{},\"ts\":{},\"dur\":{},\
                 \"name\":\"{}\",\"cat\":\"{}\",\"args\":{{\"span\":\"{}\",\"parent\":\"{}\"}}}}",
                s.node.0,
                lane,
                s.start,
                s.dur,
                json_escape(&s.kind.to_string()),
                s.kind.category(),
                s.id,
                s.parent
            ));
            // Cross-node edges as flow arrows.
            let edge = match &s.kind {
                SpanKind::Transfer { from, to, .. } => Some((*from, *to)),
                SpanKind::Msg { from, to, .. } => Some((*from, *to)),
                _ => None,
            };
            if let Some((from, to)) = edge {
                events.push(format!(
                    "{{\"ph\":\"s\",\"pid\":{},\"tid\":{},\"ts\":{},\"id\":{},\
                     \"name\":\"edge\",\"cat\":\"flow\"}}",
                    from.0, lane, s.start, s.id.0
                ));
                events.push(format!(
                    "{{\"ph\":\"f\",\"bp\":\"e\",\"pid\":{},\"tid\":{},\"ts\":{},\"id\":{},\
                     \"name\":\"edge\",\"cat\":\"flow\"}}",
                    to.0,
                    lane,
                    s.start + s.dur,
                    s.id.0
                ));
            }
        }
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        out.push_str(&events.join(","));
        out.push_str("]}");
        out
    }
}

/// Send-safe per-thread span buffer for the threaded runtime.
///
/// Worker threads cannot share the [`Tracer`] (it is `Rc`-based and
/// its watchdog asserts a serialized global order), so each worker
/// records into its own `SpanBuf` and the buffers are merged on the
/// main thread at join. Ids are allocated coordination-free from the
/// worker's own namespace: `((worker + 1) << 48) | seq`. Raw buffer
/// ids therefore always have bits ≥ 48 set, which is how
/// [`SpanBuf::merge`] tells an in-batch parent reference (rewritten)
/// from a reference to an already-merged span id (kept verbatim).
///
/// Like the tracer's store, the buffer is bounded: the first
/// `capacity` spans are kept, later ones are counted in
/// [`SpanBuf::dropped`]. Unlike the tracer there is no online
/// watchdog — dropped spans are invisible to the post-merge check, so
/// a nonzero drop count means reduced invariant coverage, not just a
/// shorter export.
#[derive(Debug, Default)]
pub struct SpanBuf {
    worker: u32,
    seq: u64,
    spans: Vec<Span>,
    cap: usize,
    dropped: u64,
    enabled: bool,
}

impl SpanBuf {
    /// A disabled buffer: allocation returns [`SpanId::NONE`],
    /// emission is a no-op. This is the tracing-off fast path.
    pub fn disabled() -> SpanBuf {
        SpanBuf::default()
    }

    /// An enabled buffer for `worker` (its id namespace) retaining up
    /// to `capacity` spans (clamped to at least 1).
    pub fn new(worker: u32, capacity: usize) -> SpanBuf {
        SpanBuf {
            worker,
            seq: 0,
            spans: Vec::new(),
            cap: capacity.max(1),
            dropped: 0,
            enabled: true,
        }
    }

    /// Is this buffer recording?
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Allocates the next id in this worker's namespace
    /// ([`SpanId::NONE`] when disabled).
    pub fn alloc(&mut self) -> SpanId {
        if !self.enabled {
            return SpanId::NONE;
        }
        self.seq += 1;
        SpanId(((self.worker as u64 + 1) << 48) | self.seq)
    }

    /// Records a completed span (bounded: head kept, overflow counted).
    pub fn emit(&mut self, span: Span) {
        if !self.enabled {
            return;
        }
        if self.spans.len() < self.cap {
            self.spans.push(span);
        } else {
            self.dropped += 1;
        }
    }

    /// Allocates an id and records a zero-duration span in one call;
    /// returns the id (NONE when disabled).
    pub fn point(&mut self, at: SimTime, node: NodeId, parent: SpanId, kind: SpanKind) -> SpanId {
        let id = self.alloc();
        if !id.is_none() {
            self.emit(Span {
                id,
                parent,
                node,
                start: at,
                dur: 0,
                kind,
            });
        }
        id
    }

    /// Number of spans retained.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Spans emitted past the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Merges per-thread buffers into one deterministic span sequence.
    ///
    /// Buffers are ordered by ascending worker index and concatenated
    /// with local emission order preserved; ids are rewritten to a
    /// monotone sequence continuing from `*next_id` (which is advanced
    /// past the ids consumed). Parent references are rewritten through
    /// the same map — including references into *other* buffers of the
    /// batch, which is how cross-thread causal edges carried in message
    /// headers survive the merge. A parent below the `1 << 48` worker
    /// namespace is an id from an earlier merge batch and is kept
    /// verbatim; an in-namespace parent that is not in the batch (its
    /// span was dropped at capacity) degrades to [`SpanId::NONE`].
    ///
    /// Concatenation is order-correct for the watchdog because every
    /// invariant it checks is per-page and each page is mutated by
    /// exactly one worker: that page's spans all sit in one buffer, in
    /// true order.
    ///
    /// Returns the merged spans and the total dropped count.
    pub fn merge(mut bufs: Vec<SpanBuf>, next_id: &mut u64) -> (Vec<Span>, u64) {
        bufs.sort_by_key(|b| b.worker);
        let mut map: BTreeMap<SpanId, SpanId> = BTreeMap::new();
        let mut dropped = 0;
        for b in &bufs {
            dropped += b.dropped;
            for s in &b.spans {
                *next_id += 1;
                map.insert(s.id, SpanId(*next_id));
            }
        }
        let remap = |id: SpanId| -> SpanId {
            match map.get(&id) {
                Some(&new) => new,
                None if id.0 < (1 << 48) => id,
                None => SpanId::NONE,
            }
        };
        let mut out = Vec::with_capacity(map.len());
        for b in bufs {
            for mut s in b.spans {
                s.id = remap(s.id);
                s.parent = remap(s.parent);
                out.push(s);
            }
        }
        (out, dropped)
    }
}

/// Stable lane (Chrome `tid`) per span category.
fn lane_of(cat: &str) -> usize {
    match cat {
        "txn" => 1,
        "commit" => 2,
        "force" => 3,
        "update" => 4,
        "transfer" => 5,
        "lock" => 6,
        "write" => 7,
        "replay" => 8,
        "recovery" => 9,
        "crash" => 10,
        "msg" => 11,
        "tree" => 12,
        "wal" => 13,
        _ => 14,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(i: u32) -> PageId {
        PageId::new(NodeId(0), i)
    }

    fn txn(n: u32, s: u64) -> TxnId {
        TxnId::new(NodeId(n), s)
    }

    fn update(t: &Tracer, at: SimTime, node: u32, p: PageId, psn: u64) -> SpanId {
        t.point(
            at,
            NodeId(node),
            SpanId::NONE,
            SpanKind::Update {
                pid: p,
                txn: txn(node, 1),
                psn: Psn(psn),
                lsn: Lsn(at),
                clr: false,
            },
        )
    }

    #[test]
    fn disabled_tracer_is_inert() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        assert_eq!(t.alloc(), SpanId::NONE);
        t.emit(Span {
            id: SpanId(1),
            parent: SpanId::NONE,
            node: NodeId(0),
            start: 0,
            dur: 0,
            kind: SpanKind::Crash { node: NodeId(0) },
        });
        assert!(t.is_empty());
        assert!(t.check().is_ok());
        assert_eq!(
            t.chrome_trace_json(),
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}"
        );
    }

    #[test]
    fn ids_are_unique_and_monotone() {
        let t = Tracer::new(16);
        let a = t.alloc();
        let b = t.alloc();
        assert!(a < b);
        assert!(!a.is_none());
    }

    #[test]
    fn monotone_updates_pass_the_watchdog() {
        let t = Tracer::new(64);
        for (i, n) in [(1u64, 0u32), (2, 1), (3, 1), (4, 2)] {
            update(&t, i * 10, n, pid(0), i);
        }
        assert!(t.check().is_ok());
        assert_eq!(t.violations().len(), 0);
    }

    #[test]
    fn psn_regression_is_caught_with_lineage_slice() {
        let t = Tracer::new(64);
        update(&t, 10, 0, pid(3), 1);
        update(&t, 20, 1, pid(3), 2);
        update(&t, 30, 2, pid(3), 2); // re-walks psn 2→3: violation
        let err = t.check().unwrap_err();
        assert!(err.contains("not strictly increasing"), "{err}");
        assert!(err.contains("P0.3"), "lineage slice names the page: {err}");
        assert_eq!(t.violations().len(), 1);
        assert_eq!(t.violations()[0].pid, Some(pid(3)));
    }

    #[test]
    fn crash_resets_the_psn_frontier() {
        let t = Tracer::new(64);
        update(&t, 10, 0, pid(0), 5);
        t.point(
            20,
            NodeId(0),
            SpanId::NONE,
            SpanKind::Crash { node: NodeId(0) },
        );
        // Post-recovery execution legitimately re-walks lower PSNs.
        update(&t, 30, 0, pid(0), 3);
        assert!(t.check().is_ok(), "{:?}", t.check());
    }

    #[test]
    fn replay_order_violation_is_caught() {
        let t = Tracer::new(64);
        let hop = |from: u64, to: u64, node: u32| SpanKind::ReplayHop {
            pid: pid(1),
            node: NodeId(node),
            from_psn: Psn(from),
            to_psn: Psn(to),
            applied: to - from,
        };
        t.point(10, NodeId(1), SpanId::NONE, hop(1, 4, 1));
        t.point(20, NodeId(2), SpanId::NONE, hop(4, 7, 2));
        assert!(t.check().is_ok());
        t.point(30, NodeId(1), SpanId::NONE, hop(2, 9, 1)); // restarts below 7
        let err = t.check().unwrap_err();
        assert!(err.contains("replay out of global PSN order"), "{err}");
    }

    #[test]
    fn wal_rule_and_log_ship_violations_are_caught() {
        let t = Tracer::new(64);
        t.point(
            10,
            NodeId(1),
            SpanId::NONE,
            SpanKind::Transfer {
                pid: pid(0),
                from: NodeId(1),
                to: NodeId(0),
                psn: Psn(4),
                why: TransferWhy::Replace,
                wal_ok: false,
            },
        );
        t.point(
            20,
            NodeId(1),
            SpanId::NONE,
            SpanKind::Msg {
                kind: "log-ship",
                from: NodeId(1),
                to: NodeId(0),
                bytes: 100,
                carries_log: true,
            },
        );
        let err = t.check().unwrap_err();
        assert!(err.contains("WAL rule violated"), "{err}");
        assert!(err.contains("log records crossed the network"), "{err}");
        assert_eq!(t.violations().len(), 2);
    }

    #[test]
    fn log_truncation_past_the_anchor_is_caught() {
        let t = Tracer::new(64);
        // Reclaiming below (or exactly to) the anchor is the protocol
        // working as designed.
        t.point(
            10,
            NodeId(0),
            SpanId::NONE,
            SpanKind::LogTruncate {
                node: NodeId(0),
                upto: Lsn(100),
                anchor: Lsn(100),
            },
        );
        assert!(t.check().is_ok());
        // Reclaiming past it discards records the master checkpoint
        // still needs.
        t.point(
            20,
            NodeId(0),
            SpanId::NONE,
            SpanKind::LogTruncate {
                node: NodeId(0),
                upto: Lsn(250),
                anchor: Lsn(100),
            },
        );
        let err = t.check().unwrap_err();
        assert!(err.contains("log-space protocol violated"), "{err}");
        assert!(err.contains("anchor"), "{err}");
    }

    #[test]
    fn lineage_is_page_scoped_and_ordered() {
        let t = Tracer::new(64);
        update(&t, 10, 0, pid(0), 1);
        update(&t, 20, 0, pid(1), 1);
        t.point(
            30,
            NodeId(0),
            SpanId::NONE,
            SpanKind::Transfer {
                pid: pid(0),
                from: NodeId(0),
                to: NodeId(1),
                psn: Psn(2),
                why: TransferWhy::Ship,
                wal_ok: true,
            },
        );
        let lin = t.lineage(pid(0));
        assert_eq!(lin.len(), 2);
        assert!(lin[0].start < lin[1].start);
        assert_eq!(t.busiest_page(), Some(pid(0)));
        let s = t.render_lineage(pid(0));
        assert!(s.contains("update P0.0"), "{s}");
        assert!(s.contains("ship P0.0 N0→N1"), "{s}");
    }

    #[test]
    fn capacity_bound_keeps_head_and_counts_drops() {
        let t = Tracer::new(2);
        for i in 1..=5u64 {
            update(&t, i, 0, pid(0), i);
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 3);
        // The watchdog still saw the dropped spans.
        update(&t, 99, 0, pid(0), 2); // regression vs frontier psn 6
        assert!(t.check().is_err());
    }

    #[test]
    fn chrome_export_is_schema_shaped() {
        let t = Tracer::new(64);
        update(&t, 10, 0, pid(0), 1);
        t.point(
            30,
            NodeId(0),
            SpanId::NONE,
            SpanKind::Transfer {
                pid: pid(0),
                from: NodeId(0),
                to: NodeId(1),
                psn: Psn(2),
                why: TransferWhy::Ship,
                wal_ok: true,
            },
        );
        let j = t.chrome_trace_json();
        assert!(j.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(j.ends_with("]}"));
        assert!(j.contains("\"ph\":\"X\""), "{j}");
        assert!(j.contains("\"ph\":\"M\""), "{j}");
        assert!(j.contains("\"process_name\""), "{j}");
        assert!(
            j.contains("\"ph\":\"s\"") && j.contains("\"ph\":\"f\""),
            "flow pair: {j}"
        );
        // Every event is an object in one array; no trailing commas.
        assert!(!j.contains(",]") && !j.contains(",,"), "{j}");
    }

    #[test]
    fn span_ctx_constructors() {
        let root = SpanCtx::root(SpanId(3));
        assert_eq!(root.parent, SpanId::NONE);
        let c = SpanCtx::child(SpanId(4), SpanId(3));
        assert_eq!(c.parent, SpanId(3));
        assert_eq!(SpanCtx::NONE.span, SpanId::NONE);
        assert_eq!(format!("{}", SpanId::NONE), "-");
        assert_eq!(format!("{}", SpanId(7)), "S7");
    }

    fn buf_crash(b: &mut SpanBuf, at: SimTime, node: u32) -> SpanId {
        b.point(
            at,
            NodeId(node),
            SpanId::NONE,
            SpanKind::Crash { node: NodeId(node) },
        )
    }

    #[test]
    fn spanbuf_disabled_is_inert_and_ids_are_namespaced() {
        let mut off = SpanBuf::disabled();
        assert!(!off.is_enabled());
        assert_eq!(off.alloc(), SpanId::NONE);
        buf_crash(&mut off, 5, 0);
        assert!(off.is_empty());

        let mut a = SpanBuf::new(0, 16);
        let mut b = SpanBuf::new(1, 16);
        let ia = a.alloc();
        let ib = b.alloc();
        assert_eq!(ia, SpanId(1 << 48 | 1));
        assert_eq!(ib, SpanId(2 << 48 | 1));
        assert_ne!(ia, ib, "worker namespaces must not collide");
    }

    #[test]
    fn spanbuf_merge_is_deterministic_and_rewrites_parents() {
        // Build twice in opposite buffer order; merged output must be
        // identical, with ids rewritten to one monotone sequence and a
        // cross-buffer parent edge surviving the rewrite.
        let build = |swap: bool| {
            let mut a = SpanBuf::new(0, 16);
            let mut b = SpanBuf::new(1, 16);
            let cause = buf_crash(&mut a, 1, 0);
            // b's span is caused by a's (cross-thread edge), plus one
            // parent that refers to an already-merged trace id (< 2^48)
            // and must be kept verbatim.
            b.point(2, NodeId(1), cause, SpanKind::Crash { node: NodeId(1) });
            b.point(3, NodeId(1), SpanId(7), SpanKind::Crash { node: NodeId(1) });
            let bufs = if swap { vec![b, a] } else { vec![a, b] };
            let mut next = 10;
            SpanBuf::merge(bufs, &mut next)
        };
        let (m1, d1) = build(false);
        let (m2, _) = build(true);
        assert_eq!(m1, m2, "merge must not depend on buffer arrival order");
        assert_eq!(d1, 0);
        assert_eq!(
            m1.iter().map(|s| s.id.0).collect::<Vec<_>>(),
            vec![11, 12, 13],
            "ids continue the trace's monotone sequence"
        );
        assert_eq!(m1[1].parent, m1[0].id, "cross-buffer parent rewritten");
        assert_eq!(m1[2].parent, SpanId(7), "pre-merged parent kept");
    }

    #[test]
    fn spanbuf_bounds_the_store_and_drops_count_through_merge() {
        let mut b = SpanBuf::new(3, 2);
        for at in 0..5 {
            buf_crash(&mut b, at, 0);
        }
        assert_eq!(b.len(), 2, "head kept");
        assert_eq!(b.dropped(), 3);
        let mut next = 0;
        let (spans, dropped) = SpanBuf::merge(vec![b], &mut next);
        assert_eq!(spans.len(), 2);
        assert_eq!(dropped, 3);
        assert_eq!(next, 2);
    }

    #[test]
    fn merged_spanbuf_trace_replays_through_the_watchdog() {
        // Two workers each update their own page; the merged trace is
        // clean. A regressing PSN inside one worker's buffer must
        // surface after the replay through a fresh Tracer.
        let mut a = SpanBuf::new(0, 64);
        let mut b = SpanBuf::new(1, 64);
        for (w, buf) in [(0u32, &mut a), (1u32, &mut b)] {
            for psn in 1..4u64 {
                let id = buf.alloc();
                buf.emit(Span {
                    id,
                    parent: SpanId::NONE,
                    node: NodeId(w),
                    start: psn,
                    dur: 0,
                    kind: SpanKind::Update {
                        pid: PageId::new(NodeId(w), 0),
                        txn: txn(w, 1),
                        psn: Psn(psn),
                        lsn: Lsn(psn),
                        clr: false,
                    },
                });
            }
        }
        let mut next = 0;
        let (clean, _) = SpanBuf::merge(vec![a, b], &mut next);
        let t = Tracer::new(clean.len() + 1);
        for s in &clean {
            t.emit(s.clone());
        }
        assert!(t.check().is_ok(), "{:?}", t.check());

        let mut bad = SpanBuf::new(0, 64);
        for psn in [1u64, 2, 2] {
            let id = bad.alloc();
            bad.emit(Span {
                id,
                parent: SpanId::NONE,
                node: NodeId(0),
                start: psn,
                dur: 0,
                kind: SpanKind::Update {
                    pid: pid(0),
                    txn: txn(0, 1),
                    psn: Psn(psn),
                    lsn: Lsn(psn),
                    clr: false,
                },
            });
        }
        let mut next = 0;
        let (spans, _) = SpanBuf::merge(vec![bad], &mut next);
        let t = Tracer::new(spans.len() + 1);
        for s in &spans {
            t.emit(s.clone());
        }
        assert!(t.check().is_err(), "PSN regression must be caught");
    }
}
