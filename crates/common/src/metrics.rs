//! Canonical metric names.
//!
//! Every registry key in the workspace lives here as a `const`, so a
//! typo in a metric name is a compile error instead of a silently
//! fresh counter. Names follow the `subsystem/metric` convention the
//! registry documents; cluster snapshots prefix them with `n<id>/`.

/// The canonical registry key for every metric in the workspace.
pub mod keys {
    // ---- write-ahead log ----
    /// Log records appended.
    pub const WAL_RECORDS: &str = "wal/records";
    /// Log forces (synchronous flushes).
    pub const WAL_FORCES: &str = "wal/forces";
    /// Log bytes appended.
    pub const WAL_BYTES: &str = "wal/bytes";
    /// Backing-store syncs performed by the log.
    pub const WAL_STORE_SYNCS: &str = "wal/store_syncs";
    /// Torn log-tail bytes discarded by checksum repair at restart.
    pub const WAL_TORN_BYTES: &str = "wal/torn_bytes";
    /// Histogram: simulated duration of one log force, µs.
    pub const WAL_FORCE_US: &str = "wal/force_us";
    /// Histogram: commit records covered per group-commit force.
    pub const WAL_GROUP_SIZE: &str = "wal/group_size";
    /// Histogram: commit-force latency, µs.
    pub const WAL_COMMIT_FORCE_US: &str = "wal/commit_force_us";
    /// Gauge: forces per commit ×1000 (running ratio).
    pub const WAL_FORCES_PER_COMMIT: &str = "wal/forces_per_commit";
    /// Gauge: group-commit window currently chosen by the force
    /// scheduler, sim-µs (resized per batch under the adaptive policy).
    pub const WAL_WINDOW_US: &str = "wal/window_us";
    /// Bytes rescanned by torn-tail repair at restart (O(torn tail),
    /// not O(log) — the scan starts at the last synced boundary).
    pub const WAL_REPAIR_SCAN_BYTES: &str = "wal/repair_scan_bytes";
    /// Gauge: commits queued in the force scheduler awaiting their
    /// group force — the commit-pipeline queue depth.
    pub const WAL_PENDING_COMMITS: &str = "wal/pending_commits";
    /// Histogram: wall-clock duration of one `fdatasync` in the
    /// file-backed log store, µs. Only file-backed WALs register it
    /// (the in-memory store has no sync to time), so sim exports stay
    /// byte-deterministic.
    pub const WAL_FSYNC_US: &str = "wal/fsync_us";

    // ---- simulated-time profiler (DESIGN §11) ----
    /// Gauge: cumulative sim-time attributed to disk I/O, µs.
    pub const PROF_DISK_US: &str = "prof/disk_us";
    /// Gauge: cumulative sim-time attributed to plain CPU work, µs.
    pub const PROF_CPU_US: &str = "prof/cpu_us";
    /// Gauge: cumulative sim-time attributed to message handling, µs.
    pub const PROF_NET_US: &str = "prof/net_us";
    /// Gauge: cumulative sim-time spent blocked on locks, µs.
    pub const PROF_LOCK_WAIT_US: &str = "prof/lock_wait_us";
    /// Gauge: cumulative sim-time attributed to crash recovery, µs.
    pub const PROF_REPLAY_US: &str = "prof/replay_us";

    // ---- crash recovery (DESIGN §13) ----
    /// Gauge: replay waves in the last recovery's `ReplayPlan`.
    pub const RECOVERY_REPLAY_WAVES: &str = "recovery/replay_waves";
    /// Gauge: PSN count along the plan's critical path — the lower
    /// bound on replay work no amount of parallelism removes.
    pub const RECOVERY_CRITICAL_PATH_PSNS: &str = "recovery/critical_path_psns";
    /// Histogram: replay units per wave (wave width).
    pub const RECOVERY_WAVE_WIDTH: &str = "recovery/wave_width";

    // ---- buffer pool ----
    /// Buffer hits.
    pub const BUF_HITS: &str = "buf/hits";
    /// Buffer misses.
    pub const BUF_MISSES: &str = "buf/misses";
    /// Evictions.
    pub const BUF_EVICTIONS: &str = "buf/evictions";
    /// Dirty pages stolen (replaced to their owner while dirty).
    pub const BUF_DIRTY_STEALS: &str = "buf/dirty_steals";

    // ---- database (page store) ----
    /// Page reads from disk.
    pub const DB_READS: &str = "db/reads";
    /// Page writes to disk.
    pub const DB_WRITES: &str = "db/writes";
    /// Store syncs.
    pub const DB_SYNCS: &str = "db/syncs";

    // ---- transactions ----
    /// Commits.
    pub const TXN_COMMITS: &str = "txn/commits";
    /// Aborts.
    pub const TXN_ABORTS: &str = "txn/aborts";

    // ---- locking ----
    /// Lock acquisitions.
    pub const LOCKS_ACQUISITIONS: &str = "locks/acquisitions";
    /// Lock requests that had to wait.
    pub const LOCKS_WAITS: &str = "locks/waits";
    /// Histogram: lock wait time, µs.
    pub const LOCKS_WAIT_US: &str = "locks/wait_us";
    /// Deadlocks broken.
    pub const LOCKS_DEADLOCKS: &str = "locks/deadlocks";

    // ---- tracing / flight recorder ----
    /// Gauge: flight-recorder events lost to ring wraparound.
    pub const TRACE_DROPPED_EVENTS: &str = "trace/dropped_events";

    // ---- B+-tree access method ----
    /// Root-to-leaf traversals.
    pub const ACCESS_TRAVERSES: &str = "access/traverses";
    /// Leaf splits.
    pub const ACCESS_SPLITS: &str = "access/splits";
    /// Leaf merges.
    pub const ACCESS_MERGES: &str = "access/merges";
}

/// The profiler gauge key for `bucket` (see the `prof/*` keys).
pub fn prof_key(bucket: crate::simclock::Bucket) -> &'static str {
    use crate::simclock::Bucket;
    match bucket {
        Bucket::Disk => keys::PROF_DISK_US,
        Bucket::Cpu => keys::PROF_CPU_US,
        Bucket::Net => keys::PROF_NET_US,
        Bucket::LockWait => keys::PROF_LOCK_WAIT_US,
        Bucket::Replay => keys::PROF_REPLAY_US,
    }
}

#[cfg(test)]
mod tests {
    use super::keys;

    #[test]
    fn prof_keys_follow_bucket_labels() {
        use crate::simclock::Bucket;
        for b in Bucket::ALL {
            assert_eq!(super::prof_key(b), format!("prof/{}_us", b.label()));
        }
    }

    #[test]
    fn key_names_are_unique_and_well_formed() {
        let all = [
            keys::WAL_RECORDS,
            keys::WAL_FORCES,
            keys::WAL_BYTES,
            keys::WAL_STORE_SYNCS,
            keys::WAL_TORN_BYTES,
            keys::WAL_FORCE_US,
            keys::WAL_GROUP_SIZE,
            keys::WAL_COMMIT_FORCE_US,
            keys::WAL_FORCES_PER_COMMIT,
            keys::WAL_WINDOW_US,
            keys::WAL_REPAIR_SCAN_BYTES,
            keys::WAL_PENDING_COMMITS,
            keys::WAL_FSYNC_US,
            keys::PROF_DISK_US,
            keys::PROF_CPU_US,
            keys::PROF_NET_US,
            keys::PROF_LOCK_WAIT_US,
            keys::PROF_REPLAY_US,
            keys::RECOVERY_REPLAY_WAVES,
            keys::RECOVERY_CRITICAL_PATH_PSNS,
            keys::RECOVERY_WAVE_WIDTH,
            keys::BUF_HITS,
            keys::BUF_MISSES,
            keys::BUF_EVICTIONS,
            keys::BUF_DIRTY_STEALS,
            keys::DB_READS,
            keys::DB_WRITES,
            keys::DB_SYNCS,
            keys::TXN_COMMITS,
            keys::TXN_ABORTS,
            keys::LOCKS_ACQUISITIONS,
            keys::LOCKS_WAITS,
            keys::LOCKS_WAIT_US,
            keys::LOCKS_DEADLOCKS,
            keys::TRACE_DROPPED_EVENTS,
            keys::ACCESS_TRAVERSES,
            keys::ACCESS_SPLITS,
            keys::ACCESS_MERGES,
        ];
        let mut seen = std::collections::HashSet::new();
        for k in all {
            assert!(seen.insert(k), "duplicate key {k}");
            let (subsystem, metric) = k.split_once('/').expect("subsystem/metric shape");
            assert!(!subsystem.is_empty() && !metric.is_empty(), "{k}");
            assert!(
                k.chars()
                    .all(|c| c.is_ascii_lowercase() || c == '/' || c == '_'),
                "{k} uses lowercase, '/', '_' only"
            );
        }
    }
}
