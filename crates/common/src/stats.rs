//! Lightweight event counters used by every subsystem.
//!
//! # Thread-safe by design
//!
//! `Counter` (and the richer metrics in [`crate::obs`] and the ring in
//! [`crate::trace`]) share state through `Arc<AtomicU64>` /
//! `Arc<Mutex<_>>`, so one instrumentation layer serves both execution
//! runtimes: the deterministic single-threaded simulator and the
//! OS-thread-per-node runtime (`cblog-rt`), whose workers bump the same
//! handles concurrently. Counters use relaxed atomics — each bump is a
//! single uncontended RMW, and the only ordering the experiments need
//! is "reads after the run observe all bumps", which thread join
//! already provides. The one deliberately non-`Send` holdout is the
//! span [`Tracer`](crate::Tracer): causal lineage capture assumes the
//! simulator's deterministic single-threaded schedule, so it stays
//! sim-only (see `common::span`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A shared, cheaply-clonable event counter.
///
/// Subsystems hand out clones so the experiment harness can observe
/// buffer-pool, log and network activity without threading references
/// through every call. Clones share one atomic cell, so handles may be
/// bumped from any thread.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    inner: Arc<AtomicU64>,
}

impl Counter {
    /// New counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds `n` events.
    pub fn add(&self, n: u64) {
        self.inner.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one event.
    pub fn bump(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.inner.load(Ordering::Relaxed)
    }

    /// Resets to zero (e.g. after warmup).
    pub fn reset(&self) {
        self.inner.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_state() {
        let a = Counter::new();
        let b = a.clone();
        a.bump();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(b.get(), 3);
        a.reset();
        assert_eq!(b.get(), 0);
    }

    #[test]
    fn concurrent_bumps_are_not_lost() {
        let c = Counter::new();
        let threads = 8;
        let per_thread = 10_000u64;
        std::thread::scope(|s| {
            for _ in 0..threads {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..per_thread {
                        c.bump();
                    }
                });
            }
        });
        assert_eq!(c.get(), threads * per_thread);
    }
}
