//! Lightweight event counters used by every subsystem.
//!
//! # Single-threaded by design
//!
//! `Counter` (and the richer metrics in [`crate::obs`] and the ring in
//! [`crate::trace`]) share state through `Rc<Cell<_>>` /
//! `Rc<RefCell<_>>`, so none of them are `Send`/`Sync`. This is a
//! deliberate contract, not an oversight: the simulator executes the
//! whole cluster on one thread to stay deterministic (identical seeds
//! must replay identical histories), and `Rc<Cell>` makes every bump a
//! plain load/store with zero synchronization cost on the hot paths
//! being measured. Lifting the assumption later means swapping the
//! interiors for `Arc<AtomicU64>` (counters/gauges) and a lock-free or
//! sharded histogram — the public API here is shaped so that swap does
//! not ripple into call sites.

use std::cell::Cell;
use std::rc::Rc;

/// A shared, cheaply-clonable event counter.
///
/// Subsystems hand out clones so the experiment harness can observe
/// buffer-pool, log and network activity without threading references
/// through every call. The simulator is single-threaded by design, so a
/// `Cell` suffices (see the module docs for the full contract).
#[derive(Clone, Debug, Default)]
pub struct Counter {
    inner: Rc<Cell<u64>>,
}

impl Counter {
    /// New counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds `n` events.
    pub fn add(&self, n: u64) {
        self.inner.set(self.inner.get() + n);
    }

    /// Adds one event.
    pub fn bump(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.inner.get()
    }

    /// Resets to zero (e.g. after warmup).
    pub fn reset(&self) {
        self.inner.set(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_state() {
        let a = Counter::new();
        let b = a.clone();
        a.bump();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(b.get(), 3);
        a.reset();
        assert_eq!(b.get(), 0);
    }
}
