//! Lightweight event counters used by every subsystem.

use std::cell::Cell;
use std::rc::Rc;

/// A shared, cheaply-clonable event counter.
///
/// Subsystems hand out clones so the experiment harness can observe
/// buffer-pool, log and network activity without threading references
/// through every call. The simulator is single-threaded by design, so a
/// `Cell` suffices.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    inner: Rc<Cell<u64>>,
}

impl Counter {
    /// New counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds `n` events.
    pub fn add(&self, n: u64) {
        self.inner.set(self.inner.get() + n);
    }

    /// Adds one event.
    pub fn bump(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.inner.get()
    }

    /// Resets to zero (e.g. after warmup).
    pub fn reset(&self) {
        self.inner.set(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_state() {
        let a = Counter::new();
        let b = a.clone();
        a.bump();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(b.get(), 3);
        a.reset();
        assert_eq!(b.get(), 0);
    }
}
