//! Committed-state oracle: the golden model of what the database must
//! contain after a run (plus crashes and recoveries).
//!
//! The driver records every write of a transaction and folds it into
//! the oracle only at commit time. Verification then reads every
//! tracked slot back through a fresh transaction and compares —
//! durability (committed updates survive) and atomicity (aborted and
//! loser updates do not) in one check.

use crate::driver::System;
use cblog_common::{PageId, Result};
use std::collections::HashMap;

/// A tracked slot: page + counter-slot index.
type SlotKey = (PageId, usize);

/// Shadow map of committed values.
#[derive(Clone, Debug, Default)]
pub struct Oracle {
    committed: HashMap<SlotKey, u64>,
    staged: HashMap<u64, Vec<(SlotKey, u64)>>,
}

impl Oracle {
    /// Empty oracle.
    pub fn new() -> Self {
        Oracle::default()
    }

    /// Stages a write of an uncommitted transaction (keyed by an
    /// opaque id the driver chooses).
    pub fn stage(&mut self, txn_key: u64, pid: PageId, slot: usize, value: u64) {
        self.staged
            .entry(txn_key)
            .or_default()
            .push(((pid, slot), value));
    }

    /// Folds a transaction's staged writes into committed state.
    pub fn commit(&mut self, txn_key: u64) {
        if let Some(writes) = self.staged.remove(&txn_key) {
            for (k, v) in writes {
                self.committed.insert(k, v);
            }
        }
    }

    /// Discards a transaction's staged writes.
    pub fn abort(&mut self, txn_key: u64) {
        self.staged.remove(&txn_key);
    }

    /// Number of tracked committed slots.
    pub fn len(&self) -> usize {
        self.committed.len()
    }

    /// True if nothing has been committed.
    pub fn is_empty(&self) -> bool {
        self.committed.is_empty()
    }

    /// Expected committed value of a slot, if any write committed.
    pub fn expect(&self, pid: PageId, slot: usize) -> Option<u64> {
        self.committed.get(&(pid, slot)).copied()
    }

    /// Reads every tracked slot back through `sys` (fresh transactions
    /// on `reader`) and returns the number of verified slots. Any
    /// mismatch is an error describing the divergence.
    pub fn verify<S: System>(&self, sys: &mut S, reader: cblog_common::NodeId) -> Result<usize> {
        self.verify_impl(sys, reader, true)
    }

    /// [`Oracle::verify`] without the flight-recorder dump on
    /// mismatch. The model checker runs thousands of expected-to-fail
    /// verifications while shrinking a counterexample; the one-line
    /// error is the useful part there, and the dump would multiply it
    /// by megabytes.
    pub fn verify_quiet<S: System>(
        &self,
        sys: &mut S,
        reader: cblog_common::NodeId,
    ) -> Result<usize> {
        self.verify_impl(sys, reader, false)
    }

    fn verify_impl<S: System>(
        &self,
        sys: &mut S,
        reader: cblog_common::NodeId,
        dump_on_mismatch: bool,
    ) -> Result<usize> {
        let mut checked = 0;
        let mut items: Vec<(SlotKey, u64)> = self.committed.iter().map(|(k, v)| (*k, *v)).collect();
        items.sort();
        for ((pid, slot), want) in items {
            let txn = sys.begin(reader)?;
            let got = match sys.read(txn, pid, slot) {
                Ok(v) => v,
                Err(e) => {
                    let _ = sys.abort(txn);
                    return Err(e);
                }
            };
            sys.commit(txn)?;
            if got != want {
                // Divergence: dump the flight recorders before failing,
                // so the event history around the corruption is not
                // lost with the process.
                if dump_on_mismatch {
                    if let Some(dump) = sys.flight_dump() {
                        eprintln!("oracle mismatch at {pid} slot {slot}; flight recorders:");
                        eprint!("{dump}");
                    }
                }
                return Err(cblog_common::Error::Protocol(format!(
                    "oracle mismatch at {pid} slot {slot}: database {got}, expected {want}"
                )));
            }
            checked += 1;
        }
        Ok(checked)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cblog_common::NodeId;

    #[test]
    fn staged_writes_apply_only_on_commit() {
        let mut o = Oracle::new();
        let p = PageId::new(NodeId(0), 0);
        o.stage(1, p, 0, 10);
        o.stage(2, p, 1, 20);
        assert!(o.is_empty());
        o.commit(1);
        o.abort(2);
        assert_eq!(o.expect(p, 0), Some(10));
        assert_eq!(o.expect(p, 1), None);
        assert_eq!(o.len(), 1);
    }

    #[test]
    fn later_commit_overwrites() {
        let mut o = Oracle::new();
        let p = PageId::new(NodeId(0), 0);
        o.stage(1, p, 0, 10);
        o.commit(1);
        o.stage(2, p, 0, 30);
        o.commit(2);
        assert_eq!(o.expect(p, 0), Some(30));
    }
}
